"""End-to-end tests of the RPO pipeline (paper Fig. 8)."""

import pytest

from repro.algorithms import (
    bernstein_vazirani_boolean,
    bernstein_vazirani_phase,
    grover_circuit,
    quantum_phase_estimation,
    ry_ansatz,
)
from repro.backends import FakeMelbourne
from repro.rpo import hoare_pass_manager, rpo_extended_pass_manager, rpo_pass_manager
from repro.transpiler import level_3_pass_manager
from repro.transpiler.passmanager import PropertySet

from tests.helpers import assert_same_distribution


@pytest.fixture(scope="module")
def melbourne():
    return FakeMelbourne()


def run(factory, circuit, backend, seed=0):
    pm = factory(
        backend.coupling_map, backend_properties=backend.properties, seed=seed
    )
    return pm.run(circuit.copy(), PropertySet())


def cx_of(circuit):
    return circuit.count_ops().get("cx", 0)


class TestFunctionalCorrectness:
    @pytest.mark.parametrize(
        "factory", [rpo_pass_manager, rpo_extended_pass_manager, hoare_pass_manager]
    )
    def test_qpe_distribution_preserved(self, melbourne, factory):
        circuit = quantum_phase_estimation(3)
        out = run(factory, circuit, melbourne)
        assert_same_distribution(circuit, out)

    def test_bv_distribution_preserved(self, melbourne):
        circuit = bernstein_vazirani_boolean(4, 0b1011)
        out = run(rpo_pass_manager, circuit, melbourne)
        assert_same_distribution(circuit, out)

    def test_grover_distribution_preserved(self, melbourne):
        circuit = grover_circuit(3, marked=5, iterations=1)
        out = run(rpo_pass_manager, circuit, melbourne)
        assert_same_distribution(circuit, out)

    def test_grover_vchain_annotated_preserved(self, melbourne):
        circuit = grover_circuit(
            4, iterations=2, design="vchain", annotate=True
        )
        out = run(rpo_pass_manager, circuit, melbourne)
        assert_same_distribution(circuit, out)

    def test_extended_mode_preserved(self, melbourne):
        circuit = quantum_phase_estimation(4)
        out = run(rpo_extended_pass_manager, circuit, melbourne)
        assert_same_distribution(circuit, out)


class TestPaperShapes:
    def test_rpo_never_worse_than_level3(self, melbourne):
        """Paper Sec. VIII-B: RPO CNOT count <= level 3 for every circuit."""
        workloads = [
            quantum_phase_estimation(3),
            quantum_phase_estimation(5),
            ry_ansatz(4, depth=3, seed=11),
            grover_circuit(4, design="noancilla"),
        ]
        for circuit in workloads:
            for seed in range(3):
                baseline = cx_of(run(level_3_pass_manager, circuit, melbourne, seed))
                optimized = cx_of(run(rpo_pass_manager, circuit, melbourne, seed))
                assert optimized <= baseline

    def test_qpe_improves(self, melbourne):
        circuit = quantum_phase_estimation(5)
        baseline = cx_of(run(level_3_pass_manager, circuit, melbourne))
        optimized = cx_of(run(rpo_pass_manager, circuit, melbourne))
        assert optimized < baseline

    def test_bv_boolean_oracle_becomes_phase_oracle(self, melbourne):
        """Paper Sec. VIII-A / Fig. 10: QBO makes the boolean-oracle BV as
        cheap as the phase-oracle design (no CNOT gates at all)."""
        boolean = bernstein_vazirani_boolean(5, 0b10110)
        phase = bernstein_vazirani_phase(5, 0b10110)
        out_boolean = cx_of(run(rpo_pass_manager, boolean, melbourne))
        out_phase = cx_of(run(rpo_pass_manager, phase, melbourne))
        assert out_boolean == out_phase == 0

    def test_bv_not_optimized_by_level3(self, melbourne):
        boolean = bernstein_vazirani_boolean(5, 0b10110)
        assert cx_of(run(level_3_pass_manager, boolean, melbourne)) > 0

    def test_hoare_subset_of_rpo(self, melbourne):
        """Paper Sec. VIII-B: everything hoare captures, RPO captures."""
        for circuit in [
            quantum_phase_estimation(4),
            bernstein_vazirani_boolean(4, 0b1010),
        ]:
            hoare = cx_of(run(hoare_pass_manager, circuit, melbourne))
            rpo = cx_of(run(rpo_pass_manager, circuit, melbourne))
            assert rpo <= hoare

    def test_extended_at_least_as_good(self, melbourne):
        circuit = quantum_phase_estimation(5)
        faithful = cx_of(run(rpo_pass_manager, circuit, melbourne))
        extended = cx_of(run(rpo_extended_pass_manager, circuit, melbourne))
        assert extended <= faithful

    def test_annotations_help_grover(self, melbourne):
        """Paper Sec. VIII-C / Table III: annotations recover optimization
        opportunities across Grover iterations."""
        plain = grover_circuit(5, iterations=3, design="vchain", annotate=False)
        annotated = grover_circuit(5, iterations=3, design="vchain", annotate=True)
        cx_plain = cx_of(run(rpo_pass_manager, plain, melbourne))
        cx_annotated = cx_of(run(rpo_pass_manager, annotated, melbourne))
        assert cx_annotated <= cx_plain
