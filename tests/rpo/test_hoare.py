"""Tests for the Hoare-logic baseline optimizer."""

from repro.circuit import QuantumCircuit
from repro.rpo import HoareOptimizer
from repro.transpiler.passmanager import PropertySet

from tests.helpers import assert_functionally_equivalent


def run_hoare(circuit, **kwargs):
    return HoareOptimizer(**kwargs).run(circuit, PropertySet())


class TestControlRules:
    def test_cx_control_zero_removed(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        out = run_hoare(circuit)
        assert out.size() == 0
        assert_functionally_equivalent(circuit, out)

    def test_cx_control_one_strips(self):
        circuit = QuantumCircuit(2)
        circuit.x(0)
        circuit.cx(0, 1)
        out = run_hoare(circuit)
        assert out.count_ops() == {"x": 2}
        assert_functionally_equivalent(circuit, out)

    def test_superposed_control_kept(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.cx(0, 1)
        out = run_hoare(circuit)
        assert out.count_ops().get("cx", 0) == 1

    def test_toffoli_chain(self):
        circuit = QuantumCircuit(3)
        circuit.x(0)
        circuit.x(1)
        circuit.ccx(0, 1, 2)
        out = run_hoare(circuit)
        assert out.count_ops().get("ccx", 0) == 0
        assert_functionally_equivalent(circuit, out)

    def test_classical_propagation_through_cx(self):
        circuit = QuantumCircuit(3)
        circuit.x(0)
        circuit.cx(0, 1)  # q1 provably |1>
        circuit.cx(1, 2)  # should strip to x
        out = run_hoare(circuit)
        assert out.count_ops().get("cx", 0) == 0
        assert_functionally_equivalent(circuit, out)


class TestDiagonalRules:
    def test_diagonal_on_constant_removed(self):
        circuit = QuantumCircuit(1)
        circuit.t(0)
        circuit.z(0)
        out = run_hoare(circuit)
        assert out.size() == 0

    def test_diagonal_on_superposition_kept(self):
        circuit = QuantumCircuit(1)
        circuit.h(0)
        circuit.t(0)
        out = run_hoare(circuit)
        assert out.count_ops().get("t", 0) == 1

    def test_cz_constant_target_one(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.x(1)
        circuit.cz(0, 1)  # target |1>: equivalent to Z on control
        out = run_hoare(circuit)
        assert out.count_ops().get("cz", 0) == 0
        assert_functionally_equivalent(circuit, out)


class TestXBasisBlindness:
    """The support-set engine cannot see phases: exactly the paper's
    observation that the Hoare baseline misses the boolean->phase oracle
    rewrite (Sec. VIII-A)."""

    def test_minus_target_cx_not_optimized(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.x(1)
        circuit.h(1)  # |->
        circuit.cx(0, 1)
        out = run_hoare(circuit)
        assert out.count_ops().get("cx", 0) == 1  # QBO would remove this

    def test_bv_oracle_not_converted(self):
        from repro.algorithms import bernstein_vazirani_boolean

        circuit = bernstein_vazirani_boolean(4, 0b1011, measure=False)
        out = run_hoare(circuit)
        assert out.count_ops().get("cx", 0) == 3


class TestSupportMachinery:
    def test_entangled_cluster_not_constant(self):
        circuit = QuantumCircuit(3)
        circuit.h(0)
        circuit.cx(0, 1)
        circuit.cx(1, 2)  # control genuinely superposed
        out = run_hoare(circuit)
        assert out.count_ops().get("cx", 0) == 2

    def test_disentangling_recovers_knowledge(self):
        circuit = QuantumCircuit(3)
        circuit.h(0)
        circuit.cx(0, 1)
        circuit.cx(0, 1)  # support collapses back to q1 = 0
        circuit.cx(1, 2)  # provably control-|0>: removed
        out = run_hoare(circuit)
        assert out.count_ops().get("cx", 0) == 2
        assert_functionally_equivalent(circuit, out)

    def test_reset_restores_zero(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.reset(0)
        circuit.cx(0, 1)
        out = run_hoare(circuit)
        assert out.count_ops().get("cx", 0) == 0

    def test_support_cap_goes_conservative(self):
        circuit = QuantumCircuit(9)
        for qubit in range(9):
            circuit.h(qubit)
        for qubit in range(8):
            circuit.cx(qubit, qubit + 1)
        circuit.cx(0, 8)
        out = run_hoare(HoareOptimizer(max_support=4).run(circuit, PropertySet()))
        assert out.count_ops().get("cx", 0) == 9  # nothing removable, no crash

    def test_swap_permutes_support(self):
        circuit = QuantumCircuit(2)
        circuit.x(0)
        circuit.swap(0, 1)
        circuit.cx(1, 0)  # control now provably |1>: strip to X
        out = run_hoare(circuit)
        assert out.count_ops().get("cx", 0) == 0
        assert_functionally_equivalent(circuit, out)

    def test_annotations_ignored(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.cx(0, 1)
        circuit.annotate_zero(0)  # hoare must NOT trust annotations
        circuit.cx(0, 1)
        out = run_hoare(circuit)
        assert out.count_ops().get("cx", 0) == 2
