"""Tests for the basis-state and pure-state dataflow trackers."""

import math

import numpy as np
import pytest

from repro.gates import HGate, SGate, TGate, XGate
from repro.linalg.euler import u3_matrix
from repro.rpo import BasisState, BasisStateTracker, PureStateTracker


class TestBasisTracker:
    def test_starts_in_ground_state(self):
        tracker = BasisStateTracker(3)
        assert all(tracker.state(q) is BasisState.ZERO for q in range(3))

    def test_gate_chain(self):
        tracker = BasisStateTracker(1)
        tracker.apply_1q_gate(0, HGate().to_matrix())
        assert tracker.state(0) is BasisState.PLUS
        tracker.apply_1q_gate(0, SGate().to_matrix())
        assert tracker.state(0) is BasisState.LEFT

    def test_t_gate_drops_x_basis(self):
        tracker = BasisStateTracker(1)
        tracker.apply_1q_gate(0, HGate().to_matrix())
        tracker.apply_1q_gate(0, TGate().to_matrix())
        assert tracker.state(0) is BasisState.TOP

    def test_reset(self):
        tracker = BasisStateTracker(1)
        tracker.invalidate([0])
        tracker.apply_reset(0)
        assert tracker.state(0) is BasisState.ZERO

    def test_measure_keeps_z(self):
        tracker = BasisStateTracker(2)
        tracker.apply_1q_gate(0, XGate().to_matrix())
        tracker.apply_measure(0)
        assert tracker.state(0) is BasisState.ONE
        tracker.apply_1q_gate(1, HGate().to_matrix())
        tracker.apply_measure(1)
        assert tracker.state(1) is BasisState.TOP

    def test_annotation(self):
        tracker = BasisStateTracker(1)
        tracker.invalidate([0])
        tracker.apply_annotation(0, math.pi / 2, math.pi)
        assert tracker.state(0) is BasisState.MINUS
        tracker.apply_annotation(0, 0.42, 0.0)
        assert tracker.state(0) is BasisState.TOP

    def test_swap_exchanges_including_top(self):
        tracker = BasisStateTracker(2)
        tracker.apply_1q_gate(0, XGate().to_matrix())
        tracker.invalidate([1])
        tracker.apply_swap(0, 1)
        assert tracker.state(0) is BasisState.TOP
        assert tracker.state(1) is BasisState.ONE

    def test_copy_is_independent(self):
        tracker = BasisStateTracker(1)
        clone = tracker.copy()
        clone.invalidate([0])
        assert tracker.state(0) is BasisState.ZERO


class TestPureTracker:
    def test_starts_at_zero_tuple(self):
        tracker = PureStateTracker(2)
        assert tracker.state(0) == (0.0, 0.0)

    def test_u3_merging(self):
        tracker = PureStateTracker(1)
        tracker.apply_1q_gate(0, u3_matrix(0.7, 0.3, 0.9))
        theta, phi = tracker.state(0)
        expected = u3_matrix(0.7, 0.3, 0.9) @ np.array([1, 0])
        produced = u3_matrix(theta, phi, 0.0) @ np.array([1, 0])
        assert abs(abs(np.vdot(expected, produced)) - 1) < 1e-9

    def test_statevector_consistency(self):
        tracker = PureStateTracker(1)
        tracker.apply_1q_gate(0, HGate().to_matrix())
        tracker.apply_1q_gate(0, TGate().to_matrix())
        vector = tracker.statevector(0)
        expected = TGate().to_matrix() @ HGate().to_matrix() @ np.array([1, 0])
        assert abs(abs(np.vdot(vector, expected)) - 1) < 1e-9

    def test_preparation_matrix(self):
        tracker = PureStateTracker(1)
        tracker.apply_1q_gate(0, u3_matrix(1.1, -0.4, 0.2))
        prep = tracker.preparation_matrix(0)
        produced = prep @ np.array([1, 0])
        assert abs(abs(np.vdot(produced, tracker.statevector(0))) - 1) < 1e-9

    def test_invalidate_and_query(self):
        tracker = PureStateTracker(1)
        tracker.invalidate([0])
        assert not tracker.is_known(0)
        with pytest.raises(ValueError):
            tracker.statevector(0)

    def test_measure_keeps_poles_only(self):
        tracker = PureStateTracker(2)
        tracker.apply_measure(0)
        assert tracker.is_known(0)  # |0> survives
        tracker.apply_1q_gate(1, HGate().to_matrix())
        tracker.apply_measure(1)
        assert not tracker.is_known(1)

    def test_basis_classification(self):
        tracker = PureStateTracker(1)
        tracker.apply_1q_gate(0, HGate().to_matrix())
        assert tracker.basis_classification(0) is BasisState.PLUS
        tracker.apply_1q_gate(0, u3_matrix(0.2, 0.1, 0.0))
        assert tracker.basis_classification(0) is BasisState.TOP

    def test_annotation_and_reset(self):
        tracker = PureStateTracker(1)
        tracker.invalidate([0])
        tracker.apply_annotation(0, 0.7, 0.2)
        assert tracker.state(0) == (0.7, 0.2)
        tracker.apply_reset(0)
        assert tracker.state(0) == (0.0, 0.0)
