"""Tests for the SWAPZ profitability guard (rpo.adjacency)."""

from repro.circuit import QuantumCircuit
from repro.rpo.adjacency import same_pair_adjacent_indices


class TestSamePairAdjacency:
    def test_adjacent_same_pair(self):
        circuit = QuantumCircuit(2)
        circuit.swap(0, 1)
        circuit.cx(0, 1)
        assert same_pair_adjacent_indices(circuit) == {0, 1}

    def test_one_qubit_gates_transparent(self):
        circuit = QuantumCircuit(2)
        circuit.swap(0, 1)
        circuit.h(0)
        circuit.t(1)
        circuit.cx(0, 1)
        assert same_pair_adjacent_indices(circuit) == {0, 3}

    def test_different_pair_not_adjacent(self):
        circuit = QuantumCircuit(3)
        circuit.swap(0, 1)
        circuit.cx(1, 2)
        assert same_pair_adjacent_indices(circuit) == set()

    def test_single_wire_interposer_still_adjacent(self):
        # cx(0,2) touches wire 0 between the pair gates, but they remain
        # consecutive on wire 1: the conservative guard still fires
        circuit = QuantumCircuit(3)
        circuit.swap(0, 1)
        circuit.cx(0, 2)
        circuit.cx(0, 1)
        assert {0, 2} <= same_pair_adjacent_indices(circuit)

    def test_measure_fences(self):
        circuit = QuantumCircuit(2, 1)
        circuit.swap(0, 1)
        circuit.measure(0, 0)
        circuit.measure(1, 0)
        circuit.cx(0, 1)
        assert same_pair_adjacent_indices(circuit) == set()

    def test_guard_prevents_regression(self):
        """A SWAP next to a same-pair CX is left for consolidation."""
        from repro.rpo import QPOPass
        from repro.transpiler.passmanager import PropertySet

        circuit = QuantumCircuit(3)
        circuit.u3(0.7, 0.2, 0.0, 0)
        circuit.h(1)
        circuit.cx(1, 2)  # make qubit 1 unknown
        circuit.swap(0, 1)
        circuit.cx(0, 1)  # same-pair neighbour
        out = QPOPass().run(circuit, PropertySet())
        assert out.count_ops().get("swapz", 0) == 0
        assert out.count_ops().get("swap", 0) == 1

    def test_isolated_swap_still_converted(self):
        from repro.rpo import QPOPass
        from repro.transpiler.passmanager import PropertySet

        circuit = QuantumCircuit(3)
        circuit.u3(0.7, 0.2, 0.0, 0)
        circuit.h(1)
        circuit.cx(1, 2)
        circuit.swap(0, 1)  # no same-pair neighbour
        out = QPOPass().run(circuit, PropertySet())
        assert out.count_ops().get("swapz", 0) == 1
