"""Tests for the QBO pass: exhaustive Table I, Eq. 8, SWAP rules, V-chain."""

import numpy as np
import pytest

from repro.circuit import QuantumCircuit
from repro.gates import CXGate
from repro.rpo import QBOPass, BasisState
from repro.transpiler.passmanager import PropertySet

from tests.helpers import assert_functionally_equivalent

ALL_BASIS = [
    BasisState.ZERO,
    BasisState.ONE,
    BasisState.PLUS,
    BasisState.MINUS,
    BasisState.LEFT,
    BasisState.RIGHT,
]

PREP_GATES = {
    BasisState.ZERO: [],
    BasisState.ONE: ["x"],
    BasisState.PLUS: ["h"],
    BasisState.MINUS: ["x", "h"],
    BasisState.LEFT: ["h", "s"],
    BasisState.RIGHT: ["h", "sdg"],
}


def prepare(circuit, qubit, state):
    for name in PREP_GATES[state]:
        getattr(circuit, name)(qubit)


def prepare_top(circuit, qubit, helper):
    """Put ``qubit`` into a non-basis (entangled) state using ``helper``."""
    circuit.h(qubit)
    circuit.t(qubit)
    circuit.cx(qubit, helper)


def run_qbo(circuit, **kwargs):
    return QBOPass(**kwargs).run(circuit, PropertySet())


def two_qubit_gate_count(circuit):
    return circuit.num_nonlocal_gates()


class TestTableI:
    """Exhaustive CNOT rules over all control/target basis-state combos."""

    @pytest.mark.parametrize("ctrl_state", ALL_BASIS)
    @pytest.mark.parametrize("tgt_state", ALL_BASIS)
    def test_cx_all_basis_combinations(self, ctrl_state, tgt_state):
        circuit = QuantumCircuit(2)
        prepare(circuit, 0, ctrl_state)
        prepare(circuit, 1, tgt_state)
        circuit.cx(0, 1)
        out = run_qbo(circuit)
        assert_functionally_equivalent(circuit, out)
        removable = (
            ctrl_state in (BasisState.ZERO, BasisState.ONE)
            or tgt_state in (BasisState.PLUS, BasisState.MINUS)
        )
        if removable:
            assert two_qubit_gate_count(out) == 0, (
                f"cx with ctrl={ctrl_state}, tgt={tgt_state} should be optimized"
            )
        else:
            assert two_qubit_gate_count(out) == 1

    @pytest.mark.parametrize("ctrl_state", ALL_BASIS)
    def test_cx_known_control_unknown_target(self, ctrl_state):
        circuit = QuantumCircuit(3)
        prepare(circuit, 0, ctrl_state)
        prepare_top(circuit, 1, 2)
        circuit.cx(0, 1)
        out = run_qbo(circuit)
        assert_functionally_equivalent(circuit, out)
        if ctrl_state in (BasisState.ZERO, BasisState.ONE):
            assert two_qubit_gate_count(out) == 1  # only the helper cx remains

    @pytest.mark.parametrize("tgt_state", ALL_BASIS)
    def test_cx_unknown_control_known_target(self, tgt_state):
        circuit = QuantumCircuit(3)
        prepare_top(circuit, 0, 2)
        prepare(circuit, 1, tgt_state)
        circuit.cx(0, 1)
        out = run_qbo(circuit)
        assert_functionally_equivalent(circuit, out)
        if tgt_state in (BasisState.PLUS, BasisState.MINUS):
            assert two_qubit_gate_count(out) == 1


class TestCZRules:
    @pytest.mark.parametrize("state", [BasisState.ZERO, BasisState.ONE])
    @pytest.mark.parametrize("side", [0, 1])
    def test_cz_z_basis_removed(self, state, side):
        circuit = QuantumCircuit(3)
        prepare(circuit, side, state)
        prepare_top(circuit, 1 - side, 2)
        circuit.cz(0, 1)
        out = run_qbo(circuit)
        assert_functionally_equivalent(circuit, out)
        assert out.count_ops().get("cz", 0) == 0

    def test_cz_unknown_kept(self):
        circuit = QuantumCircuit(4)
        prepare_top(circuit, 0, 2)
        prepare_top(circuit, 1, 3)
        circuit.cz(0, 1)
        out = run_qbo(circuit)
        assert out.count_ops().get("cz", 0) == 1


class TestEq7SingleQubit:
    def test_x_on_plus_removed(self):
        circuit = QuantumCircuit(1)
        circuit.h(0)
        circuit.x(0)
        out = run_qbo(circuit)
        assert out.count_ops() == {"h": 1}
        assert_functionally_equivalent(circuit, out)

    def test_z_on_one_removed_with_phase(self):
        circuit = QuantumCircuit(1)
        circuit.x(0)
        circuit.z(0)
        out = run_qbo(circuit)
        assert out.count_ops() == {"x": 1}
        assert abs(out.global_phase - np.pi) < 1e-9
        assert_functionally_equivalent(circuit, out)

    def test_t_on_zero_removed(self):
        circuit = QuantumCircuit(1)
        circuit.t(0)
        out = run_qbo(circuit)
        assert out.size() == 0

    def test_x_on_zero_kept(self):
        circuit = QuantumCircuit(1)
        circuit.x(0)
        out = run_qbo(circuit)
        assert out.count_ops() == {"x": 1}


class TestToffoliEq8:
    def test_control_zero_removes(self):
        circuit = QuantumCircuit(4)
        prepare_top(circuit, 1, 3)
        circuit.h(2)
        circuit.t(2)
        circuit.ccx(0, 1, 2)  # control 0 is |0>
        out = run_qbo(circuit)
        assert two_qubit_gate_count(out) == 1  # helper only
        assert_functionally_equivalent(circuit, out)

    def test_control_one_drops_to_cx(self):
        circuit = QuantumCircuit(4)
        circuit.x(0)
        prepare_top(circuit, 1, 3)
        circuit.h(2)
        circuit.t(2)
        circuit.ccx(0, 1, 2)
        out = run_qbo(circuit)
        assert out.count_ops().get("ccx", 0) == 0
        assert out.count_ops().get("cx", 0) == 2  # helper + reduced
        assert_functionally_equivalent(circuit, out)

    def test_target_plus_removes(self):
        circuit = QuantumCircuit(5)
        prepare_top(circuit, 0, 3)
        prepare_top(circuit, 1, 4)
        circuit.h(2)
        circuit.ccx(0, 1, 2)
        out = run_qbo(circuit)
        assert out.count_ops().get("ccx", 0) == 0
        assert_functionally_equivalent(circuit, out)

    def test_target_minus_becomes_cz(self):
        circuit = QuantumCircuit(5)
        prepare_top(circuit, 0, 3)
        prepare_top(circuit, 1, 4)
        circuit.x(2)
        circuit.h(2)
        circuit.ccx(0, 1, 2)
        out = run_qbo(circuit)
        assert out.count_ops().get("ccx", 0) == 0
        assert out.count_ops().get("cz", 0) + out.count_ops().get("mcu1", 0) == 1
        assert_functionally_equivalent(circuit, out)


class TestOpenControls:
    def test_open_control_zero_fires(self):
        circuit = QuantumCircuit(2)
        circuit.append(CXGate(ctrl_state=0), (0, 1))  # fires on |0>
        out = run_qbo(circuit)
        # control is |0>: gate always fires -> plain X on target
        assert out.count_ops() == {"x": 1}
        assert_functionally_equivalent(circuit, out)

    def test_open_control_one_removed(self):
        circuit = QuantumCircuit(2)
        circuit.x(0)
        circuit.append(CXGate(ctrl_state=0), (0, 1))
        out = run_qbo(circuit)
        assert out.count_ops() == {"x": 1}
        assert_functionally_equivalent(circuit, out)


class TestSwapRules:
    @pytest.mark.parametrize("state_a", ALL_BASIS)
    @pytest.mark.parametrize("state_b", ALL_BASIS)
    def test_swap_both_known(self, state_a, state_b):
        circuit = QuantumCircuit(2)
        prepare(circuit, 0, state_a)
        prepare(circuit, 1, state_b)
        circuit.swap(0, 1)
        out = run_qbo(circuit)
        assert two_qubit_gate_count(out) == 0  # Table VI: 1q gates only
        assert_functionally_equivalent(circuit, out)

    @pytest.mark.parametrize("known", ALL_BASIS)
    def test_swap_one_known(self, known):
        circuit = QuantumCircuit(3)
        prepare(circuit, 0, known)
        prepare_top(circuit, 1, 2)
        circuit.swap(0, 1)
        out = run_qbo(circuit)
        assert out.count_ops().get("swap", 0) == 0
        assert out.count_ops().get("swapz", 0) == 1
        assert_functionally_equivalent(circuit, out)

    def test_swap_unknown_kept(self):
        circuit = QuantumCircuit(4)
        prepare_top(circuit, 0, 2)
        prepare_top(circuit, 1, 3)
        circuit.swap(0, 1)
        out = run_qbo(circuit)
        assert out.count_ops().get("swap", 0) == 1

    def test_swapz_valid_promise_kept(self):
        circuit = QuantumCircuit(2)
        circuit.h(1)
        circuit.t(1)
        circuit.swapz(0, 1)  # qubit 0 is |0>
        out = run_qbo(circuit)
        assert out.count_ops().get("swapz", 0) == 1
        assert_functionally_equivalent(circuit, out)

    def test_swapz_invalid_promise_demoted(self):
        circuit = QuantumCircuit(3)
        prepare_top(circuit, 0, 2)
        prepare_top(circuit, 1, 2)
        circuit.swapz(0, 1)
        out = run_qbo(circuit)
        # demoted to its two defining CNOTs (unitary semantics preserved)
        assert out.count_ops().get("swapz", 0) == 0
        assert_functionally_equivalent(circuit, out)


class TestFredkin:
    def test_control_zero_removed(self):
        circuit = QuantumCircuit(5)
        prepare_top(circuit, 1, 3)
        prepare_top(circuit, 2, 4)
        circuit.cswap(0, 1, 2)
        out = run_qbo(circuit)
        assert out.count_ops().get("cswap", 0) == 0
        assert two_qubit_gate_count(out) == 2  # helpers only
        assert_functionally_equivalent(circuit, out)

    def test_control_one_becomes_swap(self):
        circuit = QuantumCircuit(5)
        circuit.x(0)
        prepare_top(circuit, 1, 3)
        prepare_top(circuit, 2, 4)
        circuit.cswap(0, 1, 2)
        out = run_qbo(circuit)
        assert out.count_ops().get("cswap", 0) == 0
        assert out.count_ops().get("swap", 0) == 1
        assert_functionally_equivalent(circuit, out)

    def test_known_target_uses_decomposition(self):
        circuit = QuantumCircuit(4)
        prepare_top(circuit, 0, 3)
        circuit.h(1)
        # qubit 2 left in |0>
        circuit.cswap(0, 1, 2)
        out = run_qbo(circuit)
        assert out.count_ops().get("cswap", 0) == 0
        assert_functionally_equivalent(circuit, out)


class TestAnnotationsAndReset:
    def test_reset_reenters_automaton(self):
        circuit = QuantumCircuit(3)
        prepare_top(circuit, 0, 2)
        circuit.reset(0)
        circuit.cx(0, 1)  # control provably |0> again
        out = run_qbo(circuit)
        assert out.count_ops().get("cx", 1) - 1 == 0 or out.count_ops().get("cx", 0) == 1
        # exactly the helper cx remains
        assert two_qubit_gate_count(out) == 1

    def test_annotation_reenters_automaton(self):
        circuit = QuantumCircuit(3)
        prepare_top(circuit, 0, 2)
        circuit.annotate_zero(0)
        circuit.cx(0, 1)
        out = run_qbo(circuit)
        assert two_qubit_gate_count(out) == 1  # helper only

    def test_measure_keeps_z_basis(self):
        circuit = QuantumCircuit(2, 1)
        circuit.x(0)
        circuit.measure(0, 0)
        circuit.cx(0, 1)  # control still provably |1>
        out = run_qbo(circuit)
        assert out.count_ops().get("cx", 0) == 0
        assert out.count_ops().get("x", 0) == 2


class TestGeneralEigenphase:
    def test_cp_with_one_target_collapses_only_in_general_mode(self):
        circuit = QuantumCircuit(3)
        prepare_top(circuit, 0, 2)
        circuit.x(1)
        circuit.cp(0.7, 0, 1)
        faithful = run_qbo(circuit)
        general = run_qbo(circuit, general_eigenphase=True)
        assert faithful.count_ops().get("cp", 0) == 1
        assert general.count_ops().get("cp", 0) == 0
        assert_functionally_equivalent(circuit, general)

    def test_cp_pi_collapses_in_both_modes(self):
        circuit = QuantumCircuit(3)
        prepare_top(circuit, 0, 2)
        circuit.x(1)
        circuit.cp(np.pi, 0, 1)
        faithful = run_qbo(circuit)
        assert faithful.count_ops().get("cp", 0) == 0
        assert_functionally_equivalent(circuit, faithful)


class TestVChain:
    def test_clean_ancilla_control_zero_removes(self):
        circuit = QuantumCircuit(7)
        for qubit in (1, 2, 3):
            circuit.h(qubit)
        # control 0 in |0>, ancillas 4,5 clean
        circuit.mcx_vchain([0, 1, 2, 3], 6, [4, 5])
        out = run_qbo(circuit)
        assert out.count_ops().get("mcx_vchain", 0) == 0
        assert_functionally_equivalent(circuit, out)

    def test_control_one_reduces(self):
        circuit = QuantumCircuit(7)
        circuit.x(0)
        for qubit in (1, 2, 3):
            circuit.h(qubit)
        circuit.mcx_vchain([0, 1, 2, 3], 6, [4, 5])
        out = run_qbo(circuit)
        ops = out.count_ops()
        assert ops.get("mcx_vchain", 0) == 1
        remaining = next(
            inst for inst in out.data if inst.operation.name == "mcx_vchain"
        )
        assert remaining.operation.num_ctrl_qubits == 3
        assert_functionally_equivalent(circuit, out)

    def test_dirty_ancilla_blocks_rules(self):
        circuit = QuantumCircuit(8)
        prepare_top(circuit, 4, 7)  # dirty ancilla
        for qubit in (1, 2, 3):
            circuit.h(qubit)
        circuit.mcx_vchain([0, 1, 2, 3], 6, [4, 5])
        out = run_qbo(circuit)
        assert out.count_ops().get("mcx_vchain", 0) == 1
