"""Matrix-level verification of the paper's equations.

These tests check the *identities themselves*, independent of the passes:
each rewrite's circuit is compared against the original on the premised
input states (functional form) or as full matrices where the paper claims
unitary equality.
"""

import numpy as np
import pytest

from repro.circuit import QuantumCircuit
from repro.gates import SwapGate, SwapZGate
from repro.linalg.euler import u3_matrix
from repro.simulators import circuit_unitary, simulate_statevector


def state_of(circuit, initial=None):
    return simulate_statevector(circuit, initial)


def product_state(*single_qubit_states):
    """Little-endian product state: argument ``i`` is qubit ``i``."""
    state = np.array([1.0], dtype=complex)
    for psi in single_qubit_states[::-1]:  # qubit 0 = least significant
        state = np.kron(state, psi)
    return state


ZERO = np.array([1, 0], dtype=complex)
ONE = np.array([0, 1], dtype=complex)


class TestEq1CnotZeroControl:
    def test_cnot_acts_as_wire_on_zero_control(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        rng = np.random.default_rng(0)
        psi = rng.normal(size=2) + 1j * rng.normal(size=2)
        psi /= np.linalg.norm(psi)
        inp = product_state(ZERO, psi)  # control q0 = |0>
        out = state_of(circuit, inp)
        assert np.abs(out - inp).max() < 1e-12


class TestEq3And4Swapz:
    def test_swapz_is_swap_minus_first_cnot(self):
        """Eq. 3: SWAPZ = the 3-CNOT SWAP without the first CNOT."""
        swapz = SwapZGate().to_matrix()
        reduced = QuantumCircuit(2)
        reduced.cx(1, 0)
        reduced.cx(0, 1)
        assert np.abs(circuit_unitary(reduced) - swapz).max() < 1e-12

    @pytest.mark.parametrize("seed", range(5))
    def test_swapz_swaps_when_zero(self, seed):
        """Eq. 4: SWAPZ acts as SWAP when its first qubit is |0>."""
        rng = np.random.default_rng(seed)
        psi = rng.normal(size=2) + 1j * rng.normal(size=2)
        psi /= np.linalg.norm(psi)
        inp = product_state(ZERO, psi)  # q0 = |0>, q1 = psi
        swap_c = QuantumCircuit(2)
        swap_c.swap(0, 1)
        swapz_c = QuantumCircuit(2)
        swapz_c.swapz(0, 1)
        assert np.abs(state_of(swap_c, inp) - state_of(swapz_c, inp)).max() < 1e-12

    def test_swapz_differs_from_swap_as_unitary(self):
        assert np.abs(SwapGate().to_matrix() - SwapZGate().to_matrix()).max() > 0.5


class TestEq5SwapWithPureState:
    @pytest.mark.parametrize("theta,phi", [(0.7, 0.3), (1.9, -1.1), (np.pi / 2, 0.0)])
    def test_identity(self, theta, phi):
        """Eq. 5: SWAP = (U on psi-wire after) . SWAPZ . (U^-1 on pi-wire)."""
        prep = u3_matrix(theta, phi, 0.0)
        pi_state = prep @ ZERO
        rng = np.random.default_rng(1)
        psi = rng.normal(size=2) + 1j * rng.normal(size=2)
        psi /= np.linalg.norm(psi)
        inp = product_state(pi_state, psi)  # q0 = |pi>, q1 = |psi>

        reference = QuantumCircuit(2)
        reference.swap(0, 1)

        rewritten = QuantumCircuit(2)
        rewritten.unitary(prep.conj().T, (0,))
        rewritten.swapz(0, 1)
        rewritten.unitary(prep, (1,))

        out_a = state_of(reference, inp)
        out_b = state_of(rewritten, inp)
        assert abs(abs(np.vdot(out_a, out_b)) - 1) < 1e-10


class TestEq6SwapBothPure:
    def test_identity(self):
        """Eq. 6: SWAP = V (x) V^-1 when |pi> = V|psi>."""
        u_psi = u3_matrix(0.7, 0.3, 0.0)
        u_pi = u3_matrix(1.4, -0.9, 0.0)
        v = u_pi @ u_psi.conj().T
        inp = product_state(u_psi @ ZERO, u_pi @ ZERO)  # q0=|psi>, q1=|pi>

        reference = QuantumCircuit(2)
        reference.swap(0, 1)
        rewritten = QuantumCircuit(2)
        rewritten.unitary(v, (0,))
        rewritten.unitary(v.conj().T, (1,))

        out_a = state_of(reference, inp)
        out_b = state_of(rewritten, inp)
        assert abs(abs(np.vdot(out_a, out_b)) - 1) < 1e-10


class TestEq8Toffoli:
    def _rand(self, seed):
        rng = np.random.default_rng(seed)
        psi = rng.normal(size=2) + 1j * rng.normal(size=2)
        return psi / np.linalg.norm(psi)

    def test_control_zero(self):
        circuit = QuantumCircuit(3)
        circuit.ccx(0, 1, 2)
        inp = product_state(ZERO, self._rand(2), self._rand(3))
        assert np.abs(state_of(circuit, inp) - inp).max() < 1e-12

    def test_control_one_is_cx(self):
        toffoli = QuantumCircuit(3)
        toffoli.ccx(0, 1, 2)
        reduced = QuantumCircuit(3)
        reduced.cx(1, 2)
        inp = product_state(ONE, self._rand(4), self._rand(5))
        assert np.abs(state_of(toffoli, inp) - state_of(reduced, inp)).max() < 1e-10

    def test_target_plus_is_identity(self):
        plus = np.array([1, 1], dtype=complex) / np.sqrt(2)
        circuit = QuantumCircuit(3)
        circuit.ccx(0, 1, 2)
        inp = product_state(self._rand(6), self._rand(7), plus)
        assert np.abs(state_of(circuit, inp) - inp).max() < 1e-10

    def test_target_minus_is_cz(self):
        minus = np.array([1, -1], dtype=complex) / np.sqrt(2)
        toffoli = QuantumCircuit(3)
        toffoli.ccx(0, 1, 2)
        reduced = QuantumCircuit(3)
        reduced.cz(0, 1)
        inp = product_state(self._rand(8), self._rand(9), minus)
        out_a = state_of(toffoli, inp)
        out_b = state_of(reduced, inp)
        assert abs(abs(np.vdot(out_a, out_b)) - 1) < 1e-10


class TestEq9Fredkin:
    def test_identity(self):
        """Fredkin = CU (x) CU^-1 on known pure targets."""
        u_a = u3_matrix(0.7, 0.3, 0.0)
        u_b = u3_matrix(1.1, -0.4, 0.0)
        u = u_b @ u_a.conj().T
        ctrl = np.array([0.6, 0.8j], dtype=complex)
        inp = product_state(ctrl, u_a @ ZERO, u_b @ ZERO)

        fredkin = QuantumCircuit(3)
        fredkin.cswap(0, 1, 2)

        rewritten = QuantumCircuit(3)
        from repro.circuit.instruction import ControlledGate
        from repro.gates import UnitaryGate

        rewritten.append(ControlledGate("cu", 1, UnitaryGate(u)), (0, 1))
        rewritten.append(ControlledGate("cu", 1, UnitaryGate(u.conj().T)), (0, 2))

        out_a = state_of(fredkin, inp)
        out_b = state_of(rewritten, inp)
        assert abs(abs(np.vdot(out_a, out_b)) - 1) < 1e-10


class TestFig2SwapDecomposition:
    def test_three_cnots(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        circuit.cx(1, 0)
        circuit.cx(0, 1)
        assert np.abs(circuit_unitary(circuit) - SwapGate().to_matrix()).max() < 1e-12


class TestFig14Fredkin:
    def test_cnot_toffoli_cnot(self):
        from repro.gates import CSwapGate

        circuit = QuantumCircuit(3)
        circuit.cx(2, 1)
        circuit.ccx(0, 1, 2)
        circuit.cx(2, 1)
        assert np.abs(circuit_unitary(circuit) - CSwapGate().to_matrix()).max() < 1e-12
