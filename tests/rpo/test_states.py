"""Tests for the basis-state lattice against the paper's Fig. 5 automaton."""

import math

import numpy as np
import pytest

from repro.gates import HGate, SdgGate, SGate, TGate, XGate, YGate, ZGate
from repro.rpo.states import (
    TOP,
    BasisState,
    basis_state_of_bloch_tuple,
    bloch_tuple_of_basis_state,
    eigenphase_if_fixed,
    preparation_matrices,
    statevector_of_basis_state,
    transition,
)

Z0, O1 = BasisState.ZERO, BasisState.ONE
P, M = BasisState.PLUS, BasisState.MINUS
L, R = BasisState.LEFT, BasisState.RIGHT

#: The half- and quarter-turn transitions of paper Fig. 5.
FIG5_TABLE = {
    "x": {Z0: O1, O1: Z0, P: P, M: M, L: R, R: L},
    "y": {Z0: O1, O1: Z0, P: M, M: P, L: L, R: R},
    "z": {Z0: Z0, O1: O1, P: M, M: P, L: R, R: L},
    "h": {Z0: P, P: Z0, O1: M, M: O1, L: R, R: L},
    "s": {Z0: Z0, O1: O1, P: L, L: M, M: R, R: P},
    "sdg": {Z0: Z0, O1: O1, P: R, R: M, M: L, L: P},
}

GATES = {
    "x": XGate(),
    "y": YGate(),
    "z": ZGate(),
    "h": HGate(),
    "s": SGate(),
    "sdg": SdgGate(),
}


class TestFig5Automaton:
    @pytest.mark.parametrize("gate_name", sorted(FIG5_TABLE))
    def test_transition_table(self, gate_name):
        matrix = GATES[gate_name].to_matrix()
        for source, expected in FIG5_TABLE[gate_name].items():
            assert transition(source, matrix) is expected, (
                f"{gate_name}: {source} should go to {expected}"
            )

    def test_t_gate_keeps_z_basis_only(self):
        t = TGate().to_matrix()
        assert transition(Z0, t) is Z0
        assert transition(O1, t) is O1
        assert transition(P, t) is TOP  # eighth turn leaves the lattice

    def test_generic_gate_goes_to_top(self):
        from repro.linalg.random import random_unitary

        u = random_unitary(2, 42)
        assert transition(Z0, u) is TOP

    def test_top_stays_top(self):
        assert transition(TOP, XGate().to_matrix()) is TOP

    def test_transitions_match_statevectors(self):
        # cross-validate the Bloch machinery against direct state evolution
        for name, gate in GATES.items():
            matrix = gate.to_matrix()
            for source in FIG5_TABLE[name]:
                target = transition(source, matrix)
                evolved = matrix @ statevector_of_basis_state(source)
                expected = statevector_of_basis_state(target)
                overlap = abs(np.vdot(expected, evolved))
                assert abs(overlap - 1) < 1e-9


class TestEigenphase:
    def test_eigenstate_plus_of_x(self):
        assert abs(eigenphase_if_fixed(P, XGate().to_matrix())) < 1e-12

    def test_eigenstate_minus_of_x(self):
        phase = eigenphase_if_fixed(M, XGate().to_matrix())
        assert abs(abs(phase) - math.pi) < 1e-12

    def test_z_on_zero(self):
        assert abs(eigenphase_if_fixed(Z0, ZGate().to_matrix())) < 1e-12

    def test_non_eigenstate_returns_none(self):
        assert eigenphase_if_fixed(Z0, XGate().to_matrix()) is None

    def test_top_returns_none(self):
        assert eigenphase_if_fixed(TOP, ZGate().to_matrix()) is None


class TestBlochTuples:
    @pytest.mark.parametrize("state", [Z0, O1, P, M, L, R])
    def test_roundtrip(self, state):
        theta, phi = bloch_tuple_of_basis_state(state)
        assert basis_state_of_bloch_tuple(theta, phi) is state

    def test_non_basis_tuple_is_top(self):
        assert basis_state_of_bloch_tuple(0.3, 0.4) is TOP

    @pytest.mark.parametrize("state", [Z0, O1, P, M, L, R])
    def test_tuple_matches_statevector(self, state):
        theta, phi = bloch_tuple_of_basis_state(state)
        vector = np.array(
            [math.cos(theta / 2), np.exp(1j * phi) * math.sin(theta / 2)]
        )
        overlap = abs(np.vdot(vector, statevector_of_basis_state(state)))
        assert abs(overlap - 1) < 1e-9


class TestPreparations:
    @pytest.mark.parametrize("state", [Z0, O1, P, M, L, R])
    def test_prepares_from_zero(self, state):
        prep = preparation_matrices(state)
        produced = prep @ np.array([1, 0], dtype=complex)
        overlap = abs(np.vdot(statevector_of_basis_state(state), produced))
        assert abs(overlap - 1) < 1e-9
