"""Tests for the QPO pass: Eqs. 5, 6, 9 and Sec. V-D block preparation."""

import numpy as np

from repro.circuit import QuantumCircuit
from repro.rpo import QPOPass
from repro.transpiler.passmanager import PropertySet

from tests.helpers import assert_functionally_equivalent


def run_qpo(circuit, blocks=False):
    return QPOPass(optimize_blocks=blocks).run(circuit, PropertySet())


def entangle(circuit, qubit, helper):
    circuit.h(qubit)
    circuit.t(qubit)
    circuit.cx(qubit, helper)


class TestEq5SwapOneKnown:
    def test_pure_state_swap_becomes_swapz(self):
        circuit = QuantumCircuit(3)
        circuit.u3(0.7, 0.3, 0.0, 0)  # known pure state
        entangle(circuit, 1, 2)
        circuit.swap(0, 1)
        out = run_qpo(circuit)
        assert out.count_ops().get("swap", 0) == 0
        assert out.count_ops().get("swapz", 0) == 1
        assert_functionally_equivalent(circuit, out)

    def test_zero_state_needs_no_brackets(self):
        circuit = QuantumCircuit(3)
        entangle(circuit, 1, 2)
        circuit.swap(0, 1)  # qubit 0 still |0>
        out = run_qpo(circuit)
        assert out.count_ops().get("swapz", 0) == 1
        # no bracket gates required for |0>
        names = [inst.operation.name for inst in out.data]
        assert "unitary" not in names

    def test_cnot_saving(self):
        circuit = QuantumCircuit(3)
        circuit.u3(1.1, -0.4, 0.0, 0)
        entangle(circuit, 1, 2)
        circuit.swap(0, 1)
        out = run_qpo(circuit)
        cost = lambda c: sum(  # noqa: E731
            {"cx": 1, "swap": 3, "swapz": 2}.get(n, 0) * v
            for n, v in c.count_ops().items()
        )
        assert cost(out) == cost(circuit) - 1  # Eq. 5 saves one CNOT


class TestEq6SwapBothKnown:
    def test_becomes_two_1q_gates(self):
        circuit = QuantumCircuit(2)
        circuit.u3(0.7, 0.3, 0.0, 0)
        circuit.u3(1.9, -0.8, 0.0, 1)
        circuit.swap(0, 1)
        out = run_qpo(circuit)
        assert out.num_nonlocal_gates() == 0
        assert_functionally_equivalent(circuit, out)

    def test_identical_states_swap_removed(self):
        circuit = QuantumCircuit(2)
        circuit.u3(0.7, 0.3, 0.0, 0)
        circuit.u3(0.7, 0.3, 0.0, 1)
        circuit.swap(0, 1)
        out = run_qpo(circuit)
        assert out.num_nonlocal_gates() == 0
        assert_functionally_equivalent(circuit, out)


class TestStabilizedGates:
    def test_1q_gate_fixing_state_removed(self):
        circuit = QuantumCircuit(1)
        circuit.h(0)          # |+>
        circuit.rx(0.9, 0)    # X rotation fixes |+> up to phase
        out = run_qpo(circuit)
        assert out.count_ops() == {"h": 1}
        assert_functionally_equivalent(circuit, out)

    def test_unknown_state_gate_kept(self):
        circuit = QuantumCircuit(3)
        entangle(circuit, 0, 2)
        circuit.rx(0.9, 0)
        out = run_qpo(circuit)
        assert out.count_ops().get("rx", 0) == 1


class TestBasisRecognition:
    def test_cx_with_pure_zero_control_removed(self):
        circuit = QuantumCircuit(3)
        circuit.u3(0.4, 0.0, 0.0, 0)
        circuit.u3(-0.4, 0.0, 0.0, 0)  # returns to |0> after fusion effect
        entangle(circuit, 1, 2)
        circuit.cx(0, 1)
        out = run_qpo(circuit)
        assert out.count_ops().get("cx", 0) == 1  # entangler only
        assert_functionally_equivalent(circuit, out)

    def test_cx_minus_target_gives_z(self):
        circuit = QuantumCircuit(3)
        entangle(circuit, 0, 2)
        circuit.x(1)
        circuit.h(1)  # |->
        circuit.cx(0, 1)
        out = run_qpo(circuit)
        assert out.count_ops().get("cx", 0) == 1  # entangler only
        assert out.count_ops().get("z", 0) == 1
        assert_functionally_equivalent(circuit, out)


class TestEq9Fredkin:
    def test_two_known_targets_become_controlled_u(self):
        circuit = QuantumCircuit(3)
        circuit.h(0)
        circuit.u3(0.7, 0.3, 0.0, 1)
        circuit.u3(1.1, -0.4, 0.0, 2)
        circuit.cswap(0, 1, 2)
        out = run_qpo(circuit)
        assert out.count_ops().get("cswap", 0) == 0
        names = set(out.count_ops())
        assert "cu" in names and "cu_dg" in names
        assert_functionally_equivalent(circuit, out)

    def test_control_zero_removed(self):
        circuit = QuantumCircuit(5)
        entangle(circuit, 1, 3)
        entangle(circuit, 2, 4)
        circuit.cswap(0, 1, 2)
        out = run_qpo(circuit)
        assert out.count_ops().get("cswap", 0) == 0
        assert_functionally_equivalent(circuit, out)

    def test_unknown_everything_kept(self):
        circuit = QuantumCircuit(6)
        entangle(circuit, 0, 3)
        entangle(circuit, 1, 4)
        entangle(circuit, 2, 5)
        circuit.cswap(0, 1, 2)
        out = run_qpo(circuit)
        assert out.count_ops().get("cswap", 0) == 1


class TestBlockPreparation:
    def test_known_inputs_block_collapses_to_one_cx(self):
        circuit = QuantumCircuit(2)
        circuit.u3(0.4, 0.2, 0.1, 0)
        circuit.cx(0, 1)
        circuit.u3(1.0, 0.5, -0.3, 1)
        circuit.cx(1, 0)
        circuit.u3(0.2, 0.0, 0.9, 0)
        circuit.cx(0, 1)
        out = run_qpo(circuit, blocks=True)
        assert out.count_ops().get("cx", 0) <= 1
        assert_functionally_equivalent(circuit, out)

    def test_disabled_by_default(self):
        circuit = QuantumCircuit(2)
        circuit.u3(0.4, 0.2, 0.1, 0)  # known but non-basis: phase-1 silent
        circuit.cx(0, 1)
        circuit.u3(1.0, 0.5, -0.3, 1)
        circuit.cx(1, 0)
        circuit.u3(0.3, 0.1, 0.2, 0)
        circuit.cx(0, 1)
        out = run_qpo(circuit, blocks=False)
        assert out.count_ops().get("cx", 0) == 3

    def test_unknown_inputs_block_untouched(self):
        circuit = QuantumCircuit(4)
        entangle(circuit, 0, 2)
        entangle(circuit, 1, 3)
        circuit.cx(0, 1)
        circuit.u3(1.0, 0.5, -0.3, 1)
        circuit.cx(0, 1)
        out = run_qpo(circuit, blocks=True)
        assert out.count_ops().get("cx", 0) == 4  # 2 entanglers + block

    def test_product_output_keeps_states_tracked(self):
        # block output is a product state: a following swap still optimizes
        circuit = QuantumCircuit(2)
        circuit.u3(0.4, 0.2, 0.0, 0)
        circuit.cx(0, 1)
        circuit.cx(0, 1)  # identity block: output = input (product)
        circuit.swap(0, 1)
        out = run_qpo(circuit, blocks=True)
        assert out.num_nonlocal_gates() == 0
        assert_functionally_equivalent(circuit, out)


class TestAnnotations:
    def test_annotation_enables_pure_rules(self):
        circuit = QuantumCircuit(3)
        entangle(circuit, 0, 2)
        circuit.annotate(0, 0.7, 0.3)  # promise a pure state
        entangle(circuit, 1, 2)
        circuit.swap(0, 1)
        out = run_qpo(circuit)
        assert out.count_ops().get("swapz", 0) == 1
