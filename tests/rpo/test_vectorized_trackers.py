"""Scalar/vectorized equivalence for the stacked analysis core.

The stacked trackers, the vectorized Hoare support transformers, and the
RPO passes driving them all keep the original scalar paths alive as
parity references (``vectorized=False`` / ``REPRO_SCALAR_TRACKERS=1``).
These tests drive both implementations over the same random traces and
require agreement: basis-tracker states bit-identical (the column-pick
kernels add the same zero terms the scalar matmul does), pure-tracker
tuples within ``1e-12``, Hoare outputs byte-for-byte identical (integer
bit arithmetic is exact on both paths), and QBO/QPO emitting the same
circuit no matter which tracker implementation runs underneath.
"""

from __future__ import annotations

import os

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gates.matrices import standard_gate_matrix
from repro.linalg.euler import u3_matrix
from repro.linalg.random import as_rng
from repro.rpo import QBOPass, QPOPass
from repro.rpo.basis_tracker import BasisStateTracker
from repro.rpo.hoare import HoareOptimizer
from repro.rpo.pure_tracker import PureStateTracker
from repro.rpo.vectorization import SCALAR_ENV_VAR, vectorized_default
from repro.transpiler.passmanager import PropertySet
from tests.helpers import random_circuit

seeds = st.integers(min_value=0, max_value=10_000)

_GATE_NAMES = ["h", "x", "y", "z", "s", "sdg", "t", "tdg"]


def random_trace(num_qubits: int, rounds: int, seed: int):
    """Per-round (qubits, matrices) bulk-apply layers plus scattered
    reset/measure events, exercising known and TOP lanes together."""
    rng = as_rng(seed)
    layers = []
    for _ in range(rounds):
        count = int(rng.integers(1, num_qubits + 1))
        qubits = rng.choice(num_qubits, size=count, replace=False)
        matrices = []
        for _ in range(count):
            if rng.random() < 0.5:
                matrices.append(standard_gate_matrix(
                    _GATE_NAMES[int(rng.integers(len(_GATE_NAMES)))]
                ))
            else:
                theta, phi, lam = rng.uniform(0, 2 * np.pi, 3)
                matrices.append(u3_matrix(theta, phi, lam))
        event = None
        if rng.random() < 0.2:
            kind = "reset" if rng.random() < 0.5 else "measure"
            event = (kind, int(rng.integers(num_qubits)))
        layers.append((qubits, np.stack(matrices), event))
    return layers


def drive(tracker, layers):
    for qubits, matrices, event in layers:
        tracker.apply_1q_gates(qubits, matrices)
        if event is not None:
            kind, qubit = event
            if kind == "reset":
                tracker.apply_reset(qubit)
            else:
                tracker.apply_measure(qubit)
    return tracker


class TestBasisTrackerEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(seed=seeds, num_qubits=st.integers(1, 8))
    def test_bulk_matches_scalar_bitwise(self, seed, num_qubits):
        layers = random_trace(num_qubits, 20, seed)
        scalar = drive(BasisStateTracker(num_qubits, vectorized=False), layers)
        stacked = drive(BasisStateTracker(num_qubits, vectorized=True), layers)
        assert np.array_equal(scalar.axes, stacked.axes)
        assert np.array_equal(scalar.signs, stacked.signs)
        assert scalar.states == stacked.states


class TestPureTrackerEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(seed=seeds, num_qubits=st.integers(1, 8))
    def test_bulk_matches_scalar_within_tolerance(self, seed, num_qubits):
        layers = random_trace(num_qubits, 20, seed)
        scalar = drive(PureStateTracker(num_qubits, vectorized=False), layers)
        stacked = drive(PureStateTracker(num_qubits, vectorized=True), layers)
        assert np.array_equal(scalar.known, stacked.known)
        known = scalar.known
        if known.any():
            assert np.abs(scalar.tuples[known] - stacked.tuples[known]).max() <= 1e-12


def circuit_fingerprint(circuit):
    """Byte-for-byte comparable rendering of a circuit."""
    return (
        circuit.global_phase,
        [
            (
                instruction.operation.name,
                tuple(float(p) for p in instruction.operation.params),
                tuple(instruction.qubits),
                tuple(instruction.clbits),
            )
            for instruction in circuit.data
        ],
    )


class TestHoareEquivalence:
    @settings(max_examples=15, deadline=None)
    @given(
        seed=seeds,
        num_qubits=st.integers(2, 5),
        max_support=st.sampled_from([4, 64, 4096]),
    )
    def test_vectorized_output_identical(self, seed, num_qubits, max_support):
        circuit = random_circuit(num_qubits, 30, seed=seed)
        scalar = HoareOptimizer(
            max_support=max_support, vectorized=False
        ).transform(circuit, PropertySet())
        vectorized = HoareOptimizer(
            max_support=max_support, vectorized=True
        ).transform(circuit, PropertySet())
        assert circuit_fingerprint(scalar) == circuit_fingerprint(vectorized)

    def test_grover_structure_identical(self):
        from repro.algorithms import grover_circuit

        circuit = grover_circuit(6, design="noancilla")
        scalar = HoareOptimizer(max_support=1 << 14, vectorized=False).transform(
            circuit, PropertySet()
        )
        vectorized = HoareOptimizer(max_support=1 << 14, vectorized=True).transform(
            circuit, PropertySet()
        )
        assert circuit_fingerprint(scalar) == circuit_fingerprint(vectorized)


class TestPassTrackerIndependence:
    """The tracker implementation is an internal detail: the circuits the
    RPO passes emit must not depend on it."""

    @settings(max_examples=10, deadline=None)
    @given(seed=seeds)
    def test_qbo_output_identical(self, seed):
        circuit = random_circuit(4, 25, seed=seed)
        saved = os.environ.pop(SCALAR_ENV_VAR, None)
        try:
            os.environ[SCALAR_ENV_VAR] = "1"
            scalar = QBOPass().run(circuit, PropertySet())
            del os.environ[SCALAR_ENV_VAR]
            vectorized = QBOPass().run(circuit, PropertySet())
        finally:
            os.environ.pop(SCALAR_ENV_VAR, None)
            if saved is not None:
                os.environ[SCALAR_ENV_VAR] = saved
        assert circuit_fingerprint(scalar) == circuit_fingerprint(vectorized)

    @settings(max_examples=10, deadline=None)
    @given(seed=seeds)
    def test_qpo_output_identical(self, seed):
        circuit = random_circuit(4, 25, seed=seed)
        saved = os.environ.pop(SCALAR_ENV_VAR, None)
        try:
            os.environ[SCALAR_ENV_VAR] = "1"
            scalar = QPOPass().run(circuit, PropertySet())
            del os.environ[SCALAR_ENV_VAR]
            vectorized = QPOPass().run(circuit, PropertySet())
        finally:
            os.environ.pop(SCALAR_ENV_VAR, None)
            if saved is not None:
                os.environ[SCALAR_ENV_VAR] = saved
        assert circuit_fingerprint(scalar) == circuit_fingerprint(vectorized)

    def test_env_var_controls_default(self, monkeypatch):
        monkeypatch.delenv(SCALAR_ENV_VAR, raising=False)
        assert vectorized_default() is True
        monkeypatch.setenv(SCALAR_ENV_VAR, "1")
        assert vectorized_default() is False
        monkeypatch.setenv(SCALAR_ENV_VAR, "0")
        assert vectorized_default() is True
