"""Per-rule tests for repro-lint (positive and negative fixtures)."""

import textwrap

from repro.analysis import lint
from repro.analysis.lint import lint_source


SIM_PATH = "src/repro/simulators/statevector.py"
SERVICE_PATH = "src/repro/transpiler/service.py"
PASSES_PATH = "src/repro/transpiler/passes/custom.py"


def findings(source, path, select=None):
    return lint_source(textwrap.dedent(source), path, select)


def rule_ids(source, path, select=None):
    return [f.rule for f in findings(source, path, select)]


class TestRES001:
    def test_raw_numpy_in_function_body_flagged(self):
        src = """
        import numpy as np
        def evolve(state):
            return np.kron(state, state)
        """
        found = findings(src, SIM_PATH)
        assert [f.rule for f in found] == ["RES001"]
        assert "np.kron" in found[0].message

    def test_np_linalg_flagged(self):
        src = """
        import numpy as np
        def norm(state):
            return np.linalg.norm(state)
        """
        assert rule_ids(src, SIM_PATH) == ["RES001"]

    def test_module_level_constant_allowed(self):
        src = """
        import numpy as np
        PAULI_X = np.kron(np.eye(1), np.eye(2))
        """
        assert rule_ids(src, SIM_PATH) == []

    def test_benign_numpy_calls_allowed(self):
        src = """
        import numpy as np
        def order(axes):
            return np.argsort(axes).tolist()
        """
        assert rule_ids(src, SIM_PATH) == []

    def test_out_of_scope_module_ignored(self):
        src = """
        import numpy as np
        def evolve(state):
            return np.kron(state, state)
        """
        assert rule_ids(src, "src/repro/rpo/qbo.py") == []

    def test_pragma_suppresses(self):
        src = """
        import numpy as np
        def evolve(state):
            return np.kron(state, state)  # repro-lint: ignore[RES001]
        """
        assert rule_ids(src, SIM_PATH) == []


class TestPAS001:
    def test_transformation_pass_missing_metadata_flagged(self):
        src = """
        from repro.transpiler.passmanager import TransformationPass
        class MyPass(TransformationPass):
            def transform(self, circuit, props):
                return circuit
        """
        found = findings(src, PASSES_PATH)
        assert [f.rule for f in found] == ["PAS001"]
        assert "requires" in found[0].message

    def test_partial_metadata_still_flagged(self):
        src = """
        from repro.transpiler.passmanager import TransformationPass
        class MyPass(TransformationPass):
            requires = ()
            preserves = ("size",)
            def transform(self, circuit, props):
                return circuit
        """
        found = findings(src, PASSES_PATH)
        assert [f.rule for f in found] == ["PAS001"]
        assert "invalidates" in found[0].message
        assert "requires" not in found[0].message

    def test_fully_declared_transformation_clean(self):
        src = """
        from repro.transpiler.passmanager import TransformationPass
        class MyPass(TransformationPass):
            requires = ()
            preserves = ()
            invalidates = ()
            def transform(self, circuit, props):
                return circuit
        """
        assert rule_ids(src, PASSES_PATH) == []

    def test_analysis_pass_needs_provides(self):
        src = """
        from repro.transpiler.passmanager import AnalysisPass
        class MyAnalysis(AnalysisPass):
            def analyze(self, circuit, props):
                props["thing"] = 1
        """
        found = findings(src, PASSES_PATH)
        assert [f.rule for f in found] == ["PAS001"]
        assert "provides" in found[0].message

    def test_analysis_pass_with_provides_clean(self):
        src = """
        from repro.transpiler.passmanager import AnalysisPass
        class MyAnalysis(AnalysisPass):
            provides = ("thing",)
            def analyze(self, circuit, props):
                props["thing"] = 1
        """
        assert rule_ids(src, PASSES_PATH) == []

    def test_unrelated_class_ignored(self):
        src = """
        class Helper:
            pass
        """
        assert rule_ids(src, PASSES_PATH) == []


class TestPCK001:
    def test_boundary_class_with_lock_and_no_hook_flagged(self):
        src = """
        import threading
        class AnalysisCache:
            def __init__(self):
                self._lock = threading.RLock()
        """
        found = findings(src, SERVICE_PATH)
        assert [f.rule for f in found] == ["PCK001"]
        assert "unpicklable" in found[0].message

    def test_boundary_class_with_getstate_clean(self):
        src = """
        import threading
        class AnalysisCache:
            def __init__(self):
                self._lock = threading.RLock()
            def __getstate__(self):
                state = dict(self.__dict__)
                state.pop("_lock")
                return state
        """
        assert rule_ids(src, SERVICE_PATH) == []

    def test_boundary_class_with_reduce_clean(self):
        src = """
        class ContractViolation(Exception):
            def __reduce__(self):
                return (ContractViolation, self.args)
        """
        assert rule_ids(src, SERVICE_PATH) == []

    def test_registered_picklable_plain_class_clean(self):
        src = """
        class PassMetrics:
            name = ""
        """
        assert rule_ids(src, SERVICE_PATH) == []

    def test_unregistered_boundary_class_flagged(self):
        # Target is boundary-registered but not registered picklable-as-is
        src = """
        class Target:
            pass
        """
        found = findings(src, SERVICE_PATH)
        assert [f.rule for f in found] == ["PCK001"]
        assert "registered" in found[0].message

    def test_non_boundary_class_with_lock_ignored(self):
        src = """
        import threading
        class CompileService:
            def __init__(self):
                self._lock = threading.RLock()
        """
        assert rule_ids(src, SERVICE_PATH) == []


class TestDET001:
    def test_time_in_fingerprint_flagged(self):
        src = """
        import time
        def job_fingerprint(payload):
            return hash((payload, time.time()))
        """
        found = findings(src, SERVICE_PATH)
        assert [f.rule for f in found] == ["DET001"]
        assert "time.time" in found[0].message

    def test_random_in_cache_key_flagged(self):
        src = """
        import random
        def make_cache_key(job):
            return (job, random.random())
        """
        assert rule_ids(src, SERVICE_PATH) == ["DET001"]

    def test_uuid4_and_numpy_random_flagged(self):
        src = """
        import uuid
        import numpy as np
        def entry_key(job):
            return (uuid.uuid4(), np.random.rand())
        """
        assert rule_ids(src, SERVICE_PATH) == ["DET001", "DET001"]

    def test_from_import_detected(self):
        src = """
        from time import perf_counter
        def digest_of(job):
            return (job, perf_counter())
        """
        assert rule_ids(src, SERVICE_PATH) == ["DET001"]

    def test_datetime_now_flagged(self):
        src = """
        import datetime
        def snapshot_fingerprint(job):
            return (job, datetime.datetime.now())
        """
        assert rule_ids(src, SERVICE_PATH) == ["DET001"]

    def test_clock_outside_key_producer_allowed(self):
        src = """
        import time
        def run_pass(p):
            start = time.perf_counter()
            return time.perf_counter() - start
        """
        assert rule_ids(src, SERVICE_PATH) == []

    def test_deterministic_fingerprint_clean(self):
        src = """
        import hashlib
        def job_fingerprint(payload):
            return hashlib.sha256(repr(payload).encode()).hexdigest()
        """
        assert rule_ids(src, SERVICE_PATH) == []


class TestLCK001:
    def test_unlocked_mutation_flagged(self):
        src = """
        _MEMO = {}
        def remember(key, value):
            _MEMO[key] = value
        """
        found = findings(src, SERVICE_PATH)
        assert [f.rule for f in found] == ["LCK001"]
        assert "_MEMO" in found[0].message

    def test_mutation_under_lock_clean(self):
        src = """
        import threading
        _MEMO = {}
        _LOCK = threading.Lock()
        def remember(key, value):
            with _LOCK:
                _MEMO[key] = value
        """
        assert rule_ids(src, SERVICE_PATH) == []

    def test_method_mutators_detected(self):
        src = """
        _SEEN = set()
        def note(item):
            _SEEN.add(item)
        """
        assert rule_ids(src, SERVICE_PATH) == ["LCK001"]

    def test_nested_function_does_not_inherit_lock(self):
        src = """
        import threading
        _ITEMS = []
        _LOCK = threading.Lock()
        def outer():
            with _LOCK:
                def callback():
                    _ITEMS.append(1)
                return callback
        """
        assert rule_ids(src, SERVICE_PATH) == ["LCK001"]

    def test_lock_inside_conditional_respected(self):
        src = """
        import threading
        _MEMO = {}
        _LOCK = threading.Lock()
        def remember(key, value):
            if key is not None:
                with _LOCK:
                    _MEMO[key] = value
        """
        assert rule_ids(src, SERVICE_PATH) == []

    def test_conditional_mutation_flagged_once(self):
        src = """
        _MEMO = {}
        def remember(key, value):
            if key is not None:
                _MEMO[key] = value
        """
        assert rule_ids(src, SERVICE_PATH) == ["LCK001"]

    def test_module_level_mutation_allowed(self):
        # import-time registration is single-threaded
        src = """
        _REGISTRY = {}
        _REGISTRY["default"] = object()
        """
        assert rule_ids(src, SERVICE_PATH) == []

    def test_out_of_scope_module_ignored(self):
        src = """
        _MEMO = {}
        def remember(key, value):
            _MEMO[key] = value
        """
        assert rule_ids(src, "src/repro/rpo/qbo.py") == []

    def test_immutable_module_constant_ignored(self):
        src = """
        _NAMES = ("a", "b")
        _ACTIVE = None
        def use():
            return _NAMES, _ACTIVE
        """
        assert rule_ids(src, SERVICE_PATH) == []


class TestDriver:
    def test_skip_file_pragma(self):
        src = """\
        # repro-lint: skip-file
        _MEMO = {}
        def remember(key, value):
            _MEMO[key] = value
        """
        assert rule_ids(src, SERVICE_PATH) == []

    def test_select_filters_rules(self):
        src = """
        import numpy as np
        _MEMO = {}
        def cache_key_and_evolve(state):
            _MEMO[0] = np.kron(state, state)
        """
        assert rule_ids(src, SIM_PATH, select={"RES001"}) == ["RES001"]

    def test_multi_rule_pragma(self):
        src = """
        import numpy as np
        def evolve(state):
            return np.kron(state, state)  # repro-lint: ignore[RES001, DET001]
        """
        assert rule_ids(src, SIM_PATH) == []

    def test_findings_sorted_and_rendered(self):
        src = """
        import numpy as np
        def a(state):
            return np.kron(state, state)
        def b(state):
            return np.outer(state, state)
        """
        found = findings(src, SIM_PATH)
        assert [f.line for f in found] == sorted(f.line for f in found)
        rendered = found[0].render()
        assert SIM_PATH in rendered and "RES001" in rendered

    def test_cli_exit_codes(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        assert lint.main([str(clean)]) == 0
        dirty = tmp_path / "repro" / "transpiler"
        dirty.mkdir(parents=True)
        bad = dirty / "service.py"
        bad.write_text("_MEMO = {}\ndef f(k):\n    _MEMO[k] = 1\n")
        assert lint.main([str(bad)]) == 1
        out = capsys.readouterr().out
        assert "LCK001" in out

    def test_cli_list_rules(self, capsys):
        assert lint.main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("RES001", "PAS001", "PCK001", "DET001", "LCK001"):
            assert rule_id in out

    def test_syntax_error_reported_not_raised(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def f(:\n")
        result = lint.lint_paths([str(bad)])
        assert [f.rule for f in result] == ["E999"]
