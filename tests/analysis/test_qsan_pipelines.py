"""Property tests: every shipped pipeline survives full QSAN validation.

Random circuits go through preset levels 0-3, the paper's RPO pipelines
and the Hoare baseline with ``validate="full"`` -- every transformation
pass must preserve semantics under its declared equivalence contract and
keep its metadata honest, or the run raises :class:`ContractViolation`.
"""

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.circuit import QuantumCircuit
from repro.transpiler import transpile

_GATES_1Q = ("h", "x", "y", "z", "s", "sdg", "t", "tdg")
_GATES_2Q = ("cx", "cz", "swap")


@st.composite
def circuits(draw, max_qubits=4, max_ops=14):
    num_qubits = draw(st.integers(min_value=2, max_value=max_qubits))
    circuit = QuantumCircuit(num_qubits, num_qubits)
    for _ in range(draw(st.integers(min_value=0, max_value=max_ops))):
        kind = draw(st.sampled_from(("1q", "2q", "rot")))
        qubit = draw(st.integers(min_value=0, max_value=num_qubits - 1))
        if kind == "1q":
            getattr(circuit, draw(st.sampled_from(_GATES_1Q)))(qubit)
        elif kind == "rot":
            angle = draw(
                st.floats(
                    min_value=0.0,
                    max_value=2 * math.pi,
                    allow_nan=False,
                    allow_infinity=False,
                )
            )
            getattr(circuit, draw(st.sampled_from(("rx", "ry", "rz"))))(angle, qubit)
        else:
            other = draw(
                st.integers(min_value=0, max_value=num_qubits - 2).map(
                    lambda q, qubit=qubit: q if q < qubit else q + 1
                )
            )
            getattr(circuit, draw(st.sampled_from(_GATES_2Q)))(qubit, other)
    if draw(st.booleans()):
        for qubit in range(num_qubits):
            circuit.measure(qubit, qubit)
    return circuit


_SETTINGS = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@pytest.mark.parametrize("level", [0, 1, 2, 3])
@given(circuit=circuits())
@_SETTINGS
def test_preset_levels_pass_full_validation(level, circuit):
    result = transpile(
        circuit,
        target="linear:5",
        optimization_level=level,
        validate="full",
        full_result=True,
    )
    assert result.violations == []


@pytest.mark.parametrize("pipeline", ["rpo", "rpo_ext", "hoare"])
@given(circuit=circuits())
@_SETTINGS
def test_paper_pipelines_pass_full_validation(pipeline, circuit):
    result = transpile(
        circuit, pipeline=pipeline, validate="full", full_result=True
    )
    assert result.violations == []


@given(circuit=circuits(max_qubits=3, max_ops=10))
@_SETTINGS
def test_env_variable_enables_validation(circuit):
    import os
    from unittest import mock

    with mock.patch.dict(os.environ, {"REPRO_QSAN": "1"}):
        result = transpile(
            circuit, target="linear:4", optimization_level=2, full_result=True
        )
    assert result.violations == []


def test_annotated_rpo_circuit_validates():
    """ANNOT-bearing circuits take the fingerprint tier and stay clean."""
    circuit = QuantumCircuit(3)
    circuit.h(0)
    circuit.annotate_zero(1)  # promise: qubit 1 is |0>
    circuit.cx(1, 2)
    result = transpile(circuit, pipeline="rpo", validate="full", full_result=True)
    assert result.violations == []
