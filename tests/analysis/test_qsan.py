"""Tests for the QSAN translation-validation sanitizer."""

import pickle

import pytest

from repro.analysis.qsan import ContractViolation, QsanConfig, QsanValidator
from repro.circuit import QuantumCircuit
from repro.transpiler import PassManager, TranspilerError
from repro.transpiler.passmanager import AnalysisPass, TransformationPass
from repro.transpiler.passes import Size


class LyingPreserves(TransformationPass):
    """Deliberately lies: drops a gate while claiming to preserve size."""

    requires = ()
    preserves = ("size",)
    invalidates = ()

    def transform(self, circuit, props):
        out = circuit.copy_empty_like()
        for instruction in circuit.data[:-1]:
            out.append(instruction.operation, instruction.qubits, instruction.clbits)
        return out


class SneakyWrite(TransformationPass):
    """Writes a property it never declared; leaves the circuit alone."""

    requires = ()
    preserves = "all"
    invalidates = ()

    def transform(self, circuit, props):
        props["sneaky"] = 1
        return circuit


class SneakyClobber(TransformationPass):
    """Overwrites someone else's analysis without declaring it."""

    requires = ()
    preserves = "all"
    invalidates = ()

    def transform(self, circuit, props):
        props["size"] = 9999
        return circuit


class MutatingAnalysis(AnalysisPass):
    """An analysis pass that illegally rewrites the circuit."""

    provides = ("bogus",)

    def analyze(self, circuit, props):
        props["bogus"] = True

    def run(self, circuit, props):
        self.analyze(circuit, props)
        out = circuit.copy()
        out.x(0)
        return out


class BrokenOptimizer(TransformationPass):
    """Replaces every X with a Z -- semantically wrong."""

    requires = ()
    preserves = ()
    invalidates = ()

    def transform(self, circuit, props):
        out = circuit.copy_empty_like()
        for instruction in circuit.data:
            if instruction.operation.name == "x":
                out.z(instruction.qubits[0])
            else:
                out.append(
                    instruction.operation, instruction.qubits, instruction.clbits
                )
        return out


class HonestNoop(TransformationPass):
    requires = ()
    preserves = "all"
    invalidates = ()

    def transform(self, circuit, props):
        return circuit


def _bell():
    circuit = QuantumCircuit(2)
    circuit.h(0)
    circuit.cx(0, 1)
    return circuit


class TestContractAudit:
    def test_lying_preserves_is_caught(self):
        """Acceptance: a seeded deliberately-lying pass is caught."""
        circuit = _bell()
        pm = PassManager([Size(), LyingPreserves()])
        with pytest.raises(ContractViolation) as excinfo:
            pm.run_with_result(circuit, validate="contracts")
        violation = excinfo.value
        assert violation.kind == "false-preserves"
        assert violation.pass_name == "LyingPreserves"
        assert violation.property_name == "size"
        assert violation.diff is not None

    def test_lying_preserves_caught_in_full_mode_too(self):
        pm = PassManager([Size(), LyingPreserves()])
        with pytest.raises(ContractViolation):
            pm.run_with_result(_bell(), validate="full")

    def test_undeclared_write_is_caught(self):
        pm = PassManager([SneakyWrite()])
        with pytest.raises(ContractViolation) as excinfo:
            pm.run_with_result(_bell(), validate="contracts")
        assert excinfo.value.kind == "undeclared-write"
        assert excinfo.value.property_name == "sneaky"

    def test_undeclared_clobber_is_caught(self):
        pm = PassManager([Size(), SneakyClobber()])
        with pytest.raises(ContractViolation) as excinfo:
            pm.run_with_result(_bell(), validate="contracts")
        assert excinfo.value.kind == "undeclared-clobber"
        assert excinfo.value.property_name == "size"

    def test_mutating_analysis_is_caught(self):
        pm = PassManager([MutatingAnalysis()])
        with pytest.raises(ContractViolation) as excinfo:
            pm.run_with_result(_bell(), validate="contracts")
        assert excinfo.value.kind == "analysis-mutation"

    def test_honest_pipeline_is_clean(self):
        pm = PassManager([Size(), HonestNoop(), Size()])
        result = pm.run_with_result(_bell(), validate="full")
        assert result.violations == []
        assert all(m.violations == 0 for m in result.metrics)


class TestEquivalence:
    def test_broken_optimizer_is_caught(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.x(1)
        circuit.cx(0, 1)
        pm = PassManager([BrokenOptimizer()])
        with pytest.raises(ContractViolation) as excinfo:
            pm.run_with_result(circuit, validate="full")
        assert excinfo.value.kind == "equivalence"
        assert excinfo.value.pass_name == "BrokenOptimizer"
        assert excinfo.value.diff is not None

    def test_contracts_mode_skips_equivalence(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.x(1)
        pm = PassManager([BrokenOptimizer()])
        result = pm.run_with_result(circuit, validate="contracts")
        assert result.violations == []

    def test_broken_optimizer_caught_with_measurements(self):
        circuit = QuantumCircuit(2, 2)
        circuit.x(0)
        circuit.cx(0, 1)
        circuit.measure(0, 0)
        circuit.measure(1, 1)
        pm = PassManager([BrokenOptimizer()])
        with pytest.raises(ContractViolation):
            pm.run_with_result(circuit, validate="full")


class TestReporting:
    def test_report_mode_collects_instead_of_raising(self, monkeypatch):
        monkeypatch.setenv("REPRO_QSAN_REPORT", "1")
        pm = PassManager([Size(), LyingPreserves(), SneakyWrite()])
        result = pm.run_with_result(_bell(), validate="contracts")
        kinds = sorted(v.kind for v in result.violations)
        assert kinds == ["false-preserves", "undeclared-write"]
        per_pass = {m.name: m.violations for m in result.metrics}
        assert per_pass["LyingPreserves"] == 1
        assert per_pass["SneakyWrite"] == 1
        assert per_pass["Size"] == 0

    def test_violation_pickle_round_trip(self):
        original = ContractViolation(
            "pass P broke its contract",
            kind="false-preserves",
            pass_name="P",
            property_name="size",
            diff="- x @ 0",
        )
        clone = pickle.loads(pickle.dumps(original))
        assert isinstance(clone, ContractViolation)
        assert clone.args == original.args
        assert clone.kind == "false-preserves"
        assert clone.pass_name == "P"
        assert clone.property_name == "size"
        assert clone.diff == "- x @ 0"


class TestConfigResolution:
    def test_env_aliases(self, monkeypatch):
        for raw, mode in [("1", "full"), ("full", "full"), ("contracts", "contracts"),
                          ("0", "off"), ("off", "off"), ("", "off")]:
            monkeypatch.setenv("REPRO_QSAN", raw)
            assert QsanConfig.resolve().mode == mode

    def test_explicit_mode_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_QSAN", "full")
        assert QsanConfig.resolve("off").mode == "off"

    def test_unset_env_is_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_QSAN", raising=False)
        config = QsanConfig.resolve()
        assert config.mode == "off"
        assert not config.enabled

    def test_bad_mode_raises(self):
        with pytest.raises(TranspilerError, match="unrecognized QSAN mode"):
            QsanConfig.resolve("sometimes")

    def test_caps_read_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_QSAN", "full")
        monkeypatch.setenv("REPRO_QSAN_UNITARY_CAP", "4")
        monkeypatch.setenv("REPRO_QSAN_STATE_CAP", "6")
        config = QsanConfig.resolve()
        assert config.unitary_cap == 4
        assert config.state_cap == 6

    def test_env_enables_sanitizer_end_to_end(self, monkeypatch):
        monkeypatch.setenv("REPRO_QSAN", "contracts")
        pm = PassManager([SneakyWrite()])
        with pytest.raises(ContractViolation):
            pm.run_with_result(_bell())

    def test_validator_memo_prunes_to_live_circuit(self):
        validator = QsanValidator(QsanConfig(mode="full"))
        pm_passes = [HonestNoop(), BrokenOptimizer()]
        circuit = _bell()
        # drive check_pass directly: after two passes only the last
        # output's semantic reference may remain cached
        out = circuit.copy()
        validator.check_pass(
            pm_passes[0], circuit, out, {},
            snapshot={}, written=set(), valid_before=set(), changed=False,
        )
        assert len(validator._memo) <= 1
