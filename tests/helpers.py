"""Shared test utilities.

The central notion is *functional equivalence* (the paper's correctness
contract for RPO, Sec. I): two circuits are equivalent when they produce the
same state from |0...0> -- or, for measured circuits, the same exact
distribution over classical bits.  Unitary-preserving passes are held to the
stricter full-matrix equality.
"""

from __future__ import annotations

import numpy as np

from repro.circuit import QuantumCircuit
from repro.linalg.random import as_rng
from repro.simulators import circuit_unitary, simulate_statevector

ATOL = 1e-8


def strip_measurements(circuit: QuantumCircuit) -> tuple[QuantumCircuit, list]:
    """Drop terminal measurements; return (circuit, [(qubit, clbit), ...])."""
    stripped = circuit.copy_empty_like()
    measures = []
    for instruction in circuit.data:
        if instruction.operation.name == "measure":
            measures.append((instruction.qubits[0], instruction.clbits[0]))
            continue
        stripped.append(instruction.operation, instruction.qubits, instruction.clbits)
    return stripped, measures


def clbit_distribution(circuit: QuantumCircuit) -> dict[str, float]:
    """Exact outcome distribution over classical bits (terminal measures)."""
    stripped, measures = strip_measurements(circuit)
    state = simulate_statevector(stripped)
    probabilities = np.abs(state) ** 2
    num_clbits = circuit.num_clbits
    distribution: dict[str, float] = {}
    for outcome, probability in enumerate(probabilities):
        if probability < 1e-14:
            continue
        bits = 0
        for qubit, clbit in measures:
            if (outcome >> qubit) & 1:
                bits |= 1 << clbit
        key = format(bits, f"0{num_clbits}b")
        distribution[key] = distribution.get(key, 0.0) + float(probability)
    return distribution


def assert_same_distribution(a: QuantumCircuit, b: QuantumCircuit, atol=1e-7):
    dist_a = clbit_distribution(a)
    dist_b = clbit_distribution(b)
    keys = set(dist_a) | set(dist_b)
    for key in keys:
        assert abs(dist_a.get(key, 0.0) - dist_b.get(key, 0.0)) < atol, (
            f"distributions differ at {key}: "
            f"{dist_a.get(key, 0.0):.6f} vs {dist_b.get(key, 0.0):.6f}"
        )


def assert_functionally_equivalent(a: QuantumCircuit, b: QuantumCircuit, atol=1e-7):
    """Same action on |0...0> up to global phase (measurement-free)."""
    state_a = simulate_statevector(a)
    state_b = simulate_statevector(b)
    overlap = abs(np.vdot(state_a, state_b))
    assert abs(overlap - 1.0) < atol, f"|<a|b>| = {overlap:.9f} != 1"


def assert_unitarily_equal(a: QuantumCircuit, b: QuantumCircuit, atol=1e-7):
    ua, ub = circuit_unitary(a), circuit_unitary(b)
    assert np.abs(ua - ub).max() < atol, (
        f"unitaries differ by {np.abs(ua - ub).max():.2e}"
    )


def random_circuit(
    num_qubits: int,
    num_gates: int,
    seed=None,
    gate_set: str = "full",
    measure: bool = False,
) -> QuantumCircuit:
    """A seeded random circuit over a configurable gate set."""
    rng = as_rng(seed)
    circuit = QuantumCircuit(num_qubits, num_qubits if measure else 0)
    one_qubit = ["h", "x", "y", "z", "s", "sdg", "t", "tdg", "rx", "ry", "rz", "u3"]
    two_qubit = ["cx", "cz", "swap", "cp"]
    three_qubit = ["ccx", "cswap"] if gate_set == "full" else []
    for _ in range(num_gates):
        width = rng.choice([1, 1, 2, 2, 3] if three_qubit and num_qubits >= 3 else [1, 1, 2])
        if width == 1:
            name = one_qubit[int(rng.integers(len(one_qubit)))]
            qubit = int(rng.integers(num_qubits))
            if name in ("rx", "ry", "rz"):
                getattr(circuit, name)(float(rng.uniform(0, 2 * np.pi)), qubit)
            elif name == "u3":
                circuit.u3(*(float(x) for x in rng.uniform(0, 2 * np.pi, 3)), qubit)
            else:
                getattr(circuit, name)(qubit)
        elif width == 2 and num_qubits >= 2:
            name = two_qubit[int(rng.integers(len(two_qubit)))]
            a, b = (int(q) for q in rng.choice(num_qubits, size=2, replace=False))
            if name == "cp":
                circuit.cp(float(rng.uniform(0, 2 * np.pi)), a, b)
            else:
                getattr(circuit, name)(a, b)
        elif num_qubits >= 3:
            name = three_qubit[int(rng.integers(len(three_qubit)))]
            a, b, c = (int(q) for q in rng.choice(num_qubits, size=3, replace=False))
            getattr(circuit, name)(a, b, c)
    if measure:
        for qubit in range(num_qubits):
            circuit.measure(qubit, qubit)
    return circuit


def respects_coupling(circuit: QuantumCircuit, coupling) -> bool:
    """True when every two-qubit gate acts on a coupled physical pair.

    The device-validity check for routed circuits: after layout/routing
    against a :class:`~repro.transpiler.target.Target`, no multi-qubit
    gate may span qubits its coupling map does not connect.
    """
    for instruction in circuit.data:
        if len(instruction.qubits) == 2 and instruction.operation.name not in (
            "measure",
            "barrier",
        ):
            a, b = instruction.qubits
            if not coupling.are_coupled(a, b):
                return False
    return True
