"""Tests for the QuantumCircuit builder."""

import math

import numpy as np
import pytest

from repro.circuit import ClassicalRegister, QuantumCircuit, QuantumRegister
from repro.gates import CXGate, XGate


class TestConstruction:
    def test_integer_wires(self):
        circuit = QuantumCircuit(3, 2)
        assert circuit.num_qubits == 3
        assert circuit.num_clbits == 2

    def test_registers(self):
        qr = QuantumRegister(2, "q")
        ar = QuantumRegister(3, "a")
        cr = ClassicalRegister(2, "c")
        circuit = QuantumCircuit(qr, ar, cr)
        assert circuit.num_qubits == 5
        assert circuit.num_clbits == 2
        assert list(qr) == [0, 1]
        assert list(ar) == [2, 3, 4]
        assert ar[1] == 3

    def test_register_rebind_fails(self):
        qr = QuantumRegister(2, "q")
        QuantumCircuit(qr)
        with pytest.raises(ValueError):
            QuantumCircuit(qr)

    def test_mixed_args_rejected(self):
        with pytest.raises(ValueError):
            QuantumCircuit(2, QuantumRegister(2))


class TestAppend:
    def test_out_of_range(self):
        circuit = QuantumCircuit(2)
        with pytest.raises(IndexError):
            circuit.x(5)

    def test_duplicate_qubits(self):
        circuit = QuantumCircuit(2)
        with pytest.raises(ValueError):
            circuit.cx(1, 1)

    def test_arity_mismatch(self):
        circuit = QuantumCircuit(2)
        with pytest.raises(ValueError):
            circuit.append(CXGate(), (0,))

    def test_builder_returns_self(self):
        circuit = QuantumCircuit(1)
        assert circuit.x(0) is circuit


class TestMetrics:
    def test_depth_parallel_gates(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.h(1)
        assert circuit.depth() == 1

    def test_depth_serial_chain(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.cx(0, 1)
        circuit.h(1)
        assert circuit.depth() == 3

    def test_barrier_not_counted(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.barrier()
        circuit.h(0)
        assert circuit.depth() == 2
        assert circuit.size() == 2

    def test_count_ops(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.cx(0, 1)
        circuit.cx(0, 1)
        assert circuit.count_ops() == {"cx": 2, "h": 1}

    def test_num_nonlocal(self):
        circuit = QuantumCircuit(3)
        circuit.h(0)
        circuit.cx(0, 1)
        circuit.ccx(0, 1, 2)
        assert circuit.num_nonlocal_gates() == 2


class TestTransforms:
    def test_inverse_undoes(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.t(1)
        circuit.cx(0, 1)
        circuit.rx(0.7, 0)
        combined = circuit.compose(circuit.inverse())
        assert np.allclose(combined.to_matrix(), np.eye(4), atol=1e-9)

    def test_compose_remaps(self):
        inner = QuantumCircuit(2)
        inner.cx(0, 1)
        outer = QuantumCircuit(3).compose(inner, qubits=[2, 0])
        instruction = outer.data[0]
        assert instruction.qubits == (2, 0)

    def test_decompose_expands_one_level(self):
        circuit = QuantumCircuit(2)
        circuit.swap(0, 1)
        expanded = circuit.decompose()
        assert expanded.count_ops() == {"cx": 3}

    def test_decompose_preserves_matrix(self):
        circuit = QuantumCircuit(3)
        circuit.ccx(0, 1, 2)
        circuit.swap(0, 2)
        assert np.allclose(
            circuit.decompose().to_matrix(), circuit.to_matrix(), atol=1e-9
        )

    def test_global_phase_in_matrix(self):
        circuit = QuantumCircuit(1, global_phase=math.pi / 2)
        assert np.allclose(circuit.to_matrix(), 1j * np.eye(2))

    def test_copy_is_shallow_data_independent(self):
        circuit = QuantumCircuit(1)
        circuit.x(0)
        clone = circuit.copy()
        clone.x(0)
        assert len(circuit.data) == 1
        assert len(clone.data) == 2


class TestMeasure:
    def test_measure_all_requires_clbits(self):
        circuit = QuantumCircuit(2)
        with pytest.raises(ValueError):
            circuit.measure_all()

    def test_to_matrix_rejects_measure(self):
        circuit = QuantumCircuit(1, 1)
        circuit.measure(0, 0)
        with pytest.raises(ValueError):
            circuit.to_matrix()

    def test_draw_runs(self):
        circuit = QuantumCircuit(2, 2)
        circuit.h(0)
        circuit.cx(0, 1)
        circuit.measure(0, 0)
        text = circuit.draw()
        assert "q0" in text and "cx" in text
