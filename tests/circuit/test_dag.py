"""Tests for the DAG representation and converters."""

from repro.circuit import QuantumCircuit, circuit_to_dag, dag_to_circuit


def build_sample():
    circuit = QuantumCircuit(3, 3)
    circuit.h(0)
    circuit.cx(0, 1)
    circuit.t(1)
    circuit.cx(1, 2)
    circuit.measure(2, 2)
    return circuit


class TestRoundTrip:
    def test_preserves_operations(self):
        circuit = build_sample()
        rebuilt = dag_to_circuit(circuit_to_dag(circuit))
        assert rebuilt.count_ops() == circuit.count_ops()

    def test_preserves_wire_order(self):
        circuit = build_sample()
        rebuilt = dag_to_circuit(circuit_to_dag(circuit))
        # per-wire op sequences must be identical
        for qubit in range(3):
            original = [
                inst.operation.name for inst in circuit.data if qubit in inst.qubits
            ]
            round_tripped = [
                inst.operation.name for inst in rebuilt.data if qubit in inst.qubits
            ]
            assert original == round_tripped

    def test_preserves_global_phase(self):
        circuit = QuantumCircuit(1, global_phase=0.77)
        circuit.x(0)
        assert dag_to_circuit(circuit_to_dag(circuit)).global_phase == 0.77


class TestStructure:
    def test_op_nodes(self):
        dag = circuit_to_dag(build_sample())
        assert len(dag.op_nodes()) == 5
        assert len(dag.op_nodes("cx")) == 2

    def test_depth(self):
        dag = circuit_to_dag(build_sample())
        assert dag.depth() == build_sample().depth()

    def test_remove_op_node(self):
        dag = circuit_to_dag(build_sample())
        t_node = dag.op_nodes("t")[0]
        dag.remove_op_node(t_node)
        rebuilt = dag_to_circuit(dag)
        assert "t" not in rebuilt.count_ops()
        assert rebuilt.count_ops()["cx"] == 2

    def test_wire_successor_chain(self):
        dag = circuit_to_dag(build_sample())
        h_node = dag.op_nodes("h")[0]
        successor = dag.wire_successor(h_node, ("q", 0))
        assert successor.name == "cx"

    def test_front_layer(self):
        circuit = QuantumCircuit(3)
        circuit.h(0)
        circuit.h(2)
        circuit.cx(0, 1)
        dag = circuit_to_dag(circuit)
        names = sorted(node.name for node in dag.front_layer())
        assert names == ["h", "h"]

    def test_layers_partition_all_ops(self):
        dag = circuit_to_dag(build_sample())
        total = sum(len(layer) for layer in dag.layers())
        assert total == 5

    def test_collect_1q_runs(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.t(0)
        circuit.cx(0, 1)
        circuit.s(0)
        dag = circuit_to_dag(circuit)
        runs = dag.collect_1q_runs()
        lengths = sorted(len(run) for run in runs)
        assert lengths == [1, 2]

    def test_count_ops(self):
        dag = circuit_to_dag(build_sample())
        assert dag.count_ops()["cx"] == 2
