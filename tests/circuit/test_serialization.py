"""Tests for the compact circuit payload format.

The process-pool executor depends on payload round-trips being exact, so
these tests cover every operation family the gate library exposes plus the
raw-object fallback, and check the payloads actually are smaller than plain
pickles (the point of the format).
"""

import math
import pickle

import numpy as np
import pytest

from repro.circuit import (
    QuantumCircuit,
    circuit_from_payload,
    circuit_to_payload,
)
from repro.circuit import Gate
from repro.gates import CXGate, MCXGate


def _composite_gate() -> Gate:
    """A plain :class:`Gate` whose manually-assigned definition is its only
    record of semantics -- the case serialization must never strip."""
    definition = QuantumCircuit(2)
    definition.h(0)
    definition.cx(0, 1)
    definition.s(1)
    gate = Gate("mystery", 2)
    gate._definition = definition
    return gate


def _assert_roundtrip(circuit: QuantumCircuit) -> QuantumCircuit:
    rebuilt = circuit_from_payload(circuit_to_payload(circuit))
    assert rebuilt.num_qubits == circuit.num_qubits
    assert rebuilt.num_clbits == circuit.num_clbits
    assert abs(rebuilt.global_phase - circuit.global_phase) < 1e-12
    assert len(rebuilt.data) == len(circuit.data)
    for got, expected in zip(rebuilt.data, circuit.data):
        assert got.operation.name == expected.operation.name
        assert got.qubits == expected.qubits
        assert got.clbits == expected.clbits
        assert np.allclose(got.operation.params, expected.operation.params)
        got_ctrl = getattr(got.operation, "ctrl_state", None)
        expected_ctrl = getattr(expected.operation, "ctrl_state", None)
        assert got_ctrl == expected_ctrl
        assert got.operation.label == expected.operation.label
    return rebuilt


class TestPayloadRoundTrip:
    def test_standard_and_parametric_gates(self):
        circuit = QuantumCircuit(3, 3, global_phase=0.25)
        circuit.h(0)
        circuit.x(1)
        circuit.sdg(2)
        circuit.rx(0.3, 0)
        circuit.u3(0.1, 0.2, 0.3, 1)
        circuit.u2(0.4, 0.5, 2)
        _assert_roundtrip(circuit)

    def test_controlled_and_multi_qubit_gates(self):
        circuit = QuantumCircuit(5)
        circuit.cx(0, 1)
        circuit.append(CXGate(ctrl_state=0), (2, 3))  # open control
        circuit.cp(math.pi / 8, 1, 2)
        circuit.crz(0.7, 0, 4)
        circuit.ccx(0, 1, 2)
        circuit.cswap(0, 1, 2)
        circuit.mcx((0, 1, 2), 4)
        circuit.mcz((0, 1), 3)
        circuit.swap(3, 4)
        circuit.swapz(0, 1)
        _assert_roundtrip(circuit)

    def test_directives_and_non_unitary(self):
        circuit = QuantumCircuit(2, 2)
        circuit.h(0)
        circuit.barrier()
        circuit.annotate(1, 0.5, 1.5)
        circuit.annotate_zero(0)
        circuit.reset(1)
        circuit.measure(0, 0)
        circuit.measure(1, 1)
        _assert_roundtrip(circuit)

    def test_unitary_gate_matrix_preserved(self):
        matrix = np.array([[0, 1], [1, 0]], dtype=complex)
        circuit = QuantumCircuit(1)
        circuit.unitary(matrix, (0,), label="flip")
        rebuilt = _assert_roundtrip(circuit)
        assert np.allclose(rebuilt.data[0].operation.to_matrix(), matrix)
        assert rebuilt.data[0].operation.label == "flip"

    def test_raw_fallback_for_exotic_operations(self):
        # an ad-hoc composite gate has no registry spec: the payload carries
        # the object itself (with its authoritative definition intact)
        circuit = QuantumCircuit(2)
        exotic = _composite_gate()
        circuit.append(exotic, (0, 1))
        payload = circuit_to_payload(circuit)
        rebuilt = circuit_from_payload(pickle.loads(pickle.dumps(payload)))
        assert rebuilt.data[0].operation.name == exotic.name
        assert np.allclose(
            rebuilt.data[0].operation.definition.to_matrix(),
            exotic.definition.to_matrix(),
        )

    def test_labels_preserved_and_not_deduped_away(self):
        from repro.gates import XGate

        circuit = QuantumCircuit(1)
        circuit.append(XGate(), (0,))
        labeled = XGate()
        labeled.label = "debug-flip"
        circuit.append(labeled, (0,))
        rebuilt = _assert_roundtrip(circuit)
        assert rebuilt.data[0].operation.label is None
        assert rebuilt.data[1].operation.label == "debug-flip"
        # distinct labels must not collapse to one table entry
        assert rebuilt.data[0].operation is not rebuilt.data[1].operation

    def test_repeated_operations_share_table_entry(self):
        circuit = QuantumCircuit(2)
        for _ in range(10):
            circuit.cx(0, 1)
        payload = circuit_to_payload(circuit)
        table = payload[5]
        assert len(table) == 1
        rebuilt = circuit_from_payload(payload)
        ops = {id(inst.operation) for inst in rebuilt.data}
        assert len(ops) == 1  # identity sharing preserved for the DAG cache

    def test_payload_smaller_than_pickle(self):
        from repro.algorithms import quantum_phase_estimation

        circuit = quantum_phase_estimation(4)
        # touch the definitions, as a transpile would
        for inst in circuit.data:
            inst.operation.definition
        payload_size = len(pickle.dumps(circuit_to_payload(circuit)))
        pickle_size = len(pickle.dumps(circuit))
        assert payload_size < pickle_size

    def test_version_check(self):
        payload = circuit_to_payload(QuantumCircuit(1))
        bad = (99,) + payload[1:]
        with pytest.raises(ValueError, match="version"):
            circuit_from_payload(bad)


class TestDefinitionStripping:
    def test_rebuildable_definition_dropped_from_pickle(self):
        gate = MCXGate(2)
        _ = gate.definition  # memoize
        restored = pickle.loads(pickle.dumps(gate))
        assert restored._definition is None
        assert restored.definition is not None  # rebuilt on demand

    def test_authoritative_definition_kept(self):
        gate = _composite_gate()  # plain Gate carrying its only semantics
        restored = pickle.loads(pickle.dumps(gate))
        assert restored._definition is not None
        assert np.allclose(
            restored.definition.to_matrix(), gate.definition.to_matrix()
        )
