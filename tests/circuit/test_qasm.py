"""Round-trip tests for the OpenQASM 2.0 serializer."""

import math

import numpy as np
import pytest

from repro.circuit import QuantumCircuit
from repro.circuit.qasm import from_qasm, to_qasm
from repro.simulators import circuit_unitary

from tests.helpers import assert_same_distribution, random_circuit


def roundtrip(circuit):
    return from_qasm(to_qasm(circuit))


class TestExport:
    def test_header(self):
        text = to_qasm(QuantumCircuit(2))
        assert text.startswith("OPENQASM 2.0;")
        assert "qreg q[2];" in text

    def test_simple_gates(self):
        circuit = QuantumCircuit(2, 2)
        circuit.h(0)
        circuit.cx(0, 1)
        circuit.measure(0, 0)
        text = to_qasm(circuit)
        assert "h q[0];" in text
        assert "cx q[0],q[1];" in text
        assert "measure q[0] -> c[0];" in text

    def test_pi_formatting(self):
        circuit = QuantumCircuit(1)
        circuit.rz(math.pi / 2, 0)
        circuit.u3(math.pi, 0.0, math.pi, 0)
        text = to_qasm(circuit)
        assert "rz(pi/2)" in text
        assert "u3(pi,0,pi)" in text

    def test_swapz_gets_definition(self):
        circuit = QuantumCircuit(2)
        circuit.swapz(0, 1)
        text = to_qasm(circuit)
        assert "gate swapz a,b { cx b,a; cx a,b; }" in text
        assert "swapz q[0],q[1];" in text

    def test_annotation_as_comment(self):
        circuit = QuantumCircuit(1)
        circuit.annotate_zero(0)
        assert "// ANNOT(0,0) q[0]" in to_qasm(circuit)

    def test_unsupported_gate_raises(self):
        from repro.gates import UnitaryGate
        from repro.linalg.random import random_unitary

        circuit = QuantumCircuit(1)
        circuit.append(UnitaryGate(random_unitary(2, 0)), (0,))
        with pytest.raises(ValueError):
            to_qasm(circuit)


class TestRoundTrip:
    def test_unitary_preserved(self):
        circuit = QuantumCircuit(3)
        circuit.h(0)
        circuit.t(1)
        circuit.cx(0, 1)
        circuit.rz(0.37, 2)
        circuit.ccx(0, 1, 2)
        circuit.swap(0, 2)
        circuit.swapz(1, 2)
        circuit.cp(1.25, 0, 2)
        rebuilt = roundtrip(circuit)
        assert np.abs(circuit_unitary(rebuilt) - circuit_unitary(circuit)).max() < 1e-9

    def test_measured_circuit_distribution(self):
        circuit = random_circuit(3, 15, seed=4, gate_set="simple", measure=True)
        rebuilt = roundtrip(circuit)
        assert_same_distribution(circuit, rebuilt)

    def test_annotations_survive(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.annotate(1, 0.5, -0.25)
        rebuilt = roundtrip(circuit)
        annots = [i for i in rebuilt.data if i.operation.name == "annot"]
        assert len(annots) == 1
        assert abs(annots[0].operation.params[0] - 0.5) < 1e-12

    def test_transpiled_output_roundtrips(self):
        from repro.backends import FakeMelbourne
        from repro.rpo import rpo_pass_manager
        from repro.transpiler.passmanager import PropertySet
        from repro.circuit import remove_idle_qubits

        backend = FakeMelbourne()
        circuit = QuantumCircuit(3, 3)
        circuit.h(0)
        circuit.cx(0, 1)
        circuit.cx(1, 2)
        circuit.measure_all()
        pm = rpo_pass_manager(
            backend.coupling_map, backend_properties=backend.properties, seed=0
        )
        compiled, _ = remove_idle_qubits(pm.run(circuit, PropertySet()))
        rebuilt = roundtrip(compiled)
        assert_same_distribution(compiled, rebuilt)

    def test_barrier_and_reset(self):
        circuit = QuantumCircuit(2, 1)
        circuit.h(0)
        circuit.barrier(0, 1)
        circuit.reset(0)
        circuit.measure(1, 0)
        rebuilt = roundtrip(circuit)
        names = [inst.operation.name for inst in rebuilt.data]
        assert names == ["h", "barrier", "reset", "measure"]


class TestParserErrors:
    def test_garbage_line(self):
        with pytest.raises(ValueError):
            from_qasm('OPENQASM 2.0;\nqreg q[1];\nfrobnicate q[0];')

    def test_malformed_angle(self):
        with pytest.raises(ValueError):
            from_qasm('OPENQASM 2.0;\nqreg q[1];\nrz(import_os) q[0];')
