"""Property-based integration tests: every pipeline preserves semantics.

Standard levels preserve the measured distribution of arbitrary random
circuits; the RPO pipelines preserve it too (their rewrites are functional,
which is exactly what distribution preservation checks).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backends import FakeMelbourne
from repro.rpo import QBOPass, QPOPass, HoareOptimizer, rpo_pass_manager
from repro.transpiler import CouplingMap, transpile
from repro.transpiler.passmanager import PropertySet

from tests.helpers import (
    assert_functionally_equivalent,
    assert_same_distribution,
    random_circuit,
)

SEEDS = st.integers(min_value=0, max_value=10_000)


class TestPassLevelProperties:
    @given(seed=SEEDS)
    @settings(max_examples=20, deadline=None)
    def test_qbo_functional_equivalence(self, seed):
        circuit = random_circuit(4, 20, seed=seed)
        out = QBOPass().run(circuit, PropertySet())
        assert_functionally_equivalent(circuit, out)

    @given(seed=SEEDS)
    @settings(max_examples=20, deadline=None)
    def test_qbo_general_mode_equivalence(self, seed):
        circuit = random_circuit(4, 20, seed=seed)
        out = QBOPass(general_eigenphase=True).run(circuit, PropertySet())
        assert_functionally_equivalent(circuit, out)

    @given(seed=SEEDS)
    @settings(max_examples=20, deadline=None)
    def test_qpo_functional_equivalence(self, seed):
        circuit = random_circuit(4, 20, seed=seed)
        out = QPOPass(optimize_blocks=True).run(circuit, PropertySet())
        assert_functionally_equivalent(circuit, out)

    @given(seed=SEEDS)
    @settings(max_examples=20, deadline=None)
    def test_hoare_functional_equivalence(self, seed):
        circuit = random_circuit(4, 20, seed=seed)
        out = HoareOptimizer().run(circuit, PropertySet())
        assert_functionally_equivalent(circuit, out)

    @given(seed=SEEDS)
    @settings(max_examples=15, deadline=None)
    def test_qbo_never_adds_two_qubit_gates(self, seed):
        circuit = random_circuit(4, 25, seed=seed)
        out = QBOPass().run(circuit, PropertySet())

        def cx_cost(c):
            weights = {"cx": 1, "cz": 1, "cp": 2, "swap": 3, "swapz": 2,
                       "ccx": 6, "cswap": 8, "cu": 2, "cu_dg": 2}
            return sum(weights.get(n, 0) * v for n, v in c.count_ops().items())

        assert cx_cost(out) <= cx_cost(circuit)


class TestPipelineProperties:
    @given(seed=SEEDS)
    @settings(max_examples=8, deadline=None)
    def test_full_transpile_preserves_distribution(self, seed):
        circuit = random_circuit(4, 18, seed=seed, measure=True)
        cmap = CouplingMap.line(4)
        out = transpile(circuit, coupling_map=cmap, optimization_level=3, seed=0)
        assert_same_distribution(circuit, out)

    @given(seed=SEEDS)
    @settings(max_examples=8, deadline=None)
    def test_rpo_pipeline_preserves_distribution(self, seed):
        backend = FakeMelbourne()
        circuit = random_circuit(4, 18, seed=seed, measure=True)
        pm = rpo_pass_manager(
            backend.coupling_map, backend_properties=backend.properties, seed=0
        )
        out = pm.run(circuit, PropertySet())
        assert_same_distribution(circuit, out)
