"""Algebraic properties of the optimization passes."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rpo import HoareOptimizer, QBOPass, QPOPass
from repro.transpiler.passmanager import PropertySet
from repro.transpiler.passes import CXCancellation, Optimize1qGates

from tests.helpers import random_circuit

SEEDS = st.integers(min_value=0, max_value=10_000)


def run(pass_, circuit):
    return pass_.run(circuit, PropertySet())


class TestIdempotence:
    """Re-running a pass must never make the circuit worse.

    QBO is *not* strictly idempotent: its first run can replace an opaque
    multi-qubit gate with simpler gates through which the automaton tracks
    more states, enabling further rewrites on a second run -- exactly why
    the paper's pipeline runs QBO twice (Fig. 8 lines 1 and 5).  The sound
    property is monotone improvement.
    """

    @staticmethod
    def _cx_cost(circuit):
        weights = {"cx": 1, "cz": 1, "cp": 2, "swap": 3, "swapz": 2,
                   "ccx": 6, "ccz": 6, "cswap": 8, "cu": 2, "cu_dg": 2}
        return sum(
            weights.get(name, 0) * count
            for name, count in circuit.count_ops().items()
        )

    @given(seed=SEEDS)
    @settings(max_examples=15, deadline=None)
    def test_qbo_monotone(self, seed):
        circuit = random_circuit(4, 20, seed=seed)
        once = run(QBOPass(), circuit)
        twice = run(QBOPass(), once)
        assert self._cx_cost(twice) <= self._cx_cost(once)

    @given(seed=SEEDS)
    @settings(max_examples=15, deadline=None)
    def test_optimize1q_idempotent(self, seed):
        circuit = random_circuit(3, 15, seed=seed, gate_set="simple")
        once = run(Optimize1qGates(), circuit)
        twice = run(Optimize1qGates(), once)
        assert once.count_ops() == twice.count_ops()

    @given(seed=SEEDS)
    @settings(max_examples=15, deadline=None)
    def test_cx_cancellation_idempotent(self, seed):
        circuit = random_circuit(4, 25, seed=seed, gate_set="simple")
        once = run(CXCancellation(), circuit)
        twice = run(CXCancellation(), once)
        assert once.count_ops() == twice.count_ops()


class TestDeterminism:
    @given(seed=SEEDS)
    @settings(max_examples=10, deadline=None)
    def test_qbo_deterministic(self, seed):
        circuit = random_circuit(4, 20, seed=seed)
        a = run(QBOPass(), circuit.copy())
        b = run(QBOPass(), circuit.copy())
        assert [i.qubits for i in a.data] == [i.qubits for i in b.data]
        assert abs(a.global_phase - b.global_phase) < 1e-12

    @given(seed=SEEDS)
    @settings(max_examples=10, deadline=None)
    def test_qpo_deterministic(self, seed):
        circuit = random_circuit(4, 20, seed=seed)
        a = run(QPOPass(optimize_blocks=True), circuit.copy())
        b = run(QPOPass(optimize_blocks=True), circuit.copy())
        assert [i.operation.name for i in a.data] == [
            i.operation.name for i in b.data
        ]

    def test_full_pipeline_deterministic(self):
        from repro.backends import FakeMelbourne
        from repro.rpo import rpo_pass_manager

        backend = FakeMelbourne()
        circuit = random_circuit(4, 25, seed=3, measure=True)
        results = []
        for _ in range(2):
            pm = rpo_pass_manager(
                backend.coupling_map, backend_properties=backend.properties, seed=5
            )
            results.append(pm.run(circuit.copy(), PropertySet()))
        assert results[0].count_ops() == results[1].count_ops()
        assert [i.qubits for i in results[0].data] == [
            i.qubits for i in results[1].data
        ]


class TestMonotonicity:
    @given(seed=SEEDS)
    @settings(max_examples=10, deadline=None)
    def test_hoare_never_grows_circuit(self, seed):
        circuit = random_circuit(4, 25, seed=seed)
        out = run(HoareOptimizer(), circuit)
        assert out.size() <= circuit.size()

    @given(seed=SEEDS)
    @settings(max_examples=10, deadline=None)
    def test_cx_cancellation_never_grows(self, seed):
        circuit = random_circuit(4, 25, seed=seed, gate_set="simple")
        out = run(CXCancellation(), circuit)
        assert out.size() <= circuit.size()
