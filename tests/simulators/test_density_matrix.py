"""Tests for the exact density-matrix simulator."""

import pytest

from repro.circuit import QuantumCircuit
from repro.simulators import NoiseModel, NoisySimulator
from repro.simulators.density_matrix import DensityMatrixSimulator

from tests.helpers import clbit_distribution


class TestNoiseless:
    def test_matches_statevector_distribution(self):
        circuit = QuantumCircuit(3, 3)
        circuit.h(0)
        circuit.cx(0, 1)
        circuit.t(1)
        circuit.cx(1, 2)
        circuit.measure_all()
        exact = DensityMatrixSimulator().probabilities(circuit)
        reference = clbit_distribution(circuit)
        for key in set(exact) | set(reference):
            assert abs(exact.get(key, 0) - reference.get(key, 0)) < 1e-10

    def test_reset_channel(self):
        circuit = QuantumCircuit(1, 1)
        circuit.h(0)
        circuit.reset(0)
        circuit.measure(0, 0)
        exact = DensityMatrixSimulator().probabilities(circuit)
        assert abs(exact["0"] - 1.0) < 1e-10

    def test_rejects_wide_circuits(self):
        with pytest.raises(ValueError):
            DensityMatrixSimulator().probabilities(QuantumCircuit(13, 1))


class TestNoisy:
    def test_depolarizing_mixes(self):
        circuit = QuantumCircuit(1, 1)
        circuit.x(0)
        circuit.measure(0, 0)
        model = NoiseModel(default_one_qubit_error=0.3)
        exact = DensityMatrixSimulator(model).probabilities(circuit)
        # depolarizing p: remaining |1> weight = 1 - 2p/3
        assert abs(exact["1"] - (1 - 0.2)) < 1e-10

    def test_readout_error_exact(self):
        circuit = QuantumCircuit(1, 1)
        circuit.x(0)
        circuit.measure(0, 0)
        model = NoiseModel(default_readout_error=(0.0, 0.25))
        exact = DensityMatrixSimulator(model).probabilities(circuit)
        assert abs(exact["0"] - 0.25) < 1e-10
        assert abs(exact["1"] - 0.75) < 1e-10

    def test_validates_monte_carlo_sampler(self):
        """The trajectory sampler must converge to the exact distribution."""
        circuit = QuantumCircuit(2, 2)
        circuit.h(0)
        circuit.cx(0, 1)
        circuit.cx(0, 1)
        circuit.cx(0, 1)
        circuit.measure_all()
        model = NoiseModel.uniform(one_qubit=5e-3, two_qubit=4e-2, readout=2e-2)
        exact = DensityMatrixSimulator(model).probabilities(circuit)
        sampled = NoisySimulator(model, seed=11).run(circuit, shots=6000)
        total = sampled.shots
        for key, probability in exact.items():
            observed = sampled.get(key, 0) / total
            assert abs(observed - probability) < 0.03, (
                f"{key}: exact {probability:.4f} vs sampled {observed:.4f}"
            )

    def test_two_qubit_depolarizing_trace_preserved(self):
        circuit = QuantumCircuit(2, 2)
        circuit.h(0)
        circuit.cx(0, 1)
        circuit.measure_all()
        model = NoiseModel(default_two_qubit_error=0.2)
        exact = DensityMatrixSimulator(model).probabilities(circuit)
        assert abs(sum(exact.values()) - 1.0) < 1e-9
