"""Cross-backend parity for the backend-resident simulators.

Every simulator keeps its state resident on the active array backend and
only crosses to the host at the result boundary.  On the instrumented
"fake device" backend (:mod:`repro.linalg.instrument`) the arithmetic is
still NumPy underneath, so every result -- statevectors, unitaries,
density-matrix distributions, and even fixed-seed sampled counts (the
host RNG sees bit-identical probabilities) -- must match the plain NumPy
backend exactly.  A divergence means some code path silently depends on
which backend the arrays live on.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linalg.backend import set_backend
from repro.linalg.instrument import InstrumentedBackend
from repro.simulators import (
    DensityMatrixSimulator,
    NoiseModel,
    NoisySimulator,
    StatevectorSimulator,
    circuit_unitary,
)
from tests.helpers import random_circuit

seeds = st.integers(min_value=0, max_value=10_000)


@pytest.fixture(autouse=True)
def _numpy_backend():
    """Pin the NumPy backend around every test (tests switch it)."""
    set_backend("numpy")
    yield
    set_backend("numpy")


def on_fake_backend(func):
    """Run ``func`` with the instrumented backend installed."""
    backend = InstrumentedBackend()
    set_backend(backend)
    try:
        return func()
    finally:
        set_backend("numpy")


class TestStatevectorParity:
    @settings(max_examples=20, deadline=None)
    @given(seed=seeds, fusion=st.booleans())
    def test_statevector_bit_identical(self, seed, fusion):
        circuit = random_circuit(4, 25, seed=seed)
        host = StatevectorSimulator(fusion=fusion).statevector(circuit)
        device = on_fake_backend(
            lambda: StatevectorSimulator(fusion=fusion).statevector(circuit)
        )
        assert type(device) is np.ndarray
        assert np.array_equal(host, device)

    @settings(max_examples=10, deadline=None)
    @given(seed=seeds)
    def test_terminal_sampling_counts_identical(self, seed):
        circuit = random_circuit(3, 15, seed=seed, measure=True)
        host = StatevectorSimulator(seed=7).run(circuit, shots=256)
        device = on_fake_backend(
            lambda: StatevectorSimulator(seed=7).run(circuit, shots=256)
        )
        assert host == device

    def test_mid_circuit_trajectories_identical(self):
        circuit = random_circuit(3, 10, seed=3, measure=True)
        circuit.h(0)
        circuit.measure(0, 0)
        host = StatevectorSimulator(seed=11).run(circuit, shots=64)
        device = on_fake_backend(
            lambda: StatevectorSimulator(seed=11).run(circuit, shots=64)
        )
        assert host == device


class TestUnitaryParity:
    @settings(max_examples=15, deadline=None)
    @given(seed=seeds, fusion=st.booleans())
    def test_circuit_unitary_bit_identical(self, seed, fusion):
        circuit = random_circuit(3, 15, seed=seed)
        host = circuit_unitary(circuit, fusion=fusion)
        device = on_fake_backend(lambda: circuit_unitary(circuit, fusion=fusion))
        assert type(device) is np.ndarray
        assert np.array_equal(host, device)


class TestDensityMatrixParity:
    @settings(max_examples=10, deadline=None)
    @given(seed=seeds)
    def test_noiseless_distribution_identical(self, seed):
        circuit = random_circuit(3, 12, seed=seed, measure=True)
        host = DensityMatrixSimulator().probabilities(circuit)
        device = on_fake_backend(
            lambda: DensityMatrixSimulator().probabilities(circuit)
        )
        assert host == device

    def test_depolarizing_distribution_identical(self):
        noise = NoiseModel(
            default_one_qubit_error=0.01, default_two_qubit_error=0.05
        )
        circuit = random_circuit(3, 12, seed=5, measure=True)
        host = DensityMatrixSimulator(noise).probabilities(circuit)
        device = on_fake_backend(
            lambda: DensityMatrixSimulator(noise).probabilities(circuit)
        )
        assert host == device


class TestNoisySimulatorParity:
    def test_fixed_seed_counts_identical(self):
        noise = NoiseModel(
            default_one_qubit_error=0.02,
            default_two_qubit_error=0.05,
            default_readout_error=(0.98, 0.97),
        )
        circuit = random_circuit(3, 12, seed=9, measure=True)
        host = NoisySimulator(noise, seed=13).run(circuit, shots=128)
        device = on_fake_backend(
            lambda: NoisySimulator(noise, seed=13).run(circuit, shots=128)
        )
        assert host == device
