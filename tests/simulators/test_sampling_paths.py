"""StatevectorSimulator: sampling fast path vs per-shot trajectories.

The simulator samples terminal-measurement circuits from the final
distribution in one pass and falls back to full collapsing trajectories
when it sees mid-circuit measurement.  These tests pin down the detection
logic, collapse correctness, and the agreement of the two paths.
"""

import numpy as np
import pytest

from repro.circuit import QuantumCircuit
from repro.simulators import StatevectorSimulator


def _ghz(num_qubits: int) -> QuantumCircuit:
    circuit = QuantumCircuit(num_qubits, num_qubits)
    circuit.h(0)
    for qubit in range(num_qubits - 1):
        circuit.cx(qubit, qubit + 1)
    circuit.measure_all()
    return circuit


class TestTerminalDetection:
    def detect(self, circuit):
        return StatevectorSimulator._measurements_are_terminal(circuit)

    def test_terminal_measurements(self):
        assert self.detect(_ghz(3))

    def test_gate_after_measure_is_mid_circuit(self):
        circuit = QuantumCircuit(1, 2)
        circuit.h(0)
        circuit.measure(0, 0)
        circuit.x(0)
        assert not self.detect(circuit)

    def test_barrier_after_measure_stays_terminal(self):
        circuit = QuantumCircuit(2, 2)
        circuit.h(0)
        circuit.measure(0, 0)
        circuit.barrier()
        circuit.measure(1, 1)
        assert self.detect(circuit)

    def test_gate_on_other_qubit_stays_terminal(self):
        circuit = QuantumCircuit(2, 2)
        circuit.measure(0, 0)
        circuit.x(1)
        circuit.measure(1, 1)
        assert self.detect(circuit)

    def test_remeasure_stays_terminal(self):
        # re-measuring the same qubit is safe for the one-pass sampler: both
        # clbits receive the same sampled outcome, which is exactly what a
        # collapsing trajectory would produce
        circuit = QuantumCircuit(1, 2)
        circuit.measure(0, 0)
        circuit.measure(0, 1)
        assert self.detect(circuit)


class TestCollapseCorrectness:
    def test_mid_circuit_collapse_correlates_outcomes(self):
        # h; measure; x; measure -- the second bit is always the complement
        circuit = QuantumCircuit(1, 2)
        circuit.h(0)
        circuit.measure(0, 0)
        circuit.x(0)
        circuit.measure(0, 1)
        counts = StatevectorSimulator(seed=7).run(circuit, shots=600)
        assert set(counts) <= {"10", "01"}
        assert sum(counts.values()) == 600
        # both branches appear with roughly equal frequency
        assert min(counts.values()) > 200

    def test_mid_circuit_collapse_is_sticky(self):
        # measuring twice without an intervening gate must agree
        circuit = QuantumCircuit(1, 2)
        circuit.h(0)
        circuit.measure(0, 0)
        circuit.measure(0, 1)
        counts = StatevectorSimulator(seed=3).run(circuit, shots=400)
        assert set(counts) <= {"00", "11"}

    def test_collapse_renormalizes(self):
        # biased state: p(1) = sin^2(0.4/2); conditioned branches stay valid
        circuit = QuantumCircuit(2, 2)
        circuit.ry(0.4, 0)
        circuit.measure(0, 0)
        circuit.cx(0, 1)
        circuit.measure(1, 1)
        counts = StatevectorSimulator(seed=11).run(circuit, shots=800)
        assert set(counts) <= {"00", "11"}
        p_one = np.sin(0.2) ** 2
        assert counts.get("11", 0) / 800 == pytest.approx(p_one, abs=0.04)


class TestPathAgreement:
    @pytest.mark.parametrize("num_qubits", [2, 3])
    def test_fast_path_and_trajectories_agree(self, num_qubits, monkeypatch):
        circuit = _ghz(num_qubits)
        shots = 3000

        fast = StatevectorSimulator(seed=5).run(circuit, shots=shots)

        monkeypatch.setattr(
            StatevectorSimulator,
            "_measurements_are_terminal",
            staticmethod(lambda _circuit: False),
        )
        slow = StatevectorSimulator(seed=5).run(circuit, shots=shots)

        zeros, ones = "0" * num_qubits, "1" * num_qubits
        for counts in (fast, slow):
            assert set(counts) == {zeros, ones}
        for key in (zeros, ones):
            assert fast[key] / shots == pytest.approx(0.5, abs=0.05)
            assert slow[key] / shots == pytest.approx(0.5, abs=0.05)

    def test_fast_path_used_for_terminal_circuit(self, monkeypatch):
        """The one-pass sampler must not collapse state shot by shot."""
        calls = {"n": 0}
        original = StatevectorSimulator._measure

        def counting_measure(self, state, qubit, num_qubits):
            calls["n"] += 1
            return original(self, state, qubit, num_qubits)

        monkeypatch.setattr(StatevectorSimulator, "_measure", counting_measure)
        StatevectorSimulator(seed=1).run(_ghz(2), shots=50)
        assert calls["n"] == 0

    def test_trajectory_path_collapses_per_shot(self, monkeypatch):
        calls = {"n": 0}
        original = StatevectorSimulator._measure

        def counting_measure(self, state, qubit, num_qubits):
            calls["n"] += 1
            return original(self, state, qubit, num_qubits)

        monkeypatch.setattr(StatevectorSimulator, "_measure", counting_measure)
        circuit = QuantumCircuit(1, 2)
        circuit.h(0)
        circuit.measure(0, 0)
        circuit.x(0)
        circuit.measure(0, 1)
        StatevectorSimulator(seed=1).run(circuit, shots=50)
        assert calls["n"] == 100  # two collapsing measurements per shot
