"""Tests for the simulators' gate-fusion pre-step."""

import numpy as np
import pytest

from repro.circuit import QuantumCircuit
from repro.simulators import (
    FusedProgram,
    StatevectorSimulator,
    circuit_unitary,
    compile_program,
)

from tests.helpers import random_circuit


class TestCompileProgram:
    def test_adjacent_same_pair_gates_fuse(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.t(0)
        circuit.cx(0, 1)
        circuit.h(1)
        circuit.cx(1, 0)
        program = compile_program(circuit)
        assert isinstance(program, FusedProgram)
        assert program.num_gates == 5
        # the whole circuit is one pair run -> one fused 4x4
        assert program.num_unitaries == 1
        (kind, matrix, qargs), = program.steps
        assert kind == "unitary"
        assert matrix.shape == (4, 4)
        assert qargs == (0, 1)

    def test_fuse_false_is_one_step_per_gate(self):
        circuit = random_circuit(3, 25, seed=5)
        program = compile_program(circuit, fuse=False)
        assert program.num_gates == program.num_unitaries == len(
            [s for s in program.steps if s[0] == "unitary"]
        )

    def test_one_qubit_runs_fuse(self):
        circuit = QuantumCircuit(1)
        for _ in range(8):
            circuit.h(0)
            circuit.t(0)
        program = compile_program(circuit)
        assert program.num_gates == 16
        assert program.num_unitaries == 1
        assert program.steps[0][1].shape == (2, 2)

    def test_measure_and_reset_fence(self):
        circuit = QuantumCircuit(1, 1)
        circuit.h(0)
        circuit.reset(0)
        circuit.h(0)
        circuit.measure(0, 0)
        program = compile_program(circuit)
        kinds = [step[0] for step in program.steps]
        assert kinds == ["unitary", "reset", "unitary", "measure"]

    def test_directives_are_transparent(self):
        circuit = QuantumCircuit(1)
        circuit.h(0)
        circuit.barrier()
        circuit.h(0)
        program = compile_program(circuit)
        # a barrier does not fence simulation, matching the serial engine
        assert program.num_unitaries == 1

    def test_three_qubit_gates_fence_and_pass_through(self):
        circuit = QuantumCircuit(3)
        circuit.h(0)
        circuit.ccx(0, 1, 2)
        circuit.h(0)
        program = compile_program(circuit)
        shapes = [step[1].shape for step in program.steps]
        assert (8, 8) in shapes

    def test_empty_circuit(self):
        program = compile_program(QuantumCircuit(2))
        assert program.steps == []
        assert program.num_gates == 0


class TestFusedEvolutionParity:
    @pytest.mark.parametrize("seed", range(10))
    def test_statevector_matches_unfused(self, seed):
        circuit = random_circuit(4, 30, seed=seed)
        fused = StatevectorSimulator(fusion=True).statevector(circuit)
        plain = StatevectorSimulator(fusion=False).statevector(circuit)
        assert np.abs(fused - plain).max() < 1e-12

    @pytest.mark.parametrize("seed", range(6))
    def test_circuit_unitary_matches_unfused(self, seed):
        circuit = random_circuit(3, 20, seed=seed + 50)
        fused = circuit_unitary(circuit, fusion=True)
        plain = circuit_unitary(circuit, fusion=False)
        assert np.abs(fused - plain).max() < 1e-12

    def test_global_phase_preserved(self):
        circuit = QuantumCircuit(1, global_phase=0.7)
        circuit.h(0)
        state = StatevectorSimulator().statevector(circuit)
        expected = np.exp(0.7j) * np.array([1, 1]) / np.sqrt(2)
        assert np.allclose(state, expected, atol=1e-12)

    def test_deterministic_reset_path(self):
        circuit = QuantumCircuit(2)
        circuit.x(0)
        circuit.reset(0)
        circuit.h(1)
        fused = StatevectorSimulator(seed=0, fusion=True).statevector(circuit)
        plain = StatevectorSimulator(seed=0, fusion=False).statevector(circuit)
        assert np.abs(fused - plain).max() < 1e-12

    def test_terminal_sampling(self):
        circuit = QuantumCircuit(2, 2)
        circuit.h(0)
        circuit.cx(0, 1)
        circuit.measure(0, 0)
        circuit.measure(1, 1)
        counts = StatevectorSimulator(seed=11).run(circuit, shots=4000)
        assert set(counts) <= {"00", "11"}
        assert sum(counts.values()) == 4000
        assert abs(counts.get("00", 0) / 4000 - 0.5) < 0.05

    def test_mid_circuit_trajectories(self):
        circuit = QuantumCircuit(2, 2)
        circuit.h(0)
        circuit.measure(0, 0)
        circuit.x(1)
        circuit.cx(0, 1)
        circuit.measure(1, 1)
        counts = StatevectorSimulator(seed=2).run(circuit, shots=600)
        # qubit 1 ends as NOT(qubit 0): only "01" and "10" are possible
        assert set(counts) <= {"01", "10"}
        assert sum(counts.values()) == 600

    def test_rejects_measure_in_statevector(self):
        circuit = QuantumCircuit(1, 1)
        circuit.h(0)
        circuit.measure(0, 0)
        with pytest.raises(ValueError, match="mid-circuit measurement"):
            StatevectorSimulator().statevector(circuit)

    def test_unitary_rejects_measure_and_reset(self):
        measured = QuantumCircuit(1, 1)
        measured.measure(0, 0)
        with pytest.raises(ValueError, match="'measure'"):
            circuit_unitary(measured)
        resetting = QuantumCircuit(1)
        resetting.reset(0)
        with pytest.raises(ValueError, match="'reset'"):
            circuit_unitary(resetting)

    def test_simulator_cache_persists_across_runs(self):
        simulator = StatevectorSimulator()
        circuit = random_circuit(3, 20, seed=9)
        first = simulator.statevector(circuit)
        requests_after_first = simulator._cache.matrix_requests
        second = simulator.statevector(circuit)
        assert np.array_equal(first, second)
        assert simulator._cache.matrix_requests > requests_after_first
        # the second compile constructs nothing new
        assert simulator._cache.matrix_constructions <= requests_after_first
