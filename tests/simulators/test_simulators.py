"""Tests for the statevector, unitary, and noisy simulators."""

import numpy as np
import pytest

from repro.circuit import QuantumCircuit
from repro.simulators import (
    Counts,
    NoiseModel,
    NoisySimulator,
    StatevectorSimulator,
    circuit_unitary,
    simulate_statevector,
    success_rate,
)


class TestStatevector:
    def test_bell_state(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.cx(0, 1)
        state = simulate_statevector(circuit)
        expected = np.array([1, 0, 0, 1]) / np.sqrt(2)
        assert np.abs(state - expected).max() < 1e-10

    def test_little_endian_convention(self):
        circuit = QuantumCircuit(2)
        circuit.x(0)  # qubit 0 -> bit 0
        state = simulate_statevector(circuit)
        assert abs(state[1] - 1) < 1e-12

    def test_three_qubit_gate(self):
        circuit = QuantumCircuit(3)
        circuit.x(0)
        circuit.x(1)
        circuit.ccx(0, 1, 2)
        state = simulate_statevector(circuit)
        assert abs(abs(state[7]) - 1) < 1e-12

    def test_global_phase(self):
        circuit = QuantumCircuit(1, global_phase=np.pi)
        state = simulate_statevector(circuit)
        assert abs(state[0] + 1) < 1e-12

    def test_initial_state(self):
        circuit = QuantumCircuit(1)
        circuit.h(0)
        plus = np.array([1, 1]) / np.sqrt(2)
        state = simulate_statevector(circuit, initial_state=plus)
        assert abs(state[0] - 1) < 1e-10

    def test_reset(self):
        circuit = QuantumCircuit(1)
        circuit.x(0)
        circuit.reset(0)
        state = StatevectorSimulator(seed=0).statevector(circuit)
        assert abs(state[0] - 1) < 1e-12

    def test_measurement_sampling(self):
        circuit = QuantumCircuit(1, 1)
        circuit.h(0)
        circuit.measure(0, 0)
        counts = StatevectorSimulator(seed=3).run(circuit, shots=4000)
        assert abs(counts["0"] / 4000 - 0.5) < 0.05

    def test_mid_circuit_measurement_collapses(self):
        circuit = QuantumCircuit(2, 2)
        circuit.h(0)
        circuit.measure(0, 0)
        circuit.cx(0, 1)
        circuit.measure(1, 1)
        counts = StatevectorSimulator(seed=4).run(circuit, shots=500)
        for key in counts:
            assert key[0] == key[1]  # perfectly correlated

    def test_deterministic_measure(self):
        circuit = QuantumCircuit(1, 1)
        circuit.x(0)
        circuit.measure(0, 0)
        counts = StatevectorSimulator(seed=5).run(circuit, shots=100)
        assert counts == {"1": 100}


class TestUnitary:
    def test_matches_to_matrix(self):
        circuit = QuantumCircuit(3)
        circuit.h(0)
        circuit.cx(0, 1)
        circuit.ccx(0, 1, 2)
        circuit.rz(0.3, 2)
        assert np.abs(circuit_unitary(circuit) - circuit.to_matrix()).max() < 1e-9

    def test_rejects_measure(self):
        circuit = QuantumCircuit(1, 1)
        circuit.measure(0, 0)
        with pytest.raises(ValueError):
            circuit_unitary(circuit)


class TestCounts:
    def test_probabilities(self):
        counts = Counts({"00": 750, "11": 250})
        probs = counts.probabilities()
        assert abs(probs["00"] - 0.75) < 1e-12

    def test_most_frequent(self):
        assert Counts({"01": 5, "10": 9}).most_frequent() == "10"

    def test_success_rate(self):
        counts = Counts({"111": 230, "000": 770})
        assert abs(success_rate(counts, "111") - 0.23) < 1e-12
        assert success_rate(Counts({}), "1") == 0.0


class TestNoisy:
    def test_noiseless_model_matches_ideal(self):
        circuit = QuantumCircuit(2, 2)
        circuit.h(0)
        circuit.cx(0, 1)
        circuit.measure(0, 0)
        circuit.measure(1, 1)
        counts = NoisySimulator(NoiseModel(), seed=1).run(circuit, shots=300)
        assert set(counts) == {"00", "11"}

    def test_depolarizing_reduces_success(self):
        circuit = QuantumCircuit(2, 2)
        for _ in range(8):
            circuit.cx(0, 1)
        circuit.measure(0, 0)
        circuit.measure(1, 1)
        noisy = NoisySimulator(NoiseModel.uniform(two_qubit=0.08), seed=2)
        counts = noisy.run(circuit, shots=800)
        assert success_rate(counts, "00") < 0.95

    def test_readout_error_flips(self):
        circuit = QuantumCircuit(1, 1)
        circuit.x(0)
        circuit.measure(0, 0)
        model = NoiseModel(default_readout_error=(0.0, 0.25))
        counts = NoisySimulator(model, seed=3).run(circuit, shots=2000)
        assert 0.15 < counts.get("0", 0) / 2000 < 0.35

    def test_more_noise_is_worse(self):
        circuit = QuantumCircuit(2, 2)
        circuit.h(0)
        for _ in range(5):  # odd count: a Bell pair with extra noise exposure
            circuit.cx(0, 1)
        circuit.measure(0, 0)
        circuit.measure(1, 1)
        mild = NoisySimulator(NoiseModel.uniform(two_qubit=0.01, readout=0.01), seed=5)
        harsh = NoisySimulator(NoiseModel.uniform(two_qubit=0.10, readout=0.05), seed=5)
        ok_mild = mild.run(circuit, shots=600)
        ok_harsh = harsh.run(circuit, shots=600)
        good = {"00", "11"}
        mild_rate = sum(v for k, v in ok_mild.items() if k in good)
        harsh_rate = sum(v for k, v in ok_harsh.items() if k in good)
        assert harsh_rate < mild_rate

    def test_from_backend(self):
        from repro.backends import FakeMelbourne

        model = NoiseModel.from_backend(FakeMelbourne())
        assert model.gate_error((0, 1)) > 0
        assert model.readout_flip_probabilities(0)[0] > 0
