"""Tests for CouplingMap, Layout, PassManager, layout passes and routing."""

import pytest

from repro.circuit import QuantumCircuit
from repro.transpiler import CouplingMap, Layout, PassManager, TranspilerError
from repro.transpiler.passmanager import (
    AnalysisPass,
    DoWhileController,
    PropertySet,
    TransformationPass,
)
from repro.transpiler.passes import (
    ApplyLayout,
    CheckMap,
    DenseLayout,
    StochasticSwap,
    TrivialLayout,
    Unroller,
)

from tests.helpers import assert_same_distribution, random_circuit


class TestCouplingMap:
    def test_line(self):
        cmap = CouplingMap.line(4)
        assert cmap.num_qubits == 4
        assert cmap.are_coupled(1, 2)
        assert not cmap.are_coupled(0, 3)

    def test_distance(self):
        cmap = CouplingMap.line(5)
        assert cmap.distance(0, 4) == 4
        assert cmap.distance(2, 2) == 0

    def test_ring_distance(self):
        cmap = CouplingMap.ring(6)
        assert cmap.distance(0, 3) == 3
        assert cmap.distance(0, 5) == 1

    def test_grid(self):
        cmap = CouplingMap.grid(2, 3)
        assert cmap.num_qubits == 6
        assert cmap.are_coupled(0, 3)
        assert cmap.distance(0, 5) == 3

    def test_full(self):
        cmap = CouplingMap.full(4)
        assert all(cmap.distance(a, b) <= 1 for a in range(4) for b in range(4))

    def test_neighbors_sorted(self):
        cmap = CouplingMap([(0, 2), (0, 1)])
        assert cmap.neighbors(0) == [1, 2]

    def test_rejects_self_loop(self):
        with pytest.raises(TranspilerError):
            CouplingMap([(1, 1)])

    def test_shortest_path(self):
        cmap = CouplingMap.line(5)
        assert cmap.shortest_path(0, 3) == [0, 1, 2, 3]


class TestLayout:
    def test_trivial(self):
        layout = Layout.trivial(3)
        assert layout.physical(2) == 2

    def test_swap_physical(self):
        layout = Layout({0: 5, 1: 7})
        layout.swap_physical(5, 7)
        assert layout.physical(0) == 7
        assert layout.physical(1) == 5

    def test_collision_rejected(self):
        layout = Layout({0: 1})
        with pytest.raises(TranspilerError):
            layout.add(1, 1)

    def test_roundtrip(self):
        layout = Layout({0: 3, 1: 0, 2: 2})
        for virtual in range(3):
            assert layout.virtual(layout.physical(virtual)) == virtual


class TestPassManager:
    def test_records_timing(self):
        class Noop(TransformationPass):
            def transform(self, circuit, props):
                return circuit

        pm = PassManager([Noop()])
        pm.run(QuantumCircuit(1))
        names = [name for name, _ in pm.property_set["pass_times"]]
        assert names == ["Noop"]

    def test_do_while_runs_until_condition(self):
        class CountDown(AnalysisPass):
            writes = ("n",)  # stateful counter: declared write, never skipped

            def analyze(self, circuit, props):
                props["n"] = props.get("n", 3) - 1

        controller = DoWhileController(
            [CountDown()], do_while=lambda ps: ps["n"] > 0
        )
        pm = PassManager([controller])
        pm.run(QuantumCircuit(1))
        assert pm.property_set["n"] == 0

    def test_do_while_respects_max_iterations(self):
        class Forever(AnalysisPass):
            writes = ("count",)

            def analyze(self, circuit, props):
                props["count"] = props.get("count", 0) + 1

        controller = DoWhileController(
            [Forever()], do_while=lambda ps: True, max_iterations=4
        )
        pm = PassManager([controller])
        pm.run(QuantumCircuit(1))
        assert pm.property_set["count"] == 4


class TestLayoutPasses:
    def test_trivial_layout(self):
        props = PropertySet()
        TrivialLayout(CouplingMap.line(4)).run(QuantumCircuit(3), props)
        assert props["layout"].physical(2) == 2

    def test_trivial_rejects_oversize(self):
        with pytest.raises(TranspilerError):
            TrivialLayout(CouplingMap.line(2)).run(QuantumCircuit(3), PropertySet())

    def test_dense_layout_connected(self):
        cmap = CouplingMap.line(8)
        props = PropertySet()
        DenseLayout(cmap).run(QuantumCircuit(4), props)
        chosen = sorted(props["layout"].virtual_to_physical.values())
        # a connected run of the line
        assert chosen == list(range(chosen[0], chosen[0] + 4))

    def test_dense_layout_prefers_low_error(self):
        from repro.backends import FakeMelbourne

        backend = FakeMelbourne()
        props = PropertySet()
        DenseLayout(backend.coupling_map, backend.properties).run(
            QuantumCircuit(2), props
        )
        chosen = tuple(sorted(props["layout"].virtual_to_physical.values()))
        best_edge = min(
            backend.properties.two_qubit_error,
            key=backend.properties.two_qubit_error.get,
        )
        assert chosen == tuple(sorted(best_edge))

    def test_apply_layout_widens(self):
        cmap = CouplingMap.line(5)
        circuit = QuantumCircuit(2, 2)
        circuit.cx(0, 1)
        circuit.measure(0, 0)
        props = PropertySet()
        props["layout"] = Layout({0: 3, 1: 4})
        out = ApplyLayout(cmap).run(circuit, props)
        assert out.num_qubits == 5
        assert out.data[0].qubits == (3, 4)
        assert out.data[1].qubits == (3,)


class TestRouting:
    def _route(self, circuit, cmap, seed=0, trials=4):
        props = PropertySet()
        props["layout"] = Layout.trivial(circuit.num_qubits)
        widened = ApplyLayout(cmap).run(circuit, props)
        return StochasticSwap(cmap, trials=trials, seed=seed).run(widened, props), props

    def test_all_gates_coupled_after_routing(self):
        cmap = CouplingMap.line(5)
        circuit = random_circuit(5, 30, seed=0, gate_set="simple")
        unrolled = Unroller().run(circuit, PropertySet())
        routed, props = self._route(unrolled, cmap)
        check = PropertySet()
        CheckMap(cmap).run(routed, check)
        assert check["is_swap_mapped"]

    def test_preserves_distribution(self):
        cmap = CouplingMap.line(4)
        circuit = random_circuit(4, 25, seed=1, gate_set="simple", measure=True)
        unrolled = Unroller().run(circuit, PropertySet())
        routed, _ = self._route(unrolled, cmap)
        assert_same_distribution(circuit, routed)

    def test_rejects_wide_gates(self):
        cmap = CouplingMap.line(3)
        circuit = QuantumCircuit(3)
        circuit.ccx(0, 1, 2)
        with pytest.raises(TranspilerError):
            self._route(circuit, cmap)

    def test_no_swaps_when_already_mapped(self):
        cmap = CouplingMap.line(3)
        circuit = QuantumCircuit(3)
        circuit.cx(0, 1)
        circuit.cx(1, 2)
        routed, props = self._route(circuit, cmap)
        assert routed.count_ops().get("swap", 0) == 0

    def test_seeded_determinism(self):
        cmap = CouplingMap.line(5)
        circuit = random_circuit(5, 30, seed=2, gate_set="simple")
        unrolled = Unroller().run(circuit, PropertySet())
        a, _ = self._route(unrolled, cmap, seed=7)
        b, _ = self._route(unrolled, cmap, seed=7)
        assert [i.operation.name for i in a.data] == [i.operation.name for i in b.data]
        assert [i.qubits for i in a.data] == [i.qubits for i in b.data]
