"""Tests for the requirements-aware scheduler and TranspileResult metrics."""

import threading

import pytest

from repro.circuit import QuantumCircuit
from repro.transpiler import PassManager, TranspilerError
from repro.transpiler.passmanager import (
    AnalysisPass,
    DoWhileController,
    PropertySet,
    TransformationPass,
    TranspileResult,
)
from repro.transpiler.passes import CXCancellation, FixedPoint, Size


class Noop(TransformationPass):
    def transform(self, circuit, props):
        return circuit


class RebuildUnchanged(TransformationPass):
    """Returns a fresh but structurally identical circuit."""

    def transform(self, circuit, props):
        return circuit.copy()


class AddX(TransformationPass):
    equivalence = "none"  # test machinery: changes semantics on purpose

    def transform(self, circuit, props):
        out = circuit.copy()
        out.x(0)
        return out


class NeedsLayout(TransformationPass):
    requires = ("layout",)

    def transform(self, circuit, props):
        return circuit


class TestTranspileResult:
    def test_run_with_result_shape(self):
        pm = PassManager([Size(), AddX(), Size()])
        result = pm.run_with_result(QuantumCircuit(1))
        assert isinstance(result, TranspileResult)
        assert result.circuit.size() == 1
        assert result.properties["size"] == 1
        assert [m.name for m in result.metrics] == ["Size", "AddX", "Size"]
        assert result.time > 0

    def test_metrics_record_gate_and_depth_delta(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        circuit.cx(0, 1)
        pm = PassManager([CXCancellation()])
        result = pm.run_with_result(circuit)
        (metric,) = result.metrics
        assert metric.size_before == 2
        assert metric.size_after == 0
        assert metric.size_delta == -2
        assert metric.depth_delta == -2
        assert metric.rewrites == 1  # one cancelled pair

    def test_run_returns_circuit(self):
        pm = PassManager([AddX()])
        out = pm.run(QuantumCircuit(1))
        assert isinstance(out, QuantumCircuit)
        assert out.size() == 1

    def test_pass_times_still_in_properties(self):
        properties = PropertySet()
        PassManager([Noop()]).run(QuantumCircuit(1), properties)
        assert [name for name, _ in properties["pass_times"]] == ["Noop"]


class TestAnalysisSkipping:
    def test_second_identical_analysis_skipped(self):
        pm = PassManager([Size(), Size()])
        result = pm.run_with_result(QuantumCircuit(1))
        assert [m.skipped for m in result.metrics] == [False, True]

    def test_analysis_stays_valid_across_unchanged_transform(self):
        pm = PassManager([Size(), RebuildUnchanged(), Size()])
        result = pm.run_with_result(QuantumCircuit(1))
        assert [m.skipped for m in result.metrics] == [False, False, True]

    def test_changed_transform_invalidates(self):
        pm = PassManager([Size(), AddX(), Size()])
        result = pm.run_with_result(QuantumCircuit(1))
        assert [m.skipped for m in result.metrics] == [False, False, False]
        assert result.properties["size"] == 1

    def test_skipped_analysis_keeps_property_correct(self):
        circuit = QuantumCircuit(1)
        circuit.x(0)
        pm = PassManager([Size(), Noop(), Size()])
        result = pm.run_with_result(circuit)
        assert result.metrics[2].skipped
        assert result.properties["size"] == 1

    def test_fixed_point_never_skipped(self):
        # FixedPoint is stateful: skipping it would stall the level-3 loop
        pm = PassManager([Size(), FixedPoint("size"), Size(), FixedPoint("size")])
        result = pm.run_with_result(QuantumCircuit(1))
        skipped = {m.name: m.skipped for m in result.metrics if "FixedPoint" in m.name}
        assert skipped == {"FixedPoint(size)": False}
        assert result.properties["size_fixed_point"]


class TestPropertyWritesCountAsChanges:
    """Regression: a structurally-unchanged transformation pass used to
    keep every analysis valid even when it wrote new properties."""

    def test_undeclared_write_invalidates_analyses(self):
        class WritesUndeclared(TransformationPass):
            def transform(self, circuit, props):
                props["novel"] = 1
                return circuit

        pm = PassManager([Size(), WritesUndeclared(), Size()])
        # validate="off": this deliberately-undeclared write exercises the
        # scheduler's skip logic, not the sanitizer (which would raise).
        result = pm.run_with_result(QuantumCircuit(1), validate="off")
        # the hidden write must invalidate: the second Size re-runs
        assert [m.skipped for m in result.metrics] == [False, False, False]

    def test_undeclared_delete_invalidates_analyses(self):
        class DeletesProperty(TransformationPass):
            def transform(self, circuit, props):
                props.pop("size", None)
                return circuit

        pm = PassManager([Size(), DeletesProperty(), Size()])
        result = pm.run_with_result(QuantumCircuit(1), validate="off")
        assert [m.skipped for m in result.metrics] == [False, False, False]
        assert result.properties["size"] == 0

    def test_declared_write_on_unchanged_circuit_keeps_validity(self):
        class WritesDeclared(TransformationPass):
            writes = ("routing_flag",)

            def transform(self, circuit, props):
                props["routing_flag"] = True
                return circuit

        pm = PassManager([Size(), WritesDeclared(), Size()])
        result = pm.run_with_result(QuantumCircuit(1))
        # publishing a declared artifact is not a hidden change: skip holds
        assert [m.skipped for m in result.metrics] == [False, False, True]

    def test_bookkeeping_writes_do_not_invalidate(self):
        class TouchesBookkeeping(TransformationPass):
            def transform(self, circuit, props):
                props["_scratch"] = object()
                return circuit

        pm = PassManager([Size(), TouchesBookkeeping(), Size()])
        result = pm.run_with_result(QuantumCircuit(1))
        assert [m.skipped for m in result.metrics] == [False, False, True]


class TestRequires:
    def test_missing_requirement_raises(self):
        pm = PassManager([NeedsLayout()])
        with pytest.raises(TranspilerError, match="requires property 'layout'"):
            pm.run(QuantumCircuit(1))

    def test_requirement_satisfied_by_property(self):
        properties = PropertySet()
        properties["layout"] = object()
        PassManager([NeedsLayout()]).run(QuantumCircuit(1), properties)


class TestLoopMetrics:
    def _counting_loop(self, max_iterations=10, stop_after=3):
        class Count(AnalysisPass):
            writes = ("n",)  # stateful counter: declared write, never skipped

            def analyze(self, circuit, props):
                props["n"] = props.get("n", 0) + 1

        return DoWhileController(
            [Count()],
            do_while=lambda ps: ps["n"] < stop_after,
            max_iterations=max_iterations,
        )

    def test_converged_loop(self):
        pm = PassManager([self._counting_loop(stop_after=3)])
        result = pm.run_with_result(QuantumCircuit(1))
        (loop,) = result.loops
        assert loop.iterations == 3
        assert loop.converged
        assert len(loop.iteration_times) == 3
        assert all(t >= 0 for t in loop.iteration_times)
        assert loop.time >= sum(loop.iteration_times)

    def test_exhausted_loop_not_converged(self):
        pm = PassManager([self._counting_loop(max_iterations=2, stop_after=99)])
        result = pm.run_with_result(QuantumCircuit(1))
        (loop,) = result.loops
        assert loop.iterations == 2
        assert not loop.converged

    def test_loop_metrics_mirrored_in_properties(self):
        pm = PassManager([self._counting_loop()])
        result = pm.run_with_result(QuantumCircuit(1))
        assert result.properties["loop_metrics"] == result.loops


class TestConcurrency:
    def test_concurrent_runs_do_not_race(self):
        """Satellite: one manager, many threads, isolated results."""

        class RecordWidth(AnalysisPass):
            provides = ("width",)

            def analyze(self, circuit, props):
                props["width"] = circuit.num_qubits

        pm = PassManager([RecordWidth(), AddX()])
        results: dict[int, TranspileResult] = {}

        def work(width: int) -> None:
            for _ in range(20):
                results[width] = pm.run_with_result(QuantumCircuit(width))

        threads = [threading.Thread(target=work, args=(w,)) for w in (1, 2, 3, 4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        for width, result in results.items():
            assert result.properties["width"] == width
            assert result.circuit.num_qubits == width

    def test_parallel_batch_rewrite_counts_match_sequential(self):
        """Rewrite metrics are per-run state: no cross-thread bleed."""
        from repro.backends import FakeMelbourne
        from repro.transpiler import transpile

        backend = FakeMelbourne()
        circuit = QuantumCircuit(3, 3)
        circuit.x(1)
        circuit.h(2)
        circuit.cx(0, 2)
        circuit.cx(1, 2)
        circuit.measure_all()

        def total(results):
            return sum(m.rewrites for r in results for m in r.metrics)

        kwargs = dict(
            backend=backend, pipeline="rpo", seed=[0, 1, 2, 3], full_result=True
        )
        sequential = transpile([circuit.copy() for _ in range(4)], max_workers=1, **kwargs)
        parallel = transpile([circuit.copy() for _ in range(4)], max_workers=4, **kwargs)
        assert total(sequential) == total(parallel) > 0

    def test_property_set_alias_deprecated(self):
        from repro.transpiler import passmanager as pm_module

        pm = PassManager([Noop()])
        pm.run(QuantumCircuit(1))
        pm_module._PROPERTY_SET_DEPRECATION_EMITTED = False
        with pytest.warns(DeprecationWarning):
            properties = pm.property_set
        assert "pass_times" in properties

    def test_property_set_warning_fires_once_per_process(self):
        """Regression test: the alias warns once per process, not per run.

        The alias sits on hot serving paths; per-run warnings flooded logs
        even for callers that never read it.
        """
        import warnings

        from repro.transpiler import passmanager as pm_module

        pm = PassManager([Noop()])
        pm_module._PROPERTY_SET_DEPRECATION_EMITTED = False
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            for _ in range(3):
                pm.run(QuantumCircuit(1))
                _ = pm.property_set
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1
