"""``CompileOptions``: the consolidated compile-knob value object.

The contract: one frozen hashable object every entry point accepts;
legacy keyword arguments coerce into it (one code path); naming the same
knob twice with different values earns a ``DeprecationWarning`` and the
options object wins; only semantic fields (what circuit comes out) take
part in equality/hashing, so execution knobs never split cache entries.
"""

import dataclasses

import pytest

from repro.circuit import QuantumCircuit
from repro.transpiler import CompileOptions, Target, TranspilerError, transpile
from repro.transpiler.options import options_cache_key


class TestValueObject:
    def test_frozen(self):
        options = CompileOptions(pipeline="rpo")
        with pytest.raises(dataclasses.FrozenInstanceError):
            options.pipeline = "preset"

    def test_equality_and_hash_are_semantic_only(self):
        fast = CompileOptions(pipeline="rpo", optimization_level=2, seed=7)
        slow = CompileOptions(
            pipeline="rpo",
            optimization_level=2,
            seed=7,
            executor="process",
            max_workers=16,
            full_result=True,
        )
        assert fast == slow
        assert hash(fast) == hash(slow)
        assert fast != CompileOptions(pipeline="rpo", optimization_level=3, seed=7)

    def test_seed_sequence_becomes_hashable(self):
        options = CompileOptions(seed=[1, 2, 3])
        assert options.seed == (1, 2, 3)
        hash(options)  # must not raise

    def test_cache_key_matches_settings_projection(self):
        options = CompileOptions(pipeline="preset", optimization_level=1, seed=5)
        settings = {"pipeline": "preset", "optimization_level": 1, "seed": 5}
        assert options.cache_key() == options_cache_key(settings)


class TestCoercion:
    def test_legacy_kwargs_populate_fresh_object(self):
        options = CompileOptions.coerce(None, pipeline="rpo", seed=3)
        assert options == CompileOptions(pipeline="rpo", seed=3)

    def test_unknown_kwarg_is_an_error(self):
        with pytest.raises(TranspilerError, match="unknown compile option"):
            CompileOptions.coerce(None, optimisation_level=1)

    def test_quiet_adoption_when_options_field_is_default(self):
        base = CompileOptions(pipeline="rpo")
        merged = CompileOptions.coerce(base, optimization_level=2)
        assert merged.pipeline == "rpo"
        assert merged.optimization_level == 2

    def test_conflict_warns_and_options_wins(self):
        base = CompileOptions(optimization_level=3)
        with pytest.warns(DeprecationWarning, match="optimization_level"):
            merged = CompileOptions.coerce(base, optimization_level=1)
        assert merged.optimization_level == 3

    def test_agreeing_duplicate_is_silent(self):
        base = CompileOptions(pipeline="rpo")
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            merged = CompileOptions.coerce(base, pipeline="rpo")
        assert merged.pipeline == "rpo"

    def test_non_options_object_rejected(self):
        with pytest.raises(TranspilerError, match="CompileOptions"):
            CompileOptions.coerce({"pipeline": "rpo"})


class TestFrontendIntegration:
    def _bell(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.cx(0, 1)
        return circuit

    def test_options_object_equals_legacy_kwargs(self):
        target = Target.preset("linear:2")
        legacy = transpile(
            [self._bell()], target=target, pipeline="preset", optimization_level=1
        )[0]
        via_options = transpile(
            [self._bell()],
            target=target,
            options=CompileOptions(pipeline="preset", optimization_level=1),
        )[0]
        assert len(legacy.data) == len(via_options.data)
        for inst_a, inst_b in zip(legacy.data, via_options.data):
            assert inst_a.operation.name == inst_b.operation.name
            assert list(inst_a.operation.params) == list(inst_b.operation.params)

    def test_frontend_conflict_warns(self):
        target = Target.preset("linear:2")
        with pytest.warns(DeprecationWarning, match="optimization_level"):
            transpile(
                [self._bell()],
                target=target,
                optimization_level=1,
                options=CompileOptions(pipeline="preset", optimization_level=2),
            )

    def test_service_and_endpoint_are_exclusive(self):
        from repro.transpiler import CompileService

        with CompileService(mode="serial") as service:
            with pytest.raises(TranspilerError, match="not both"):
                transpile(
                    [self._bell()],
                    service=service,
                    endpoint="http://localhost:1",
                )

    def test_endpoint_contradicting_executor_is_an_error(self):
        with pytest.raises(TranspilerError, match="remote"):
            transpile(
                [self._bell()], executor="serial", endpoint="http://localhost:1"
            )


class TestServiceIntegration:
    def test_service_accepts_options_object(self):
        from repro.transpiler import CompileService

        options = CompileOptions(pipeline="preset", optimization_level=0)
        with CompileService(mode="serial", options=options) as service:
            result = service.submit(
                QuantumCircuit(2), target=Target.preset("linear:2")
            ).result()
        assert result is not None
        assert service.options.pipeline == "preset"
        assert service.options.optimization_level == 0

    def test_service_conflict_warns_and_options_wins(self):
        from repro.transpiler import CompileService

        options = CompileOptions(optimization_level=2)
        with pytest.warns(DeprecationWarning, match="optimization_level"):
            service = CompileService(
                mode="serial", optimization_level=1, options=options
            )
        try:
            assert service.options.optimization_level == 2
        finally:
            service.shutdown()
