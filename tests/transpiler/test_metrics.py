"""Tests for batch metrics aggregation, JSON export and the regression gate."""

import pytest

from repro.algorithms import quantum_phase_estimation
from repro.backends import FakeMelbourne
from repro.transpiler import (
    AnalysisCache,
    aggregate_batch,
    compare_metrics,
    load_metrics_json,
    transpile,
    write_metrics_json,
)
from repro.transpiler.metrics import METRICS_SCHEMA_VERSION


@pytest.fixture(scope="module")
def batch_report():
    backend = FakeMelbourne()
    cache = AnalysisCache()
    results = transpile(
        [quantum_phase_estimation(3).copy() for _ in range(4)],
        backend=backend,
        pipeline="rpo",
        seed=[0, 1, 2, 3],
        executor="serial",
        analysis_cache=cache,
        full_result=True,
    )
    return aggregate_batch(results, cache=cache, executor="serial"), results


class TestAggregateBatch:
    def test_schema_and_shape(self, batch_report):
        report, results = batch_report
        assert report["schema"] == METRICS_SCHEMA_VERSION
        assert report["num_circuits"] == len(results)
        assert report["executor"] == "serial"
        assert report["time"]["total"] == pytest.approx(
            sum(result.time for result in results)
        )
        assert report["gates"]["cx"]["mean"] >= 0

    def test_per_pass_aggregates(self, batch_report):
        report, results = batch_report
        passes = report["passes"]
        executed = {m.name for r in results for m in r.metrics if not m.skipped}
        assert executed <= set(passes)
        for entry in passes.values():
            assert entry["runs"] + entry["skips"] > 0
            if entry["runs"]:
                assert entry["mean_time"] == pytest.approx(
                    entry["total_time"] / entry["runs"]
                )
        total_rewrites = sum(entry["rewrites"] for entry in passes.values())
        assert total_rewrites == sum(m.rewrites for r in results for m in r.metrics)

    def test_cache_report(self, batch_report):
        report, _ = batch_report
        cache = report["cache"]
        assert cache is not None
        assert cache["matrix_requests"] > 0
        assert 0.0 <= cache["matrix_hit_rate"] <= 1.0

    def test_loop_report(self, batch_report):
        report, results = batch_report
        assert report["loops"]["count"] == sum(len(r.loops) for r in results)
        assert report["loops"]["iterations"] >= report["loops"]["count"]

    def test_empty_batch(self):
        report = aggregate_batch([])
        assert report["num_circuits"] == 0
        assert report["time"]["mean"] == 0.0

    def test_json_round_trip(self, batch_report, tmp_path):
        report, _ = batch_report
        path = tmp_path / "metrics.json"
        write_metrics_json(path, report)
        assert load_metrics_json(path) == report


def _bench_report(rows, times):
    return {
        "schema": 1,
        "rows": rows,
        "mean_time_by_config": times,
    }


class TestCompareMetrics:
    BASE_ROWS = [
        {"workload": "qpe", "qubits": 4, "config": "rpo", "cx": 20, "1q": 30},
        {"workload": "qpe", "qubits": 4, "config": "level3", "cx": 30, "1q": 40},
    ]
    BASE_TIMES = {"level3": 0.10, "hoare": 0.12, "rpo": 0.08}

    def test_identical_reports_pass(self):
        base = _bench_report(self.BASE_ROWS, self.BASE_TIMES)
        assert compare_metrics(base, base) == []

    def test_gate_regression_detected(self):
        current_rows = [dict(self.BASE_ROWS[0], cx=30), self.BASE_ROWS[1]]
        failures = compare_metrics(
            _bench_report(current_rows, self.BASE_TIMES),
            _bench_report(self.BASE_ROWS, self.BASE_TIMES),
        )
        assert len(failures) == 1
        assert "cx" in failures[0]

    def test_small_gate_drift_tolerated(self):
        current_rows = [dict(self.BASE_ROWS[0], cx=22), self.BASE_ROWS[1]]
        assert (
            compare_metrics(
                _bench_report(current_rows, self.BASE_TIMES),
                _bench_report(self.BASE_ROWS, self.BASE_TIMES),
            )
            == []
        )

    def test_absolute_slack_for_tiny_counts(self):
        base_rows = [{"workload": "w", "qubits": 2, "config": "rpo", "cx": 1, "1q": 2}]
        current_rows = [
            {"workload": "w", "qubits": 2, "config": "rpo", "cx": 2, "1q": 2}
        ]
        assert (
            compare_metrics(
                _bench_report(current_rows, {}), _bench_report(base_rows, {})
            )
            == []
        )

    def test_machine_speed_cancels_out(self):
        # a uniformly 3x slower machine must not trip the time gate
        slow = {config: t * 3 for config, t in self.BASE_TIMES.items()}
        assert (
            compare_metrics(
                _bench_report(self.BASE_ROWS, slow),
                _bench_report(self.BASE_ROWS, self.BASE_TIMES),
            )
            == []
        )

    def test_pipeline_slowdown_detected(self):
        slow_rpo = dict(self.BASE_TIMES, rpo=self.BASE_TIMES["rpo"] * 2)
        failures = compare_metrics(
            _bench_report(self.BASE_ROWS, slow_rpo),
            _bench_report(self.BASE_ROWS, self.BASE_TIMES),
        )
        assert len(failures) == 1
        assert "rpo" in failures[0]

    def test_unmatched_rows_ignored(self):
        extra = self.BASE_ROWS + [
            {"workload": "new", "qubits": 9, "config": "rpo", "cx": 999, "1q": 999}
        ]
        assert (
            compare_metrics(
                _bench_report(extra, self.BASE_TIMES),
                _bench_report(self.BASE_ROWS, self.BASE_TIMES),
            )
            == []
        )
