"""Executor-backend parity and auto-selection tests.

The contract of the pluggable executor layer is absolute: ``serial``,
``thread`` and ``process`` must return *identical* optimized circuits and
equivalent metrics for any batch -- the backends may differ only in
wall-clock.  A hypothesis property test drives random batches through all
three; targeted tests cover ``auto`` selection and the cross-process cache
warm-start path.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backends import FakeMelbourne
from repro.circuit import QuantumCircuit
from repro.transpiler import AnalysisCache, TranspilerError, transpile
from repro.transpiler.frontend import (
    _PROCESS_MIN_BATCH,
    _PROCESS_MIN_WIDTH,
    _choose_executor,
)

from tests.helpers import respects_coupling

EXECUTORS = ("serial", "thread", "process")


def _random_circuit(rng: np.random.Generator, num_qubits: int, depth: int):
    circuit = QuantumCircuit(num_qubits, num_qubits)
    for _ in range(depth):
        kind = rng.integers(0, 6)
        qubit = int(rng.integers(0, num_qubits))
        if kind == 0:
            circuit.h(qubit)
        elif kind == 1:
            circuit.x(qubit)
        elif kind == 2:
            circuit.rz(float(rng.uniform(0, 2 * np.pi)), qubit)
        elif kind == 3:
            circuit.u3(*(float(v) for v in rng.uniform(0, np.pi, size=3)), qubit)
        elif kind == 4 and num_qubits >= 2:
            other = int(rng.integers(0, num_qubits - 1))
            other += other >= qubit
            circuit.cx(qubit, other)
        elif kind == 5 and num_qubits >= 2:
            other = int(rng.integers(0, num_qubits - 1))
            other += other >= qubit
            circuit.swap(qubit, other)
    circuit.measure_all()
    return circuit


def _assert_identical_circuits(a: QuantumCircuit, b: QuantumCircuit):
    assert abs(a.global_phase - b.global_phase) < 1e-9
    assert len(a.data) == len(b.data)
    for inst_a, inst_b in zip(a.data, b.data):
        assert inst_a.operation.name == inst_b.operation.name
        assert inst_a.qubits == inst_b.qubits
        assert inst_a.clbits == inst_b.clbits
        assert np.allclose(inst_a.operation.params, inst_b.operation.params)


def _assert_equivalent_metrics(a, b):
    """Same pass schedule, same circuit-shape trajectory; times may differ."""
    assert [m.name for m in a.metrics] == [m.name for m in b.metrics]
    for metric_a, metric_b in zip(a.metrics, b.metrics):
        assert metric_a.size_after == metric_b.size_after
        assert metric_a.depth_after == metric_b.depth_after
        assert metric_a.rewrites == metric_b.rewrites
    assert [loop.iterations for loop in a.loops] == [
        loop.iterations for loop in b.loops
    ]


@pytest.fixture(scope="module")
def melbourne():
    return FakeMelbourne()


class TestExecutorParity:
    @settings(max_examples=5, deadline=None)
    @given(data=st.data())
    def test_random_batches_agree_across_executors(self, data):
        rng = np.random.default_rng(data.draw(st.integers(0, 2**32 - 1)))
        batch_size = data.draw(st.integers(2, 5))
        pipeline = data.draw(st.sampled_from(["rpo", "level1"]))
        batch = [
            _random_circuit(
                rng,
                num_qubits=int(rng.integers(2, 5)),
                depth=int(rng.integers(3, 12)),
            )
            for _ in range(batch_size)
        ]
        seeds = list(range(batch_size))
        outputs = {}
        for executor in EXECUTORS:
            outputs[executor] = transpile(
                [circuit.copy() for circuit in batch],
                pipeline=pipeline,
                seed=seeds,
                executor=executor,
                full_result=True,
            )
        for executor in ("thread", "process"):
            for reference, candidate in zip(outputs["serial"], outputs[executor]):
                _assert_identical_circuits(reference.circuit, candidate.circuit)
                _assert_equivalent_metrics(reference, candidate)

    def test_table2_workloads_agree_on_backend(self, melbourne):
        from repro.algorithms import quantum_phase_estimation, ry_ansatz

        batch = [
            quantum_phase_estimation(3),
            ry_ansatz(4, depth=2, seed=11),
        ] * 2
        seeds = list(range(len(batch)))
        reference = transpile(
            [c.copy() for c in batch],
            backend=melbourne,
            pipeline="rpo",
            seed=seeds,
            executor="serial",
        )
        for executor in ("thread", "process"):
            candidates = transpile(
                [c.copy() for c in batch],
                backend=melbourne,
                pipeline="rpo",
                seed=seeds,
                executor=executor,
            )
            for expected, got in zip(reference, candidates):
                _assert_identical_circuits(expected, got)

    def test_process_merges_worker_cache_deltas(self, melbourne):
        from repro.algorithms import quantum_phase_estimation

        cache = AnalysisCache()
        assert len(cache._matrices) == 0
        transpile(
            [quantum_phase_estimation(3).copy() for _ in range(3)],
            backend=melbourne,
            pipeline="rpo",
            seed=[0, 1, 2],
            executor="process",
            analysis_cache=cache,
        )
        # worker-computed matrices and analyses landed in the parent cache
        assert len(cache._matrices) > 0
        assert cache.stats.get("matrix_misses", 0) > 0  # shipped worker stats

    def test_process_full_results_carry_properties(self, melbourne):
        from repro.algorithms import quantum_phase_estimation

        results = transpile(
            [quantum_phase_estimation(3), quantum_phase_estimation(3)],
            backend=melbourne,
            pipeline="rpo",
            seed=[0, 1],
            executor="process",
            full_result=True,
        )
        for result in results:
            assert result.metrics, "per-pass metrics survive the pool"
            assert result.loops, "loop metrics survive the pool"
            assert "pass_times" in result.properties
            assert result.analysis_cache is not None  # reattached shared cache


class TestHeterogeneousBatches:
    """Satellite acceptance: mixed-target batches under every executor.

    A batch whose circuits are bound for *different* targets must compile
    to exactly what per-target serial runs produce -- whichever executor
    fans it out -- and every output circuit must respect its own target's
    coupling map.
    """

    TARGET_POOL = ("melbourne", "linear:8", "ring:8", "grid:2x4")

    @settings(max_examples=4, deadline=None)
    @given(data=st.data())
    def test_mixed_target_batches_match_per_target_serial_runs(self, data):
        from repro.transpiler import Target

        rng = np.random.default_rng(data.draw(st.integers(0, 2**32 - 1)))
        batch_size = data.draw(st.integers(2, 4))
        pipeline = data.draw(st.sampled_from(["rpo", "level1"]))
        target_names = [
            data.draw(st.sampled_from(self.TARGET_POOL), label=f"target{i}")
            for i in range(batch_size)
        ]
        targets = [Target.preset(name) for name in target_names]
        batch = [
            _random_circuit(
                rng,
                num_qubits=int(rng.integers(2, 5)),
                depth=int(rng.integers(3, 10)),
            )
            for _ in range(batch_size)
        ]
        seeds = list(range(batch_size))

        # the ground truth: each circuit compiled alone against its target
        reference = [
            transpile(
                circuit.copy(),
                target=target,
                pipeline=pipeline,
                seed=seed,
                executor="serial",
            )
            for circuit, target, seed in zip(batch, targets, seeds)
        ]

        for executor in ("serial", "thread", "process", "service"):
            outputs = transpile(
                [circuit.copy() for circuit in batch],
                target=targets,
                pipeline=pipeline,
                seed=seeds,
                executor=executor,
            )
            for expected, got, target in zip(reference, outputs, targets):
                _assert_identical_circuits(expected, got)
                assert respects_coupling(got, target.coupling_map), (
                    f"{executor} output violates {target.name} coupling"
                )

    def test_mixed_targets_through_persistent_service(self):
        from repro.transpiler import CompileService, Target

        targets = [Target.preset("linear:8"), Target.preset("ring:8")] * 2
        batch = [QuantumCircuit(3) for _ in range(4)]
        for circuit in batch:
            circuit.h(0)
            circuit.cx(0, 1)
            circuit.cx(1, 2)
            circuit.cx(0, 2)
        seeds = [0, 1, 2, 3]
        reference = [
            transpile(c.copy(), target=t, pipeline="rpo", seed=s, executor="serial")
            for c, t, s in zip(batch, targets, seeds)
        ]
        with CompileService(mode="process", pipeline="rpo", max_workers=2) as service:
            results = transpile(
                [c.copy() for c in batch],
                target=targets,
                pipeline="rpo",
                seed=seeds,
                service=service,
                full_result=True,
            )
        for expected, result, target in zip(reference, results, targets):
            _assert_identical_circuits(expected, result.circuit)
            assert result.properties["target"] == target
            assert respects_coupling(result.circuit, target.coupling_map)


class TestExecutorSelection:
    def test_unknown_executor_rejected(self):
        with pytest.raises(TranspilerError, match="executor"):
            transpile(QuantumCircuit(1), executor="rocket")

    def test_single_circuit_is_serial(self):
        assert _choose_executor([QuantumCircuit(2)], "auto") == "serial"

    def test_explicit_choice_wins(self):
        batch = [QuantumCircuit(2)] * 2
        assert _choose_executor(batch, "thread") == "thread"
        assert _choose_executor(batch, "process") == "process"

    def test_small_batches_use_threads(self, monkeypatch):
        monkeypatch.setattr("os.cpu_count", lambda: 8)
        batch = [QuantumCircuit(_PROCESS_MIN_WIDTH)] * 2
        assert _choose_executor(batch, "auto") == "thread"

    def test_large_wide_batches_use_processes(self, monkeypatch):
        monkeypatch.setattr("os.cpu_count", lambda: 8)
        batch = [QuantumCircuit(_PROCESS_MIN_WIDTH)] * _PROCESS_MIN_BATCH
        assert _choose_executor(batch, "auto") == "process"

    def test_narrow_batches_stay_threaded(self, monkeypatch):
        monkeypatch.setattr("os.cpu_count", lambda: 8)
        batch = [QuantumCircuit(_PROCESS_MIN_WIDTH - 1)] * _PROCESS_MIN_BATCH
        assert _choose_executor(batch, "auto") == "thread"

    def test_single_core_never_picks_processes(self, monkeypatch):
        monkeypatch.setattr("os.cpu_count", lambda: 1)
        batch = [QuantumCircuit(_PROCESS_MIN_WIDTH)] * _PROCESS_MIN_BATCH
        assert _choose_executor(batch, "auto") == "thread"


class TestEmptyBatch:
    """Regression tests: transpile([]) is a valid request whose answer is
    an empty list (and a well-formed zeroed metrics report), on every
    executor path -- nothing may reach a pool, a service or the network."""

    @pytest.mark.parametrize(
        "executor", ["auto", "serial", "thread", "process", "service"]
    )
    def test_empty_batch_returns_empty_list(self, executor):
        assert transpile([], executor=executor) == []
        assert transpile([], executor=executor, full_result=True) == []

    def test_empty_batch_through_persistent_service(self):
        from repro.transpiler import CompileService

        with CompileService(mode="serial") as service:
            assert transpile([], service=service) == []
            assert service.map([]) == []
            assert service.stats()["submitted"] == 0

    def test_empty_batch_still_validates_executor(self):
        with pytest.raises(TranspilerError, match="executor"):
            transpile([], executor="rocket")

    def test_empty_batch_metrics_report_is_zeroed(self):
        from repro.transpiler import aggregate_batch

        report = aggregate_batch([], executor="serial")
        assert report["num_circuits"] == 0
        assert report["time"] == {
            "mean": 0.0, "median": 0.0, "min": 0.0, "max": 0.0, "total": 0.0,
        }
        assert report["gates"]["cx"]["total"] == 0.0
        assert report["by_target"] == {}
        assert report["by_shard"] == {}
        assert report["loops"] == {"count": 0, "iterations": 0, "converged": 0}
        import json

        json.dumps(report)  # must stay JSON-serializable
