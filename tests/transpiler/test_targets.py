"""Tests for the first-class ``Target`` abstraction.

A ``Target`` must behave as a value object (hashable, comparable,
picklable, payload-round-trippable), resolve named presets, coerce from
every historical loose-kwarg form, and thread through ``pass_manager_for``
and ``transpile()`` -- including per-circuit targets in one batch.
"""

import pickle

import pytest

from repro.backends import FakeAlmaden, FakeMelbourne
from repro.circuit import QuantumCircuit
from repro.transpiler import (
    CouplingMap,
    Target,
    TranspilerError,
    pass_manager_for,
    transpile,
)
from repro.transpiler.target import resolve_targets

from tests.helpers import respects_coupling


class TestTargetValueSemantics:
    def test_equal_targets_hash_equal(self):
        a = Target(CouplingMap.line(4), name="dev")
        b = Target(CouplingMap.line(4), name="dev")
        assert a == b
        assert hash(a) == hash(b)

    def test_different_edges_differ(self):
        a = Target(CouplingMap.line(4), name="dev")
        b = Target(CouplingMap.ring(4), name="dev")
        assert a != b

    def test_different_basis_differ(self):
        a = Target(CouplingMap.line(3))
        b = Target(CouplingMap.line(3), basis=("u3", "cx"))
        assert a != b

    def test_properties_participate_in_identity(self):
        backend = FakeMelbourne()
        bare = Target(backend.coupling_map, name=backend.name)
        calibrated = Target(
            backend.coupling_map, properties=backend.properties, name=backend.name
        )
        assert bare != calibrated
        assert Target.from_backend(backend) == Target.from_backend(FakeMelbourne())

    def test_usable_as_dict_key(self):
        table = {Target.preset("linear:3"): "a", Target.preset("ring:3"): "b"}
        assert table[Target.preset("linear:3")] == "a"

    def test_pickle_round_trip(self):
        target = Target.from_backend(FakeMelbourne())
        clone = pickle.loads(pickle.dumps(target))
        assert clone == target
        assert hash(clone) == hash(target)
        assert clone.coupling_map.edges == target.coupling_map.edges
        assert clone.properties.two_qubit_error == target.properties.two_qubit_error

    def test_payload_round_trip(self):
        target = Target.from_backend(FakeAlmaden())
        clone = Target.from_payload(target.to_payload())
        assert clone == target
        # payloads are hashable (worker-side memoization keys on them)
        assert hash(target.to_payload()) == hash(clone.to_payload())

    def test_payload_without_properties(self):
        target = Target.preset("grid:2x3")
        clone = Target.from_payload(target.to_payload())
        assert clone == target
        assert clone.properties is None

    def test_label_and_repr(self):
        target = Target.preset("linear:5")
        assert target.label == "linear:5[5q]"
        assert "linear:5" in repr(target)

    def test_rejects_non_coupling(self):
        with pytest.raises(TranspilerError, match="CouplingMap"):
            Target("not a coupling map")


class TestTargetPresets:
    def test_device_presets(self):
        melbourne = Target.preset("melbourne")
        assert melbourne.num_qubits == 15
        assert melbourne.properties is not None
        assert Target.preset("almaden").num_qubits == 20
        assert Target.preset("rochester").num_qubits == 53

    def test_manhattan_style_grid(self):
        manhattan = Target.preset("manhattan")
        assert manhattan.num_qubits == 65
        assert manhattan.coupling_map.is_connected()

    def test_parameterized_presets(self):
        assert Target.preset("linear:6").coupling_map.edges == CouplingMap.line(6).edges
        assert len(Target.preset("ring:5").coupling_map.edges) == 5
        assert Target.preset("grid:3x4").num_qubits == 12
        assert Target.preset("full:4").coupling_map.are_coupled(0, 3)

    def test_unknown_preset_rejected(self):
        with pytest.raises(TranspilerError, match="preset"):
            Target.preset("starship")

    def test_bad_suffix_rejected(self):
        with pytest.raises(TranspilerError):
            Target.preset("linear:many")
        with pytest.raises(TranspilerError):
            Target.preset("grid:3")
        with pytest.raises(TranspilerError, match="suffix"):
            Target.preset("linear")

    def test_fixed_presets_reject_size_suffix(self):
        """Regression test: asking for "melbourne:20" must fail loudly,
        not silently return the 15-qubit device."""
        for spec in ("melbourne:20", "manhattan:9", "rochester:2"):
            with pytest.raises(TranspilerError, match="fixed size"):
                Target.preset(spec)


class TestTargetCoercion:
    def test_target_passes_through(self):
        target = Target.preset("linear:3")
        assert Target.coerce(target) is target

    def test_string_resolves_preset(self):
        assert Target.coerce("melbourne").num_qubits == 15

    def test_coupling_map_wrapped(self):
        coupling = CouplingMap.ring(4)
        target = Target.coerce(coupling, basis=("u3", "cx"))
        assert target.coupling_map is coupling
        assert target.basis == ("u3", "cx")

    def test_backend_wrapped(self):
        backend = FakeMelbourne()
        target = Target.coerce(backend)
        assert target.name == "fake_melbourne"
        assert target.properties is backend.properties

    def test_backend_target_method(self):
        backend = FakeMelbourne()
        assert backend.target() == Target.from_backend(backend)
        assert backend.target(basis=("u3", "cx")).basis == ("u3", "cx")

    def test_garbage_rejected(self):
        with pytest.raises(TranspilerError):
            Target.coerce(42)


class TestResolveTargets:
    def _batch(self, *widths):
        return [QuantumCircuit(w) for w in widths]

    def test_explicit_sequence_wins(self):
        batch = self._batch(3, 3)
        targets = resolve_targets(
            batch, ["linear:5", "ring:5"], FakeMelbourne(), None, None, ("u3", "cx")
        )
        assert [t.name for t in targets] == ["linear:5", "ring:5"]

    def test_sequence_length_must_match(self):
        with pytest.raises(TranspilerError, match="targets"):
            resolve_targets(self._batch(2, 2), ["linear:5"], None, None, None, ())

    def test_backend_applies_to_all(self):
        targets = resolve_targets(
            self._batch(2, 3), None, FakeMelbourne(), None, None, ("u3", "cx")
        )
        assert targets[0] is targets[1]
        assert targets[0].name == "fake_melbourne"

    def test_default_is_full_connectivity_per_width(self):
        targets = resolve_targets(self._batch(2, 3, 2), None, None, None, None, ("cx",))
        assert targets[0].num_qubits == 2
        assert targets[1].num_qubits == 3
        assert targets[0] is targets[2]  # memoized per width

    def test_bare_backend_properties_survive_fallback(self):
        """Regression test: backend_properties without a coupling map must
        still reach the target (noise-aware layout depends on it)."""
        properties = FakeMelbourne().properties
        targets = resolve_targets(self._batch(3), None, None, None, properties, ("cx",))
        assert targets[0].properties is properties
        assert targets[0].name == "full:3"


class TestTargetsThroughPipelines:
    def _circuit(self):
        circuit = QuantumCircuit(4, 4)
        circuit.h(0)
        for control in range(3):
            circuit.cx(control, control + 1)
        circuit.cx(0, 3)
        circuit.measure_all()
        return circuit

    @pytest.mark.parametrize("pipeline", ["level1", "level3", "rpo", "hoare"])
    def test_pass_manager_for_accepts_target(self, pipeline):
        target = Target.preset("linear:5")
        pm = pass_manager_for(pipeline, target, seed=0)
        compiled = pm.run(self._circuit())
        assert respects_coupling(compiled, target.coupling_map)

    def test_pass_manager_for_accepts_preset_name(self):
        pm = pass_manager_for("level1", "linear:5", seed=0)
        assert pm.run(self._circuit()) is not None

    def test_legacy_coupling_kwargs_still_work(self):
        backend = FakeMelbourne()
        pm = pass_manager_for(
            "rpo",
            backend.coupling_map,
            backend_properties=backend.properties,
            seed=0,
        )
        legacy = pm.run(self._circuit())
        via_target = pass_manager_for(
            "rpo", Target.from_backend(backend), seed=0
        ).run(self._circuit())
        assert legacy.count_ops() == via_target.count_ops()

    def test_transpile_accepts_target_kwarg(self):
        target = Target.preset("ring:6")
        compiled = transpile(self._circuit(), target=target, pipeline="rpo", seed=0)
        assert respects_coupling(compiled, target.coupling_map)

    def test_transpile_accepts_preset_name(self):
        compiled = transpile(self._circuit(), target="melbourne", seed=0)
        assert compiled.num_qubits == 15

    def test_heterogeneous_batch_in_one_call(self):
        targets = [Target.preset("linear:6"), Target.preset("ring:6")]
        results = transpile(
            [self._circuit(), self._circuit()],
            target=targets,
            pipeline="rpo",
            seed=[0, 0],
            executor="serial",
            full_result=True,
        )
        for result, target in zip(results, targets):
            assert result.properties["target"] == target
            assert respects_coupling(result.circuit, target.coupling_map)

    def test_target_length_mismatch_rejected(self):
        with pytest.raises(TranspilerError, match="targets"):
            transpile(
                [self._circuit()], target=["linear:6", "ring:6"], executor="serial"
            )

    def test_per_target_metrics_in_batch_report(self):
        from repro.transpiler import aggregate_batch

        results = transpile(
            [self._circuit(), self._circuit(), self._circuit()],
            target=["linear:6", "ring:6", "linear:6"],
            pipeline="rpo",
            seed=[0, 0, 0],
            executor="serial",
            full_result=True,
        )
        report = aggregate_batch(results)
        assert set(report["by_target"]) == {"linear:6[6q]", "ring:6[6q]"}
        assert report["by_target"]["linear:6[6q]"]["num_circuits"] == 2
        assert report["by_target"]["ring:6[6q]"]["num_circuits"] == 1
        assert report["by_target"]["ring:6[6q]"]["num_qubits"] == 6

    def test_same_label_different_targets_not_merged(self):
        """Regression test: two distinct targets sharing a name and width
        must stay separate ``by_target`` entries, not silently merge."""
        from repro.transpiler import CouplingMap, aggregate_batch

        line = Target(CouplingMap.line(6))  # both default to name "custom"
        ring = Target(CouplingMap.ring(6))
        assert line.label == ring.label
        results = transpile(
            [self._circuit(), self._circuit()],
            target=[line, ring],
            pipeline="level1",
            seed=[0, 0],
            executor="serial",
            full_result=True,
        )
        report = aggregate_batch(results)
        assert len(report["by_target"]) == 2
        assert set(report["by_target"]) == {"custom[6q]", "custom[6q]#2"}
        for entry in report["by_target"].values():
            assert entry["num_circuits"] == 1
