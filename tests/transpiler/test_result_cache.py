"""The compiled-result cache: exact hits, template re-binding, eviction,
snapshots, and the concurrency contract.

Correctness bar (the PR's acceptance): an exact hit is **bit-identical**
to the compile it replays; a template hit (same ansatz, different
parameters) is gate-exact -- same gate sequence on the same qubits,
rotation angles exact, phase-class angles exact modulo 2*pi.  Global
phase on template hits is best-effort only (the optimizer's Euler folds
move pi in and out of the global phase, which no per-gate record can
reconstruct -- and which no measurement can observe).
"""

import math
import threading
import time
import warnings
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algorithms import ry_ansatz
from repro.circuit import QuantumCircuit
from repro.circuit.serialization import circuit_to_payload
from repro.transpiler import CompileService, ResultCache, Target
from repro.transpiler.result_cache import job_fingerprint

TWO_PI = 2.0 * math.pi


def _mod_close(a, b, tol=1e-8):
    diff = (float(a) - float(b)) % TWO_PI
    return diff < tol or TWO_PI - diff < tol


def _assert_gate_exact(served: QuantumCircuit, fresh: QuantumCircuit):
    """Template-hit contract: identical structure, angles exact mod 2*pi."""
    assert len(served.data) == len(fresh.data)
    for inst_s, inst_f in zip(served.data, fresh.data):
        assert inst_s.operation.name == inst_f.operation.name
        assert inst_s.qubits == inst_f.qubits
        assert inst_s.clbits == inst_f.clbits
        params_s = inst_s.operation.params
        params_f = inst_f.operation.params
        assert len(params_s) == len(params_f)
        for a, b in zip(params_s, params_f):
            assert _mod_close(a, b), (inst_s.operation.name, a, b)


def _assert_bit_identical(served: QuantumCircuit, fresh: QuantumCircuit):
    assert served.global_phase == fresh.global_phase
    assert len(served.data) == len(fresh.data)
    for inst_s, inst_f in zip(served.data, fresh.data):
        assert inst_s.operation.name == inst_f.operation.name
        assert inst_s.qubits == inst_f.qubits
        assert list(inst_s.operation.params) == list(inst_f.operation.params)


def _ansatz(params):
    return ry_ansatz(4, depth=2, parameters=np.asarray(params).reshape(3, 4))


def _random_params(seed):
    return np.random.default_rng(seed).uniform(0.1, TWO_PI - 0.1, 12)


OPTIONS_KEY = ("preset", 1, None)


def _job(circuit, target):
    return (circuit_to_payload(circuit), target.to_payload(), OPTIONS_KEY)


@pytest.fixture(scope="module")
def target():
    return Target.preset("linear:4")


def _compile_once(circuit, target):
    """One cold compile; returns (service-independent) result payload."""
    with CompileService(
        mode="serial", pipeline="preset", optimization_level=1, result_cache=False
    ) as service:
        return service.submit(circuit, target=target).result()


class TestExactEntries:
    def test_miss_then_hit(self, target):
        cache = ResultCache()
        circuit = _ansatz(_random_params(0))
        assert cache.lookup(*_job(circuit, target)) is None
        with CompileService(
            mode="serial",
            pipeline="preset",
            optimization_level=1,
            result_cache=cache,
        ) as service:
            first = service.submit(circuit, target=target).result()
            second = service.submit(circuit, target=target).result()
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] >= 1
        _assert_bit_identical(second.circuit, first.circuit)

    def test_hit_serves_under_requesters_name(self, target):
        """Content addressing ignores names: an identical circuit under a
        different label hits, and the served result carries *its* label."""
        cache = ResultCache()
        params = _random_params(1)
        original = _ansatz(params)
        renamed = _ansatz(params)
        renamed.name = "somebody-else"
        with CompileService(
            mode="serial",
            pipeline="preset",
            optimization_level=1,
            result_cache=cache,
        ) as service:
            service.submit(original, target=target).result()
            served = service.submit(renamed, target=target).result()
        assert cache.stats()["hits"] == 1
        assert served.circuit.name == "somebody-else"

    def test_options_key_separates_entries(self, target):
        """Same circuit, different optimization level: different entry."""
        cache = ResultCache()
        circuit = _ansatz(_random_params(2))
        payload = circuit_to_payload(circuit)
        tp = target.to_payload()
        result = ("payload-stand-in", {}, {}, 0.0, {})
        cache.store(payload, tp, ("preset", 1, None), result)
        assert cache.lookup(payload, tp, ("preset", 3, None)) is None
        assert cache.lookup(payload, tp, ("preset", 1, 7)) is None
        assert cache.lookup(payload, tp, ("preset", 1, None)) is not None

    def test_cached_entries_share_no_mutable_state_with_callers(self, target):
        """Regression: metrics/loops lists and nested property values
        must be isolated on both the store side (the producer keeps live
        references to what it stored) and the serve side (a caller
        mutating its result must not corrupt what later callers get)."""
        cache = ResultCache()
        circuit = _ansatz(_random_params(4))
        job = _job(circuit, target)
        metrics = [["SomePass", 1.0]]
        loops = [["loop", 2]]
        props = {"nested": [1, 2]}
        cache.store(*job, (("cp", circuit.name), metrics, loops, 0.0, props))
        # producer-side mutation after the store
        metrics.append(["Corrupt", -1.0])
        loops[0].append("corrupt")
        props["nested"].append(99)
        served, kind = cache.lookup(*job)
        assert kind == "hit"
        assert served[1] == [["SomePass", 1.0]]
        assert served[2] == [["loop", 2]]
        assert served[4] == {"nested": [1, 2]}
        # caller-side mutation of the served result
        served[1].append(["AlsoCorrupt", 0.0])
        served[2][0].append("also")
        served[4]["nested"].append(123)
        again, _ = cache.lookup(*job)
        assert again[1] == [["SomePass", 1.0]]
        assert again[2] == [["loop", 2]]
        assert again[4] == {"nested": [1, 2]}

    def test_target_separates_entries(self):
        cache = ResultCache()
        circuit = _ansatz(_random_params(3))
        payload = circuit_to_payload(circuit)
        result = ("payload-stand-in", {}, {}, 0.0, {})
        cache.store(payload, Target.preset("linear:4").to_payload(), OPTIONS_KEY, result)
        assert (
            cache.lookup(payload, Target.preset("ring:4").to_payload(), OPTIONS_KEY)
            is None
        )


class TestTemplateRebinding:
    def test_learns_after_two_samples_then_serves(self, target):
        cache = ResultCache()
        with CompileService(
            mode="serial",
            pipeline="preset",
            optimization_level=1,
            result_cache=cache,
        ) as service:
            for seed in range(5):
                service.submit(_ansatz(_random_params(seed)), target=target).result()
        stats = cache.stats()
        assert stats["template_learned"] == 1
        assert stats["template_hits"] == 3
        assert stats["template_unbindable"] == 0

    def test_template_hit_is_gate_exact_vs_cold_compile(self, target):
        cache = ResultCache()
        with CompileService(
            mode="serial",
            pipeline="preset",
            optimization_level=1,
            result_cache=cache,
        ) as service:
            service.submit(_ansatz(_random_params(10)), target=target).result()
            service.submit(_ansatz(_random_params(11)), target=target).result()
            probe = _ansatz(_random_params(12))
            warm = service.submit(probe, target=target).result()
        assert cache.stats()["template_hits"] == 1
        cold = _compile_once(probe, target)
        _assert_gate_exact(warm.circuit, cold.circuit)

    def test_template_hits_promote_to_exact_entries(self, target):
        """A rebound serve becomes a first-class exact entry, so repeats
        skip the re-binding math and peers can find it by fingerprint."""
        cache = ResultCache()
        probe = _ansatz(_random_params(22))
        with CompileService(
            mode="serial",
            pipeline="preset",
            optimization_level=1,
            result_cache=cache,
        ) as service:
            service.submit(_ansatz(_random_params(20)), target=target).result()
            service.submit(_ansatz(_random_params(21)), target=target).result()
            service.submit(probe, target=target).result()
            service.submit(probe, target=target).result()
        stats = cache.stats()
        assert stats["template_hits"] == 1
        assert stats["hits"] == 1  # the repeat came from the exact table

    def test_partially_varied_pair_defers_learning(self, target):
        """Regression: a sample pair that moves only *some* parameters
        must not learn a map -- the unmoved parameter's value would be
        baked in as a constant, and verification (against a sample where
        it is equally unmoved) could not catch it.  Coordinate-descent
        traffic then asks for the unmoved slot at a new value and must
        get a correct answer, not the baked-in one."""
        cache = ResultCache()
        base = _random_params(30)
        partial = base.copy()
        partial[0] += 0.4  # only one of twelve parameters moves
        probe = base.copy()
        probe[0] += 0.2
        probe[1] += 0.9  # moves a parameter the first pair held fixed
        with CompileService(
            mode="serial",
            pipeline="preset",
            optimization_level=1,
            result_cache=cache,
        ) as service:
            service.submit(_ansatz(base), target=target).result()
            service.submit(_ansatz(partial), target=target).result()
            stats = cache.stats()
            assert stats["template_learned"] == 0
            assert stats["template_unbindable"] == 0
            assert stats["template_deferred"] == 1
            served = service.submit(_ansatz(probe), target=target).result()
            # a fully-varied pair (base vs. all-different) still learns
            service.submit(
                _ansatz(_random_params(31)), target=target
            ).result()
            assert cache.stats()["template_learned"] == 1
        cold = _compile_once(_ansatz(probe), target)
        _assert_gate_exact(served.circuit, cold.circuit)

    def test_different_structure_never_templates(self, target):
        """Depth-2 and depth-3 ansaetze share no template."""
        cache = ResultCache()
        with CompileService(
            mode="serial",
            pipeline="preset",
            optimization_level=1,
            result_cache=cache,
        ) as service:
            service.submit(_ansatz(_random_params(0)), target=target).result()
            deeper = ry_ansatz(
                4, depth=3, parameters=_random_params(1)[:12].reshape(3, 4)[[0, 1, 2, 2]]
            )
            service.submit(deeper, target=target).result()
        assert cache.stats()["template_hits"] == 0


class TestEviction:
    def test_lru_bound_holds(self, target):
        cache = ResultCache(max_entries=2)
        tp = target.to_payload()
        for seed in range(4):
            payload = circuit_to_payload(_ansatz(_random_params(seed)))
            cache.store(payload, tp, OPTIONS_KEY, (f"r{seed}", {}, {}, 0.0, {}))
        stats = cache.stats()
        assert stats["entries"] <= 2
        assert stats["evictions_lru"] >= 2

    def test_ttl_expires_entries(self, target):
        cache = ResultCache(ttl=0.02)
        circuit = _ansatz(_random_params(0))
        job = _job(circuit, target)
        cache.store(*job, ("r", {}, {}, 0.0, {}))
        assert cache.lookup(*job) is not None
        time.sleep(0.05)
        assert cache.lookup(*job) is None
        assert cache.stats()["evictions_ttl"] >= 1


class TestSnapshots:
    def test_roundtrip_preserves_entries_and_templates(self, tmp_path, target):
        cache = ResultCache()
        with CompileService(
            mode="serial",
            pipeline="preset",
            optimization_level=1,
            result_cache=cache,
        ) as service:
            for seed in range(3):
                service.submit(_ansatz(_random_params(seed)), target=target).result()
        path = tmp_path / "results.snap"
        cache.save(path)

        reborn = ResultCache()
        reborn.load_snapshot(path)
        stats = reborn.stats()
        assert stats["entries"] == cache.stats()["entries"]
        assert stats["templates_ready"] == 1
        # the reloaded template still serves parameter-varied circuits
        with CompileService(
            mode="serial",
            pipeline="preset",
            optimization_level=1,
            result_cache=reborn,
        ) as service:
            service.submit(_ansatz(_random_params(99)), target=target).result()
        assert reborn.stats()["template_hits"] == 1

    def test_foreign_version_snapshot_is_skipped_not_fatal(self, tmp_path):
        cache = ResultCache()
        snapshot = cache.export_snapshot()
        snapshot["version"] = 999
        fresh = ResultCache()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            fresh.import_snapshot(snapshot)
        assert fresh.snapshot_skipped is not None
        assert any(issubclass(w.category, RuntimeWarning) for w in caught)
        assert len(fresh) == 0


class TestPeerLookup:
    def test_fingerprint_round_trip(self, target):
        cache = ResultCache()
        circuit = _ansatz(_random_params(5))
        job = _job(circuit, target)
        cache.store(*job, ("r", {}, {}, 0.0, {}))
        fingerprint = job_fingerprint(*job)
        assert fingerprint is not None
        assert cache.lookup_fingerprint(fingerprint) is not None
        assert cache.lookup_fingerprint("0" * 64) is None
        stats = cache.stats()
        assert stats["peer_hits"] == 1
        assert stats["peer_misses"] == 1


class TestConcurrency:
    @settings(
        max_examples=5,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        seeds=st.lists(st.integers(min_value=0, max_value=3), min_size=8, max_size=16),
        threads=st.integers(min_value=2, max_value=6),
    )
    def test_hammered_submit_stays_consistent(self, seeds, threads):
        """Many threads, duplicate + parameter-varied circuits: every
        answer matches a cold compile, counters add up, bounds hold.

        Each distinct circuit is warmed once before the hammer -- without
        that, a first wave of threads can all miss before the first store
        lands (compilation is slow, the race window real), which makes
        exact hit counts non-deterministic."""
        target = Target.preset("linear:4")
        cache = ResultCache(max_entries=64)
        circuits = {seed: _ansatz(_random_params(seed)) for seed in set(seeds)}
        with CompileService(
            mode="serial",
            pipeline="preset",
            optimization_level=1,
            result_cache=cache,
        ) as service:
            for circuit in circuits.values():
                service.submit(circuit, target=target).result()

            def one(seed):
                return service.submit(circuits[seed], target=target).result()

            with ThreadPoolExecutor(max_workers=threads) as pool:
                results = list(pool.map(one, seeds))

        cold = {
            seed: _compile_once(circuit, target)
            for seed, circuit in circuits.items()
        }
        for seed, result in zip(seeds, results):
            _assert_gate_exact(result.circuit, cold[seed].circuit)

        stats = cache.stats()
        assert stats["entries"] <= 64
        # with every distinct circuit warmed first, every hammered
        # submission is served from the cache
        assert stats["hits"] + stats["template_hits"] >= len(seeds)

    def test_concurrent_stores_and_lookups_no_corruption(self, target):
        cache = ResultCache(max_entries=8)
        tp = target.to_payload()
        payloads = [
            circuit_to_payload(_ansatz(_random_params(seed))) for seed in range(16)
        ]
        stop = threading.Event()
        errors = []

        def stormer(offset):
            try:
                i = offset
                while not stop.is_set():
                    payload = payloads[i % len(payloads)]
                    cache.store(payload, tp, OPTIONS_KEY, (f"r{i}", {}, {}, 0.0, {}))
                    cache.lookup(payload, tp, OPTIONS_KEY)
                    i += 1
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        workers = [threading.Thread(target=stormer, args=(k,)) for k in range(4)]
        for worker in workers:
            worker.start()
        time.sleep(0.3)
        stop.set()
        for worker in workers:
            worker.join(timeout=5.0)
        assert not errors
        assert cache.stats()["entries"] <= 8
