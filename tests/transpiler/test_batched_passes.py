"""Serial-vs-batched parity for the rewired transpiler passes.

``ConsolidateBlocks(batched=True)`` is held to **bit-identical** output
against the serial reference path (the batched fold reduction reproduces
the serial matmuls exactly, and the Weyl synthesis is deterministic given
identical block matrices).  ``Optimize1qGates`` is held to identical
structure with angles within ``1e-12`` (vectorized ``arctan2`` may round
the last ulp differently from libm's -- see the pass docstring).
"""

import numpy as np
import pytest

from repro.circuit import QuantumCircuit
from repro.transpiler.cache import AnalysisCache
from repro.transpiler.passes import ConsolidateBlocks, Optimize1qGates
from repro.transpiler.passmanager import PropertySet

from tests.helpers import assert_unitarily_equal


def random_circuit(
    seed: int, num_qubits: int = 4, depth: int = 40, measures: bool = True
) -> QuantumCircuit:
    """A random mix of 1q/2q gates with barriers and (optional) fences."""
    rng = np.random.default_rng(seed)
    circuit = QuantumCircuit(num_qubits, num_qubits)
    for _ in range(depth):
        roll = rng.random()
        if roll < 0.30:
            circuit.u3(
                float(rng.uniform(0, np.pi)),
                float(rng.uniform(-np.pi, np.pi)),
                float(rng.uniform(-np.pi, np.pi)),
                int(rng.integers(num_qubits)),
            )
        elif roll < 0.45:
            gate = rng.choice(["h", "s", "t", "x", "z", "sx"])
            getattr(circuit, gate)(int(rng.integers(num_qubits)))
        elif roll < 0.55:
            circuit.rz(float(rng.uniform(-np.pi, np.pi)), int(rng.integers(num_qubits)))
        elif roll < 0.90:
            a, b = (int(q) for q in rng.choice(num_qubits, size=2, replace=False))
            gate = rng.choice(["cx", "cz", "swap", "iswap"])
            getattr(circuit, gate)(a, b)
        elif roll < 0.95:
            circuit.barrier()
        elif measures:
            qubit = int(rng.integers(num_qubits))
            circuit.measure(qubit, qubit)
    return circuit


def run_both(pass_factory, circuit):
    batched = pass_factory(batched=True).run(circuit, PropertySet())
    serial = pass_factory(batched=False).run(circuit, PropertySet())
    return batched, serial


def assert_bit_identical(a: QuantumCircuit, b: QuantumCircuit) -> None:
    assert a.global_phase == b.global_phase
    assert len(a.data) == len(b.data)
    for left, right in zip(a.data, b.data):
        assert left.operation.name == right.operation.name
        assert left.qubits == right.qubits
        assert left.clbits == right.clbits
        assert list(left.operation.params) == list(right.operation.params)


def assert_structure_and_angles(a: QuantumCircuit, b: QuantumCircuit) -> None:
    assert abs(a.global_phase - b.global_phase) < 1e-12
    assert len(a.data) == len(b.data)
    for left, right in zip(a.data, b.data):
        assert left.operation.name == right.operation.name
        assert left.qubits == right.qubits
        assert left.clbits == right.clbits
        assert np.allclose(
            list(left.operation.params), list(right.operation.params), atol=1e-12
        )


class TestConsolidateParity:
    @pytest.mark.parametrize("seed", range(25))
    def test_bit_identical_on_random_circuits(self, seed):
        circuit = random_circuit(seed)
        batched, serial = run_both(
            lambda batched: ConsolidateBlocks(batched=batched), circuit
        )
        assert_bit_identical(batched, serial)

    @pytest.mark.parametrize("seed", range(5))
    def test_forced_resynthesis_parity(self, seed):
        circuit = random_circuit(seed + 100, num_qubits=3, depth=30)
        batched, serial = run_both(
            lambda batched: ConsolidateBlocks(force=True, batched=batched), circuit
        )
        assert_bit_identical(batched, serial)

    def test_batched_preserves_semantics(self):
        circuit = random_circuit(7, measures=False)
        out = ConsolidateBlocks(batched=True).run(circuit, PropertySet())
        assert_unitarily_equal(circuit, out)

    def test_empty_and_trivial_circuits(self):
        for circuit in (QuantumCircuit(2), QuantumCircuit(1)):
            batched, serial = run_both(
                lambda batched: ConsolidateBlocks(batched=batched), circuit
            )
            assert_bit_identical(batched, serial)
        single = QuantumCircuit(2)
        single.cx(0, 1)
        batched, serial = run_both(
            lambda batched: ConsolidateBlocks(batched=batched), single
        )
        assert_bit_identical(batched, serial)

    def test_bulk_matrix_lookup_hits_cache(self):
        circuit = QuantumCircuit(2)
        for _ in range(6):
            circuit.cx(0, 1)
            circuit.h(0)
        cache = AnalysisCache()
        props = PropertySet({AnalysisCache.PROPERTY_KEY: cache})
        ConsolidateBlocks(batched=True).run(circuit, props)
        # 12 gate operands resolve to 2 distinct matrices: h from the
        # standard table, cx (a ControlledGate) constructed exactly once
        assert cache.matrix_requests >= 12
        assert cache.matrix_constructions == 1


class TestOptimize1qParity:
    @pytest.mark.parametrize("seed", range(25))
    def test_structure_and_angles_on_random_circuits(self, seed):
        circuit = random_circuit(seed + 300)
        batched, serial = run_both(
            lambda batched: Optimize1qGates(batched=batched), circuit
        )
        assert_structure_and_angles(batched, serial)

    @pytest.mark.parametrize("seed", range(5))
    def test_batched_preserves_semantics(self, seed):
        circuit = random_circuit(seed + 400, measures=False)
        out = Optimize1qGates(batched=True).run(circuit, PropertySet())
        assert_unitarily_equal(circuit, out)

    def test_pure_1q_runs_collapse(self):
        circuit = QuantumCircuit(1)
        for _ in range(10):
            circuit.h(0)
            circuit.t(0)
        batched, serial = run_both(
            lambda batched: Optimize1qGates(batched=batched), circuit
        )
        assert len(batched.data) == 1
        assert_structure_and_angles(batched, serial)

    def test_empty_circuit(self):
        batched, serial = run_both(
            lambda batched: Optimize1qGates(batched=batched), QuantumCircuit(3)
        )
        assert_bit_identical(batched, serial)

    def test_identity_run_disappears(self):
        circuit = QuantumCircuit(1)
        circuit.x(0)
        circuit.x(0)
        out = Optimize1qGates(batched=True).run(circuit, PropertySet())
        assert len(out.data) == 0
