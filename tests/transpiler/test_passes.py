"""Tests for the standard transpiler passes."""

import numpy as np

from repro.circuit import QuantumCircuit
from repro.transpiler.passmanager import PropertySet
from repro.transpiler.passes import (
    CommutativeCancellation,
    ConsolidateBlocks,
    CXCancellation,
    Optimize1qGates,
    RemoveDiagonalGatesBeforeMeasure,
    Unroller,
)

from tests.helpers import assert_unitarily_equal


def run_pass(pass_, circuit):
    return pass_.run(circuit, PropertySet())


class TestUnroller:
    def test_lowers_to_basis(self):
        circuit = QuantumCircuit(3)
        circuit.h(0)
        circuit.ccx(0, 1, 2)
        circuit.swap(0, 2)
        out = run_pass(Unroller(), circuit)
        assert set(out.count_ops()) <= {"u1", "u2", "u3", "id", "cx"}

    def test_preserves_unitary(self):
        circuit = QuantumCircuit(3)
        circuit.h(0)
        circuit.ccx(0, 1, 2)
        circuit.cswap(0, 1, 2)
        circuit.rz(0.3, 1)
        circuit.swap(1, 2)
        out = run_pass(Unroller(), circuit)
        assert_unitarily_equal(circuit, out)

    def test_keeps_requested_gates(self):
        circuit = QuantumCircuit(2)
        circuit.swap(0, 1)
        circuit.swapz(0, 1)
        out = run_pass(Unroller(("u1", "u2", "u3", "cx", "swap", "swapz")), circuit)
        assert out.count_ops() == {"swap": 1, "swapz": 1}

    def test_mcu1_gray_code(self):
        circuit = QuantumCircuit(4)
        from repro.gates import MCU1Gate

        circuit.append(MCU1Gate(0.7, 3), (0, 1, 2, 3))
        out = run_pass(Unroller(), circuit)
        assert set(out.count_ops()) <= {"u1", "u2", "u3", "cx"}
        assert_unitarily_equal(circuit, out)

    def test_unitary_gate_synthesis(self):
        from repro.gates import UnitaryGate
        from repro.linalg.random import random_unitary

        circuit = QuantumCircuit(2)
        circuit.append(UnitaryGate(random_unitary(4, 0)), (0, 1))
        out = run_pass(Unroller(), circuit)
        assert set(out.count_ops()) <= {"u1", "u2", "u3", "cx"}
        assert_unitarily_equal(circuit, out)

    def test_measure_and_directives_pass_through(self):
        circuit = QuantumCircuit(1, 1)
        circuit.annotate_zero(0)
        circuit.barrier()
        circuit.measure(0, 0)
        out = run_pass(Unroller(), circuit)
        assert out.count_ops() == {"annot": 1, "barrier": 1, "measure": 1}


class TestOptimize1q:
    def test_merges_run(self):
        circuit = QuantumCircuit(1)
        circuit.h(0)
        circuit.t(0)
        circuit.h(0)
        circuit.s(0)
        out = run_pass(Optimize1qGates(), circuit)
        assert out.size() == 1
        assert_unitarily_equal(circuit, out)

    def test_cancels_to_identity(self):
        circuit = QuantumCircuit(1)
        circuit.h(0)
        circuit.h(0)
        out = run_pass(Optimize1qGates(), circuit)
        assert out.size() == 0

    def test_diagonal_becomes_u1(self):
        circuit = QuantumCircuit(1)
        circuit.t(0)
        circuit.s(0)
        out = run_pass(Optimize1qGates(), circuit)
        assert out.count_ops() == {"u1": 1}
        assert_unitarily_equal(circuit, out)

    def test_pi_half_becomes_u2(self):
        circuit = QuantumCircuit(1)
        circuit.h(0)
        out = run_pass(Optimize1qGates(), circuit)
        assert out.count_ops() == {"u2": 1}

    def test_cx_fences_runs(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.cx(0, 1)
        circuit.h(0)
        out = run_pass(Optimize1qGates(), circuit)
        assert out.count_ops()["u2"] == 2
        assert_unitarily_equal(circuit, out)

    def test_annotation_fences_runs(self):
        circuit = QuantumCircuit(1)
        circuit.h(0)
        circuit.annotate(0, 1.0, 0.5)
        circuit.h(0)
        out = run_pass(Optimize1qGates(), circuit)
        assert out.count_ops()["u2"] == 2

    def test_phase_tracked(self):
        circuit = QuantumCircuit(1)
        circuit.rz(0.8, 0)
        circuit.rx(0.2, 0)
        out = run_pass(Optimize1qGates(), circuit)
        assert_unitarily_equal(circuit, out)


class TestCancellation:
    def test_cx_pair_cancels(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        circuit.cx(0, 1)
        out = run_pass(CXCancellation(), circuit)
        assert out.size() == 0

    def test_different_direction_kept(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        circuit.cx(1, 0)
        out = run_pass(CXCancellation(), circuit)
        assert out.count_ops()["cx"] == 2

    def test_interposed_gate_blocks(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        circuit.h(1)
        circuit.cx(0, 1)
        out = run_pass(CXCancellation(), circuit)
        assert out.count_ops()["cx"] == 2

    def test_cz_symmetric_cancel(self):
        circuit = QuantumCircuit(2)
        circuit.cz(0, 1)
        circuit.cz(1, 0)
        out = run_pass(CXCancellation(), circuit)
        assert out.size() == 0

    def test_swap_pair_cancels(self):
        circuit = QuantumCircuit(2)
        circuit.swap(0, 1)
        circuit.swap(1, 0)
        out = run_pass(CXCancellation(), circuit)
        assert out.size() == 0

    def test_commutative_through_control(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        circuit.u1(0.3, 0)  # diagonal on control commutes
        circuit.cx(0, 1)
        out = run_pass(CommutativeCancellation(), circuit)
        assert out.count_ops().get("cx", 0) == 0
        assert_unitarily_equal(circuit, out)

    def test_commutative_through_shared_target(self):
        circuit = QuantumCircuit(3)
        circuit.cx(0, 2)
        circuit.cx(1, 2)  # shares target: commutes
        circuit.cx(0, 2)
        out = run_pass(CommutativeCancellation(), circuit)
        assert out.count_ops()["cx"] == 1
        assert_unitarily_equal(circuit, out)

    def test_commutative_blocked_by_h(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        circuit.h(0)
        circuit.cx(0, 1)
        out = run_pass(CommutativeCancellation(), circuit)
        assert out.count_ops()["cx"] == 2


class TestConsolidate:
    def test_merges_cx_ladder(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        circuit.rz(0.3, 1)
        circuit.cx(0, 1)
        circuit.rx(0.2, 0)
        circuit.cx(0, 1)
        circuit.cx(0, 1)
        out = run_pass(ConsolidateBlocks(), circuit)
        assert out.count_ops().get("cx", 0) <= 2
        assert_unitarily_equal(circuit, out)

    def test_swap_cx_block_melts(self):
        circuit = QuantumCircuit(2)
        circuit.swap(0, 1)
        circuit.cx(0, 1)
        out = run_pass(ConsolidateBlocks(), circuit)
        # swap+cx is a 2-CNOT class block
        total = sum(
            {"cx": 1, "swap": 3, "swapz": 2}.get(name, 0) * count
            for name, count in out.count_ops().items()
        )
        assert total <= 2
        assert_unitarily_equal(circuit, out)

    def test_keeps_unprofitable_blocks(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        out = run_pass(ConsolidateBlocks(), circuit)
        assert out.count_ops() == {"cx": 1}

    def test_measure_fences_block(self):
        circuit = QuantumCircuit(2, 1)
        circuit.cx(0, 1)
        circuit.measure(1, 0)
        circuit.cx(0, 1)
        out = run_pass(ConsolidateBlocks(), circuit)
        assert out.count_ops()["cx"] == 2

    def test_preserves_unitary_random(self):
        from tests.helpers import random_circuit

        for seed in range(5):
            circuit = random_circuit(3, 25, seed=seed, gate_set="simple")
            out = run_pass(ConsolidateBlocks(), circuit)
            assert_unitarily_equal(circuit, out)


class TestRemoveDiagonal:
    def test_removes_before_measure(self):
        circuit = QuantumCircuit(1, 1)
        circuit.h(0)
        circuit.t(0)
        circuit.rz(0.3, 0)
        circuit.measure(0, 0)
        out = run_pass(RemoveDiagonalGatesBeforeMeasure(), circuit)
        assert out.count_ops() == {"h": 1, "measure": 1}

    def test_keeps_non_diagonal(self):
        circuit = QuantumCircuit(1, 1)
        circuit.t(0)
        circuit.h(0)
        circuit.measure(0, 0)
        out = run_pass(RemoveDiagonalGatesBeforeMeasure(), circuit)
        assert out.count_ops() == {"t": 1, "h": 1, "measure": 1}
