"""Tests for the shared AnalysisCache and the standard-gate matrix table.

Includes the headline acceptance check of the scheduler/cache rework: on
the paper's Table II workloads, a pipeline run with a shared cache
constructs far fewer matrices than the seed path did (which built one per
``to_matrix()`` request), and a second run over the same cache constructs
fewer still -- with bit-identical output circuits.
"""

import numpy as np
import pytest

from repro.algorithms import (
    grover_circuit,
    quantum_phase_estimation,
    quantum_volume_circuit,
    ry_ansatz,
)
from repro.backends import FakeMelbourne
from repro.circuit import QuantumCircuit
from repro.gates import CXGate, HGate, U1Gate, U3Gate, XGate
from repro.gates.matrices import STANDARD_GATE_MATRICES, standard_gate_matrix
from repro.rpo import rpo_pass_manager
from repro.transpiler import AnalysisCache
from repro.transpiler.passmanager import PropertySet


class TestStandardGateTable:
    def test_fixed_gates_share_one_matrix(self):
        assert XGate().to_matrix() is XGate().to_matrix()
        assert HGate().to_matrix() is standard_gate_matrix("h")
        assert CXGate().to_matrix() is standard_gate_matrix("cx")

    def test_table_matrices_are_immutable(self):
        with pytest.raises(ValueError):
            XGate().to_matrix()[0, 0] = 5.0

    def test_table_matches_gate_semantics(self):
        for name, matrix in STANDARD_GATE_MATRICES.items():
            dim = matrix.shape[0]
            assert np.allclose(matrix @ matrix.conj().T, np.eye(dim)), name

    def test_open_control_not_table_backed(self):
        open_cx = CXGate(ctrl_state=0)
        matrix = open_cx.to_matrix()
        assert matrix is not standard_gate_matrix("cx")
        # X applied when control (qubit 0) is |0>: |00> <-> |10>
        expected = np.eye(4, dtype=complex)[[2, 1, 0, 3]]
        assert np.allclose(matrix, expected)


class TestMatrixCache:
    def test_hit_returns_same_object(self):
        cache = AnalysisCache()
        first = cache.matrix(U3Gate(0.1, 0.2, 0.3))
        second = cache.matrix(U3Gate(0.1, 0.2, 0.3))
        assert first is second
        assert cache.stats["matrix_misses"] == 1
        assert cache.stats["matrix_hits"] == 1

    def test_distinct_params_distinct_entries(self):
        cache = AnalysisCache()
        a = cache.matrix(U1Gate(0.5))
        b = cache.matrix(U1Gate(0.6))
        assert not np.allclose(a, b)
        assert cache.stats["matrix_misses"] == 2

    def test_table_gates_are_not_constructions(self):
        cache = AnalysisCache()
        cache.matrix(XGate())
        cache.matrix(XGate())
        assert cache.stats["matrix_table"] == 2
        assert cache.matrix_constructions == 0

    def test_unitary_gate_uncached(self):
        from repro.gates import UnitaryGate

        cache = AnalysisCache()
        gate = UnitaryGate(np.eye(2))
        cache.matrix(gate)
        cache.matrix(gate)
        assert cache.stats["matrix_uncached"] == 2

    def test_cached_matrix_matches_to_matrix(self):
        cache = AnalysisCache()
        for gate in (U3Gate(1.0, 2.0, 3.0), U1Gate(0.25), CXGate()):
            assert np.allclose(cache.matrix(gate), gate.to_matrix())


class TestCircuitViews:
    def _swap_pair_circuit(self):
        circuit = QuantumCircuit(3)
        circuit.cx(0, 1)
        circuit.swap(0, 1)
        circuit.h(2)
        return circuit

    def test_adjacency_cached_by_structure(self):
        from repro.rpo.adjacency import same_pair_adjacent_indices

        cache = AnalysisCache()
        circuit = self._swap_pair_circuit()
        first = cache.same_pair_adjacency(circuit)
        assert first == same_pair_adjacent_indices(circuit)
        # an equal-structure copy hits without recomputation
        cache.same_pair_adjacency(circuit.copy())
        assert cache.stats["adjacency_hits"] == 1
        assert cache.stats["adjacency_misses"] == 1

    def test_adjacency_distinguishes_structures(self):
        cache = AnalysisCache()
        cache.same_pair_adjacency(self._swap_pair_circuit())
        other = self._swap_pair_circuit()
        other.x(2)
        cache.same_pair_adjacency(other)
        assert cache.stats["adjacency_misses"] == 2

    def test_wire_indices(self):
        cache = AnalysisCache()
        circuit = self._swap_pair_circuit()
        wires = cache.wire_indices(circuit)
        assert wires == {0: [0, 1], 1: [0, 1], 2: [2]}
        cache.wire_indices(circuit.copy())
        assert cache.stats["wire_indices_hits"] == 1

    def test_circuit_views_are_bounded(self):
        from repro.transpiler.cache import _MAX_CIRCUIT_VIEWS

        cache = AnalysisCache()
        for width in range(_MAX_CIRCUIT_VIEWS + 10):
            cache.wire_indices(QuantumCircuit(width % 100 + 1, width))
        assert len(cache._wire_indices) <= _MAX_CIRCUIT_VIEWS

    def test_dag_cached_by_identity(self):
        cache = AnalysisCache()
        circuit = self._swap_pair_circuit()
        dag = cache.dag(circuit)
        assert cache.dag(circuit) is dag
        # a copy shares instruction objects -> same structural identity
        assert cache.dag(circuit.copy()) is dag
        assert cache.stats["dag_misses"] == 1


class TestWarmStartSnapshots:
    def _warm_cache(self):
        cache = AnalysisCache()
        cache.matrix(U3Gate(0.1, 0.2, 0.3))
        cache.matrix(U1Gate(0.5))
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        circuit.swap(0, 1)
        cache.same_pair_adjacency(circuit)
        cache.wire_indices(circuit)
        cache.dag(circuit)
        return cache

    def test_export_import_round_trip(self):
        import pickle

        source = self._warm_cache()
        snapshot = pickle.loads(pickle.dumps(source.export_snapshot()))
        target = AnalysisCache()
        adopted = target.import_snapshot(snapshot)
        assert adopted == len(source._matrices) + 2  # + adjacency + wires
        assert set(target._matrices) == set(source._matrices)
        assert set(target._adjacency) == set(source._adjacency)
        assert set(target._wire_indices) == set(source._wire_indices)
        # identity-keyed DAG views never travel
        assert not target._dags

    def test_imported_matrices_hit_and_stay_immutable(self):
        source = self._warm_cache()
        target = AnalysisCache()
        target.import_snapshot(source.export_snapshot())
        matrix = target.matrix(U3Gate(0.1, 0.2, 0.3))
        assert target.stats["matrix_hits"] == 1
        assert target.stats["matrix_misses"] == 0
        assert not matrix.flags.writeable
        assert np.allclose(matrix, U3Gate(0.1, 0.2, 0.3).to_matrix())

    def test_delta_export_is_incremental(self):
        cache = AnalysisCache()
        cache.import_snapshot(self._warm_cache().export_snapshot())
        first_delta = cache.export_snapshot(delta_only=True)
        assert not first_delta["matrices"]  # imported entries are not echoed

        cache.matrix(U3Gate(0.7, 0.8, 0.9))
        second_delta = cache.export_snapshot(delta_only=True)
        assert len(second_delta["matrices"]) == 1
        assert second_delta["stats"].get("matrix_misses") == 1

        third_delta = cache.export_snapshot(delta_only=True)
        assert not third_delta["matrices"]  # already exported
        assert not third_delta["stats"].get("matrix_misses")

    def test_import_merges_stats(self):
        target = AnalysisCache()
        cache = AnalysisCache()
        cache.matrix(U1Gate(0.5))
        delta = cache.export_snapshot(delta_only=True)
        target.import_snapshot(delta)
        assert target.stats["matrix_misses"] == 1

    def test_existing_entries_win_on_import(self):
        target = AnalysisCache()
        local = target.matrix(U1Gate(0.5))
        source = AnalysisCache()
        source.matrix(U1Gate(0.5))
        target.import_snapshot(source.export_snapshot())
        assert target.matrix(U1Gate(0.5)) is local

    def test_format_version_mismatch_warns_and_skips(self):
        cache = AnalysisCache()
        with pytest.warns(RuntimeWarning, match="format version"):
            assert cache.import_snapshot({"version": 99}) == 0
        assert not cache._matrices
        assert cache.stats["snapshot_rejected"] == 1
        assert "99" in cache.snapshot_skipped

    def test_library_version_mismatch_warns_with_both_fingerprints(self):
        """Regression test: a snapshot written by a different library
        version must be ignored without raising -- but the rejection must
        be observable (warning naming both fingerprints + skipped flag),
        so operators can tell why warm-start did not kick in."""
        from repro.transpiler.cache import library_fingerprint

        source = self._warm_cache()
        snapshot = source.export_snapshot()
        snapshot["library"] = "repro-0.0.0-from-the-future/snapshot-1"
        cache = AnalysisCache()
        assert cache.snapshot_skipped is None
        with pytest.warns(RuntimeWarning) as caught:
            assert cache.import_snapshot(snapshot) == 0
        message = str(caught[0].message)
        assert "repro-0.0.0-from-the-future/snapshot-1" in message
        assert library_fingerprint() in message
        assert not cache._matrices
        assert cache.stats["snapshot_rejected"] == 1
        assert "repro-0.0.0-from-the-future" in cache.snapshot_skipped

    def test_matching_library_stamp_is_accepted(self):
        from repro.transpiler.cache import library_fingerprint

        snapshot = self._warm_cache().export_snapshot()
        snapshot["library"] = library_fingerprint()
        cache = AnalysisCache()
        assert cache.import_snapshot(snapshot) > 0

    def test_garbage_snapshot_is_nonfatal_noop(self):
        cache = AnalysisCache()
        with pytest.warns(RuntimeWarning):
            assert cache.import_snapshot("not a snapshot") == 0
        with pytest.warns(RuntimeWarning):
            assert cache.import_snapshot({}) == 0


class TestDiskSnapshots:
    def _warm_cache(self):
        cache = AnalysisCache()
        cache.matrix(U3Gate(0.1, 0.2, 0.3))
        cache.matrix(U1Gate(0.5))
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        cache.same_pair_adjacency(circuit)
        return cache

    def test_save_load_round_trip(self, tmp_path):
        source = self._warm_cache()
        path = tmp_path / "cache.snap"
        source.save(path)
        loaded = AnalysisCache.load(path)
        assert set(loaded._matrices) == set(source._matrices)
        assert set(loaded._adjacency) == set(source._adjacency)
        # warm-started entries hit immediately
        loaded.matrix(U3Gate(0.1, 0.2, 0.3))
        assert loaded.stats["matrix_hits"] == 1

    def test_load_missing_file_is_silent(self, tmp_path):
        """First boot: no snapshot file yet is expected, not warn-worthy."""
        import warnings as warnings_module

        cache = AnalysisCache()
        with warnings_module.catch_warnings():
            warnings_module.simplefilter("error")
            assert cache.load_snapshot(tmp_path / "nope.snap") == 0
        assert not cache._matrices
        assert cache.snapshot_skipped is None

    def test_load_corrupt_file_warns(self, tmp_path):
        path = tmp_path / "corrupt.snap"
        path.write_bytes(b"this is not a pickle")
        cache = AnalysisCache()
        with pytest.warns(RuntimeWarning, match="could not read"):
            assert cache.load_snapshot(path) == 0
        assert cache.snapshot_skipped is not None

    def test_load_other_library_version_warns(self, tmp_path):
        """Regression test for the persisted flavour of the version
        tolerance: a disk snapshot from another library version must leave
        the cache cold without raising, and say so."""
        import pickle

        source = self._warm_cache()
        path = tmp_path / "cache.snap"
        source.save(path)
        with open(path, "rb") as handle:
            snapshot = pickle.load(handle)
        snapshot["library"] = "repro-9.9.9/snapshot-1"
        with open(path, "wb") as handle:
            pickle.dump(snapshot, handle)
        with pytest.warns(RuntimeWarning, match="repro-9.9.9"):
            loaded = AnalysisCache.load(path)
        assert not loaded._matrices
        assert loaded.stats["snapshot_rejected"] == 1

    def test_save_stamps_library_fingerprint(self, tmp_path):
        import pickle

        from repro.transpiler.cache import library_fingerprint

        path = tmp_path / "cache.snap"
        self._warm_cache().save(path)
        with open(path, "rb") as handle:
            snapshot = pickle.load(handle)
        assert snapshot["library"] == library_fingerprint()
        assert snapshot["version"] == AnalysisCache.SNAPSHOT_VERSION


def _table2_workloads():
    return [
        ("qpe", quantum_phase_estimation(3)),
        ("vqe", ry_ansatz(4, depth=2, seed=11)),
        ("qv", quantum_volume_circuit(4, seed=5)),
        ("grover", grover_circuit(3, marked=5, iterations=1)),
    ]


def _run_rpo(circuit, backend, cache=None, seed=0):
    pm = rpo_pass_manager(
        backend.coupling_map, backend_properties=backend.properties, seed=seed
    )
    return pm.run_with_result(
        circuit.copy(), PropertySet(), analysis_cache=cache
    )


def _assert_identical(a: QuantumCircuit, b: QuantumCircuit):
    assert abs(a.global_phase - b.global_phase) < 1e-9
    assert len(a.data) == len(b.data)
    for inst_a, inst_b in zip(a.data, b.data):
        assert inst_a.operation.name == inst_b.operation.name
        assert inst_a.qubits == inst_b.qubits
        assert inst_a.clbits == inst_b.clbits
        assert np.allclose(inst_a.operation.params, inst_b.operation.params)


class TestSharedCacheAcceptance:
    """The acceptance criterion of the scheduler/cache rework."""

    @pytest.mark.parametrize(
        "name,circuit",
        _table2_workloads(),
        ids=lambda v: v if isinstance(v, str) else "",
    )
    def test_second_run_constructs_fewer_matrices(self, name, circuit):
        backend = FakeMelbourne()
        shared = AnalysisCache()

        first = _run_rpo(circuit, backend, cache=shared)
        first_constructions = shared.matrix_constructions
        first_requests = shared.matrix_requests
        # the seed path built one matrix per request; the cache must beat it
        assert 0 < first_constructions < first_requests

        second = _run_rpo(circuit, backend, cache=shared)
        second_constructions = shared.matrix_constructions - first_constructions
        assert second_constructions < first_constructions

        # caching must not change the compiled circuits
        fresh = _run_rpo(circuit, backend, cache=AnalysisCache())
        _assert_identical(first.circuit, fresh.circuit)
        _assert_identical(second.circuit, fresh.circuit)
