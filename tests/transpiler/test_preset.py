"""End-to-end tests of the preset optimization levels."""

import pytest

from repro.backends import FakeMelbourne
from repro.circuit import QuantumCircuit
from repro.transpiler import CouplingMap, transpile

from tests.helpers import assert_same_distribution, random_circuit


@pytest.fixture(scope="module")
def melbourne():
    return FakeMelbourne()


class TestTranspileLevels:
    @pytest.mark.parametrize("level", [0, 1, 2, 3])
    def test_distribution_preserved(self, level):
        cmap = CouplingMap.line(4)
        circuit = random_circuit(4, 20, seed=3, measure=True)
        out = transpile(circuit, coupling_map=cmap, optimization_level=level, seed=1)
        assert_same_distribution(circuit, out)

    @pytest.mark.parametrize("level", [0, 1, 2, 3])
    def test_respects_coupling(self, level):
        cmap = CouplingMap.ring(5)
        circuit = random_circuit(5, 25, seed=4, measure=True)
        out = transpile(circuit, coupling_map=cmap, optimization_level=level, seed=2)
        for instruction in out.data:
            if len(instruction.qubits) == 2:
                assert cmap.are_coupled(*instruction.qubits)

    @pytest.mark.parametrize("level", [0, 1, 2, 3])
    def test_basis_gates_only(self, level):
        cmap = CouplingMap.line(3)
        circuit = random_circuit(3, 15, seed=5, measure=True)
        out = transpile(circuit, coupling_map=cmap, optimization_level=level, seed=0)
        assert set(out.count_ops()) <= {"u1", "u2", "u3", "id", "cx", "measure"}

    def test_level3_not_worse_than_level0(self, melbourne):
        circuit = random_circuit(5, 40, seed=6, measure=True)
        cx0 = transpile(
            circuit, backend=melbourne, optimization_level=0, seed=3
        ).count_ops().get("cx", 0)
        cx3 = transpile(
            circuit, backend=melbourne, optimization_level=3, seed=3
        ).count_ops().get("cx", 0)
        assert cx3 <= cx0

    def test_backend_argument(self, melbourne):
        circuit = QuantumCircuit(3, 3)
        circuit.h(0)
        circuit.cx(0, 1)
        circuit.cx(1, 2)
        circuit.measure_all()
        out = transpile(circuit, backend=melbourne, optimization_level=3, seed=0)
        assert out.num_qubits == melbourne.num_qubits
        assert_same_distribution(circuit, out)

    def test_invalid_level(self, melbourne):
        from repro.transpiler import TranspilerError

        with pytest.raises(TranspilerError):
            transpile(QuantumCircuit(1), backend=melbourne, optimization_level=9)

    def test_initial_layout(self, melbourne):
        from repro.transpiler import Layout

        circuit = QuantumCircuit(2, 2)
        circuit.cx(0, 1)
        circuit.measure_all()
        layout = Layout({0: 5, 1: 6})
        out = transpile(
            circuit,
            backend=melbourne,
            optimization_level=1,
            seed=0,
            initial_layout=layout,
        )
        used = {q for inst in out.data for q in inst.qubits}
        assert used <= {5, 6}
