"""Tests for the long-lived ``CompileService``.

Covers the lifecycle contract (lazy pool, async submit, graceful
shutdown), output parity with plain ``transpile()``, worker cache-delta
harvesting, disk-backed snapshot persistence (the warm-start-survives-
restart acceptance check) and heterogeneous per-job targets.
"""

import numpy as np
import pytest

from repro.algorithms import quantum_phase_estimation, ry_ansatz
from repro.backends import FakeMelbourne
from repro.circuit import QuantumCircuit
from repro.transpiler import (
    AnalysisCache,
    CompileService,
    Target,
    TranspilerError,
    transpile,
)


def _assert_identical(a: QuantumCircuit, b: QuantumCircuit):
    assert abs(a.global_phase - b.global_phase) < 1e-9
    assert len(a.data) == len(b.data)
    for inst_a, inst_b in zip(a.data, b.data):
        assert inst_a.operation.name == inst_b.operation.name
        assert inst_a.qubits == inst_b.qubits
        assert inst_a.clbits == inst_b.clbits
        assert np.allclose(inst_a.operation.params, inst_b.operation.params)


@pytest.fixture(scope="module")
def melbourne():
    return FakeMelbourne()


class TestLifecycle:
    def test_context_manager_round_trip(self, melbourne):
        with CompileService(mode="serial", pipeline="rpo") as service:
            result = service.submit(
                quantum_phase_estimation(3), target=melbourne.target(), seed=0
            ).result()
            assert result.circuit.count_ops()
        stats = service.stats()
        assert stats["submitted"] == stats["completed"] == 1

    def test_submit_after_shutdown_raises(self):
        service = CompileService(mode="serial")
        service.shutdown()
        with pytest.raises(TranspilerError, match="shut down"):
            service.submit(QuantumCircuit(2))

    def test_shutdown_is_idempotent(self):
        service = CompileService(mode="serial")
        service.shutdown()
        service.shutdown()

    def test_sequence_seed_rejected_as_service_default(self):
        """Regression: a sequence seed is a per-circuit schedule; adopted
        verbatim as the service default it would hand every job a tuple
        where the pipeline expects a scalar (and key the result cache on
        it).  ``map(seeds=[...])`` is the supported spelling."""
        from repro.transpiler.options import CompileOptions

        with pytest.raises(TranspilerError, match="sequence seed"):
            CompileService(
                mode="serial", options=CompileOptions(seed=[0, 1, 2])
            )

    def test_unknown_mode_rejected(self):
        with pytest.raises(TranspilerError, match="mode"):
            CompileService(mode="rocket")

    def test_pool_is_lazy_and_persistent(self):
        service = CompileService(mode="thread", max_workers=2)
        assert service._pool is None
        service.submit(QuantumCircuit(2)).result()
        pool = service._pool
        assert pool is not None
        service.submit(QuantumCircuit(2)).result()
        assert service._pool is pool  # same pool across submissions
        service.shutdown()

    def test_futures_resolve_out_of_submission_order(self):
        with CompileService(mode="thread", pipeline="level1") as service:
            futures = [
                service.submit(ry_ansatz(3, depth=2, seed=s), seed=s)
                for s in range(4)
            ]
            results = [f.result() for f in reversed(futures)]
        assert all(r.circuit.count_ops() for r in results)

    def test_failed_job_propagates_exception(self):
        with CompileService(mode="serial") as service:
            with pytest.raises(TranspilerError):
                service.submit(QuantumCircuit(2), pipeline="warpdrive").result()
        assert service.stats()["failed"] == 1

    def test_map_seed_length_mismatch(self):
        with CompileService(mode="serial") as service:
            with pytest.raises(TranspilerError, match="seeds"):
                service.map([QuantumCircuit(2)], seeds=[0, 1])


class TestParity:
    """Service output must be identical to plain serial transpile()."""

    @pytest.mark.parametrize("mode", ["serial", "thread", "process"])
    def test_modes_match_transpile(self, mode, melbourne):
        batch = [quantum_phase_estimation(3), ry_ansatz(4, depth=2, seed=11)]
        seeds = [0, 1]
        reference = transpile(
            [c.copy() for c in batch],
            backend=melbourne,
            pipeline="rpo",
            seed=seeds,
            executor="serial",
        )
        with CompileService(mode=mode, pipeline="rpo") as service:
            results = service.map(
                [c.copy() for c in batch],
                targets=melbourne.target(),
                seeds=seeds,
            )
        for expected, result in zip(reference, results):
            _assert_identical(expected, result.circuit)

    def test_transpile_routes_through_given_service(self, melbourne):
        batch = [quantum_phase_estimation(3) for _ in range(2)]
        with CompileService(mode="serial", pipeline="rpo") as service:
            via_service = transpile(
                [c.copy() for c in batch],
                backend=melbourne,
                pipeline="rpo",
                seed=[0, 1],
                service=service,
            )
        assert service.stats()["completed"] == 2
        direct = transpile(
            [c.copy() for c in batch],
            backend=melbourne,
            pipeline="rpo",
            seed=[0, 1],
            executor="serial",
        )
        for expected, got in zip(direct, via_service):
            _assert_identical(expected, got)

    def test_service_defaults_apply_through_transpile(self, melbourne):
        """Regression test: transpile(service=...) must not override the
        service's configured pipeline with transpile's own defaults."""
        circuit = quantum_phase_estimation(3)
        rpo_reference = transpile(
            circuit.copy(), backend=melbourne, pipeline="rpo", seed=0,
        )
        with CompileService(mode="serial", pipeline="rpo") as service:
            via_service = transpile(
                circuit.copy(), backend=melbourne, seed=0, service=service
            )
        _assert_identical(rpo_reference, via_service)

    def test_service_default_target_applies_through_transpile(self, melbourne):
        """Regression test: transpile(service=...) without any hardware
        argument must use the service's configured target, not silently
        fall back to all-to-all connectivity."""
        from tests.helpers import respects_coupling

        circuit = quantum_phase_estimation(3)
        with CompileService(
            mode="serial", pipeline="rpo", target=melbourne.target()
        ) as service:
            result = transpile(circuit.copy(), service=service, full_result=True)
        assert result.properties["target"] == melbourne.target()
        assert result.circuit.num_qubits == 15
        assert respects_coupling(result.circuit, melbourne.coupling_map)

    def test_explicit_basis_keeps_service_target_device(self, melbourne):
        """Regression test: basis_gates passed to transpile(service=...)
        must override the basis while keeping the service target's
        coupling map, not silently reroute for all-to-all connectivity."""
        circuit = quantum_phase_estimation(3)
        with CompileService(
            mode="serial", pipeline="level1", target=melbourne.target()
        ) as service:
            result = transpile(
                circuit.copy(),
                basis_gates=("u3", "cx"),
                service=service,
                full_result=True,
            )
        applied = result.properties["target"]
        assert applied.basis == ("u3", "cx")
        assert applied.coupling_map.edges == melbourne.coupling_map.edges
        assert result.circuit.num_qubits == 15

    def test_explicit_pipeline_still_overrides_service_default(self, melbourne):
        circuit = quantum_phase_estimation(3)
        level3_reference = transpile(
            circuit.copy(), backend=melbourne, pipeline="level3", seed=0
        )
        with CompileService(mode="serial", pipeline="rpo") as service:
            via_service = transpile(
                circuit.copy(),
                backend=melbourne,
                pipeline="level3",
                seed=0,
                service=service,
            )
        _assert_identical(level3_reference, via_service)

    def test_results_carry_target_and_metrics(self, melbourne):
        target = melbourne.target()
        with CompileService(mode="process", pipeline="rpo", max_workers=2) as service:
            result = service.submit(
                quantum_phase_estimation(3), target=target, seed=0
            ).result()
        assert result.properties["target"] == target
        assert result.metrics and result.loops
        assert result.analysis_cache is service.cache


class TestCacheHarvesting:
    def test_worker_deltas_land_in_parent_cache(self, melbourne):
        cache = AnalysisCache()
        with CompileService(
            mode="process", pipeline="rpo", analysis_cache=cache, max_workers=2
        ) as service:
            service.map(
                [quantum_phase_estimation(3) for _ in range(3)],
                targets=melbourne.target(),
                seeds=[0, 1, 2],
            )
        assert len(cache._matrices) > 0
        assert cache.stats.get("matrix_misses", 0) > 0  # shipped worker stats
        assert service.stats()["harvests"] > 0

    def test_harvest_interval_throttles_deltas(self, melbourne):
        # an hour-long interval means no job ever ships a delta
        with CompileService(
            mode="process",
            pipeline="level1",
            max_workers=2,
            harvest_interval=3600.0,
        ) as service:
            service.map(
                [quantum_phase_estimation(3) for _ in range(3)],
                targets=melbourne.target(),
                seeds=[0, 1, 2],
            )
            assert service.stats()["harvests"] == 0

    def test_harvested_entries_rebroadcast_to_workers(self, melbourne):
        """One worker's discoveries must reach the other live workers: a
        second batch's jobs carry the entries harvested from the first.
        Result caching is off so the repeat batch actually reaches the
        pool instead of being served from the compiled-result cache."""
        with CompileService(
            mode="process", pipeline="rpo", max_workers=2, result_cache=False
        ) as service:
            service.map(
                [quantum_phase_estimation(3) for _ in range(2)],
                targets=melbourne.target(),
                seeds=[0, 1],
            )
            assert service.stats()["syncs_sent"] == 0  # nothing harvested yet
            results = service.map(
                [quantum_phase_estimation(3) for _ in range(2)],
                targets=melbourne.target(),
                seeds=[0, 1],
            )
            assert service.stats()["syncs_sent"] > 0
        assert all(result.circuit.count_ops() for result in results)

    def test_shutdown_flushes_throttled_deltas(self, melbourne):
        """Regression test: with a long harvest interval, worker deltas
        must still reach the parent cache at shutdown (else a persisted
        snapshot would be cold)."""
        cache = AnalysisCache()
        service = CompileService(
            mode="process",
            pipeline="level1",
            analysis_cache=cache,
            max_workers=2,
            harvest_interval=3600.0,
        )
        service.map(
            [quantum_phase_estimation(3) for _ in range(3)],
            targets=melbourne.target(),
            seeds=[0, 1, 2],
        )
        assert service.stats()["harvests"] == 0  # throttle held them back
        service.shutdown()
        assert service.stats()["harvests"] > 0
        assert len(cache._matrices) > 0

    def test_heterogeneous_targets_through_process_pool(self, melbourne):
        targets = [melbourne.target(), Target.preset("linear:8")]
        batch = [quantum_phase_estimation(3), quantum_phase_estimation(3)]
        with CompileService(mode="process", pipeline="rpo", max_workers=2) as service:
            results = service.map(batch, targets=targets, seeds=[0, 0])
        assert [r.properties["target"] for r in results] == targets
        # each output respects its own device size
        assert results[0].circuit.num_qubits == 15
        assert results[1].circuit.num_qubits == 8


class TestChunkedDispatch:
    """Chunked job envelopes: several jobs per pool task, same answers."""

    def _batch(self, n=12):
        return [ry_ansatz(3, depth=2, seed=s) for s in range(n)]

    def test_chunked_map_matches_per_job_dispatch(self, melbourne):
        batch = self._batch()
        seeds = list(range(len(batch)))
        with CompileService(mode="serial", pipeline="level1") as service:
            reference = service.map(
                [c.copy() for c in batch], targets=melbourne.target(), seeds=seeds
            )
        with CompileService(
            mode="process", pipeline="level1", max_workers=2
        ) as service:
            chunked = service.map(
                [c.copy() for c in batch],
                targets=melbourne.target(),
                seeds=seeds,
                chunk_size=4,
            )
            stats = service.stats()
        assert stats["chunks"] == 3  # 12 jobs / 4 per chunk
        assert stats["submitted"] == stats["completed"] == len(batch)
        for expected, result in zip(reference, chunked):
            _assert_identical(expected.circuit, result.circuit)

    def test_auto_chunking_kicks_in_for_large_batches(self, melbourne):
        batch = self._batch(24)
        with CompileService(
            mode="process", pipeline="level1", max_workers=2
        ) as service:
            service.map(
                [c.copy() for c in batch],
                targets=melbourne.target(),
                seeds=list(range(len(batch))),
            )
            stats = service.stats()
        # auto policy: fewer pool tasks than jobs (chunks amortized)
        assert stats["chunks"] < len(batch)
        assert stats["completed"] == len(batch)

    def test_chunk_size_policy_bounds(self):
        service = CompileService(mode="process", max_workers=2)
        try:
            assert service.chunk_size_for(2) == 1  # pool absorbs it per-job
            assert service.chunk_size_for(200) >= 2
            assert service.chunk_size_for(100_000) <= 64
        finally:
            service.shutdown(save=False)
        serial = CompileService(mode="serial")
        assert serial.chunk_size_for(1000) == 1  # nothing to amortize
        serial.shutdown(save=False)

    def test_bad_job_fails_alone_inside_chunk(self, melbourne):
        """Regression guard for per-job error isolation: one unknown
        pipeline inside a chunk must fail only its own future."""
        batch = self._batch(4)
        with CompileService(
            mode="process", pipeline="level1", max_workers=2
        ) as service:
            resolved = [
                service._resolve(
                    c,
                    melbourne.target(),
                    {
                        "pipeline": None,
                        "optimization_level": None,
                        "seed": i,
                        "initial_layout": None,
                    },
                )
                for i, c in enumerate(batch)
            ]
            jobs = [
                (c, target, dict(settings))
                for c, (target, settings) in zip(batch, resolved)
            ]
            jobs[1][2]["pipeline"] = "warpdrive"
            futures = service._submit_chunk(jobs)
            for index, future in enumerate(futures):
                if index == 1:
                    with pytest.raises(TranspilerError, match="warpdrive"):
                        future.result()
                else:
                    assert future.result().circuit.count_ops()
            assert service.stats()["failed"] == 1
            assert service.stats()["completed"] == 3

    def test_submit_payloads_round_trip(self, melbourne):
        """The compile server's entry point: wire-form jobs in, identical
        results out, on both the process and serial paths."""
        from repro.circuit.serialization import circuit_to_payload

        circuit = quantum_phase_estimation(3)
        target = melbourne.target()
        job = (
            circuit_to_payload(circuit),
            target.to_payload(),
            {
                "pipeline": "rpo",
                "optimization_level": None,
                "seed": 0,
                "initial_layout": None,
            },
        )
        reference = transpile(
            circuit.copy(), backend=melbourne, pipeline="rpo", seed=0
        )
        for mode in ("serial", "process"):
            with CompileService(mode=mode, max_workers=2) as service:
                (future,) = service.submit_payloads([job])
                result = future.result()
            _assert_identical(reference, result.circuit)
            assert result.properties["target"] == target
        with CompileService(mode="serial") as service:
            assert service.submit_payloads([]) == []


class TestAutosave:
    def test_periodic_autosave_writes_snapshot_before_shutdown(
        self, tmp_path, melbourne
    ):
        import os
        import time

        path = tmp_path / "autosave.snap"
        service = CompileService(
            mode="serial",
            pipeline="level1",
            snapshot_path=path,
            autosave_interval=0.1,
        )
        service.map(
            [quantum_phase_estimation(3)], targets=melbourne.target(), seeds=[0]
        )
        deadline = time.time() + 10
        while not os.path.exists(path) and time.time() < deadline:
            time.sleep(0.05)
        assert os.path.exists(path)
        assert service.stats()["autosaves"] >= 1
        # the autosaved snapshot is already warm (not just an empty stamp)
        assert AnalysisCache.load(path)._matrices
        service.shutdown(save=False)

    def test_autosave_timer_stops_at_shutdown(self, tmp_path):
        service = CompileService(
            mode="serial", snapshot_path=tmp_path / "s.snap", autosave_interval=60.0
        )
        timer = service._autosave_timer
        assert timer is not None
        service.shutdown()
        assert service._autosave_timer is None
        assert not timer.is_alive()

    def test_no_autosave_without_snapshot_path(self):
        service = CompileService(mode="serial", autosave_interval=0.1)
        assert service._autosave_timer is None
        service.shutdown()

    def test_harvest_now_flushes_throttled_worker_deltas(self, melbourne):
        """The remote-safe harvest: worker-held deltas reach the parent
        cache while the pool keeps serving (no shutdown required)."""
        cache = AnalysisCache()
        with CompileService(
            mode="process",
            pipeline="level1",
            analysis_cache=cache,
            max_workers=2,
            harvest_interval=3600.0,
        ) as service:
            service.map(
                [quantum_phase_estimation(3) for _ in range(3)],
                targets=melbourne.target(),
                seeds=[0, 1, 2],
            )
            assert service.stats()["harvests"] == 0
            assert service.harvest_now() > 0
            assert len(cache._matrices) > 0
            # pool still serves after the live harvest
            result = service.submit(
                quantum_phase_estimation(3), target=melbourne.target(), seed=3
            ).result()
            assert result.circuit.count_ops()

    def test_harvest_now_is_noop_when_unthrottled(self, melbourne):
        with CompileService(mode="serial", pipeline="level1") as service:
            service.map(
                [quantum_phase_estimation(3)], targets=melbourne.target(), seeds=[0]
            )
            assert service.harvest_now() == 0


class TestSnapshotPersistence:
    """Disk-backed snapshots: warm-start must survive a 'restart'."""

    def _batch(self):
        return [quantum_phase_estimation(3), ry_ansatz(4, depth=2, seed=11)]

    def test_shutdown_persists_and_boot_restores(self, tmp_path, melbourne):
        path = tmp_path / "service.snap"
        with CompileService(
            mode="serial", pipeline="rpo", snapshot_path=path
        ) as service:
            service.map(self._batch(), targets=melbourne.target(), seeds=[0, 1])
            warmed_entries = len(service.cache._matrices)
            assert warmed_entries > 0
        assert path.exists()

        # "restart": a brand-new service process boots from the snapshot
        reborn = CompileService(mode="serial", pipeline="rpo", snapshot_path=path)
        assert reborn.stats()["snapshot_entries_loaded"] > 0
        assert len(reborn.cache._matrices) == warmed_entries
        reborn.shutdown(save=False)

    def test_warm_started_run_beats_cold_hit_rate(self, tmp_path, melbourne):
        """The acceptance check: a cold process warm-started from a disk
        snapshot shows a higher cache hit-rate than a truly cold run."""
        path = tmp_path / "warm.snap"
        batch = self._batch()
        target = melbourne.target()

        # result caching off: the point here is the *analysis* cache
        # snapshot, so the warm run's jobs must actually compile instead
        # of being served whole from the result snapshot
        cold_cache = AnalysisCache()
        with CompileService(
            mode="serial",
            pipeline="rpo",
            analysis_cache=cold_cache,
            result_cache=False,
            snapshot_path=path,
        ) as service:
            service.map([c.copy() for c in batch], targets=target, seeds=[0, 1])
        cold_rate = 1.0 - cold_cache.matrix_constructions / cold_cache.matrix_requests

        warm_cache = AnalysisCache()
        warm = CompileService(
            mode="serial",
            pipeline="rpo",
            analysis_cache=warm_cache,
            result_cache=False,
            snapshot_path=path,
        )
        assert warm.stats()["snapshot_entries_loaded"] > 0
        warm.map([c.copy() for c in batch], targets=target, seeds=[0, 1])
        warm.shutdown(save=False)
        warm_rate = 1.0 - warm_cache.matrix_constructions / warm_cache.matrix_requests
        assert warm_rate > cold_rate

    def test_missing_snapshot_is_cold_boot(self, tmp_path):
        service = CompileService(mode="serial", snapshot_path=tmp_path / "absent.snap")
        assert service.stats()["snapshot_entries_loaded"] == 0
        service.shutdown(save=False)

    def test_save_snapshot_explicit_path(self, tmp_path, melbourne):
        with CompileService(mode="serial", pipeline="level1") as service:
            service.map(self._batch(), targets=melbourne.target(), seeds=[0, 1])
            written = service.save_snapshot(tmp_path / "explicit.snap")
        assert written is not None
        assert AnalysisCache.load(written)._matrices

    def test_save_snapshot_without_path_is_noop(self):
        service = CompileService(mode="serial")
        assert service.save_snapshot() is None
        service.shutdown()


class TestShutdownFlush:
    """Regression: ``map()`` followed by an immediate ``shutdown()`` must
    not drop the final batch's worker cache deltas.

    Under throttled harvesting (``harvest_interval > 0``) the last jobs'
    analysis entries sit worker-side; the shutdown-time flush rounds have
    to reach *every* worker (pid-deduplicated, retried) before the pool
    closes, or the persisted snapshot silently misses them.
    """

    def test_map_then_immediate_shutdown_persists_worker_deltas(
        self, tmp_path, melbourne
    ):
        path = tmp_path / "flush.snap"
        batch = [ry_ansatz(3, depth=2, seed=s) for s in range(6)]
        service = CompileService(
            mode="process",
            pipeline="level1",
            max_workers=2,
            snapshot_path=path,
            harvest_interval=3600.0,  # nothing ships until the flush
        )
        service.map(batch, targets=melbourne.target(), seeds=list(range(6)))
        service.shutdown()  # immediately: the flush must do the harvest

        reborn = CompileService(mode="serial", snapshot_path=path)
        try:
            assert reborn.stats()["snapshot_entries_loaded"] > 0
        finally:
            reborn.shutdown(save=False)


class TestServiceResultCache:
    def _batch(self, n=4):
        rng = np.random.default_rng(5)
        return [
            ry_ansatz(3, depth=2, parameters=rng.uniform(0, 2 * np.pi, (3, 3)))
            for _ in range(n)
        ]

    def test_warm_repeat_batch_is_served_without_pool_jobs(self, melbourne):
        """The acceptance check: a repeated batch through a warm service
        returns bit-identical circuits with zero jobs reaching the pool."""
        batch = self._batch()
        with CompileService(
            mode="process", pipeline="level1", max_workers=2
        ) as service:
            first = service.map(batch, targets=melbourne.target(), seeds=[0] * 4)
            chunks_cold = service.stats()["chunks"]
            second = service.map(batch, targets=melbourne.target(), seeds=[0] * 4)
            stats = service.stats()
        assert stats["chunks"] == chunks_cold  # zero new pool traffic
        assert stats["result_cache_hits"] == 4
        for a, b in zip(first, second):
            assert a.circuit.global_phase == b.circuit.global_phase
            assert len(a.circuit.data) == len(b.circuit.data)
            for inst_a, inst_b in zip(a.circuit.data, b.circuit.data):
                assert inst_a.operation.name == inst_b.operation.name
                assert list(inst_a.operation.params) == list(inst_b.operation.params)

    def test_all_hit_batch_never_creates_the_pool(self, melbourne):
        batch = self._batch()
        cache = None
        with CompileService(mode="serial", pipeline="level1") as warmer:
            warmer.map(batch, targets=melbourne.target(), seeds=[0] * 4)
            cache = warmer.result_cache
        with CompileService(
            mode="process", pipeline="level1", result_cache=cache
        ) as service:
            service.map(batch, targets=melbourne.target(), seeds=[0] * 4)
            stats = service.stats()
            assert stats["result_cache_hits"] == 4
            assert stats["chunks"] == 0
            assert service._pool is None  # never even constructed

    def test_caller_mutation_cannot_corrupt_cached_results(self, melbourne):
        """Regression: ``_run_local`` stores the caller's live result
        objects; a caller mutating its ``metrics``/``loops`` (or a nested
        property value) afterwards must not leak into what later callers
        are served."""
        circuit = self._batch(1)[0]
        with CompileService(mode="serial", pipeline="level1") as service:
            first = service.submit(circuit, target=melbourne.target()).result()
            n_metrics = len(first.metrics)
            first.metrics.append("junk")
            first.loops.append("junk")
            second = service.submit(circuit, target=melbourne.target()).result()
            assert service.stats()["result_cache_hits"] == 1
            assert len(second.metrics) == n_metrics
            assert "junk" not in second.metrics
            assert "junk" not in second.loops
            second.metrics.append("more junk")
            third = service.submit(circuit, target=melbourne.target()).result()
            assert len(third.metrics) == n_metrics

    def test_result_cache_disabled_with_false(self, melbourne):
        batch = self._batch(2)
        with CompileService(
            mode="serial", pipeline="level1", result_cache=False
        ) as service:
            service.map(batch, targets=melbourne.target(), seeds=[0, 0])
            service.map(batch, targets=melbourne.target(), seeds=[0, 0])
            stats = service.stats()
        assert service.result_cache is None
        assert stats["result_cache_hits"] == 0
        assert stats["result_cache"] is None

    def test_initial_layout_jobs_bypass_the_cache(self, melbourne):
        from repro.transpiler import Layout

        batch = self._batch(1)
        layout = Layout({0: 0, 1: 1, 2: 2})
        with CompileService(mode="serial", pipeline="level1") as service:
            service.map(
                batch, targets=melbourne.target(), seeds=[0], initial_layout=layout
            )
            service.map(
                batch, targets=melbourne.target(), seeds=[0], initial_layout=layout
            )
            stats = service.stats()
        assert stats["result_cache_hits"] == 0

    def test_snapshot_path_persists_result_cache_alongside(self, tmp_path, melbourne):
        path = tmp_path / "svc.snap"
        batch = self._batch()
        with CompileService(
            mode="serial", pipeline="level1", snapshot_path=path
        ) as service:
            service.map(batch, targets=melbourne.target(), seeds=[0] * 4)
        assert (tmp_path / "svc.snap.results").exists()

        reborn = CompileService(mode="serial", pipeline="level1", snapshot_path=path)
        try:
            assert reborn.stats()["result_entries_loaded"] > 0
            reborn.map(batch, targets=melbourne.target(), seeds=[0] * 4)
            assert reborn.stats()["result_cache_hits"] == 4
        finally:
            reborn.shutdown(save=False)
