"""Functional tests for the benchmark workloads."""

import numpy as np
import pytest

from repro.algorithms import (
    bernstein_vazirani_boolean,
    bernstein_vazirani_phase,
    grover_circuit,
    maxcut_hamiltonian,
    quantum_phase_estimation,
    quantum_volume_circuit,
    ripple_carry_adder,
    ry_ansatz,
    vqe_maxcut,
)
from repro.algorithms.vqe import maxcut_expectation
from repro.circuit import QuantumCircuit
from repro.simulators import simulate_statevector

from tests.helpers import clbit_distribution


class TestBernsteinVazirani:
    @pytest.mark.parametrize("secret", [0b0000, 0b1011, 0b1111])
    def test_boolean_finds_secret(self, secret):
        circuit = bernstein_vazirani_boolean(4, secret)
        distribution = clbit_distribution(circuit)
        assert distribution.get(format(secret, "04b"), 0) > 0.999

    @pytest.mark.parametrize("secret", [0b101, 0b010])
    def test_phase_finds_secret(self, secret):
        circuit = bernstein_vazirani_phase(3, secret)
        distribution = clbit_distribution(circuit)
        assert distribution.get(format(secret, "03b"), 0) > 0.999

    def test_designs_agree(self):
        for secret in (0b0110, 0b1001):
            boolean = clbit_distribution(bernstein_vazirani_boolean(4, secret))
            phase = clbit_distribution(bernstein_vazirani_phase(4, secret))
            assert boolean.keys() == phase.keys()

    def test_rejects_oversized_secret(self):
        with pytest.raises(ValueError):
            bernstein_vazirani_boolean(3, 0b10000)


class TestQPE:
    @pytest.mark.parametrize("bits", [2, 3, 4])
    def test_exact_phase_deterministic(self, bits):
        circuit = quantum_phase_estimation(bits)
        distribution = clbit_distribution(circuit)
        assert distribution.get("1" * bits, 0) > 0.999

    def test_custom_phase(self):
        circuit = quantum_phase_estimation(3, theta=0.25)  # 010
        distribution = clbit_distribution(circuit)
        assert distribution.get("010", 0) > 0.999


class TestGrover:
    @pytest.mark.parametrize("design", ["noancilla", "vchain"])
    def test_finds_marked_element(self, design):
        circuit = grover_circuit(4, marked=9, iterations=3, design=design)
        distribution = clbit_distribution(circuit)
        assert distribution.get("1001", 0) > 0.9

    def test_designs_equivalent(self):
        a = clbit_distribution(grover_circuit(4, marked=7, iterations=2, design="noancilla"))
        b = clbit_distribution(grover_circuit(4, marked=7, iterations=2, design="vchain"))
        for key in set(a) | set(b):
            assert abs(a.get(key, 0) - b.get(key, 0)) < 1e-7

    def test_annotations_do_not_change_semantics(self):
        a = clbit_distribution(grover_circuit(4, iterations=2, design="vchain"))
        b = clbit_distribution(
            grover_circuit(4, iterations=2, design="vchain", annotate=True)
        )
        for key in set(a) | set(b):
            assert abs(a.get(key, 0) - b.get(key, 0)) < 1e-9

    def test_vchain_cheaper_than_noancilla(self):
        expensive = grover_circuit(7, design="noancilla", measure=False)
        cheap = grover_circuit(7, design="vchain", measure=False)
        from repro.transpiler.passes import Unroller
        from repro.transpiler.passmanager import PropertySet

        cx_a = Unroller().run(expensive, PropertySet()).count_ops().get("cx", 0)
        cx_b = Unroller().run(cheap, PropertySet()).count_ops().get("cx", 0)
        assert cx_b < cx_a / 2


class TestQuantumVolume:
    def test_seeded_determinism(self):
        a = quantum_volume_circuit(4, seed=5)
        b = quantum_volume_circuit(4, seed=5)
        assert np.abs(a.to_matrix() - b.to_matrix()).max() < 1e-12

    def test_shape(self):
        circuit = quantum_volume_circuit(5, depth=5, seed=0)
        assert circuit.num_qubits == 5
        assert circuit.count_ops()["unitary"] == 5 * 2


class TestVQE:
    def test_ansatz_shapes(self):
        circuit = ry_ansatz(4, depth=2, seed=0)
        assert circuit.count_ops()["ry"] == 12
        assert circuit.count_ops()["cx"] == 12  # full entanglement: 6 per layer

    def test_linear_entanglement(self):
        circuit = ry_ansatz(4, depth=2, seed=0, entanglement="linear")
        assert circuit.count_ops()["cx"] == 6

    def test_maxcut_expectation_bounds(self):
        edges = [(0, 1), (1, 2), (2, 3), (3, 0)]
        state = simulate_statevector(ry_ansatz(4, depth=1, seed=3))
        value = maxcut_expectation(state, edges, 4)
        assert 0 <= value <= len(edges)

    def test_vqe_solves_ring_maxcut(self):
        edges = [(0, 1), (1, 2), (2, 3), (3, 0)]
        best, _params, bitstring = vqe_maxcut(edges, 4, depth=2, seed=3, maxiter=120)
        # the 4-ring has max cut 4 (alternating partition)
        assert best > 3.0
        assert bitstring in ("0101", "1010") or best > 3.5

    def test_hamiltonian_terms(self):
        terms = maxcut_hamiltonian([(0, 1), (1, 2)], 3)
        assert len(terms) == 2
        assert all(w == -0.5 for w, _ in terms)


class TestAdder:
    @pytest.mark.parametrize("a,b", [(0, 0), (1, 1), (2, 3), (3, 3)])
    def test_adds(self, a, b):
        n = 2
        circuit = QuantumCircuit(2 * n + 2)
        for i in range(n):
            if (a >> i) & 1:
                circuit.x(i)
            if (b >> i) & 1:
                circuit.x(n + i)
        adder = ripple_carry_adder(n)
        combined = circuit.compose(adder)
        state = simulate_statevector(combined)
        outcome = int(np.argmax(np.abs(state)))
        b_out = (outcome >> n) & (2**n - 1)
        carry_out = (outcome >> (2 * n + 1)) & 1
        total = b_out | (carry_out << n)
        assert total == a + b
        # carry ancilla uncomputed
        assert (outcome >> (2 * n)) & 1 == 0

    def test_annotated_variant_equivalent(self):
        plain = ripple_carry_adder(2)
        annotated = ripple_carry_adder(2, annotate=True)
        assert np.abs(
            plain.to_matrix()
            - annotated.to_matrix()
        ).max() < 1e-9
