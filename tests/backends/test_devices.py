"""Tests for the fake backends (paper Fig. 9 devices)."""

import pytest

from repro.backends import FakeAlmaden, FakeMelbourne, FakeRochester


@pytest.fixture(scope="module")
def devices():
    return [FakeMelbourne(), FakeAlmaden(), FakeRochester()]


class TestTopologies:
    def test_qubit_counts(self, devices):
        assert [d.num_qubits for d in devices] == [15, 20, 53]

    def test_connected(self, devices):
        for device in devices:
            assert device.coupling_map.is_connected()

    def test_melbourne_ladder_edges(self):
        cmap = FakeMelbourne().coupling_map
        assert cmap.are_coupled(0, 1)
        assert cmap.are_coupled(0, 14)
        assert cmap.are_coupled(6, 8)
        assert not cmap.are_coupled(0, 7)

    def test_connectivity_ranking(self, devices):
        """Paper Sec. VIII-D: melbourne best, rochester worst connectivity.

        Measured as average pairwise distance normalised by qubit count.
        """
        import numpy as np

        def mean_distance(device):
            matrix = device.coupling_map.distance_matrix
            n = device.num_qubits
            return matrix[np.isfinite(matrix)].sum() / (n * n)

        melbourne, almaden, rochester = devices
        assert mean_distance(melbourne) < mean_distance(rochester)
        assert mean_distance(almaden) < mean_distance(rochester)

    def test_rochester_sparse(self):
        rochester = FakeRochester()
        degrees = [rochester.coupling_map.degree(q) for q in range(53)]
        assert max(degrees) <= 3  # heavy-hex-like sparsity


class TestProperties:
    def test_error_ranges(self, devices):
        for device in devices:
            props = device.properties
            for error in props.single_qubit_error.values():
                assert 1e-5 < error < 1e-2
            for error in props.two_qubit_error.values():
                assert 1e-3 < error < 1e-1
            for flip0, flip1 in props.readout_error.values():
                assert 0 < flip0 < 0.2 and 0 < flip1 < 0.2

    def test_deterministic_generation(self):
        a, b = FakeMelbourne(), FakeMelbourne()
        assert a.properties.two_qubit_error == b.properties.two_qubit_error

    def test_every_edge_calibrated(self, devices):
        for device in devices:
            edges = set(device.coupling_map.edges)
            assert set(device.properties.two_qubit_error) == edges
