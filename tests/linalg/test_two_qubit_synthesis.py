"""Tests for minimal-CNOT two-qubit synthesis and state preparation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit.matrix_utils import embed_gate
from repro.linalg.random import random_statevector, random_unitary
from repro.linalg.two_qubit_synthesis import (
    synthesize_two_qubit_unitary,
    two_qubit_state_prep_circuit,
)
from repro.linalg.weyl import canonical_gate

CX = np.array([[1, 0, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0], [0, 1, 0, 0]], dtype=complex)
SWAP = np.array([[1, 0, 0, 0], [0, 0, 1, 0], [0, 1, 0, 0], [0, 0, 0, 1]], dtype=complex)


def cx_count(circuit):
    return circuit.count_ops().get("cx", 0)


class TestSynthesis:
    @pytest.mark.parametrize("seed", range(25))
    def test_exact_reconstruction_random(self, seed):
        u = random_unitary(4, seed)
        circuit = synthesize_two_qubit_unitary(u)
        assert np.abs(circuit.to_matrix() - u).max() < 1e-7
        assert cx_count(circuit) <= 3

    def test_product_uses_no_cnots(self):
        rng = np.random.default_rng(1)
        u = np.kron(random_unitary(2, rng), random_unitary(2, rng))
        circuit = synthesize_two_qubit_unitary(u)
        assert cx_count(circuit) == 0
        assert np.abs(circuit.to_matrix() - u).max() < 1e-8

    def test_cx_uses_one(self):
        circuit = synthesize_two_qubit_unitary(CX)
        assert cx_count(circuit) == 1
        assert np.abs(circuit.to_matrix() - CX).max() < 1e-8

    def test_cx_with_locals_uses_one(self):
        rng = np.random.default_rng(2)
        u = (
            np.kron(random_unitary(2, rng), random_unitary(2, rng))
            @ CX
            @ np.kron(random_unitary(2, rng), random_unitary(2, rng))
        )
        circuit = synthesize_two_qubit_unitary(u)
        assert cx_count(circuit) == 1
        assert np.abs(circuit.to_matrix() - u).max() < 1e-7

    def test_two_cnot_class(self):
        rng = np.random.default_rng(3)
        u = (
            embed_gate(random_unitary(2, rng), (0,), 2)
            @ CX
            @ embed_gate(random_unitary(2, rng), (1,), 2)
            @ CX
            @ embed_gate(random_unitary(2, rng), (0,), 2)
        )
        circuit = synthesize_two_qubit_unitary(u)
        assert cx_count(circuit) <= 2
        assert np.abs(circuit.to_matrix() - u).max() < 1e-7

    def test_swap_uses_three(self):
        circuit = synthesize_two_qubit_unitary(SWAP)
        assert cx_count(circuit) == 3
        assert np.abs(circuit.to_matrix() - SWAP).max() < 1e-8

    def test_canonical_gates(self):
        for a, b, c in [(0.3, 0.2, 0.1), (np.pi / 4, 0.0, 0.0), (0.5, -0.4, 0.0)]:
            target = canonical_gate(a, b, c)
            circuit = synthesize_two_qubit_unitary(target)
            assert np.abs(circuit.to_matrix() - target).max() < 1e-7

    def test_global_phase_preserved(self):
        u = np.exp(0.9j) * random_unitary(4, 7)
        circuit = synthesize_two_qubit_unitary(u)
        assert np.abs(circuit.to_matrix() - u).max() < 1e-7

    def test_rejects_wrong_shape(self):
        with pytest.raises(ValueError):
            synthesize_two_qubit_unitary(np.eye(2))

    @given(seed=st.integers(min_value=0, max_value=100_000))
    @settings(max_examples=25, deadline=None)
    def test_property_random(self, seed):
        u = random_unitary(4, seed)
        circuit = synthesize_two_qubit_unitary(u)
        assert np.abs(circuit.to_matrix() - u).max() < 1e-6


class TestStatePrep:
    @pytest.mark.parametrize("seed", range(15))
    def test_prepares_exactly(self, seed):
        psi = random_statevector(2, seed)
        circuit = two_qubit_state_prep_circuit(psi)
        produced = circuit.to_matrix()[:, 0]
        assert np.abs(produced - psi).max() < 1e-8

    @pytest.mark.parametrize("seed", range(15))
    def test_uses_at_most_one_cnot(self, seed):
        psi = random_statevector(2, seed)
        circuit = two_qubit_state_prep_circuit(psi)
        assert cx_count(circuit) <= 1

    def test_product_state_uses_no_cnot(self):
        rng = np.random.default_rng(4)
        psi = np.kron(random_statevector(1, rng), random_statevector(1, rng))
        circuit = two_qubit_state_prep_circuit(psi)
        assert cx_count(circuit) == 0
        assert np.abs(circuit.to_matrix()[:, 0] - psi).max() < 1e-8

    def test_bell_state(self):
        bell = np.array([1, 0, 0, 1], dtype=complex) / np.sqrt(2)
        circuit = two_qubit_state_prep_circuit(bell)
        assert cx_count(circuit) == 1
        assert np.abs(circuit.to_matrix()[:, 0] - bell).max() < 1e-8

    def test_rejects_unnormalised(self):
        with pytest.raises(ValueError):
            two_qubit_state_prep_circuit(np.array([1.0, 1.0, 0, 0]))
