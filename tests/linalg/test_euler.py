"""Unit and property tests for the one-qubit Euler decomposition."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linalg.euler import euler_zyz_angles, merge_u3, u3_matrix, u3_params_from_unitary
from repro.linalg.random import random_su2, random_unitary

ANGLE = st.floats(min_value=-2 * math.pi, max_value=2 * math.pi, allow_nan=False)


def reconstruct(theta, phi, lam, gamma):
    return np.exp(1j * gamma) * u3_matrix(theta, phi, lam)


class TestU3Matrix:
    def test_identity(self):
        assert np.allclose(u3_matrix(0, 0, 0), np.eye(2))

    def test_x_gate(self):
        x = np.array([[0, 1], [1, 0]], dtype=complex)
        assert np.allclose(u3_matrix(math.pi, 0, math.pi), x)

    def test_hadamard(self):
        h = np.array([[1, 1], [1, -1]]) / math.sqrt(2)
        assert np.allclose(u3_matrix(math.pi / 2, 0, math.pi), h)

    def test_unitary(self):
        m = u3_matrix(0.3, 0.7, -1.2)
        assert np.allclose(m @ m.conj().T, np.eye(2))


class TestExtraction:
    @pytest.mark.parametrize("seed", range(20))
    def test_roundtrip_random(self, seed):
        u = random_unitary(2, seed)
        params = u3_params_from_unitary(u)
        assert np.allclose(reconstruct(*params), u, atol=1e-10)

    def test_diagonal(self):
        u = np.diag([1, np.exp(0.7j)])
        theta, phi, lam, gamma = u3_params_from_unitary(u)
        assert abs(theta) < 1e-12
        assert np.allclose(reconstruct(theta, phi, lam, gamma), u)

    def test_antidiagonal(self):
        u = np.array([[0, 1j], [1, 0]], dtype=complex)
        params = u3_params_from_unitary(u)
        assert abs(params[0] - math.pi) < 1e-12
        assert np.allclose(reconstruct(*params), u)

    def test_global_phase_tracked(self):
        u = np.exp(0.42j) * np.eye(2)
        theta, phi, lam, gamma = u3_params_from_unitary(u)
        assert np.allclose(reconstruct(theta, phi, lam, gamma), u)

    def test_rejects_wrong_shape(self):
        with pytest.raises(ValueError):
            u3_params_from_unitary(np.eye(3))

    @given(theta=ANGLE, phi=ANGLE, lam=ANGLE)
    @settings(max_examples=60, deadline=None)
    def test_property_roundtrip(self, theta, phi, lam):
        u = u3_matrix(theta, phi, lam)
        params = u3_params_from_unitary(u)
        assert np.allclose(reconstruct(*params), u, atol=1e-9)


class TestZYZ:
    @pytest.mark.parametrize("seed", range(10))
    def test_zyz_reconstruction(self, seed):
        u = random_su2(seed)
        theta, phi, lam, alpha = euler_zyz_angles(u)

        def rz(a):
            return np.diag([np.exp(-1j * a / 2), np.exp(1j * a / 2)])

        def ry(a):
            c, s = math.cos(a / 2), math.sin(a / 2)
            return np.array([[c, -s], [s, c]])

        rebuilt = np.exp(1j * alpha) * rz(phi) @ ry(theta) @ rz(lam)
        assert np.allclose(rebuilt, u, atol=1e-10)


class TestMerge:
    @given(
        a=st.tuples(ANGLE, ANGLE, ANGLE),
        b=st.tuples(ANGLE, ANGLE, ANGLE),
    )
    @settings(max_examples=40, deadline=None)
    def test_merge_matches_product(self, a, b):
        theta, phi, lam, gamma = merge_u3(a, b)
        product = u3_matrix(*b) @ u3_matrix(*a)
        assert np.allclose(reconstruct(theta, phi, lam, gamma), product, atol=1e-9)
