"""Parity tests: batched stacked-operand kernels vs their scalar references.

The contract under test (see ``repro/linalg/batch.py``): ``fold``-reduced
chain products are **bitwise identical** to a scalar one-matmul-at-a-time
accumulation; everything phase/angle-valued matches its scalar counterpart
to well below synthesis tolerances (vectorized ``arctan2``/``angle`` may
round the last ulp differently from libm).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit.matrix_utils import embed_gate
from repro.gates.matrices import standard_gate_matrix
from repro.linalg import backend as backend_mod
from repro.linalg.backend import (
    available_backends,
    backend_name,
    get_backend,
    set_backend,
)
from repro.linalg.batch import (
    apply_1q_batch,
    basis_axes_batch,
    bloch_rotation_batch,
    chain_products,
    embed_1q_in_2q,
    euler_zyz_angles_batch,
    fold_matmul,
    is_identity_up_to_phase_batch,
    is_unitary_batch,
    kron_batch,
    monomial_permutations_batch,
    permute_2q,
    reduce_matmul,
    stack_chains,
    two_qubit_chain_unitaries,
    u3_matrix_batch,
    u3_params_batch,
    weyl_coordinates_batch,
)
from repro.linalg.euler import euler_zyz_angles, u3_matrix, u3_params_from_unitary
from repro.linalg.predicates import is_identity_up_to_phase, is_unitary
from repro.linalg.random import random_unitary
from repro.linalg.weyl import weyl_coordinates

seeds = st.integers(min_value=0, max_value=10_000)


@pytest.fixture(autouse=True)
def _numpy_backend():
    """Pin the NumPy backend around every test (some tests switch it)."""
    set_backend("numpy")
    yield
    set_backend("numpy")


def su_stack(dim: int, count: int, seed: int) -> np.ndarray:
    """A ``(count, dim, dim)`` stack of seeded Haar-random unitaries."""
    if count == 0:
        return np.empty((0, dim, dim), dtype=complex)
    return np.stack([random_unitary(dim, seed * 1000 + i) for i in range(count)])


def serial_product(stack: np.ndarray) -> np.ndarray:
    """Scalar reference: time-ordered left fold, one matmul per factor."""
    acc = np.eye(stack.shape[-1], dtype=complex)
    for matrix in stack:
        acc = matrix @ acc
    return acc


class TestChainedProducts:
    @settings(max_examples=30, deadline=None)
    @given(seed=seeds, length=st.integers(0, 12), dim=st.sampled_from([2, 4]))
    def test_fold_matmul_bitwise_matches_serial(self, seed, length, dim):
        stack = su_stack(dim, length, seed)
        assert np.array_equal(fold_matmul(stack), serial_product(stack))

    @settings(max_examples=30, deadline=None)
    @given(seed=seeds, length=st.integers(0, 12), dim=st.sampled_from([2, 4]))
    def test_reduce_matmul_matches_serial(self, seed, length, dim):
        stack = su_stack(dim, length, seed)
        assert np.allclose(reduce_matmul(stack), serial_product(stack), atol=1e-12)

    def test_empty_chain_yields_identity(self):
        for reducer in (reduce_matmul, fold_matmul):
            assert np.array_equal(reducer(np.empty((0, 4, 4))), np.eye(4))

    def test_single_factor_is_exact(self):
        matrix = random_unitary(2, 7)
        for reducer in (reduce_matmul, fold_matmul):
            assert np.array_equal(reducer(matrix[None]), matrix)

    def test_batched_chains_broadcast(self):
        stacks = np.stack([su_stack(2, 5, seed) for seed in range(4)])
        out = reduce_matmul(stacks)
        assert out.shape == (4, 2, 2)
        for row, chain in enumerate(stacks):
            assert np.allclose(out[row], serial_product(chain), atol=1e-12)

    @settings(max_examples=20, deadline=None)
    @given(seed=seeds, lengths=st.lists(st.integers(0, 6), min_size=0, max_size=5))
    def test_chain_products_ragged(self, seed, lengths):
        chains = [
            [random_unitary(2, seed + 31 * row + i) for i in range(length)]
            for row, length in enumerate(lengths)
        ]
        out = chain_products(chains, 2)
        assert out.shape == (len(chains), 2, 2)
        for row, chain in enumerate(chains):
            acc = np.eye(2, dtype=complex)
            for matrix in chain:
                acc = matrix @ acc
            assert np.array_equal(out[row], acc)

    def test_stack_chains_pads_with_identity(self):
        a = random_unitary(2, 1)
        padded = stack_chains([[a], []], 2)
        assert padded.shape == (2, 1, 2, 2)
        assert np.array_equal(padded[0, 0], a)
        assert np.array_equal(padded[1, 0], np.eye(2))


class TestBatchedEmbedding:
    @settings(max_examples=20, deadline=None)
    @given(seed=seeds, count=st.integers(1, 8))
    def test_kron_batch(self, seed, count):
        a = su_stack(2, count, seed)
        b = su_stack(2, count, seed + 1)
        out = kron_batch(a, b)
        for i in range(count):
            assert np.array_equal(out[i], np.kron(a[i], b[i]))

    @settings(max_examples=20, deadline=None)
    @given(seed=seeds, count=st.integers(1, 8))
    def test_embed_1q_matches_embed_gate(self, seed, count):
        stack = su_stack(2, count, seed)
        wires = np.arange(count) % 2
        out = embed_1q_in_2q(stack, wires)
        for i in range(count):
            reference = embed_gate(stack[i], (int(wires[i]),), 2)
            assert np.array_equal(out[i], reference)

    @settings(max_examples=20, deadline=None)
    @given(seed=seeds, count=st.integers(1, 6))
    def test_permute_2q_matches_embed_gate(self, seed, count):
        stack = su_stack(4, count, seed)
        out = permute_2q(stack)
        for i in range(count):
            assert np.array_equal(out[i], embed_gate(stack[i], (1, 0), 2))

    @settings(max_examples=25, deadline=None)
    @given(seed=seeds, lengths=st.lists(st.integers(0, 8), min_size=0, max_size=4))
    def test_two_qubit_chain_unitaries_bitwise(self, seed, lengths):
        rng = np.random.default_rng(seed)
        chains = []
        for length in lengths:
            chain = []
            for _ in range(length):
                roll = rng.random()
                sub_seed = int(rng.integers(1 << 31))
                if roll < 0.5:
                    chain.append((random_unitary(2, sub_seed), (int(rng.integers(2)),)))
                elif roll < 0.75:
                    chain.append((random_unitary(4, sub_seed), (0, 1)))
                else:
                    chain.append((random_unitary(4, sub_seed), (1, 0)))
            chains.append(chain)
        out = two_qubit_chain_unitaries(chains)
        assert out.shape == (len(chains), 4, 4)
        for row, chain in enumerate(chains):
            acc = np.eye(4, dtype=complex)
            for matrix, local in chain:
                acc = embed_gate(matrix, local, 2) @ acc
            assert np.array_equal(out[row], acc)

    def test_two_qubit_chain_rejects_bad_wires(self):
        with pytest.raises(ValueError, match="unsupported local wires"):
            two_qubit_chain_unitaries([[(np.eye(4, dtype=complex), (0, 2))]])


DEGENERATE_1Q = ["id", "x", "y", "z", "h", "s", "t", "sx"]
DEGENERATE_2Q = ["cx", "cz", "swap", "iswap"]


class TestEulerBatch:
    @settings(max_examples=40, deadline=None)
    @given(seed=seeds, count=st.integers(1, 10))
    def test_u3_params_match_scalar(self, seed, count):
        stack = su_stack(2, count, seed)
        batched = u3_params_batch(stack)
        assert batched.shape == (count, 4)
        for i in range(count):
            scalar = u3_params_from_unitary(stack[i])
            assert np.allclose(batched[i], scalar, atol=1e-12)

    @pytest.mark.parametrize("name", DEGENERATE_1Q)
    def test_degenerate_branches_match_scalar(self, name):
        matrix = standard_gate_matrix(name)
        batched = u3_params_batch(matrix[None])[0]
        assert np.allclose(batched, u3_params_from_unitary(matrix), atol=1e-12)

    @settings(max_examples=20, deadline=None)
    @given(seed=seeds)
    def test_reconstruction(self, seed):
        matrix = random_unitary(2, seed)
        theta, phi, lam, gamma = u3_params_batch(matrix[None])[0]
        rebuilt = np.exp(1j * gamma) * u3_matrix(theta, phi, lam)
        assert np.allclose(rebuilt, matrix, atol=1e-9)

    @settings(max_examples=20, deadline=None)
    @given(seed=seeds, count=st.integers(1, 6))
    def test_zyz_matches_scalar(self, seed, count):
        stack = su_stack(2, count, seed)
        batched = euler_zyz_angles_batch(stack)
        for i in range(count):
            assert np.allclose(batched[i], euler_zyz_angles(stack[i]), atol=1e-12)

    def test_empty_stack(self):
        assert u3_params_batch(np.empty((0, 2, 2))).shape == (0, 4)


class TestWeylBatch:
    @settings(max_examples=30, deadline=None)
    @given(seed=seeds, count=st.integers(1, 8))
    def test_matches_scalar(self, seed, count):
        stack = su_stack(4, count, seed)
        batched = weyl_coordinates_batch(stack)
        assert batched.shape == (count, 3)
        for i in range(count):
            assert np.allclose(batched[i], weyl_coordinates(stack[i]), atol=1e-8)

    @pytest.mark.parametrize("name", DEGENERATE_2Q)
    def test_standard_gates_match_scalar(self, name):
        matrix = standard_gate_matrix(name)
        batched = weyl_coordinates_batch(matrix[None])[0]
        assert np.allclose(batched, weyl_coordinates(matrix), atol=1e-8)

    def test_identity_at_origin(self):
        coords = weyl_coordinates_batch(np.eye(4, dtype=complex)[None])[0]
        assert np.allclose(coords, 0.0, atol=1e-8)

    def test_rejects_non_unitary(self):
        with pytest.raises(ValueError, match="non-unitary"):
            weyl_coordinates_batch(2.0 * np.eye(4, dtype=complex)[None])


class TestPredicatesBatch:
    def _mixed_bag(self, dim):
        return [
            random_unitary(dim, 3),
            1.001 * random_unitary(dim, 4),
            np.exp(0.7j) * np.eye(dim, dtype=complex),
            np.eye(dim, dtype=complex),
            np.diag([1.0] * (dim - 1) + [-1.0]).astype(complex),
            np.zeros((dim, dim), dtype=complex),
        ]

    @pytest.mark.parametrize("dim", [2, 4])
    def test_is_unitary_matches_scalar(self, dim):
        bag = self._mixed_bag(dim)
        batched = is_unitary_batch(np.stack(bag))
        assert batched.tolist() == [is_unitary(m) for m in bag]

    @pytest.mark.parametrize("dim", [2, 4])
    def test_identity_up_to_phase_matches_scalar(self, dim):
        bag = self._mixed_bag(dim)
        batched = is_identity_up_to_phase_batch(np.stack(bag))
        assert batched.tolist() == [is_identity_up_to_phase(m) for m in bag]

    def test_empty_stack(self):
        assert is_unitary_batch(np.empty((0, 2, 2))).shape == (0,)
        assert is_identity_up_to_phase_batch(np.empty((0, 2, 2))).shape == (0,)


class TestTrackerKernels:
    """Parity for the stacked analysis kernels against their scalar
    references (the tracker transition arithmetic and the Hoare monomial
    test)."""

    @settings(max_examples=30, deadline=None)
    @given(seed=seeds, count=st.integers(1, 10))
    def test_u3_matrix_batch_matches_scalar(self, seed, count):
        rng = np.random.default_rng(seed)
        params = rng.uniform(0, 2 * np.pi, (count, 3))
        batched = u3_matrix_batch(params)
        for i in range(count):
            assert np.allclose(batched[i], u3_matrix(*params[i]), atol=1e-15)

    @settings(max_examples=30, deadline=None)
    @given(seed=seeds, count=st.integers(1, 10))
    def test_apply_1q_batch_matches_scalar_merge(self, seed, count):
        rng = np.random.default_rng(seed)
        tuples = np.column_stack(
            [rng.uniform(0, np.pi, count), rng.uniform(0, 2 * np.pi, count)]
        )
        stack = su_stack(2, count, seed)
        merged = apply_1q_batch(stack, tuples)
        for i in range(count):
            prepared = stack[i] @ u3_matrix(tuples[i, 0], tuples[i, 1], 0.0)
            theta, phi, _lam, _gamma = u3_params_from_unitary(prepared)
            assert abs(merged[i, 0] - theta) <= 1e-12
            assert abs(merged[i, 1] - phi) <= 1e-12

    @settings(max_examples=30, deadline=None)
    @given(seed=seeds, count=st.integers(1, 10))
    def test_bloch_rotation_batch_matches_scalar(self, seed, count):
        from repro.rpo.states import bloch_rotation_of_gate

        stack = su_stack(2, count, seed)
        batched = bloch_rotation_batch(stack)
        for i in range(count):
            assert np.array_equal(batched[i], bloch_rotation_of_gate(stack[i]))

    @settings(max_examples=30, deadline=None)
    @given(seed=seeds, count=st.integers(1, 16))
    def test_basis_axes_batch_matches_scalar(self, seed, count):
        from repro.rpo.states import TOP, basis_state_of_bloch

        rng = np.random.default_rng(seed)
        exact = np.eye(3)[rng.integers(0, 3, count)] * rng.choice([1, -1], count)[:, None]
        noisy = exact + rng.normal(0, 1e-10, (count, 3))
        fuzzy = rng.normal(0, 0.5, (count, 3))
        for vectors in (exact, noisy, fuzzy):
            axes, signs = basis_axes_batch(vectors)
            for i in range(count):
                state = basis_state_of_bloch(vectors[i])
                if state is TOP:
                    assert axes[i] == -1 and signs[i] == 0
                else:
                    assert axes[i] == state.axis and signs[i] == state.sign

    @settings(max_examples=30, deadline=None)
    @given(seed=seeds, count=st.integers(1, 8), dim=st.sampled_from([2, 4, 8]))
    def test_monomial_permutations_batch(self, seed, count, dim):
        rng = np.random.default_rng(seed)
        stack = np.empty((count, dim, dim), dtype=complex)
        expected = np.full((count, dim), -1, dtype=np.int64)
        expected_valid = np.zeros(count, dtype=bool)
        for i in range(count):
            if rng.random() < 0.5:
                permutation = rng.permutation(dim)
                phases = np.exp(2j * np.pi * rng.uniform(size=dim))
                matrix = np.zeros((dim, dim), dtype=complex)
                matrix[permutation, np.arange(dim)] = phases
                stack[i] = matrix
                expected[i] = permutation
                expected_valid[i] = True
            else:
                stack[i] = random_unitary(dim, seed * 100 + i) @ (
                    np.eye(dim) + 0.5
                )
        permutations, valid = monomial_permutations_batch(stack)
        assert np.array_equal(valid, expected_valid)
        assert np.array_equal(permutations[expected_valid], expected[expected_valid])
        assert (permutations[~expected_valid] == -1).all()

    def test_monomial_empty_stack(self):
        permutations, valid = monomial_permutations_batch(np.empty((0, 2, 2)))
        assert permutations.shape == (0, 2)
        assert valid.shape == (0,)


class TestBackendSelection:
    def test_default_is_numpy(self):
        assert backend_name() == "numpy"
        assert get_backend().xp is np
        assert get_backend().fallback_reason is None

    def test_known_backends(self):
        assert available_backends() == ("numpy", "cupy")

    def test_unknown_backend_falls_back_with_warning(self):
        backend_mod._reset_fallback_warnings()  # warnings fire once per process
        with pytest.warns(RuntimeWarning, match="unknown array backend"):
            active = set_backend("tpu")
        assert active.name == "numpy"
        assert "unknown array backend" in active.fallback_reason
        # kernels still run after the fallback
        stack = su_stack(2, 3, 11)
        assert np.array_equal(fold_matmul(stack), serial_product(stack))

    def test_cupy_fallback_when_unavailable(self):
        try:
            import cupy  # noqa: F401

            pytest.skip("CuPy importable here; fallback path not reachable")
        except Exception:
            pass
        backend_mod._reset_fallback_warnings()  # warnings fire once per process
        with pytest.warns(RuntimeWarning, match="falling back to NumPy"):
            active = set_backend("cupy")
        assert active.name == "numpy"
        assert "CuPy backend unavailable" in active.fallback_reason
        stack = su_stack(4, 4, 13)
        assert np.array_equal(fold_matmul(stack), serial_product(stack))

    def test_env_var_resolved_lazily(self, monkeypatch):
        monkeypatch.setenv(backend_mod.BACKEND_ENV_VAR, "numpy")
        monkeypatch.setattr(backend_mod, "_ACTIVE", None)
        assert backend_name() == "numpy"
