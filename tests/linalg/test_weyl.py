"""Tests for the two-qubit Weyl (KAK) decomposition and CNOT counting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit.matrix_utils import embed_gate
from repro.linalg.random import random_unitary
from repro.linalg.weyl import (
    canonical_gate,
    num_cnots_required,
    weyl_decompose,
)

CX = np.array([[1, 0, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0], [0, 1, 0, 0]], dtype=complex)
SWAP = np.array([[1, 0, 0, 0], [0, 0, 1, 0], [0, 1, 0, 0], [0, 0, 0, 1]], dtype=complex)


def local(u1, u0):
    return np.kron(u1, u0)


class TestCanonicalGate:
    def test_identity_at_origin(self):
        assert np.allclose(canonical_gate(0, 0, 0), np.eye(4))

    def test_unitary(self):
        m = canonical_gate(0.3, -0.2, 0.8)
        assert np.allclose(m @ m.conj().T, np.eye(4), atol=1e-12)

    def test_additive(self):
        a = canonical_gate(0.3, 0.1, -0.2)
        b = canonical_gate(0.2, 0.25, 0.4)
        ab = canonical_gate(0.5, 0.35, 0.2)
        assert np.allclose(a @ b, ab, atol=1e-12)


class TestWeylDecompose:
    @pytest.mark.parametrize("seed", range(30))
    def test_reconstruction_random(self, seed):
        u = random_unitary(4, seed)
        decomposition = weyl_decompose(u)
        assert np.abs(decomposition.reconstruct() - u).max() < 1e-9

    @pytest.mark.parametrize(
        "matrix", [np.eye(4, dtype=complex), CX, SWAP], ids=["I", "CX", "SWAP"]
    )
    def test_reconstruction_special(self, matrix):
        decomposition = weyl_decompose(matrix)
        assert np.abs(decomposition.reconstruct() - matrix).max() < 1e-9

    def test_cx_coordinates(self):
        d = weyl_decompose(CX)
        assert abs(d.a - np.pi / 4) < 1e-9
        assert abs(d.b) < 1e-9 and abs(d.c) < 1e-9

    def test_local_factors_are_su2(self):
        d = weyl_decompose(random_unitary(4, 99))
        for k in (d.K1l, d.K1r, d.K2l, d.K2r):
            assert np.allclose(k @ k.conj().T, np.eye(2), atol=1e-9)
            assert abs(np.linalg.det(k) - 1) < 1e-9

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            weyl_decompose(np.ones((2, 4)))

    def test_rejects_non_unitary(self):
        with pytest.raises(ValueError):
            weyl_decompose(np.ones((4, 4)))

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30, deadline=None)
    def test_property_reconstruction(self, seed):
        u = random_unitary(4, seed)
        d = weyl_decompose(u)
        assert np.abs(d.reconstruct() - u).max() < 1e-8


class TestCnotCount:
    def test_product_is_zero(self):
        rng = np.random.default_rng(5)
        u = local(random_unitary(2, rng), random_unitary(2, rng))
        assert num_cnots_required(u) == 0

    def test_cx_is_one(self):
        assert num_cnots_required(CX) == 1

    def test_swap_is_three(self):
        assert num_cnots_required(SWAP) == 3

    @pytest.mark.parametrize("seed", range(10))
    def test_random_is_three(self, seed):
        # Haar-random unitaries are generically in the 3-CNOT class
        assert num_cnots_required(random_unitary(4, seed + 1000)) == 3

    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_k_cnot_products_need_at_most_k(self, k):
        rng = np.random.default_rng(17)
        for _ in range(10):
            u = local(random_unitary(2, rng), random_unitary(2, rng))
            for _ in range(k):
                direction = rng.integers(2)
                cx = CX if direction else embed_gate(
                    np.array([[0, 1], [1, 0]], dtype=complex), (1,), 2
                ) @ CX @ embed_gate(np.eye(2), (0,), 2)
                cx = CX  # same-direction CNOTs; locals randomize the class
                u = local(random_unitary(2, rng), random_unitary(2, rng)) @ cx @ u
            assert num_cnots_required(u) <= k

    def test_phase_invariance(self):
        u = random_unitary(4, 3)
        n = num_cnots_required(u)
        assert num_cnots_required(np.exp(0.7j) * u) == n
