"""Tests for matrix predicates and Kronecker factorisation."""

import numpy as np
import pytest

from repro.linalg.kron import decompose_kron, nearest_kron_factors
from repro.linalg.predicates import (
    is_hermitian,
    is_identity_up_to_phase,
    is_unitary,
    matrices_equal_up_to_phase,
    phase_difference,
    statevectors_equal_up_to_phase,
)
from repro.linalg.random import random_statevector, random_unitary


class TestPredicates:
    def test_unitary_accepts(self):
        assert is_unitary(random_unitary(4, 0))

    def test_unitary_rejects(self):
        assert not is_unitary(np.ones((2, 2)))
        assert not is_unitary(np.ones((2, 3)))

    def test_hermitian(self):
        assert is_hermitian(np.array([[1, 1j], [-1j, 2]]))
        assert not is_hermitian(np.array([[1, 1], [-1, 1]]))

    def test_identity_up_to_phase(self):
        assert is_identity_up_to_phase(np.exp(0.3j) * np.eye(3))
        assert not is_identity_up_to_phase(np.diag([1, -1]))

    def test_equal_up_to_phase(self):
        u = random_unitary(2, 1)
        assert matrices_equal_up_to_phase(np.exp(1.1j) * u, u)
        assert not matrices_equal_up_to_phase(u, random_unitary(2, 2))

    def test_phase_difference(self):
        u = random_unitary(2, 3)
        z = phase_difference(np.exp(0.8j) * u, u)
        assert z is not None and abs(z - np.exp(0.8j)) < 1e-8
        assert phase_difference(u, random_unitary(2, 4)) is None

    def test_statevector_phase_equality(self):
        psi = random_statevector(3, 5)
        assert statevectors_equal_up_to_phase(np.exp(2.2j) * psi, psi)
        assert not statevectors_equal_up_to_phase(psi, random_statevector(3, 6))


class TestKron:
    @pytest.mark.parametrize("seed", range(10))
    def test_exact_factorisation(self, seed):
        rng = np.random.default_rng(seed)
        a, b = random_unitary(2, rng), random_unitary(2, rng)
        phase, fa, fb = decompose_kron(np.kron(a, b))
        rebuilt = phase * np.kron(fa, fb)
        assert np.abs(rebuilt - np.kron(a, b)).max() < 1e-9

    def test_factors_are_su2(self):
        rng = np.random.default_rng(11)
        _, fa, fb = decompose_kron(np.kron(random_unitary(2, rng), random_unitary(2, rng)))
        assert abs(np.linalg.det(fa) - 1) < 1e-9
        assert abs(np.linalg.det(fb) - 1) < 1e-9

    def test_rejects_entangling(self):
        cx = np.array(
            [[1, 0, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0], [0, 1, 0, 0]], dtype=complex
        )
        with pytest.raises(ValueError):
            decompose_kron(cx)

    def test_nearest_residual_zero_for_products(self):
        rng = np.random.default_rng(12)
        matrix = np.kron(random_unitary(2, rng), random_unitary(2, rng))
        _, _, residual = nearest_kron_factors(matrix)
        assert residual < 1e-10

    def test_nearest_residual_positive_for_entanglers(self):
        swap = np.array(
            [[1, 0, 0, 0], [0, 0, 1, 0], [0, 1, 0, 0], [0, 0, 0, 1]], dtype=complex
        )
        _, _, residual = nearest_kron_factors(swap)
        assert residual > 0.5
