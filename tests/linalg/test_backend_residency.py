"""Device-residency audits via the instrumented fake backend.

The backend-resident contract (module docs of :mod:`repro.linalg.backend`
and :mod:`repro.simulators.statevector`): gate matrices upload **once per
fused program**, the evolving state never leaves the backend, and results
cross to the host through exactly one ``asnumpy()`` hop at the boundary.
On plain NumPy a violation is invisible (every array is a host array), so
these tests install :class:`~repro.linalg.instrument.InstrumentedBackend`
and assert its transfer counters.
"""

from __future__ import annotations

import pytest

from repro.linalg.backend import set_backend
from repro.linalg.instrument import DeviceNDArray, InstrumentedBackend, TransferLog
from repro.simulators import (
    DensityMatrixSimulator,
    StatevectorSimulator,
    circuit_unitary,
)
from repro.simulators.fusion import compile_program
from tests.helpers import random_circuit


@pytest.fixture()
def fake():
    """Install a fresh instrumented backend; restore NumPy afterwards."""
    backend = InstrumentedBackend()
    set_backend(backend)
    yield backend
    set_backend("numpy")


def unitary_steps(program) -> int:
    return sum(1 for kind, *_ in program.steps if kind == "unitary")


class TestStatevectorResidency:
    def test_unfused_run_is_one_download(self, fake):
        """One upload per gate matrix, one boundary hop, no leaks."""
        circuit = random_circuit(4, 20, seed=1)
        program = compile_program(circuit, fuse=False)
        fake.log.reset()
        state = StatevectorSimulator(fusion=False).statevector(circuit)
        assert type(state).__module__ == "numpy"
        assert fake.log.downloads == 1
        assert fake.log.foreign_downloads == 0
        assert fake.log.uploads == unitary_steps(program)

    def test_fused_run_stays_at_the_boundary(self, fake):
        """Fusion's stacked chain kernel adds its own host hop (the fused
        matrices are built host-side at compile time), but the evolve loop
        itself still pays exactly one boundary download and nothing leaks."""
        circuit = random_circuit(4, 20, seed=1)
        fake.log.reset()
        simulator = StatevectorSimulator(fusion=True)
        simulator.statevector(circuit)
        assert fake.log.foreign_downloads == 0
        compile_downloads = fake.log.downloads - 1
        assert 0 <= compile_downloads <= 2
        program = compile_program(circuit, fuse=True, cache=simulator._cache)
        assert fake.log.uploads >= unitary_steps(program)

    def test_trajectories_share_one_staged_program(self, fake):
        """Mid-circuit shots re-use the staged device matrices: uploads
        stay at one-per-gate no matter the shot count, and collapsing
        trajectories sync only scalar branch probabilities (zero array
        downloads)."""
        circuit = random_circuit(3, 10, seed=3, measure=True)
        circuit.h(0)
        circuit.measure(0, 0)
        program = compile_program(circuit, fuse=False)
        fake.log.reset()
        StatevectorSimulator(seed=11, fusion=False).run(circuit, shots=16)
        assert fake.log.uploads == unitary_steps(program)
        assert fake.log.downloads == 0
        assert fake.log.foreign_downloads == 0

    def test_terminal_sampling_downloads_one_distribution(self, fake):
        """The terminal-measurement fast path downloads the outcome
        distribution once; the state itself never crosses."""
        circuit = random_circuit(3, 10, seed=4, measure=True)
        fake.log.reset()
        StatevectorSimulator(seed=3, fusion=False).run(circuit, shots=64)
        assert fake.log.downloads == 1
        assert fake.log.foreign_downloads == 0


class TestStagedProgramCache:
    def test_staged_uploads_once_and_caches_by_backend(self, fake):
        program = compile_program(random_circuit(4, 20, seed=1), fuse=False)
        count = unitary_steps(program)
        fake.log.reset()
        first = program.staged(fake)
        second = program.staged(fake)
        assert first is second
        assert fake.log.uploads == count
        for kind, matrix, _ in first:
            if kind == "unitary":
                assert isinstance(matrix, DeviceNDArray)

    def test_backend_switch_invalidates_staged(self, fake):
        program = compile_program(random_circuit(3, 10, seed=2), fuse=False)
        program.staged(fake)
        other = InstrumentedBackend()
        set_backend(other)
        other.log.reset()
        program.staged(other)
        assert other.log.uploads == unitary_steps(program)


class TestOtherSimulatorsResidency:
    def test_unitary_is_one_download(self, fake):
        fake.log.reset()
        circuit_unitary(random_circuit(3, 10, seed=2), fusion=False)
        assert fake.log.downloads == 1
        assert fake.log.foreign_downloads == 0

    def test_density_matrix_is_one_download(self, fake):
        circuit = random_circuit(3, 10, seed=2, measure=True)
        fake.log.reset()
        DensityMatrixSimulator().probabilities(circuit)
        assert fake.log.downloads == 1
        assert fake.log.foreign_downloads == 0


class TestTransferLog:
    def test_counters_reset(self):
        log = TransferLog()
        log.uploads = 3
        log.downloads = 2
        log.foreign_downloads = 1
        log.reset()
        assert log.as_dict() == {
            "uploads": 0,
            "downloads": 0,
            "foreign_downloads": 0,
        }

    def test_foreign_download_detected(self, fake):
        import numpy as np

        host = np.ones(4)
        fake.asnumpy(host)
        assert fake.log.foreign_downloads == 1
        device = fake.asarray(host)
        fake.asnumpy(device)
        assert fake.log.downloads == 1
