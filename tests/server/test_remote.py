"""Loopback end-to-end tests: server, remote client, shard router.

The acceptance checks of the networked subsystem: results through
``RemoteCompileService`` (and through ``transpile(executor="remote")``)
must be **bit-identical** to ``executor="serial"``; job errors must come
back per job; ``/healthz`` and ``/metrics`` must answer; the shard
router must keep one target on one shard; and the empty batch must be an
empty answer on every path.

Servers here run ``mode="serial"`` (deterministic, no pool start-up per
test) except the one process-mode round-trip; the protocol and HTTP
layers under test are identical in every mode.
"""

import numpy as np
import pytest

from repro.algorithms import quantum_phase_estimation, ry_ansatz
from repro.circuit import QuantumCircuit
from repro.server import (
    CompileServer,
    ProtocolError,
    RemoteCompileService,
    ShardRouter,
)
from repro.transpiler import (
    Target,
    TranspilerError,
    aggregate_batch,
    transpile,
)


def _assert_identical(a: QuantumCircuit, b: QuantumCircuit):
    assert abs(a.global_phase - b.global_phase) < 1e-9
    assert len(a.data) == len(b.data)
    for inst_a, inst_b in zip(a.data, b.data):
        assert inst_a.operation.name == inst_b.operation.name
        assert inst_a.qubits == inst_b.qubits
        assert inst_a.clbits == inst_b.clbits
        assert np.allclose(inst_a.operation.params, inst_b.operation.params)


def _batch():
    return [quantum_phase_estimation(3), ry_ansatz(4, depth=2, seed=11)] * 2


@pytest.fixture(scope="module")
def server():
    with CompileServer(mode="serial", pipeline="rpo") as srv:
        yield srv.start()


@pytest.fixture(scope="module")
def remote(server):
    with RemoteCompileService(server.endpoint) as client:
        yield client


class TestRemoteParity:
    def test_map_matches_serial_executor(self, remote):
        batch = _batch()
        seeds = list(range(len(batch)))
        reference = transpile(
            [c.copy() for c in batch],
            target="melbourne",
            pipeline="rpo",
            seed=seeds,
            executor="serial",
        )
        results = remote.map(
            [c.copy() for c in batch],
            targets="melbourne",
            seeds=seeds,
            pipeline="rpo",
        )
        for expected, result in zip(reference, results):
            _assert_identical(expected, result.circuit)
            assert result.metrics and result.loops
            assert result.properties["target"] == Target.preset("melbourne")
            assert result.properties["shard"] == remote.endpoint

    def test_transpile_remote_executor_is_drop_in(self, server):
        batch = _batch()
        seeds = list(range(len(batch)))
        reference = transpile(
            [c.copy() for c in batch],
            target="melbourne",
            pipeline="rpo",
            seed=seeds,
            executor="serial",
        )
        results = transpile(
            [c.copy() for c in batch],
            target="melbourne",
            pipeline="rpo",
            seed=seeds,
            executor="remote",
            endpoint=server.endpoint,
        )
        for expected, got in zip(reference, results):
            _assert_identical(expected, got)

    def test_transpile_routes_through_remote_service_object(self, server):
        circuit = quantum_phase_estimation(3)
        reference = transpile(
            circuit.copy(), target="melbourne", pipeline="rpo", seed=0
        )
        with RemoteCompileService(server.endpoint) as client:
            via_service = transpile(
                circuit.copy(),
                target="melbourne",
                pipeline="rpo",
                seed=0,
                service=client,
            )
        _assert_identical(reference, via_service)

    def test_submit_single_job(self, remote):
        result = remote.submit(
            quantum_phase_estimation(3), target="melbourne", pipeline="rpo", seed=0
        ).result()
        assert result.circuit.count_ops()

    def test_forced_single_job_chunks_match_auto(self, remote):
        """chunk_size=1 (one request per circuit) and auto chunking must
        produce identical circuits -- chunking is transport, not policy."""
        batch = _batch()
        seeds = list(range(len(batch)))
        fine = remote.map(
            [c.copy() for c in batch],
            targets="melbourne",
            seeds=seeds,
            pipeline="rpo",
            chunk_size=1,
        )
        coarse = remote.map(
            [c.copy() for c in batch],
            targets="melbourne",
            seeds=seeds,
            pipeline="rpo",
            chunk_size=len(batch),
        )
        for a, b in zip(fine, coarse):
            _assert_identical(a.circuit, b.circuit)

    def test_process_mode_server_round_trip(self):
        batch = [quantum_phase_estimation(3) for _ in range(3)]
        reference = transpile(
            [c.copy() for c in batch],
            target="melbourne",
            pipeline="rpo",
            seed=[0, 1, 2],
            executor="serial",
        )
        with CompileServer(
            mode="process", pipeline="rpo", max_workers=2
        ) as srv:
            srv.start()
            with RemoteCompileService(srv.endpoint) as client:
                results = client.map(
                    [c.copy() for c in batch],
                    targets="melbourne",
                    seeds=[0, 1, 2],
                    pipeline="rpo",
                )
        for expected, result in zip(reference, results):
            _assert_identical(expected, result.circuit)


class TestRemoteFailureModes:
    def test_bad_pipeline_raises_per_job(self, remote):
        with pytest.raises(TranspilerError, match="warpdrive"):
            remote.map(
                [QuantumCircuit(2)], targets="linear:2", pipeline="warpdrive"
            )

    def test_bad_job_does_not_poison_chunk_mates(self, remote):
        good = quantum_phase_estimation(3)
        futures = [
            remote.submit(good.copy(), target="melbourne", pipeline="rpo", seed=0),
            remote.submit(good.copy(), target="melbourne", pipeline="warpdrive"),
        ]
        assert futures[0].result().circuit.count_ops()
        with pytest.raises(TranspilerError, match="warpdrive"):
            futures[1].result()

    def test_unreachable_endpoint(self):
        with RemoteCompileService("http://127.0.0.1:9", timeout=2.0) as client:
            with pytest.raises(TranspilerError, match="cannot reach"):
                client.map([QuantumCircuit(1)])

    def test_empty_batch_is_empty_answer_without_requests(self, remote):
        before = remote._requests
        assert remote.map([]) == []
        assert remote._requests == before
        assert transpile([], executor="remote", endpoint=remote.endpoint) == []

    def test_closed_client_rejects_work(self, server):
        client = RemoteCompileService(server.endpoint)
        client.close()
        with pytest.raises(TranspilerError, match="closed"):
            client.map([QuantumCircuit(1)])

    def test_remote_executor_without_endpoint(self):
        with pytest.raises(TranspilerError, match="endpoint"):
            transpile([QuantumCircuit(1)], executor="remote")

    def test_endpoint_without_remote_executor(self, server):
        with pytest.raises(TranspilerError, match="remote"):
            transpile(
                [QuantumCircuit(1)], executor="serial", endpoint=server.endpoint
            )

    def test_http_404_surfaces_as_protocol_error(self, remote):
        with pytest.raises(ProtocolError, match="404"):
            remote._post("/no-such-route", b"whatever")


class TestIntrospection:
    def test_healthz(self, remote):
        health = remote.healthz()
        assert health["status"] == "ok"
        assert health["uptime"] >= 0

    def test_metrics_counts_jobs_by_target(self, remote):
        remote.map(
            [quantum_phase_estimation(3)],
            targets="melbourne",
            seeds=[0],
            pipeline="rpo",
        )
        stats = remote.stats()
        assert stats["server"]["jobs"] >= 1
        assert stats["server"]["jobs_by_target"].get("fake_melbourne", 0) >= 1
        assert stats["service"]["completed"] >= 1
        assert stats["client"]["requests"] >= 1


class TestShardRouter:
    def test_targets_stick_to_their_shard(self):
        batch = [quantum_phase_estimation(3) for _ in range(6)]
        targets = ["melbourne" if i % 2 == 0 else "linear:8" for i in range(6)]
        seeds = list(range(6))
        reference = transpile(
            [c.copy() for c in batch],
            target=targets,
            pipeline="rpo",
            seed=seeds,
            executor="serial",
        )
        with CompileServer(mode="serial", pipeline="rpo") as s1, CompileServer(
            mode="serial", pipeline="rpo"
        ) as s2:
            s1.start()
            s2.start()
            with ShardRouter([s1.endpoint, s2.endpoint]) as router:
                results = router.map(
                    [c.copy() for c in batch],
                    targets=targets,
                    seeds=seeds,
                    pipeline="rpo",
                )
                stats = router.stats()
        for expected, result in zip(reference, results):
            _assert_identical(expected, result.circuit)
        # target affinity: each target's jobs all landed on one shard
        melbourne_shards = {
            r.properties["shard"]
            for r, t in zip(results, targets)
            if t == "melbourne"
        }
        linear_shards = {
            r.properties["shard"] for r, t in zip(results, targets) if t == "linear:8"
        }
        assert len(melbourne_shards) == 1
        assert len(linear_shards) == 1
        # two targets, two shards: the load balancer spread them out
        assert melbourne_shards != linear_shards
        assert len(stats["affinity"]) == 2
        assert sum(stats["jobs_routed"].values()) == 6

    def test_transpile_remote_executor_with_endpoint_list(self):
        batch = [quantum_phase_estimation(3) for _ in range(4)]
        reference = transpile(
            [c.copy() for c in batch],
            target="melbourne",
            pipeline="rpo",
            seed=[0, 1, 2, 3],
            executor="serial",
        )
        with CompileServer(mode="serial", pipeline="rpo") as s1, CompileServer(
            mode="serial", pipeline="rpo"
        ) as s2:
            s1.start()
            s2.start()
            results = transpile(
                [c.copy() for c in batch],
                target="melbourne",
                pipeline="rpo",
                seed=[0, 1, 2, 3],
                executor="remote",
                endpoint=[s1.endpoint, s2.endpoint],
                full_result=True,
            )
            report = aggregate_batch(results, executor="remote")
        for expected, result in zip(reference, results):
            _assert_identical(expected, result.circuit)
        # one target: affinity pins the whole batch to a single shard,
        # and the metrics report says which
        (label,) = report["by_target"]
        shards = report["by_target"][label]["shards"]
        assert len(shards) == 1 and sum(shards.values()) == 4
        assert sum(e["num_circuits"] for e in report["by_shard"].values()) == 4
        for entry in report["by_shard"].values():
            assert entry["time"]["total"] >= 0.0

    def test_submit_routes_by_affinity(self):
        with CompileServer(mode="serial", pipeline="rpo") as s1, CompileServer(
            mode="serial", pipeline="rpo"
        ) as s2:
            s1.start()
            s2.start()
            with ShardRouter([s1.endpoint, s2.endpoint]) as router:
                futures = [
                    router.submit(
                        quantum_phase_estimation(3),
                        target="melbourne",
                        pipeline="rpo",
                        seed=s,
                    )
                    for s in range(3)
                ]
                shards = {f.result().properties["shard"] for f in futures}
        assert len(shards) == 1  # same target -> same shard, every time

    def test_router_needs_shards(self):
        with pytest.raises(TranspilerError, match="at least one"):
            ShardRouter([])


class TestServerLifecycle:
    def test_server_snapshot_autosave_warm_restart(self, tmp_path):
        """The crash-safe loop: a server autosaves its cache, dies without
        a clean shutdown, and its successor boots warm from the autosave."""
        import os
        import time

        path = tmp_path / "server.snap"
        with CompileServer(
            mode="serial",
            pipeline="rpo",
            snapshot_path=str(path),
            autosave_interval=0.1,
        ) as srv:
            srv.start()
            with RemoteCompileService(srv.endpoint) as client:
                client.map(
                    [quantum_phase_estimation(3)],
                    targets="melbourne",
                    seeds=[0],
                    pipeline="rpo",
                )
            deadline = time.time() + 10
            while not os.path.exists(path) and time.time() < deadline:
                time.sleep(0.05)
            assert os.path.exists(path)  # written by the timer, pre-shutdown
            assert srv.service.stats()["autosaves"] >= 1
            # simulate a crash: no service shutdown, no final save
            srv.service.shutdown = lambda *a, **k: None

        with CompileServer(
            mode="serial", pipeline="rpo", snapshot_path=str(path)
        ) as reborn:
            assert reborn.service.stats()["snapshot_entries_loaded"] > 0

    def test_shutdown_route_stops_server(self):
        srv = CompileServer(mode="serial", pipeline="rpo")
        srv.start()
        with RemoteCompileService(srv.endpoint) as client:
            ack = client.shutdown_server()
        assert ack["status"] == "shutting down"
        deadline = __import__("time").time() + 10
        while not srv._shutdown and __import__("time").time() < deadline:
            __import__("time").sleep(0.05)
        assert srv._shutdown

    def test_owned_service_shuts_down_with_server(self):
        srv = CompileServer(mode="serial", pipeline="level1")
        srv.start()
        srv.shutdown()
        with pytest.raises(TranspilerError, match="shut down"):
            srv.service.submit(QuantumCircuit(1))

    def test_server_rejects_service_plus_kwargs(self):
        from repro.transpiler import CompileService

        with CompileService(mode="serial") as service:
            with pytest.raises(TranspilerError, match="not both"):
                CompileServer(service, pipeline="rpo")


class TestResultCacheOverWire:
    """Protocol-v2 result-cache surfaces: the ``X-Repro-Cache-Hits``
    response header, ``GET /cache/<fingerprint>`` peer lookups, and the
    ``result_cache`` section of ``/metrics``."""

    def _fresh_batch(self, n=3):
        rng = np.random.default_rng(23)
        return [
            ry_ansatz(3, depth=2, parameters=rng.uniform(0, 2 * np.pi, (3, 3)))
            for _ in range(n)
        ]

    def test_repeat_batch_reports_hits_in_header_and_metrics(self, remote):
        batch = self._fresh_batch()
        seeds = [101] * len(batch)
        before = remote.stats()["client"]["remote_cache_hits"]
        first = remote.map(
            [c.copy() for c in batch], targets="melbourne", seeds=seeds,
            pipeline="rpo",
        )
        second = remote.map(
            [c.copy() for c in batch], targets="melbourne", seeds=seeds,
            pipeline="rpo",
        )
        stats = remote.stats()
        assert (
            stats["client"]["remote_cache_hits"] - before >= len(batch)
        )  # counted from the response header
        cache_stats = stats["result_cache"]
        assert cache_stats is not None
        assert cache_stats["hits"] >= len(batch)
        for a, b in zip(first, second):
            _assert_identical(a.circuit, b.circuit)

    def test_cache_lookup_round_trip_and_miss(self, remote):
        from repro.circuit.serialization import circuit_to_payload
        from repro.transpiler.result_cache import job_fingerprint

        circuit = self._fresh_batch(1)[0]
        # peer fingerprints only line up when the cache-key settings are
        # explicit (a server would otherwise fill its own defaults in)
        remote.map([circuit.copy()], targets="melbourne", seeds=[202],
                   pipeline="rpo", optimization_level=1)
        fingerprint = job_fingerprint(
            circuit_to_payload(circuit),
            Target.preset("melbourne").to_payload(),
            ("rpo", 1, 202),
        )
        payload = remote.cache_lookup(fingerprint)
        assert payload is not None  # served straight from the peer cache
        assert remote.cache_lookup("0" * 64) is None  # miss is a clean 404

    def test_client_options_object_supplies_defaults(self, server):
        from repro.transpiler import CompileOptions

        circuit = quantum_phase_estimation(3)
        reference = transpile(
            circuit.copy(), target="melbourne", pipeline="rpo", seed=5
        )
        options = CompileOptions(pipeline="rpo", seed=5)
        with RemoteCompileService(server.endpoint, options=options) as client:
            results = client.map([circuit.copy()], targets="melbourne")
        _assert_identical(reference, results[0].circuit)

    def test_endpoint_alone_implies_remote_executor(self, server):
        circuit = quantum_phase_estimation(3)
        reference = transpile(
            circuit.copy(), target="melbourne", pipeline="rpo", seed=0
        )
        via_endpoint = transpile(
            circuit.copy(),
            target="melbourne",
            pipeline="rpo",
            seed=0,
            endpoint=server.endpoint,  # no executor= needed
        )
        _assert_identical(reference, via_endpoint)


class TestPeerCacheLookup:
    def test_router_serves_from_a_peer_shards_cache(self):
        """A job already compiled on shard A must not recompile when the
        router's affinity sends it to shard B: B's miss is answered by
        the peer lookup against A before any dispatch."""
        rng = np.random.default_rng(31)
        batch = [
            ry_ansatz(3, depth=2, parameters=rng.uniform(0, 2 * np.pi, (3, 3)))
            for _ in range(4)
        ]
        seeds = list(range(4))
        target = Target.preset("melbourne")
        reference = transpile(
            [c.copy() for c in batch],
            target="melbourne",
            pipeline="rpo",
            seed=seeds,
            optimization_level=1,
            executor="serial",
        )
        with CompileServer(mode="serial", pipeline="rpo") as s1, CompileServer(
            mode="serial", pipeline="rpo"
        ) as s2:
            s1.start()
            s2.start()
            endpoints = [s1.endpoint, s2.endpoint]
            with ShardRouter(endpoints) as router:
                routed = router.route(target)
                warm_endpoint = endpoints[1 - routed]
                with RemoteCompileService(warm_endpoint) as warmer:
                    warmer.map(
                        [c.copy() for c in batch],
                        targets="melbourne",
                        seeds=seeds,
                        pipeline="rpo",
                        optimization_level=1,
                    )
                results = router.map(
                    [c.copy() for c in batch],
                    targets="melbourne",
                    seeds=seeds,
                    pipeline="rpo",
                    optimization_level=1,
                )
                stats = router.stats()
        assert stats["peer_cache"]["enabled"]
        assert stats["peer_cache"]["hits"] == len(batch)
        for expected, result in zip(reference, results):
            _assert_identical(expected, result.circuit)
            assert result.properties["result_cache"] == "peer"
            assert result.properties["shard"] == warm_endpoint

    def test_peer_lookup_can_be_disabled(self):
        with CompileServer(mode="serial", pipeline="rpo") as s1, CompileServer(
            mode="serial", pipeline="rpo"
        ) as s2:
            s1.start()
            s2.start()
            with ShardRouter(
                [s1.endpoint, s2.endpoint], peer_cache=False
            ) as router:
                router.map(
                    [quantum_phase_estimation(3)],
                    targets="melbourne",
                    seeds=[0],
                    pipeline="rpo",
                    optimization_level=1,
                )
                stats = router.stats()
        assert not stats["peer_cache"]["enabled"]
        assert stats["peer_cache"]["lookups"] == 0
