"""Wire-protocol tests: round-trips, chunking, and malformed frames.

Hypothesis drives random circuits, targets and settings through the
envelope encoders and back; the adversarial half feeds truncated,
corrupt and foreign-version bytes in and requires a clean
:class:`ProtocolError` (never a bare ``struct``/``json``/``pickle``
exception) out.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit import QuantumCircuit
from repro.circuit.serialization import circuit_from_payload, circuit_to_payload
from repro.server.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    decode_frame,
    decode_jobs,
    decode_results,
    encode_error,
    encode_frame,
    encode_jobs,
    encode_results,
    merge_chunks,
    pack_blob,
    split_chunks,
    unpack_blob,
)
from repro.transpiler import Target, TranspilerError


def _random_circuit(rng: np.random.Generator, num_qubits: int, depth: int):
    circuit = QuantumCircuit(num_qubits, num_qubits)
    for _ in range(depth):
        kind = rng.integers(0, 5)
        qubit = int(rng.integers(0, num_qubits))
        if kind == 0:
            circuit.h(qubit)
        elif kind == 1:
            circuit.x(qubit)
        elif kind == 2:
            circuit.u3(*(float(v) for v in rng.uniform(0, np.pi, size=3)), qubit)
        elif kind >= 3 and num_qubits >= 2:
            other = int(rng.integers(0, num_qubits - 1))
            other += other >= qubit
            circuit.cx(qubit, other)
    circuit.measure_all()
    return circuit


def _assert_same_circuit(a: QuantumCircuit, b: QuantumCircuit):
    assert len(a.data) == len(b.data)
    assert a.num_qubits == b.num_qubits
    for inst_a, inst_b in zip(a.data, b.data):
        assert inst_a.operation.name == inst_b.operation.name
        assert inst_a.qubits == inst_b.qubits
        assert np.allclose(inst_a.operation.params, inst_b.operation.params)


class TestFrameRoundTrip:
    @settings(max_examples=25, deadline=None)
    @given(
        envelope=st.dictionaries(
            st.text(min_size=1, max_size=8),
            st.one_of(
                st.integers(-(2**31), 2**31),
                st.text(max_size=32),
                st.lists(st.integers(0, 255), max_size=8),
            ),
            max_size=6,
        )
    )
    def test_any_json_envelope_round_trips(self, envelope):
        assert decode_frame(encode_frame(envelope)) == envelope

    @settings(max_examples=10, deadline=None)
    @given(data=st.data())
    def test_circuit_and_target_blobs_round_trip(self, data):
        rng = np.random.default_rng(data.draw(st.integers(0, 2**32 - 1)))
        circuit = _random_circuit(
            rng, int(rng.integers(1, 5)), int(rng.integers(1, 10))
        )
        payload = circuit_to_payload(circuit)
        _assert_same_circuit(
            circuit, circuit_from_payload(unpack_blob(pack_blob(payload)))
        )
        target = Target.preset(
            data.draw(st.sampled_from(["melbourne", "linear:5", "grid:2x3"]))
        )
        rebuilt = Target.from_payload(unpack_blob(pack_blob(target.to_payload())))
        assert rebuilt == target

    @settings(max_examples=10, deadline=None)
    @given(data=st.data())
    def test_job_envelope_round_trips(self, data):
        rng = np.random.default_rng(data.draw(st.integers(0, 2**32 - 1)))
        jobs = []
        for index in range(data.draw(st.integers(1, 5))):
            circuit = _random_circuit(rng, 2, 4)
            target = Target.full(2)
            settings_dict = {
                "pipeline": data.draw(st.sampled_from(["rpo", "level1", None])),
                "optimization_level": data.draw(st.sampled_from([None, 0, 3])),
                "seed": index,
                "initial_layout": None,
            }
            jobs.append(
                (circuit_to_payload(circuit), target.to_payload(), settings_dict)
            )
        decoded = decode_jobs(decode_frame(encode_frame(encode_jobs(jobs))))
        assert len(decoded) == len(jobs)
        for (c_in, t_in, s_in), (c_out, t_out, s_out) in zip(jobs, decoded):
            _assert_same_circuit(
                circuit_from_payload(c_in), circuit_from_payload(c_out)
            )
            assert t_in == t_out
            assert s_in == s_out

    def test_result_envelope_round_trips_mixed_outcomes(self):
        okay = ("payload-stand-in", [], [], 0.25, {"depth": 3})
        outcomes = [("ok", okay), ("error", TranspilerError("boom"))]
        decoded = decode_results(decode_frame(encode_frame(encode_results(outcomes))))
        assert decoded[0] == ("ok", okay)
        status, error = decoded[1]
        assert status == "error"
        assert isinstance(error, TranspilerError)
        assert "boom" in str(error)

    def test_error_envelope_raises_on_decode(self):
        envelope = decode_frame(encode_frame(encode_error("it broke")))
        with pytest.raises(ProtocolError, match="it broke"):
            decode_results(envelope)


class TestMalformedFrames:
    def test_truncated_header(self):
        with pytest.raises(ProtocolError, match="truncated"):
            decode_frame(b"RP")

    def test_truncated_body(self):
        frame = encode_frame({"type": "compile", "jobs": []})
        with pytest.raises(ProtocolError, match="length mismatch"):
            decode_frame(frame[:-3])

    def test_trailing_garbage(self):
        frame = encode_frame({"a": 1})
        with pytest.raises(ProtocolError, match="length mismatch"):
            decode_frame(frame + b"xx")

    def test_bad_magic(self):
        frame = encode_frame({"a": 1})
        with pytest.raises(ProtocolError, match="magic"):
            decode_frame(b"XXXX" + frame[4:])

    def test_foreign_version_names_both(self):
        frame = bytearray(encode_frame({"a": 1}))
        frame[4] = PROTOCOL_VERSION + 1
        with pytest.raises(ProtocolError) as excinfo:
            decode_frame(bytes(frame))
        assert str(PROTOCOL_VERSION) in str(excinfo.value)
        assert str(PROTOCOL_VERSION + 1) in str(excinfo.value)

    def test_non_json_body(self):
        body = b"\xff\xfe not json"
        import struct

        frame = struct.pack(">4sBI", b"RPOC", PROTOCOL_VERSION, len(body)) + body
        with pytest.raises(ProtocolError, match="not JSON"):
            decode_frame(frame)

    def test_non_object_body(self):
        body = json.dumps([1, 2, 3]).encode()
        import struct

        frame = struct.pack(">4sBI", b"RPOC", PROTOCOL_VERSION, len(body)) + body
        with pytest.raises(ProtocolError, match="JSON object"):
            decode_frame(frame)

    def test_corrupt_base64_blob(self):
        with pytest.raises(ProtocolError, match="base64"):
            unpack_blob("!!! not base64 !!!")

    def test_corrupt_pickle_blob(self):
        import base64

        blob = base64.b64encode(b"not a pickle").decode()
        with pytest.raises(ProtocolError, match="pickle"):
            unpack_blob(blob)

    def test_compile_envelope_wrong_type(self):
        with pytest.raises(ProtocolError, match="compile"):
            decode_jobs({"type": "result"})

    def test_compile_envelope_missing_jobs(self):
        with pytest.raises(ProtocolError, match="jobs"):
            decode_jobs({"type": "compile"})

    def test_job_blob_wrong_shape(self):
        envelope = {"type": "compile", "jobs": [pack_blob(("just", "two"))]}
        with pytest.raises(ProtocolError, match="tuple"):
            decode_jobs(envelope)

    def test_result_envelope_wrong_type(self):
        with pytest.raises(ProtocolError, match="result"):
            decode_results({"type": "compile"})

    def test_protocol_error_is_transpiler_error(self):
        """Callers handling TranspilerError cover wire failures too."""
        assert issubclass(ProtocolError, TranspilerError)


class TestChunking:
    @settings(max_examples=30, deadline=None)
    @given(
        items=st.lists(st.integers(), max_size=50),
        chunk_size=st.integers(1, 12),
    )
    def test_split_then_merge_is_identity(self, items, chunk_size):
        chunks = split_chunks(items, chunk_size)
        assert merge_chunks(chunks) == items
        assert all(len(chunk) <= chunk_size for chunk in chunks)
        if items:
            # all chunks full except possibly the last
            assert all(len(chunk) == chunk_size for chunk in chunks[:-1])

    def test_zero_chunk_size_rejected(self):
        with pytest.raises(ProtocolError, match="chunk_size"):
            split_chunks([1, 2], 0)

    def test_empty_input_yields_no_chunks(self):
        assert split_chunks([], 4) == []
