"""Every gate definition must reproduce its matrix exactly (incl. phase)."""

import numpy as np
import pytest

from repro.circuit.instruction import ControlledGate
from repro.gates import (
    Annotation,
    Barrier,
    CCXGate,
    CCZGate,
    CHGate,
    CPhaseGate,
    CRXGate,
    CRYGate,
    CRZGate,
    CSwapGate,
    CU3Gate,
    CXGate,
    CYGate,
    CZGate,
    HGate,
    IGate,
    ISwapGate,
    MCU1Gate,
    MCXGate,
    MCXVChainGate,
    MCZGate,
    RXGate,
    RYGate,
    RZGate,
    SdgGate,
    SGate,
    SwapGate,
    SwapZGate,
    SXGate,
    TdgGate,
    TGate,
    U1Gate,
    U2Gate,
    U3Gate,
    UnitaryGate,
    XGate,
    YGate,
    ZGate,
)
from repro.linalg.random import random_unitary
from repro.simulators import circuit_unitary

GATES_WITH_DEFINITIONS = [
    XGate(),
    YGate(),
    ZGate(),
    HGate(),
    SGate(),
    SdgGate(),
    TGate(),
    TdgGate(),
    SXGate(),
    RXGate(0.37),
    RYGate(-1.2),
    RZGate(2.4),
    U2Gate(0.3, 1.1),
    CYGate(),
    CZGate(),
    CHGate(),
    CPhaseGate(0.77),
    CRXGate(1.3),
    CRYGate(-0.6),
    CRZGate(0.9),
    CU3Gate(0.5, 0.6, 0.7),
    SwapGate(),
    SwapZGate(),
    ISwapGate(),
    CCXGate(),
    CCZGate(),
    CSwapGate(),
    MCU1Gate(0.81, 2),
    MCU1Gate(-1.3, 3),
    MCXGate(3),
    MCZGate(3),
]


@pytest.mark.parametrize("gate", GATES_WITH_DEFINITIONS, ids=lambda g: f"{g.name}{g.num_qubits}")
def test_definition_matches_matrix(gate):
    definition = gate.definition
    assert definition is not None, f"{gate.name} has no definition"
    # fully unroll nested definitions through the simulator
    circuit = definition
    for _ in range(8):
        circuit = circuit.decompose()
    assert np.abs(circuit_unitary(circuit) - gate.to_matrix()).max() < 1e-8


@pytest.mark.parametrize(
    "gate",
    GATES_WITH_DEFINITIONS + [CXGate(), IGate(), U1Gate(0.4), U3Gate(0.1, 0.2, 0.3)],
    ids=lambda g: f"{g.name}{g.num_qubits}",
)
def test_inverse_is_inverse(gate):
    inverse = gate.inverse()
    product = inverse.to_matrix() @ gate.to_matrix()
    assert np.allclose(product, np.eye(2**gate.num_qubits), atol=1e-9)


class TestOpenControls:
    @pytest.mark.parametrize("ctrl_state", [0, 1, 2])
    def test_ccx_open_controls(self, ctrl_state):
        gate = CCXGate(ctrl_state=ctrl_state)
        circuit = gate.definition
        for _ in range(6):
            circuit = circuit.decompose()
        assert np.abs(circuit_unitary(circuit) - gate.to_matrix()).max() < 1e-8

    def test_open_control_matrix(self):
        gate = CXGate(ctrl_state=0)
        # fires when control (bit 0) is |0>
        m = gate.to_matrix()
        assert m[2, 0] == 1 and m[0, 2] == 1  # |00> <-> |10> (target flips)
        assert m[1, 1] == 1 and m[3, 3] == 1

    def test_generic_control_method(self):
        controlled = XGate().control(2)
        assert isinstance(controlled, ControlledGate)
        assert np.allclose(controlled.to_matrix(), CCXGate().to_matrix())


class TestVChain:
    @pytest.mark.parametrize("k", [1, 2, 3, 4, 5])
    def test_acts_as_mcx_on_clean_ancillas(self, k):
        from repro.circuit import QuantumCircuit
        from repro.simulators import simulate_statevector

        gate = MCXVChainGate(k)
        n = gate.num_qubits
        for pattern in [0, 1, (1 << k) - 1, (1 << k) - 2]:
            circuit = QuantumCircuit(n)
            for i in range(k):
                if (pattern >> i) & 1:
                    circuit.x(i)
            circuit.append(gate, tuple(range(n)))
            state = simulate_statevector(circuit)
            outcome = int(np.argmax(np.abs(state)))
            assert abs(abs(state[outcome]) - 1) < 1e-9
            target_flipped = (outcome >> (n - 1)) & 1
            ancilla_bits = (outcome >> k) & ((1 << gate.num_ancillas) - 1)
            assert target_flipped == (1 if pattern == (1 << k) - 1 else 0)
            assert ancilla_bits == 0  # ancillas return clean

    def test_linear_toffoli_cost(self):
        gate = MCXVChainGate(6)
        defn = gate.definition
        assert defn.count_ops()["ccx"] == 2 * (6 - 2) + 1


class TestDirectives:
    def test_barrier_is_directive(self):
        assert Barrier(3).is_directive

    def test_annotation_is_directive(self):
        annotation = Annotation(0.0, 0.0)
        assert annotation.is_directive
        assert annotation.is_zero_state()
        assert not Annotation(1.0, 0.0).is_zero_state()


class TestUnitaryGate:
    def test_rejects_non_unitary(self):
        with pytest.raises(ValueError):
            UnitaryGate(np.ones((2, 2)))

    def test_one_qubit_definition(self):
        u = random_unitary(2, 8)
        gate = UnitaryGate(u)
        assert np.abs(gate.definition.to_matrix() - u).max() < 1e-8

    def test_two_qubit_definition(self):
        u = random_unitary(4, 9)
        gate = UnitaryGate(u)
        assert np.abs(gate.definition.to_matrix() - u).max() < 1e-7
