"""Backend and calibration-data containers."""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.transpiler.coupling import CouplingMap

__all__ = ["BackendProperties", "FakeBackend"]


@dataclasses.dataclass
class BackendProperties:
    """Per-qubit / per-edge calibration data.

    Mirrors the fields the paper's optimization and noise model consume:
    gate errors for the noise-adaptive layout and the Fig. 11 noise model,
    readout errors for measurement.
    """

    single_qubit_error: dict[int, float]
    two_qubit_error: dict[tuple[int, int], float]
    readout_error: dict[int, tuple[float, float]]
    default_single_qubit_error: float = 1e-3
    default_two_qubit_error: float = 2e-2
    default_readout_error: tuple[float, float] = (3e-2, 3e-2)

    @classmethod
    def generate(
        cls,
        coupling: CouplingMap,
        seed: int,
        single_qubit_range: tuple[float, float] = (1e-4, 1e-3),
        two_qubit_range: tuple[float, float] = (1.2e-2, 5e-2),
        readout_range: tuple[float, float] = (1.5e-2, 6e-2),
    ) -> "BackendProperties":
        """Deterministically sample calibration data in realistic ranges."""
        rng = np.random.default_rng(seed)

        def log_uniform(low: float, high: float) -> float:
            return float(np.exp(rng.uniform(np.log(low), np.log(high))))

        single = {q: log_uniform(*single_qubit_range) for q in range(coupling.num_qubits)}
        two = {edge: log_uniform(*two_qubit_range) for edge in coupling.edges}
        readout = {
            q: (log_uniform(*readout_range), log_uniform(*readout_range))
            for q in range(coupling.num_qubits)
        }
        return cls(single_qubit_error=single, two_qubit_error=two, readout_error=readout)


class FakeBackend:
    """A named device: coupling map + calibration data."""

    def __init__(self, name: str, coupling_map: CouplingMap, properties: BackendProperties):
        self.name = name
        self.coupling_map = coupling_map
        self.properties = properties

    @property
    def num_qubits(self) -> int:
        return self.coupling_map.num_qubits

    def target(self, basis=None) -> "Target":
        """This device as a :class:`~repro.transpiler.target.Target`."""
        from repro.transpiler.target import Target

        if basis is None:
            return Target.from_backend(self)
        return Target.from_backend(self, basis=basis)

    def __repr__(self) -> str:
        return f"<FakeBackend {self.name!r} ({self.num_qubits} qubits)>"
