"""The three devices from the paper's evaluation (Fig. 9)."""

from __future__ import annotations

from repro.backends.backend import BackendProperties, FakeBackend
from repro.transpiler.coupling import CouplingMap

__all__ = ["FakeMelbourne", "FakeAlmaden", "FakeRochester"]

#: Published ``ibmq_16_melbourne`` topology: two horizontal rows with
#: vertical rungs (15 usable qubits).
_MELBOURNE_EDGES = [
    (0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6),
    (7, 8), (8, 9), (9, 10), (10, 11), (11, 12), (12, 13), (13, 14),
    (0, 14), (1, 13), (2, 12), (3, 11), (4, 10), (5, 9), (6, 8),
]

#: Published ``ibmq_almaden`` (20-qubit Penguin) topology.
_ALMADEN_EDGES = [
    (0, 1), (1, 2), (2, 3), (3, 4),
    (1, 6), (3, 8),
    (5, 6), (6, 7), (7, 8), (8, 9),
    (5, 10), (7, 12), (9, 14),
    (10, 11), (11, 12), (12, 13), (13, 14),
    (11, 16), (13, 18),
    (15, 16), (16, 17), (17, 18), (18, 19),
]


def _rochester_edges() -> list[tuple[int, int]]:
    """A 53-qubit heavy-hex-style lattice standing in for ``ibmq_rochester``.

    Five rows of nine qubits connected by two vertical connector qubits per
    row gap (45 + 8 = 53 qubits).  Degree <= 3 everywhere and a large
    diameter: the sparsest topology of the three, matching the paper's
    connectivity ranking (Sec. VIII-D).
    """
    edges: list[tuple[int, int]] = []
    rows = [list(range(9 * r, 9 * r + 9)) for r in range(5)]
    for row in rows:
        edges.extend((row[i], row[i + 1]) for i in range(len(row) - 1))
    connector = 45
    for gap in range(4):
        top, bottom = rows[gap], rows[gap + 1]
        # alternate attachment columns so consecutive gaps are offset,
        # as in the heavy-hex pattern
        columns = (1, 7) if gap % 2 == 0 else (3, 5)
        for column in columns:
            edges.append((top[column], connector))
            edges.append((connector, bottom[column]))
            connector += 1
    return edges


def FakeMelbourne() -> FakeBackend:
    """15-qubit ``ibmq_16_melbourne`` stand-in."""
    coupling = CouplingMap(_MELBOURNE_EDGES, num_qubits=15)
    properties = BackendProperties.generate(
        coupling,
        seed=16,
        two_qubit_range=(1.5e-2, 6e-2),   # melbourne-era CNOTs were noisy
        readout_range=(2e-2, 8e-2),
    )
    return FakeBackend("fake_melbourne", coupling, properties)


def FakeAlmaden() -> FakeBackend:
    """20-qubit ``ibmq_almaden`` stand-in."""
    coupling = CouplingMap(_ALMADEN_EDGES, num_qubits=20)
    properties = BackendProperties.generate(
        coupling,
        seed=20,
        two_qubit_range=(8e-3, 3e-2),
        readout_range=(1.5e-2, 5e-2),
    )
    return FakeBackend("fake_almaden", coupling, properties)


def FakeRochester() -> FakeBackend:
    """53-qubit ``ibmq_rochester`` stand-in (reconstructed topology)."""
    coupling = CouplingMap(_rochester_edges(), num_qubits=53)
    properties = BackendProperties.generate(
        coupling,
        seed=53,
        two_qubit_range=(1.2e-2, 5e-2),
        readout_range=(2e-2, 7e-2),
    )
    return FakeBackend("fake_rochester", coupling, properties)
