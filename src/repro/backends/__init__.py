"""Fake IBM backends: coupling maps plus representative calibration data.

The paper evaluates on three machines (Fig. 9): ``ibmq_16_melbourne``
(15 qubits, best connectivity of the three), ``ibmq_almaden`` (20 qubits),
and ``ibmq_rochester`` (53 qubits, worst connectivity).  The paper's own
artifact appendix recommends Qiskit *fake backends* for reproduction; this
module plays that role.

Coupling maps: Melbourne and Almaden use the published IBM topologies.
Rochester's exact edge list is reconstructed as a 53-qubit heavy-hex-style
lattice with the same qualitative properties the paper relies on (degree
<= 3, large diameter, clearly the sparsest of the three); see
:func:`_rochester_edges` and DESIGN.md.

Calibration data is generated deterministically per backend in the ranges
the paper quotes (Sec. IV): one-qubit gate error ``1e-4 .. 1e-3``, CNOT
error around ``1e-2`` and worse, readout error of a few percent.
"""

from repro.backends.backend import BackendProperties, FakeBackend
from repro.backends.devices import FakeAlmaden, FakeMelbourne, FakeRochester

__all__ = ["BackendProperties", "FakeBackend", "FakeMelbourne", "FakeAlmaden", "FakeRochester"]
