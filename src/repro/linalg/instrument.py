"""Instrumented "fake device" backend for host-round-trip auditing.

The backend-resident code paths (simulator evolve loops, stacked
kernels) promise a specific transfer discipline: inputs are uploaded
with :meth:`~repro.linalg.backend.ArrayBackend.asarray`, all arithmetic
stays on backend arrays, and results cross back to the host through
exactly one :meth:`~repro.linalg.backend.ArrayBackend.asnumpy` hop at
the boundary.  On a NumPy-only CI box that contract is invisible --
every array is a host array, so an accidental ``np.asarray(state)``
mid-loop costs nothing and silently ships as a device sync.

:class:`InstrumentedBackend` makes the contract observable without a
GPU.  Its arrays are :class:`DeviceNDArray` -- a ``np.ndarray`` subclass
that *behaves* like NumPy (every computation works, tests stay cheap)
but is type-distinguishable from a host array.  The backend counts

* ``uploads``  -- ``asarray`` calls that converted a host array,
* ``downloads`` -- ``asnumpy``/``to_numpy`` calls that converted a
  device array back,

and because ``DeviceNDArray`` propagates through NumPy ufuncs the way
CuPy arrays refuse to mix with host ops, a mid-loop round-trip shows up
as an unexpected extra download.  Tests install it with
``set_backend(InstrumentedBackend())`` and assert the counters.

The ``xp`` namespace is the real NumPy module wrapped in a thin proxy
whose array-returning callables re-tag results as :class:`DeviceNDArray`,
so backend-generic code (``xp.einsum``, ``xp.linalg.eigvals``, fancy
indexing) runs unmodified while its outputs stay "on device".
"""

from __future__ import annotations

import numpy as np

from repro.linalg.backend import ArrayBackend

__all__ = ["DeviceNDArray", "InstrumentedBackend", "TransferLog"]


class DeviceNDArray(np.ndarray):
    """A host array wearing a device costume.

    Computes exactly like ``np.ndarray`` but is a distinct type, so
    residency tests can tell "stayed on the backend" from "silently
    became a plain host array".  Mimics the CuPy device API surface the
    library is allowed to touch (``.get()``).
    """

    def get(self) -> np.ndarray:
        """Device -> host transfer (CuPy spelling)."""
        return np.asarray(self).view(np.ndarray)


def _tag(value):
    """View array results as :class:`DeviceNDArray`; pass scalars through."""
    if isinstance(value, np.ndarray):
        return value.view(DeviceNDArray)
    if isinstance(value, tuple):
        return tuple(_tag(item) for item in value)
    if isinstance(value, list):
        return [_tag(item) for item in value]
    return value


class _ModuleProxy:
    """Wrap a module so array-returning callables re-tag their results.

    Submodules (``np.linalg``, ``np.random``) are proxied recursively;
    non-callable attributes (``pi``, dtypes) pass through untouched.
    """

    __slots__ = ("_module",)

    def __init__(self, module):
        self._module = module

    def __getattr__(self, name):
        attr = getattr(self._module, name)
        if isinstance(attr, type(np)):  # submodule
            return _ModuleProxy(attr)
        if callable(attr) and not isinstance(attr, type):
            def tagged(*args, _func=attr, **kwargs):
                return _tag(_func(*args, **kwargs))

            return tagged
        return attr

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"_ModuleProxy({self._module.__name__})"


class TransferLog:
    """Mutable counters shared by one :class:`InstrumentedBackend`."""

    __slots__ = ("uploads", "downloads", "foreign_downloads")

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.uploads = 0
        self.downloads = 0
        #: ``asnumpy`` calls whose argument was NOT a device array -- a
        #: host array leaked to the boundary without ever being uploaded.
        self.foreign_downloads = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "uploads": self.uploads,
            "downloads": self.downloads,
            "foreign_downloads": self.foreign_downloads,
        }


class InstrumentedBackend(ArrayBackend):
    """A drop-in ``ArrayBackend`` that audits host<->device transfers.

    Install with ``set_backend(InstrumentedBackend())``; restore with
    ``set_backend("numpy")``.  The name is ``"fake"`` on purpose: code
    that special-cases the NumPy backend by name (e.g.
    ``FusedProgram.staged`` skipping the device upload) must treat this
    backend as a real device, otherwise the audit would measure nothing.
    """

    def __init__(self) -> None:
        object.__setattr__(self, "name", "fake")
        object.__setattr__(self, "xp", _ModuleProxy(np))
        object.__setattr__(self, "fallback_reason", None)
        object.__setattr__(self, "log", TransferLog())

    def asarray(self, array, dtype=None):
        if not isinstance(array, DeviceNDArray):
            self.log.uploads += 1
        return np.asarray(array, dtype=dtype).view(DeviceNDArray)

    def asnumpy(self, array) -> np.ndarray:
        if isinstance(array, DeviceNDArray):
            self.log.downloads += 1
            return array.get()
        self.log.foreign_downloads += 1
        return np.asarray(array)

    to_numpy = asnumpy
