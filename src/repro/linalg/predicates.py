"""Matrix predicates used throughout the transpiler and the test-suite.

All comparisons take an absolute tolerance because the synthesis routines
accumulate floating-point error of order ``1e-12`` over a handful of matrix
products; the default tolerance of ``1e-8`` leaves three orders of magnitude
of headroom while still catching genuine mismatches.
"""

from __future__ import annotations

import numpy as np

DEFAULT_ATOL = 1e-8


def is_unitary(matrix: np.ndarray, atol: float = DEFAULT_ATOL) -> bool:
    """Return ``True`` when ``matrix`` is (numerically) unitary."""
    matrix = np.asarray(matrix, dtype=complex)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        return False
    identity = np.eye(matrix.shape[0])
    return bool(np.allclose(matrix @ matrix.conj().T, identity, atol=atol))


def is_hermitian(matrix: np.ndarray, atol: float = DEFAULT_ATOL) -> bool:
    """Return ``True`` when ``matrix`` equals its conjugate transpose."""
    matrix = np.asarray(matrix, dtype=complex)
    return bool(np.allclose(matrix, matrix.conj().T, atol=atol))


def phase_difference(a: np.ndarray, b: np.ndarray) -> complex | None:
    """Return the global phase ``z`` (``|z| = 1``) with ``a ~ z * b``.

    Returns ``None`` if no single phase relates the two matrices.  The phase
    is estimated from the largest-magnitude entry of ``b`` to minimise the
    effect of rounding on near-zero entries.
    """
    a = np.asarray(a, dtype=complex)
    b = np.asarray(b, dtype=complex)
    if a.shape != b.shape:
        return None
    flat_index = int(np.argmax(np.abs(b)))
    pivot = b.flat[flat_index]
    if abs(pivot) < 1e-12:
        return None
    z = a.flat[flat_index] / pivot
    magnitude = abs(z)
    if abs(magnitude - 1.0) > 1e-6:
        return None
    z /= magnitude
    if not np.allclose(a, z * b, atol=1e-7):
        return None
    return complex(z)


def matrices_equal_up_to_phase(
    a: np.ndarray, b: np.ndarray, atol: float = DEFAULT_ATOL
) -> bool:
    """Return ``True`` when ``a = exp(i*phi) * b`` for some real ``phi``."""
    a = np.asarray(a, dtype=complex)
    b = np.asarray(b, dtype=complex)
    if a.shape != b.shape:
        return False
    flat_index = int(np.argmax(np.abs(b)))
    pivot = b.flat[flat_index]
    if abs(pivot) < atol:
        return bool(np.allclose(a, b, atol=atol))
    z = a.flat[flat_index] / pivot
    if abs(abs(z) - 1.0) > atol * 10:
        return False
    return bool(np.allclose(a, z * b, atol=atol))


def is_identity_up_to_phase(matrix: np.ndarray, atol: float = DEFAULT_ATOL) -> bool:
    """Return ``True`` when ``matrix`` is a scalar multiple of the identity."""
    matrix = np.asarray(matrix, dtype=complex)
    return matrices_equal_up_to_phase(matrix, np.eye(matrix.shape[0]), atol=atol)


def statevectors_equal_up_to_phase(
    a: np.ndarray, b: np.ndarray, atol: float = DEFAULT_ATOL
) -> bool:
    """Return ``True`` when two state vectors agree up to a global phase."""
    a = np.asarray(a, dtype=complex).ravel()
    b = np.asarray(b, dtype=complex).ravel()
    if a.shape != b.shape:
        return False
    overlap = np.vdot(a, b)
    norm = np.linalg.norm(a) * np.linalg.norm(b)
    if norm < atol:
        return True
    return bool(abs(abs(overlap) - norm) < atol * max(1.0, norm))
