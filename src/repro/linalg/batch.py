"""Batched numeric kernels over stacked small operands.

The transpiler's hot paths all reduce to the same shape of work: many
*independent* chains of 2x2 / 4x4 matrix algebra (block accumulation in
``ConsolidateBlocks``, run merging in ``Optimize1qGates``, per-gate
embedding in the simulators' fusion pre-step, Weyl/Euler extraction during
synthesis).  Doing that one matrix at a time leaves almost all the time in
Python dispatch; this module instead operates on **stacked operands** --
``(N, d, d)`` arrays -- so a whole batch moves through one vectorized call:

* :func:`reduce_matmul` -- chained matrix product along the stack axis via
  log-depth pairwise ``matmul`` (``O(log N)`` kernel launches), with
  :func:`fold_matmul` as the bit-exact sequential variant;
* :func:`stack_chains` / :func:`chain_products` -- identity-pad ragged
  chains into one ``(B, L, d, d)`` block and reduce every chain at once;
* :func:`kron_batch`, :func:`embed_1q_in_2q`, :func:`permute_2q`,
  :func:`two_qubit_chain_unitaries` -- batched embedding of mixed 1q/2q
  gate chains into stacked 4x4 block unitaries;
* :func:`u3_params_batch` / :func:`euler_zyz_angles_batch` -- vectorized
  one-qubit Euler extraction matching
  :func:`repro.linalg.euler.u3_params_from_unitary` elementwise;
* :func:`weyl_coordinates_batch` -- canonical-gate coordinates of a stack
  of two-qubit unitaries;
* :func:`is_unitary_batch` / :func:`is_identity_up_to_phase_batch` --
  vectorized predicates mirroring :mod:`repro.linalg.predicates`;
* :func:`u3_matrix_batch` / :func:`apply_1q_batch` -- vectorized ``u3``
  construction and Bloch-tuple gate merging (the pure-state tracker's
  transition, :meth:`repro.rpo.pure_tracker.PureStateTracker.apply_1q_gate`);
* :func:`bloch_rotation_batch` / :func:`basis_axes_batch` -- stacked
  SO(3) Bloch rotations and signed-axis classification (the basis-state
  tracker's transition, :func:`repro.rpo.states.transition`);
* :func:`monomial_permutations_batch` -- generalized-permutation
  detection for the Hoare optimizer's support transformers.

Inputs are host (NumPy) arrays; the arithmetic dispatches through the
pluggable array backend (:mod:`repro.linalg.backend` -- NumPy by default,
CuPy when selected and available) and results always come back as NumPy
arrays, so callers never see device arrays.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.linalg.backend import get_backend

__all__ = [
    "reduce_matmul",
    "fold_matmul",
    "stack_chains",
    "chain_products",
    "kron_batch",
    "embed_1q_in_2q",
    "permute_2q",
    "two_qubit_chain_unitaries",
    "u3_params_batch",
    "euler_zyz_angles_batch",
    "weyl_coordinates_batch",
    "is_unitary_batch",
    "is_identity_up_to_phase_batch",
    "u3_matrix_batch",
    "apply_1q_batch",
    "bloch_rotation_batch",
    "basis_axes_batch",
    "monomial_permutations_batch",
]

_SWAP = np.array(
    [[1, 0, 0, 0], [0, 0, 1, 0], [0, 1, 0, 0], [0, 0, 0, 1]], dtype=complex
)


def _as_stack(stack, depth: int = 3) -> np.ndarray:
    arr = np.asarray(stack, dtype=complex)
    if arr.ndim < depth:
        raise ValueError(
            f"expected an array with >= {depth} dimensions, got shape {arr.shape}"
        )
    if arr.shape[-1] != arr.shape[-2]:
        raise ValueError(f"operands must be square, got shape {arr.shape}")
    return arr


# -- chained products --------------------------------------------------------


def reduce_matmul(stack) -> np.ndarray:
    """Chain-multiply along axis ``-3``: ``stack[-1] @ ... @ stack[0]``.

    Operand 0 is the *first applied* (rightmost) factor, matching circuit
    time order.  The reduction is log-depth pairwise -- adjacent pairs
    merge as ``stack[2i+1] @ stack[2i]`` until one matrix per batch entry
    remains -- so associativity (not operand order) is the only difference
    from a serial left fold.  Leading axes broadcast: a ``(B, L, d, d)``
    input reduces every chain of the batch simultaneously.  An empty chain
    axis yields identities.
    """
    backend = get_backend()
    arr = backend.asarray(_as_stack(stack), dtype=complex)
    dim = arr.shape[-1]
    length = arr.shape[-3]
    if length == 0:
        eye = backend.xp.eye(dim, dtype=complex)
        out = backend.xp.broadcast_to(eye, arr.shape[:-3] + (dim, dim))
        return backend.to_numpy(out).copy()
    while length > 1:
        even = arr[..., 0 : length - 1 : 2, :, :]
        odd = arr[..., 1:length:2, :, :]
        merged = backend.xp.matmul(odd, even)
        if length % 2:
            merged = backend.xp.concatenate(
                [merged, arr[..., length - 1 : length, :, :]], axis=-3
            )
        arr = merged
        length = arr.shape[-3]
    return backend.to_numpy(arr[..., 0, :, :])


def fold_matmul(stack) -> np.ndarray:
    """Sequential chain product along axis ``-3`` (bit-exact left fold).

    Same contract as :func:`reduce_matmul` but multiplies strictly in time
    order -- ``acc = stack[t] @ acc`` -- which makes the result **bitwise
    identical** to a scalar one-matrix-at-a-time accumulation (batched
    ``matmul`` computes each element's product exactly like the scalar
    call).  The batched transpiler passes use this so their outputs are
    indistinguishable from the serial reference paths; prefer
    :func:`reduce_matmul` when log-depth matters more than the last ulp.
    """
    backend = get_backend()
    arr = backend.asarray(_as_stack(stack), dtype=complex)
    dim = arr.shape[-1]
    length = arr.shape[-3]
    if length == 0:
        eye = backend.xp.eye(dim, dtype=complex)
        out = backend.xp.broadcast_to(eye, arr.shape[:-3] + (dim, dim))
        return backend.to_numpy(out).copy()
    acc = arr[..., 0, :, :]
    for step in range(1, length):
        acc = backend.xp.matmul(arr[..., step, :, :], acc)
    return backend.to_numpy(acc)


def stack_chains(chains: Sequence[Sequence[np.ndarray]], dim: int) -> np.ndarray:
    """Identity-pad ragged matrix chains into one ``(B, L, d, d)`` stack.

    Chain ``i`` occupies ``out[i, :len(chains[i])]``; the tail is padded
    with identities, which are neutral under :func:`reduce_matmul` (the
    pad sits on the *left* of the chain product).
    """
    num_chains = len(chains)
    longest = max((len(chain) for chain in chains), default=0)
    out = np.empty((num_chains, longest, dim, dim), dtype=complex)
    out[...] = np.eye(dim, dtype=complex)
    for row, chain in enumerate(chains):
        for position, matrix in enumerate(chain):
            out[row, position] = matrix
    return out


def chain_products(
    chains: Sequence[Sequence[np.ndarray]], dim: int, reduction: str = "fold"
) -> np.ndarray:
    """Per-chain time-ordered products, all computed in one reduction.

    ``reduction="fold"`` (default) is bit-exact against a scalar loop;
    ``"pairwise"`` uses the log-depth :func:`reduce_matmul`.  Returns a
    ``(B, d, d)`` stack; an empty chain contributes an identity.
    """
    if not chains:
        return np.empty((0, dim, dim), dtype=complex)
    reducer = fold_matmul if reduction == "fold" else reduce_matmul
    return reducer(stack_chains(chains, dim))


# -- batched embedding -------------------------------------------------------


def kron_batch(a, b) -> np.ndarray:
    """Elementwise Kronecker product of two stacks: ``out[i] = kron(a[i], b[i])``."""
    a = _as_stack(a)
    b = _as_stack(b)
    if a.shape[:-2] != b.shape[:-2]:
        raise ValueError(f"batch shapes differ: {a.shape[:-2]} vs {b.shape[:-2]}")
    p = a.shape[-1]
    q = b.shape[-1]
    # broadcast multiply (the same arithmetic np.kron does, so results are
    # bitwise identical to per-matrix np.kron calls)
    out = a[..., :, None, :, None] * b[..., None, :, None, :]
    return out.reshape(a.shape[:-2] + (p * q, p * q))


def embed_1q_in_2q(stack, wires) -> np.ndarray:
    """Embed a stack of 2x2 gates into 4x4 two-qubit unitaries.

    ``wires[i]`` names the little-endian wire (0 or 1) gate ``i`` acts on,
    exactly as :func:`repro.circuit.matrix_utils.embed_gate` with
    ``qargs=(wires[i],)`` and ``num_qubits=2`` -- wire 0 is
    ``kron(I, A)``, wire 1 is ``kron(A, I)``.
    """
    stack = _as_stack(stack)
    wires = np.asarray(wires, dtype=np.intp)
    if stack.shape[-2:] != (2, 2):
        raise ValueError(f"expected 2x2 operands, got shape {stack.shape}")
    if wires.shape != stack.shape[:-2]:
        raise ValueError("one wire index per stacked gate required")
    out = np.zeros(stack.shape[:-2] + (4, 4), dtype=complex)
    low = wires == 0
    high = ~low
    # wire 0: block-diagonal copies; wire 1: interleaved copies
    out[low, 0:2, 0:2] = stack[low]
    out[low, 2:4, 2:4] = stack[low]
    out[high, 0::2, 0::2] = stack[high]
    out[high, 1::2, 1::2] = stack[high]
    return out


def permute_2q(stack) -> np.ndarray:
    """Reverse the wire order of stacked 4x4 gates (conjugation by SWAP).

    ``permute_2q(m)[i]`` equals ``embed_gate(m[i], (1, 0), 2)``.
    """
    stack = _as_stack(stack)
    if stack.shape[-2:] != (4, 4):
        raise ValueError(f"expected 4x4 operands, got shape {stack.shape}")
    return _SWAP @ stack @ _SWAP


def two_qubit_chain_unitaries(
    chains: Sequence[Sequence[tuple[np.ndarray, tuple[int, ...]]]],
    reduction: str = "fold",
) -> np.ndarray:
    """Unitaries of gate chains on a two-qubit register, one per chain.

    Each chain is a time-ordered sequence of ``(matrix, local_wires)``
    pairs -- 2x2 matrices on wire ``(0,)`` / ``(1,)`` or 4x4 matrices on
    ``(0, 1)`` / ``(1, 0)``.  All embeddings happen on stacked operands
    (:func:`embed_1q_in_2q`, :func:`permute_2q`) and every chain reduces
    in the same :func:`reduce_matmul` call, so the cost per gate is a few
    vectorized array ops instead of a Python-level ``embed_gate`` + matmul.
    Returns a ``(B, 4, 4)`` stack.
    """
    if not chains:
        return np.empty((0, 4, 4), dtype=complex)
    positions_1q: list[tuple[int, int]] = []
    matrices_1q: list[np.ndarray] = []
    wires_1q: list[int] = []
    positions_2q_rev: list[tuple[int, int]] = []
    matrices_2q_rev: list[np.ndarray] = []
    longest = max(len(chain) for chain in chains)
    if longest == 0:
        return np.broadcast_to(np.eye(4, dtype=complex), (len(chains), 4, 4)).copy()
    padded = np.empty((len(chains), longest, 4, 4), dtype=complex)
    padded[...] = np.eye(4, dtype=complex)
    for row, chain in enumerate(chains):
        for position, (matrix, local) in enumerate(chain):
            if len(local) == 1:
                positions_1q.append((row, position))
                matrices_1q.append(matrix)
                wires_1q.append(local[0])
            elif local == (0, 1):
                padded[row, position] = matrix
            elif local == (1, 0):
                positions_2q_rev.append((row, position))
                matrices_2q_rev.append(matrix)
            else:
                raise ValueError(f"unsupported local wires {local!r}")
    if matrices_1q:
        embedded = embed_1q_in_2q(np.stack(matrices_1q), np.asarray(wires_1q))
        rows, cols = zip(*positions_1q)
        padded[list(rows), list(cols)] = embedded
    if matrices_2q_rev:
        swapped = permute_2q(np.stack(matrices_2q_rev))
        rows, cols = zip(*positions_2q_rev)
        padded[list(rows), list(cols)] = swapped
    reducer = fold_matmul if reduction == "fold" else reduce_matmul
    return reducer(padded)


# -- batched Euler extraction ------------------------------------------------


def u3_params_batch(stack) -> np.ndarray:
    """Vectorized :func:`repro.linalg.euler.u3_params_from_unitary`.

    Input: ``(N, 2, 2)`` unitaries.  Output: ``(N, 4)`` rows of
    ``(theta, phi, lam, gamma)``, matching the scalar routine elementwise
    (same branch structure, same clamping).
    """
    backend = get_backend()
    matrices = backend.asarray(_as_stack(stack), dtype=complex)
    if matrices.shape[-2:] != (2, 2):
        raise ValueError(f"expected 2x2 operands, got shape {matrices.shape}")
    xp = backend.xp
    # hypot matches the scalar routine's abs() bitwise; complex xp.abs
    # rounds the last ulp differently on some platforms
    top = matrices[..., 0, 0]
    bottom = matrices[..., 1, 0]
    cos_half = xp.minimum(xp.hypot(top.real, top.imag), 1.0)
    sin_half = xp.minimum(xp.hypot(bottom.real, bottom.imag), 1.0)
    theta = 2.0 * xp.arctan2(sin_half, cos_half)

    phase_00 = xp.angle(matrices[..., 0, 0])
    phase_10 = xp.angle(matrices[..., 1, 0])
    phase_11 = xp.angle(matrices[..., 1, 1])
    phase_01n = xp.angle(-matrices[..., 0, 1])

    anti = cos_half < 1e-12  # anti-diagonal: u3(pi, ., .)
    diag = xp.logical_and(~anti, sin_half < 1e-12)  # diagonal: u3(0, ., .)
    gamma = xp.where(anti, 0.0, phase_00)
    phi = xp.where(anti, phase_10, xp.where(diag, phase_11 - phase_00, phase_10 - phase_00))
    lam = xp.where(anti, phase_01n, xp.where(diag, 0.0, phase_01n - phase_00))
    out = xp.stack([theta, phi, lam, gamma], axis=-1)
    return backend.to_numpy(out)


def euler_zyz_angles_batch(stack) -> np.ndarray:
    """Vectorized :func:`repro.linalg.euler.euler_zyz_angles`.

    Output rows are ``(theta, phi, lam, alpha)`` with
    ``alpha = gamma + (phi + lam) / 2``.
    """
    params = u3_params_batch(stack)
    out = params.copy()
    out[..., 3] = params[..., 3] + (params[..., 1] + params[..., 2]) / 2
    return out


# -- batched RPO tracker kernels ---------------------------------------------

_PAULI_STACK = np.array(
    [
        [[0, 1], [1, 0]],
        [[0, -1j], [1j, 0]],
        [[1, 0], [0, -1]],
    ],
    dtype=complex,
)


def u3_matrix_batch(params) -> np.ndarray:
    """Vectorized :func:`repro.linalg.euler.u3_matrix`.

    Input: ``(..., 3)`` rows of ``(theta, phi, lam)``.  Output:
    ``(..., 2, 2)`` unitaries matching the scalar constructor elementwise
    (same ``cos/sin/exp`` arithmetic, entries within 1 ulp).
    """
    backend = get_backend()
    xp = backend.xp
    angles = backend.asarray(np.asarray(params, dtype=float))
    if angles.ndim < 2 or angles.shape[-1] != 3:
        raise ValueError(f"expected (..., 3) angle rows, got shape {angles.shape}")
    theta = angles[..., 0]
    phi = angles[..., 1]
    lam = angles[..., 2]
    cos = xp.cos(theta / 2.0)
    sin = xp.sin(theta / 2.0)
    out = xp.empty(angles.shape[:-1] + (2, 2), dtype=complex)
    out[..., 0, 0] = cos
    out[..., 0, 1] = -xp.exp(1j * lam) * sin
    out[..., 1, 0] = xp.exp(1j * phi) * sin
    out[..., 1, 1] = xp.exp(1j * (phi + lam)) * cos
    return backend.to_numpy(out)


def apply_1q_batch(matrices, params) -> np.ndarray:
    """Merged Bloch tuples after one-qubit gates: the stacked form of
    :meth:`repro.rpo.pure_tracker.PureStateTracker.apply_1q_gate`.

    ``params`` is a ``(..., 2)`` stack of ``(theta, phi)`` pure-state
    tuples; ``matrices`` is a single ``(2, 2)`` gate (broadcast over the
    stack) or a matching ``(..., 2, 2)`` stack.  Each tuple is merged as
    ``u3_params(matrix @ u3(theta, phi, 0))`` -- the scalar tracker's
    arithmetic verbatim (stacked matmul is elementwise bit-identical to
    the per-matrix product; extraction matches the scalar branch
    structure) -- and the new ``(..., 2)`` tuples are returned.
    """
    tuples = np.asarray(params, dtype=float)
    if tuples.ndim < 2 or tuples.shape[-1] != 2:
        raise ValueError(f"expected (..., 2) Bloch tuples, got shape {tuples.shape}")
    full = np.concatenate([tuples, np.zeros(tuples.shape[:-1] + (1,))], axis=-1)
    prepared = u3_matrix_batch(full)
    merged = u3_params_batch(np.asarray(matrices, dtype=complex) @ prepared)
    return merged[..., :2]


def bloch_rotation_batch(stack) -> np.ndarray:
    """Vectorized :func:`repro.rpo.states.bloch_rotation_of_gate`.

    Input: ``(..., 2, 2)`` one-qubit unitaries.  Output: ``(..., 3, 3)``
    SO(3) Bloch rotations ``R_ij = Re tr(sigma_i U sigma_j U^dag) / 2``,
    computed with the scalar routine's association order (stacked matmuls
    of ``((P_i @ U) @ P_j) @ U^dag``), so entries are bit-identical to
    the per-gate loop.
    """
    backend = get_backend()
    xp = backend.xp
    matrices = _as_stack(stack)
    if matrices.shape[-2:] != (2, 2):
        raise ValueError(f"expected 2x2 operands, got shape {matrices.shape}")
    unitary = backend.asarray(matrices)[..., None, None, :, :]
    u_dag = xp.conj(xp.swapaxes(unitary, -1, -2))
    paulis = backend.asarray(_PAULI_STACK)
    left = paulis[:, None, :, :]  # sigma_i axis
    right = paulis[None, :, :, :]  # sigma_j axis
    chain = xp.matmul(xp.matmul(xp.matmul(left, unitary), right), u_dag)
    trace = chain[..., 0, 0] + chain[..., 1, 1]
    return backend.to_numpy(0.5 * xp.real(trace))


def basis_axes_batch(vectors, atol: float = 1e-8, rtol: float = 1e-5):
    """Classify stacked Bloch vectors as signed Pauli axes.

    The vectorized form of :func:`repro.rpo.states.basis_state_of_bloch`:
    for each ``(..., 3)`` vector, pick the dominant axis with the scalar
    routine's exact tie-breaking (axis 0 wins ties against 1 and 2, axis
    1 wins against 2) and test ``|dominant - sign| <= atol + rtol`` with
    both remaining components ``<= atol``.  Returns ``(axis, sign)``
    integer arrays shaped ``(...,)``; entries that are not basis states
    (the lattice TOP) get ``axis = -1, sign = 0``.

    This is a cheap host-side predicate -- inputs small, comparisons
    branch-free -- so it runs on NumPy regardless of the active backend.
    """
    v = np.asarray(vectors, dtype=float)
    if v.ndim < 1 or v.shape[-1] != 3:
        raise ValueError(f"expected (..., 3) Bloch vectors, got shape {v.shape}")
    magnitude = np.abs(v)
    a0, a1, a2 = magnitude[..., 0], magnitude[..., 1], magnitude[..., 2]
    pick0 = (a0 >= a1) & (a0 >= a2)
    axis = np.where(pick0, 0, np.where(a1 >= a2, 1, 2))
    dominant = np.take_along_axis(v, axis[..., None], axis=-1)[..., 0]
    rest = magnitude.copy()
    np.put_along_axis(rest, axis[..., None], -np.inf, axis=-1)
    # max(rest) <= atol  <=>  both non-dominant components <= atol
    rest_ok = rest.max(axis=-1) <= atol
    sign = np.where(dominant >= 0, 1, -1)
    known = (np.abs(dominant - sign) <= atol + rtol) & rest_ok
    return np.where(known, axis, -1), np.where(known, sign, 0)


def monomial_permutations_batch(stack, tol: float = 1e-10):
    """Column->row permutations of stacked generalized-permutation matrices.

    The vectorized form of the Hoare optimizer's monomial test: matrix
    ``i`` is a generalized permutation when every column holds exactly one
    entry with ``|entry| > tol``.  Returns ``(permutations, valid)`` --
    an ``(N, d)`` integer array mapping column -> row (rows of invalid
    matrices are filled with ``-1``) and an ``(N,)`` boolean mask.
    """
    magnitude = np.abs(_as_stack(stack))
    counts = (magnitude > tol).sum(axis=-2)
    valid = (counts == 1).all(axis=-1)
    # argmax per column: with exactly one entry above tol it IS that entry
    permutation = magnitude.argmax(axis=-2)
    return np.where(valid[..., None], permutation, -1), valid


# -- batched Weyl coordinates ------------------------------------------------


def weyl_coordinates_batch(stack) -> np.ndarray:
    """Canonical-gate coordinates ``(a, b, c)`` of stacked 4x4 unitaries.

    Mirrors :func:`repro.linalg.weyl.weyl_coordinates` elementwise -- the
    eigenphases of the magic-basis Gram matrix, branch-snapped, sorted
    descending and determinant-normalized -- but computes every Gram
    matrix with stacked matmuls and every spectrum through one batched
    ``eigvals`` call.  Returns an ``(N, 3)`` array.
    """
    from repro.linalg.weyl import _MAGIC_DAG, MAGIC_BASIS

    backend = get_backend()
    xp = backend.xp
    unitaries = backend.asarray(_as_stack(stack), dtype=complex)
    if unitaries.shape[-2:] != (4, 4):
        raise ValueError(f"expected 4x4 operands, got shape {unitaries.shape}")
    det = xp.linalg.det(unitaries)
    if bool(xp.any(xp.abs(xp.abs(det) - 1.0) > 1e-6)):
        raise ValueError("stack contains a non-unitary matrix (|det| != 1)")
    special = unitaries * xp.exp(-1j * xp.angle(det) / 4)[..., None, None]
    magic = xp.asarray(_MAGIC_DAG) @ special @ xp.asarray(MAGIC_BASIS)
    gram = xp.matmul(xp.swapaxes(magic, -1, -2), magic)
    try:
        eigvals = xp.linalg.eigvals(gram)
    except AttributeError:  # pragma: no cover - CuPy lacks general eigvals
        eigvals = np.linalg.eigvals(backend.to_numpy(gram))
        xp = np
    eigvals = eigvals / xp.abs(eigvals)
    theta = xp.angle(eigvals) / 2
    # same branch snap as the scalar path: fold theta just below -pi/2 up
    theta = xp.where(theta < -np.pi / 2 + 1e-8, theta + np.pi, theta)
    theta = -xp.sort(-theta, axis=-1)  # descending
    # det(D) normalization: the eigenphase sum is a multiple of pi; absorb
    # it into the last (smallest) phase, exactly like the scalar routine
    k = xp.rint(theta.sum(axis=-1) / np.pi)
    theta = xp.concatenate(
        [theta[..., :3], (theta[..., 3] - k * np.pi)[..., None]], axis=-1
    )
    a = (theta[..., 0] + theta[..., 1] - theta[..., 2] - theta[..., 3]) / 4
    b = (-theta[..., 0] + theta[..., 1] - theta[..., 2] + theta[..., 3]) / 4
    c = (theta[..., 0] - theta[..., 1] - theta[..., 2] + theta[..., 3]) / 4
    return get_backend().to_numpy(xp.stack([a, b, c], axis=-1))


# -- batched predicates ------------------------------------------------------


def is_unitary_batch(stack, atol: float = 1e-8, rtol: float = 1e-5) -> np.ndarray:
    """Elementwise :func:`repro.linalg.predicates.is_unitary` over a stack.

    Returns an ``(N,)`` boolean array; tolerance semantics match
    ``np.allclose(m @ m^H, I, atol=atol)`` (including its ``rtol`` term).
    """
    backend = get_backend()
    xp = backend.xp
    matrices = backend.asarray(_as_stack(stack), dtype=complex)
    dim = matrices.shape[-1]
    product = xp.matmul(matrices, xp.conj(xp.swapaxes(matrices, -1, -2)))
    eye = xp.eye(dim, dtype=complex)
    close = xp.abs(product - eye) <= atol + rtol * xp.abs(eye)
    return backend.to_numpy(close.all(axis=(-1, -2)))


def is_identity_up_to_phase_batch(
    stack, atol: float = 1e-8, rtol: float = 1e-5
) -> np.ndarray:
    """Elementwise :func:`repro.linalg.predicates.is_identity_up_to_phase`.

    Uses the same pivot convention as the scalar predicate against the
    identity (pivot entry ``(0, 0)``): estimate the phase from ``m[0, 0]``
    and compare ``m`` against ``z * I``.
    """
    backend = get_backend()
    xp = backend.xp
    matrices = backend.asarray(_as_stack(stack), dtype=complex)
    dim = matrices.shape[-1]
    pivot = matrices[..., 0, 0]
    unit_phase = xp.abs(xp.abs(pivot) - 1.0) <= atol * 10
    safe = xp.where(xp.abs(pivot) < 1e-300, 1.0, pivot)
    scaled = xp.eye(dim, dtype=complex) * safe[..., None, None]
    close = (xp.abs(matrices - scaled) <= atol + rtol * xp.abs(scaled)).all(
        axis=(-1, -2)
    )
    return backend.to_numpy(xp.logical_and(unit_phase, close))
