"""Tensor-product (Kronecker) factorisation of two-qubit operators.

The Weyl decomposition produces 4x4 matrices known to lie in
``SU(2) (x) SU(2)``; :func:`decompose_kron` recovers the one-qubit factors.
:func:`nearest_kron_factors` is the underlying rank-one approximation, which
is also useful on its own for diagnostics.
"""

from __future__ import annotations

import cmath

import numpy as np

__all__ = ["decompose_kron", "nearest_kron_factors"]


def nearest_kron_factors(matrix: np.ndarray) -> tuple[np.ndarray, np.ndarray, float]:
    """Return ``(A, B, residual)`` minimising ``||matrix - A (x) B||_F``.

    Uses the Pitsianis--Van Loan rearrangement: reshuffling a 4x4 matrix so
    that Kronecker products become rank-one matrices, then truncating the SVD.
    ``residual`` is the second singular value over the first (0 for an exact
    tensor product).
    """
    matrix = np.asarray(matrix, dtype=complex)
    if matrix.shape != (4, 4):
        raise ValueError(f"expected a 4x4 matrix, got shape {matrix.shape}")
    rearranged = matrix.reshape(2, 2, 2, 2).transpose(0, 2, 1, 3).reshape(4, 4)
    u, s, vh = np.linalg.svd(rearranged)
    a = (u[:, 0] * np.sqrt(s[0])).reshape(2, 2)
    b = (vh[0, :] * np.sqrt(s[0])).reshape(2, 2)
    residual = float(s[1] / s[0]) if s[0] > 0 else 0.0
    return a, b, residual


def decompose_kron(
    matrix: np.ndarray, atol: float = 1e-7
) -> tuple[complex, np.ndarray, np.ndarray]:
    """Factor ``matrix = phase * A (x) B`` with ``A, B`` in ``SU(2)``.

    Raises :class:`ValueError` when the input is not a tensor product (the
    rank-one residual exceeds ``atol``).  Returns ``(phase, A, B)`` where
    ``phase`` is a unit-modulus complex number.
    """
    a, b, residual = nearest_kron_factors(matrix)
    if residual > atol:
        raise ValueError(f"matrix is not a tensor product (residual {residual:.2e})")
    det_a = np.linalg.det(a)
    det_b = np.linalg.det(b)
    if abs(det_a) < 1e-12 or abs(det_b) < 1e-12:
        raise ValueError("singular Kronecker factor; input was not unitary")
    root_a = cmath.sqrt(det_a)
    root_b = cmath.sqrt(det_b)
    a_su2 = a / root_a
    b_su2 = b / root_b
    phase = root_a * root_b
    phase /= abs(phase)
    return phase, a_su2, b_su2
