"""Synthesis of arbitrary two-qubit unitaries into minimal CNOT circuits.

This is the engine behind ``ConsolidateBlocks`` (the unitary-preserving
peephole re-synthesis of Qiskit level 3, paper Sec. II-B) and behind the
QPO two-qubit-block state-preparation rewrite (paper Sec. V-D).

Strategy: determine the minimal CNOT count from the Shende--Bullock--Markov
invariants, then

* 0 CNOTs: factor into a tensor product;
* 1 CNOT : local-equivalence matching against the bare CNOT;
* 2 CNOTs: local-equivalence matching against the calibrated template
  ``CX . (Ry (x) Rz) . CX`` whose canonical class spans ``(a, b, 0)``;
* 3 CNOTs: the exact analytic identity (verified to machine precision)::

      CAN(a,b,c) = CX (Rx(-2a) (x) H) CX ((Rx(2b) S) (x) (H Rz(-2c) S)) CX (I (x) Sdg)

  where ``(x)`` has the CNOT-control qubit as its left factor.

Every produced circuit is verified against the target matrix (including
global phase); on a verification miss the routine escalates the CNOT count,
so the output is always exact even at degenerate class boundaries.

Endianness: inputs are little-endian circuit matrices on qubits ``(0, 1)``;
the left Kronecker factor therefore acts on qubit 1.
"""

from __future__ import annotations

import numpy as np

from repro.linalg.euler import u3_params_from_unitary
from repro.linalg.kron import decompose_kron
from repro.linalg.state_prep import two_qubit_state_prep_factors
from repro.linalg.weyl import WeylDecomposition, num_cnots_required, weyl_decompose

__all__ = [
    "synthesize_two_qubit_unitary",
    "two_qubit_state_prep_circuit",
    "TwoQubitSynthesisError",
]

_H = np.array([[1, 1], [1, -1]], dtype=complex) / np.sqrt(2)
_S = np.array([[1, 0], [0, 1j]], dtype=complex)
_SDG = _S.conj().T
_ID = np.eye(2, dtype=complex)


class TwoQubitSynthesisError(RuntimeError):
    """Raised when no candidate circuit reproduces the target matrix."""


def _rx(theta: float) -> np.ndarray:
    cos, sin = np.cos(theta / 2), np.sin(theta / 2)
    return np.array([[cos, -1j * sin], [-1j * sin, cos]], dtype=complex)


def _ry(theta: float) -> np.ndarray:
    cos, sin = np.cos(theta / 2), np.sin(theta / 2)
    return np.array([[cos, -sin], [sin, cos]], dtype=complex)


def _rz(phi: float) -> np.ndarray:
    return np.diag([np.exp(-1j * phi / 2), np.exp(1j * phi / 2)]).astype(complex)


class _CircuitBuilder:
    """Accumulates a two-qubit circuit, merging adjacent one-qubit gates.

    Pending one-qubit matrices are fused and flushed as single ``u3`` gates
    whenever a CNOT arrives, keeping the emitted one-qubit gate count at most
    one per qubit per CNOT layer.
    """

    def __init__(self):
        from repro.circuit.quantumcircuit import QuantumCircuit

        self.circuit = QuantumCircuit(2)
        self._pending = [_ID.copy(), _ID.copy()]

    def add_1q(self, qubit: int, matrix: np.ndarray) -> None:
        self._pending[qubit] = matrix @ self._pending[qubit]

    def _flush(self, qubit: int) -> None:
        matrix = self._pending[qubit]
        if np.allclose(matrix, _ID, atol=1e-12):
            return
        theta, phi, lam, gamma = u3_params_from_unitary(matrix)
        self.circuit.global_phase += gamma
        if abs(theta) > 1e-12 or abs(phi + lam) > 1e-12:
            self.circuit.u3(theta, phi, lam, qubit)
        self._pending[qubit] = _ID.copy()

    def add_cx(self, control: int, target: int) -> None:
        self._flush(0)
        self._flush(1)
        self.circuit.cx(control, target)

    def finish(self, global_phase: float = 0.0):
        self._flush(0)
        self._flush(1)
        self.circuit.global_phase += global_phase
        return self.circuit


def _canonical_circuit(builder: _CircuitBuilder, a: float, b: float, c: float) -> None:
    """Append the exact 3-CNOT realisation of ``CAN(a, b, c)``.

    In the verified identity the left Kronecker factor is the CNOT control;
    in little-endian circuit terms that factor lives on qubit 1.
    """
    builder.add_1q(0, _SDG)
    builder.add_cx(1, 0)
    builder.add_1q(1, _rx(2 * b) @ _S)
    builder.add_1q(0, _H @ _rz(-2 * c) @ _S)
    builder.add_cx(1, 0)
    builder.add_1q(1, _rx(-2 * a))
    builder.add_1q(0, _H)
    builder.add_cx(1, 0)


def _emit_product(unitary: np.ndarray):
    phase, left, right = decompose_kron(unitary)
    builder = _CircuitBuilder()
    builder.add_1q(1, left)
    builder.add_1q(0, right)
    return builder.finish(float(np.angle(phase)))


def _template_matrix_cx() -> np.ndarray:
    # CX with control = left factor (qubit 1 little-endian)
    return np.array(
        [[1, 0, 0, 0], [0, 1, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0]], dtype=complex
    )


def _template_matrix_2cx(a: float, b: float) -> np.ndarray:
    cx = _template_matrix_cx()
    return cx @ np.kron(_ry(-2 * b), _rz(2 * a)) @ cx


def _two_cnot_parameters(coordinates) -> list[tuple[float, float]]:
    """Candidate ``(a, b)`` template parameters for a 2-CNOT-class target.

    The raw canonical coordinates are only a class *representative*:
    single-coordinate shifts by ``pi/2`` are free (they cost a Pauli (x)
    Pauli local and a phase), so each coordinate is folded into
    ``[0, pi/2)`` and the pairwise mirror images are enumerated.  Any folded
    triple whose smallest entry vanishes exposes the ``(a, b, 0)`` form the
    template realises; sign variants cover the orientation ambiguity.
    """
    half_pi = np.pi / 2
    folded = sorted((x % half_pi for x in coordinates), reverse=True)
    candidates = []
    mirrors = [(0, 0, 0), (1, 1, 0), (1, 0, 1), (0, 1, 1)]
    for flips in mirrors:
        triple = sorted(
            (
                ((half_pi - value) % half_pi) if flip else value
                for value, flip in zip(folded, flips)
            ),
            reverse=True,
        )
        if triple[-1] < 1e-7:
            a, b = triple[0], triple[1]
            for signs in ((a, b), (a, -b), (-a, b)):
                if signs not in candidates:
                    candidates.append(signs)
    return candidates


def _compose_with_template(
    target: WeylDecomposition,
    template_matrix: np.ndarray,
    emit_template,
    coord_tol: float = 1e-6,
):
    """Express the target through a template of the same canonical class.

    ``U = e^{i(pu - pv)} (K1u K1v^+) V (K2v^+ K2u)`` where ``V`` is the
    template and both decompositions share the canonical coordinates.
    Returns ``None`` when the classes do not match.
    """
    template = weyl_decompose(template_matrix)
    mismatch = max(
        abs(x - y) for x, y in zip(target.coordinates, template.coordinates)
    )
    if mismatch > coord_tol:
        return None
    builder = _CircuitBuilder()
    builder.add_1q(1, template.K2l.conj().T @ target.K2l)
    builder.add_1q(0, template.K2r.conj().T @ target.K2r)
    emit_template(builder)
    builder.add_1q(1, target.K1l @ template.K1l.conj().T)
    builder.add_1q(0, target.K1r @ template.K1r.conj().T)
    return builder.finish(target.phase - template.phase)


def synthesize_two_qubit_unitary(unitary: np.ndarray, atol: float = 1e-7):
    """Synthesise ``unitary`` into a circuit with the minimal CNOT count.

    The result reproduces the target exactly, including global phase.
    """
    unitary = np.asarray(unitary, dtype=complex)
    if unitary.shape != (4, 4):
        raise ValueError(f"expected a 4x4 unitary, got shape {unitary.shape}")

    budget = num_cnots_required(unitary, atol=atol)
    for cnots in range(budget, 4):
        candidate = _attempt(unitary, cnots)
        if candidate is None:
            continue
        if np.allclose(candidate.to_matrix(), unitary, atol=max(atol, 1e-7)):
            return candidate
    raise TwoQubitSynthesisError("exhausted all CNOT budgets")


def _attempt(unitary: np.ndarray, cnots: int):
    if cnots == 0:
        try:
            return _emit_product(unitary)
        except ValueError:
            return None
    target = weyl_decompose(unitary)
    if cnots == 1:
        cx = _template_matrix_cx()
        return _compose_with_template(
            target, cx, lambda builder: builder.add_cx(1, 0)
        )
    if cnots == 2:
        for a, b in _two_cnot_parameters(target.coordinates):
            matrix = _template_matrix_2cx(a, b)

            def emit(builder: _CircuitBuilder, a=a, b=b) -> None:
                builder.add_cx(1, 0)
                builder.add_1q(1, _ry(-2 * b))
                builder.add_1q(0, _rz(2 * a))
                builder.add_cx(1, 0)

            candidate = _compose_with_template(target, matrix, emit)
            if candidate is not None:
                return candidate
        return None
    # generic 3-CNOT path through the exact canonical identity
    builder = _CircuitBuilder()
    builder.add_1q(1, target.K2l)
    builder.add_1q(0, target.K2r)
    _canonical_circuit(builder, target.a, target.b, target.c)
    builder.add_1q(1, target.K1l)
    builder.add_1q(0, target.K1r)
    return builder.finish(target.phase)


def two_qubit_state_prep_circuit(statevector: np.ndarray):
    """Circuit preparing an arbitrary two-qubit state from ``|00>``.

    Implements the paper's Fig. 4 universal preparation: one CNOT plus at
    most four one-qubit gates (zero CNOTs when the state is a product).
    The output matches the target state *exactly* (global phase included).
    """
    statevector = np.asarray(statevector, dtype=complex).ravel()
    if statevector.shape != (4,):
        raise ValueError("expected a two-qubit statevector")
    norm = np.linalg.norm(statevector)
    if abs(norm - 1.0) > 1e-9:
        raise ValueError("statevector is not normalised")

    ry_angle, left, right, needs_cnot = two_qubit_state_prep_factors(statevector)
    builder = _CircuitBuilder()
    builder.add_1q(1, _ry(ry_angle))
    if needs_cnot:
        builder.add_cx(1, 0)
    builder.add_1q(1, left)
    builder.add_1q(0, right)
    circuit = builder.finish()

    produced = circuit.to_matrix()[:, 0]
    overlap = np.vdot(produced, statevector)
    if abs(abs(overlap) - 1.0) > 1e-7:
        raise TwoQubitSynthesisError("state preparation synthesis failed")
    circuit.global_phase += float(np.angle(overlap))
    return circuit
