"""Pure-state preparation synthesis.

Two results from the paper's Sec. V-D are implemented here:

* any single-qubit pure state is ``u3(theta, phi, 0) |0>`` for a Bloch tuple
  ``(theta, phi)`` (paper Sec. VI-B) -- :func:`prepare_one_qubit_state`;
* any two-qubit pure state can be prepared from ``|00>`` with *one* CNOT and
  four one-qubit gates (paper Fig. 4, citing Mottonen & Vartiainen) --
  :func:`two_qubit_state_prep_factors` provides the Schmidt-based factors.

The circuit-emitting wrapper lives in
:mod:`repro.linalg.two_qubit_synthesis`.
"""

from __future__ import annotations

import cmath
import math

import numpy as np

__all__ = [
    "prepare_one_qubit_state",
    "schmidt_decomposition",
    "two_qubit_state_prep_factors",
]


def prepare_one_qubit_state(statevector: np.ndarray) -> tuple[float, float]:
    """Return ``(theta, phi)`` with ``u3(theta, phi, 0)|0> ~ statevector``.

    The returned tuple is the Bloch representation used by the pure-state
    tracker: ``|psi(theta, phi)> = cos(theta/2)|0> + e^{i phi} sin(theta/2)|1>``.
    Equality holds up to a global phase.
    """
    statevector = np.asarray(statevector, dtype=complex).ravel()
    if statevector.shape != (2,):
        raise ValueError("expected a single-qubit statevector of length 2")
    norm = np.linalg.norm(statevector)
    if norm < 1e-12:
        raise ValueError("zero vector is not a valid quantum state")
    alpha, beta = statevector / norm
    theta = 2 * math.atan2(abs(beta), abs(alpha))
    if abs(beta) < 1e-12 or abs(alpha) < 1e-12:
        phi = 0.0
    else:
        phi = cmath.phase(beta) - cmath.phase(alpha)
    return theta, phi


def schmidt_decomposition(
    statevector: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Schmidt decomposition of a two-qubit state.

    Returns ``(coefficients, left_basis, right_basis)`` such that::

        |psi> = sum_k coefficients[k] |left_basis[:, k]> (x) |right_basis[:, k]>

    with the *left* factor acting on the most significant index of the
    length-4 vector.  Coefficients are real, non-negative, descending.
    """
    statevector = np.asarray(statevector, dtype=complex).ravel()
    if statevector.shape != (4,):
        raise ValueError("expected a two-qubit statevector of length 4")
    amplitude_matrix = statevector.reshape(2, 2)
    u, s, vh = np.linalg.svd(amplitude_matrix)
    return s, u, vh.T


def two_qubit_state_prep_factors(
    statevector: np.ndarray,
) -> tuple[float, np.ndarray, np.ndarray, bool]:
    """Factors for the 1-CNOT two-qubit state-preparation circuit (Fig. 4).

    Returns ``(ry_angle, left_gate, right_gate, needs_cnot)`` such that, with
    the left qubit as the most significant index::

        |psi> ~ (left_gate (x) right_gate) @ CX(left->right) @ (Ry(ry_angle) (x) I) |00>

    When the state is a tensor product (``needs_cnot`` is ``False``) the CNOT
    may be dropped; the identity still holds with it present because the
    control qubit is then in ``|0>``.
    """
    coefficients, left_basis, right_basis = schmidt_decomposition(statevector)
    # Clamp for safety: SVD can return 1 + 1e-16.
    cos_term = min(float(coefficients[0]), 1.0)
    ry_angle = 2 * math.acos(cos_term)
    needs_cnot = bool(coefficients[1] > 1e-9)
    # Ry(ry_angle)|0> = cos|0> + sin|1>; CX maps to cos|00> + sin|11>;
    # the basis change sends |k>|k> to |u_k>|v_k>.
    return ry_angle, left_basis, right_basis, needs_cnot
