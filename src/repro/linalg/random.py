"""Seeded random unitaries and states.

Used by the Quantum Volume benchmark (random SU(4) layers), by the
consolidation pass tests, and by the property-based test-suite.  Everything
takes an explicit ``numpy.random.Generator`` or integer seed so benchmark
runs are reproducible (paper Sec. VII-B reports medians over seeds).
"""

from __future__ import annotations

import numpy as np

__all__ = ["random_unitary", "random_su2", "random_statevector", "as_rng"]


def as_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Coerce a seed or generator into a :class:`numpy.random.Generator`."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def random_unitary(dim: int, seed: int | np.random.Generator | None = None) -> np.ndarray:
    """Haar-random ``dim x dim`` unitary via QR of a Ginibre matrix."""
    rng = as_rng(seed)
    ginibre = rng.normal(size=(dim, dim)) + 1j * rng.normal(size=(dim, dim))
    q, r = np.linalg.qr(ginibre)
    diag = np.diag(r)
    return q * (diag / np.abs(diag))


def random_su2(seed: int | np.random.Generator | None = None) -> np.ndarray:
    """Haar-random element of ``SU(2)``."""
    unitary = random_unitary(2, seed)
    det = np.linalg.det(unitary)
    return unitary / np.sqrt(det)


def random_statevector(
    num_qubits: int, seed: int | np.random.Generator | None = None
) -> np.ndarray:
    """Haar-random pure state on ``num_qubits`` qubits."""
    rng = as_rng(seed)
    dim = 2**num_qubits
    vector = rng.normal(size=dim) + 1j * rng.normal(size=dim)
    return vector / np.linalg.norm(vector)
