"""Pluggable dense-array backend for the batched numeric kernels.

The batched kernels in :mod:`repro.linalg.batch` and the simulator evolve
loops are written against the NumPy array API subset that CuPy implements
verbatim (``matmul`` over stacked operands, ``einsum``, fancy indexing,
``linalg.eigvals``), so the same code runs on the CPU or on a GPU -- the
only difference is which module provides the arrays.  This module owns
that choice:

* the default backend is **NumPy**;
* ``REPRO_ARRAY_BACKEND=cupy`` (read once, lazily) or an explicit
  :func:`set_backend` call selects **CuPy**;
* a CuPy request on a machine without a working CuPy install is a
  **non-fatal fallback**: a :class:`RuntimeWarning` explains the
  downgrade (once per process per reason -- worker pools re-requesting
  the backend per task do not re-warn), :attr:`ArrayBackend.fallback_reason`
  records it, and the NumPy backend is used -- mirroring how the analysis
  cache treats unusable snapshots.  NumPy-only environments therefore
  never need CuPy installed to pass the full suite.

Kernels fetch the active backend per call (:func:`get_backend`), convert
inputs with :meth:`ArrayBackend.asarray` and convert results back with
:meth:`ArrayBackend.asnumpy`, so callers always see plain NumPy arrays
regardless of where the arithmetic ran.  Long-lived evolve loops (the
simulators) instead keep their state resident on the backend end-to-end
and pay exactly **one** :meth:`~ArrayBackend.asnumpy` hop at the result
boundary.

:func:`get_backend` and :func:`set_backend` are thread-safe: resolution
happens under a process-wide lock, so a worker pool hammering
``get_backend()`` while another thread switches backends always observes
a fully-constructed backend.  Components that cache backend-resident
arrays (device Pauli tables, staged gate matrices) register a callback
with :func:`register_backend_listener` and are invalidated on every
:func:`set_backend`, so switching backends mid-process can never hand a
stale host array to a device path (or vice versa).
"""

from __future__ import annotations

import dataclasses
import os
import threading
import warnings
from typing import Any, Callable

import numpy as np

__all__ = [
    "ArrayBackend",
    "available_backends",
    "backend_name",
    "get_backend",
    "register_backend_listener",
    "set_backend",
]

#: Environment variable consulted (once, at first use) for the default.
BACKEND_ENV_VAR = "REPRO_ARRAY_BACKEND"

_KNOWN_BACKENDS = ("numpy", "cupy")


@dataclasses.dataclass(frozen=True)
class ArrayBackend:
    """A namespace bundling an array module with transfer helpers.

    Attributes:
        name: canonical backend name (``"numpy"`` or ``"cupy"``; custom
            backend objects passed to :func:`set_backend` may carry other
            names, e.g. the instrumented test stub).
        xp: the array module itself (``numpy`` or ``cupy``).
        fallback_reason: why a requested backend was downgraded to NumPy
            (``None`` when the requested backend is the one running).
    """

    name: str
    xp: Any
    fallback_reason: str | None = None

    def asarray(self, array, dtype=None):
        """``array`` as a device array of the backend."""
        return self.xp.asarray(array, dtype=dtype)

    def asnumpy(self, array) -> np.ndarray:
        """``array`` back as a host NumPy array (no copy when already one).

        This is the **result-boundary hop**: backend-resident code paths
        (simulator evolve loops, batched kernels) call it exactly once,
        on the final result, so device state never bounces through the
        host mid-computation.
        """
        if isinstance(array, np.ndarray):
            return array
        get = getattr(array, "get", None)  # CuPy device -> host transfer
        if get is not None:
            return get()
        return np.asarray(array)

    # Historical spelling; ``asnumpy`` is the canonical boundary verb.
    to_numpy = asnumpy


_NUMPY_BACKEND = ArrayBackend(name="numpy", xp=np)

#: The active backend; ``None`` until first resolved (env var or setter).
_ACTIVE: ArrayBackend | None = None

#: Guards resolution/switching of ``_ACTIVE`` and the warn-once registry.
_LOCK = threading.RLock()

#: Fallback reasons already warned about (once per process per reason).
_WARNED_REASONS: set[str] = set()

#: Callbacks invoked (with the new backend) after every backend switch.
_LISTENERS: list[Callable[[ArrayBackend], None]] = []


def _warn_fallback_once(reason: str, stacklevel: int = 4) -> None:
    with _LOCK:
        if reason in _WARNED_REASONS:
            return
        _WARNED_REASONS.add(reason)
    warnings.warn(f"{reason}; falling back to NumPy", RuntimeWarning, stacklevel=stacklevel)


def _reset_fallback_warnings() -> None:
    """Forget which fallback warnings fired (test hook)."""
    with _LOCK:
        _WARNED_REASONS.clear()


def _resolve(name: str) -> ArrayBackend:
    """Build the backend for ``name``, downgrading to NumPy when needed."""
    normalized = name.strip().lower()
    if normalized in ("", "numpy"):
        return _NUMPY_BACKEND
    if normalized not in _KNOWN_BACKENDS:
        reason = f"unknown array backend {name!r} (known: {_KNOWN_BACKENDS})"
        _warn_fallback_once(reason)
        return dataclasses.replace(_NUMPY_BACKEND, fallback_reason=reason)
    try:
        import cupy  # noqa: PLC0415 - optional dependency, imported on demand

        # a broken CUDA install can import but fail on first allocation
        cupy.asarray(np.zeros(1))
    except Exception as exc:  # pragma: no cover - depends on host GPU stack
        reason = f"CuPy backend unavailable ({type(exc).__name__}: {exc})"
        _warn_fallback_once(reason)
        return dataclasses.replace(_NUMPY_BACKEND, fallback_reason=reason)
    return ArrayBackend(name="cupy", xp=cupy)  # pragma: no cover - needs GPU


def get_backend() -> ArrayBackend:
    """The active array backend (resolving ``REPRO_ARRAY_BACKEND`` lazily)."""
    global _ACTIVE
    active = _ACTIVE
    if active is not None:
        return active
    with _LOCK:
        if _ACTIVE is None:
            _ACTIVE = _resolve(os.environ.get(BACKEND_ENV_VAR, "numpy"))
        return _ACTIVE


def set_backend(backend: str | ArrayBackend) -> ArrayBackend:
    """Select the array backend; returns the backend that is actually
    active (NumPy when a named request had to fall back).

    Accepts a backend name (``"numpy"`` / ``"cupy"``) or a pre-built
    :class:`ArrayBackend` instance -- the latter is how test harnesses
    install instrumented stubs (:mod:`repro.linalg.instrument`).  Every
    switch notifies the listeners registered with
    :func:`register_backend_listener` so backend-keyed caches flush.
    """
    global _ACTIVE
    with _LOCK:
        if isinstance(backend, ArrayBackend):
            _ACTIVE = backend
        else:
            _ACTIVE = _resolve(backend)
        active = _ACTIVE
        listeners = tuple(_LISTENERS)
    for listener in listeners:
        listener(active)
    return active


def register_backend_listener(
    callback: Callable[[ArrayBackend], None],
) -> Callable[[ArrayBackend], None]:
    """Call ``callback(new_backend)`` after every :func:`set_backend`.

    Used by components that hold backend-resident caches (the density
    matrix simulator's device Pauli table, the simulators' staged reset
    matrices) so a mid-process backend switch can never serve arrays
    that live on the wrong device.  Returns the callback (decorator
    friendly).  Listeners are process-lived; register at module import.
    """
    with _LOCK:
        _LISTENERS.append(callback)
    return callback


def backend_name() -> str:
    """Canonical name of the active backend (``"numpy"`` or ``"cupy"``)."""
    return get_backend().name


def available_backends() -> tuple[str, ...]:
    """Names this module knows how to resolve (not a promise they work)."""
    return _KNOWN_BACKENDS
