"""Pluggable dense-array backend for the batched numeric kernels.

The batched kernels in :mod:`repro.linalg.batch` are written against the
NumPy array API subset that CuPy implements verbatim (``matmul`` over
stacked operands, ``einsum``, fancy indexing, ``linalg.eigvals``), so the
same code runs on the CPU or on a GPU -- the only difference is which
module provides the arrays.  This module owns that choice:

* the default backend is **NumPy**;
* ``REPRO_ARRAY_BACKEND=cupy`` (read once, lazily) or an explicit
  :func:`set_backend` call selects **CuPy**;
* a CuPy request on a machine without a working CuPy install is a
  **non-fatal fallback**: a :class:`RuntimeWarning` explains the
  downgrade, :attr:`ArrayBackend.fallback_reason` records it, and the
  NumPy backend is used -- mirroring how the analysis cache treats
  unusable snapshots.  NumPy-only environments therefore never need CuPy
  installed to pass the full suite.

Kernels fetch the active backend per call (:func:`get_backend`), convert
inputs with :meth:`ArrayBackend.asarray` and convert results back with
:meth:`ArrayBackend.to_numpy`, so callers always see plain NumPy arrays
regardless of where the arithmetic ran.
"""

from __future__ import annotations

import dataclasses
import os
import warnings
from typing import Any

import numpy as np

__all__ = [
    "ArrayBackend",
    "available_backends",
    "backend_name",
    "get_backend",
    "set_backend",
]

#: Environment variable consulted (once, at first use) for the default.
BACKEND_ENV_VAR = "REPRO_ARRAY_BACKEND"

_KNOWN_BACKENDS = ("numpy", "cupy")


@dataclasses.dataclass(frozen=True)
class ArrayBackend:
    """A namespace bundling an array module with transfer helpers.

    Attributes:
        name: canonical backend name (``"numpy"`` or ``"cupy"``).
        xp: the array module itself (``numpy`` or ``cupy``).
        fallback_reason: why a requested backend was downgraded to NumPy
            (``None`` when the requested backend is the one running).
    """

    name: str
    xp: Any
    fallback_reason: str | None = None

    def asarray(self, array, dtype=None):
        """``array`` as a device array of the backend."""
        return self.xp.asarray(array, dtype=dtype)

    def to_numpy(self, array) -> np.ndarray:
        """``array`` back as a host NumPy array (no copy when already one)."""
        if isinstance(array, np.ndarray):
            return array
        get = getattr(array, "get", None)  # CuPy device -> host transfer
        if get is not None:
            return get()
        return np.asarray(array)


_NUMPY_BACKEND = ArrayBackend(name="numpy", xp=np)

#: The active backend; ``None`` until first resolved (env var or setter).
_ACTIVE: ArrayBackend | None = None


def _resolve(name: str) -> ArrayBackend:
    """Build the backend for ``name``, downgrading to NumPy when needed."""
    normalized = name.strip().lower()
    if normalized in ("", "numpy"):
        return _NUMPY_BACKEND
    if normalized not in _KNOWN_BACKENDS:
        reason = f"unknown array backend {name!r} (known: {_KNOWN_BACKENDS})"
        warnings.warn(f"{reason}; falling back to NumPy", RuntimeWarning, stacklevel=3)
        return dataclasses.replace(_NUMPY_BACKEND, fallback_reason=reason)
    try:
        import cupy  # noqa: PLC0415 - optional dependency, imported on demand

        # a broken CUDA install can import but fail on first allocation
        cupy.asarray(np.zeros(1))
    except Exception as exc:  # pragma: no cover - depends on host GPU stack
        reason = f"CuPy backend unavailable ({type(exc).__name__}: {exc})"
        warnings.warn(f"{reason}; falling back to NumPy", RuntimeWarning, stacklevel=3)
        return dataclasses.replace(_NUMPY_BACKEND, fallback_reason=reason)
    return ArrayBackend(name="cupy", xp=cupy)  # pragma: no cover - needs GPU


def get_backend() -> ArrayBackend:
    """The active array backend (resolving ``REPRO_ARRAY_BACKEND`` lazily)."""
    global _ACTIVE
    if _ACTIVE is None:
        _ACTIVE = _resolve(os.environ.get(BACKEND_ENV_VAR, "numpy"))
    return _ACTIVE


def set_backend(name: str) -> ArrayBackend:
    """Select the array backend by name; returns the backend that is
    actually active (NumPy when the request had to fall back)."""
    global _ACTIVE
    _ACTIVE = _resolve(name)
    return _ACTIVE


def backend_name() -> str:
    """Canonical name of the active backend (``"numpy"`` or ``"cupy"``)."""
    return get_backend().name


def available_backends() -> tuple[str, ...]:
    """Names this module knows how to resolve (not a promise they work)."""
    return _KNOWN_BACKENDS
