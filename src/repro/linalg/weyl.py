"""Two-qubit Weyl (KAK / Cartan) decomposition.

Any two-qubit unitary ``U`` factors as::

    U = exp(i*phase) * (K1l (x) K1r) @ CAN(a, b, c) @ (K2l (x) K2r)

where ``CAN(a, b, c) = exp(i * (a XX + b YY + c ZZ))`` is the *canonical
gate* and the ``K`` factors are one-qubit ``SU(2)`` gates.  This is the
mathematical engine behind the ``ConsolidateBlocks`` transpiler pass (the
unitary-preserving peephole optimization the paper compares RPO against,
Sec. II-B / V-D) and behind the two-qubit synthesis routines.

Implementation notes
--------------------
The algorithm follows the standard magic-basis construction:

1. normalise ``U`` into ``SU(4)``;
2. conjugate into the magic basis, where ``SU(2) (x) SU(2)`` becomes
   ``SO(4)`` and ``CAN`` becomes diagonal;
3. simultaneously diagonalise the real and imaginary parts of the complex
   symmetric matrix ``M^T M`` with a *deterministic* eigenspace refinement
   (no random retries), giving a real orthogonal ``P`` and eigenphases;
4. the half-eigenphases determine ``(a, b, c)`` through the fixed sign
   matrix ``G`` (the magic-basis spectra of XX/YY/ZZ), and the orthogonal
   factors give the local gates.

The eigenphases are sorted descending, which makes the returned coordinate
triple a deterministic function of the local-equivalence class.  The CNOT
cost test (:func:`num_cnots_required`) uses the Shende--Bullock--Markov
trace invariants of ``M^T M``.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.linalg.kron import decompose_kron

__all__ = [
    "MAGIC_BASIS",
    "WeylDecomposition",
    "weyl_decompose",
    "canonical_gate",
    "weyl_coordinates",
    "num_cnots_required",
]

#: Magic basis ``B``: columns are the magic Bell states.  Conjugation by
#: ``B`` maps ``SU(2) (x) SU(2)`` onto ``SO(4)`` and diagonalises XX/YY/ZZ.
MAGIC_BASIS = (1 / np.sqrt(2)) * np.array(
    [
        [1, 0, 0, 1j],
        [0, 1j, 1, 0],
        [0, 1j, -1, 0],
        [1, 0, 0, -1j],
    ],
    dtype=complex,
)

_MAGIC_DAG = MAGIC_BASIS.conj().T

#: Magic-basis eigenvalue signs of XX, YY, ZZ (verified numerically):
#: ``B^dag (P (x) P) B = diag(G[:, i])`` for ``P`` in ``(X, Y, Z)``.
_G = np.array(
    [
        [1, -1, 1],
        [1, 1, -1],
        [-1, -1, -1],
        [-1, 1, 1],
    ],
    dtype=float,
)


def canonical_gate(a: float, b: float, c: float) -> np.ndarray:
    """Matrix of ``CAN(a, b, c) = exp(i*(a XX + b YY + c ZZ))``.

    Computed exactly through the magic-basis diagonal form (no matrix
    exponential needed).
    """
    theta = _G @ np.array([a, b, c], dtype=float)
    return MAGIC_BASIS @ (np.exp(1j * theta)[:, None] * _MAGIC_DAG)


@dataclasses.dataclass(frozen=True)
class WeylDecomposition:
    """Result of :func:`weyl_decompose`.

    Attributes:
        K1l, K1r: left (output-side) one-qubit ``SU(2)`` factors.
        a, b, c: canonical-gate coordinates (a deterministic class
            representative; *not* folded into the Weyl chamber).
        K2l, K2r: right (input-side) one-qubit ``SU(2)`` factors.
        phase: global phase angle.

    The reconstruction is::

        exp(i*phase) * kron(K1l, K1r) @ CAN(a, b, c) @ kron(K2l, K2r)
    """

    K1l: np.ndarray
    K1r: np.ndarray
    a: float
    b: float
    c: float
    K2l: np.ndarray
    K2r: np.ndarray
    phase: float

    @property
    def coordinates(self) -> tuple[float, float, float]:
        return (self.a, self.b, self.c)

    def reconstruct(self) -> np.ndarray:
        """Multiply the factors back together (used for verification)."""
        return (
            np.exp(1j * self.phase)
            * np.kron(self.K1l, self.K1r)
            @ canonical_gate(self.a, self.b, self.c)
            @ np.kron(self.K2l, self.K2r)
        )


def _simultaneously_diagonalize_symmetric(
    m2: np.ndarray, degeneracy_tol: float = 1e-7
) -> tuple[np.ndarray, np.ndarray]:
    """Diagonalise a complex *symmetric unitary* ``m2`` as ``P D P^T``.

    ``P`` is real orthogonal.  Works by diagonalising the real part and then
    refining degenerate eigenspaces with the imaginary part (the two parts
    commute because ``m2`` is symmetric and normal).
    """
    real_part = 0.5 * (m2.real + m2.real.T)
    imag_part = 0.5 * (m2.imag + m2.imag.T)
    eigvals, basis = np.linalg.eigh(real_part)
    start = 0
    size = len(eigvals)
    while start < size:
        stop = start + 1
        while stop < size and abs(eigvals[stop] - eigvals[start]) < degeneracy_tol:
            stop += 1
        if stop - start > 1:
            block = basis[:, start:stop].T @ imag_part @ basis[:, start:stop]
            _, refinement = np.linalg.eigh(0.5 * (block + block.T))
            basis[:, start:stop] = basis[:, start:stop] @ refinement
        start = stop
    diag = basis.T @ m2 @ basis
    off = np.abs(diag - np.diag(np.diag(diag))).max()
    if off > 1e-6:
        raise np.linalg.LinAlgError(
            f"simultaneous diagonalization failed (off-diagonal {off:.2e})"
        )
    return basis, np.diag(diag)


def weyl_decompose(unitary: np.ndarray) -> WeylDecomposition:
    """Compute the Weyl decomposition of a two-qubit unitary.

    The qubit-ordering convention is that of the matrix itself: the left
    tensor factor acts on the first (most significant) index.  Callers that
    use little-endian circuits must map accordingly (see
    :mod:`repro.linalg.two_qubit_synthesis`).
    """
    unitary = np.asarray(unitary, dtype=complex)
    if unitary.shape != (4, 4):
        raise ValueError(f"expected a 4x4 matrix, got shape {unitary.shape}")
    det = np.linalg.det(unitary)
    if abs(abs(det) - 1.0) > 1e-6:
        raise ValueError("matrix is not unitary (|det| != 1)")
    phase0 = np.angle(det) / 4
    special = unitary * np.exp(-1j * phase0)

    magic = _MAGIC_DAG @ special @ MAGIC_BASIS
    m2 = magic.T @ magic
    basis, eigvals = _simultaneously_diagonalize_symmetric(m2)
    eigvals = eigvals / np.abs(eigvals)

    theta = np.angle(eigvals) / 2  # branch (-pi/2, pi/2]
    # Snap the branch cut: an eigenvalue of -1 +/- epsilon lands on theta of
    # +/- pi/2 unstably; fold the negative side up so equal-class inputs get
    # identical representatives (shifting theta by pi leaves D^2 unchanged).
    theta = np.where(theta < -np.pi / 2 + 1e-8, theta + np.pi, theta)
    order = np.argsort(-theta, kind="stable")
    theta = theta[order]
    basis = basis[:, order]
    if np.linalg.det(basis) < 0:
        basis[:, -1] = -basis[:, -1]
    # det(D) must be +1; the eigenphase sum is a multiple of pi, and shifting
    # one phase by pi flips the sign of exp(i*theta) without changing D^2.
    total = theta.sum()
    k = round(total / np.pi)
    if k != 0:
        theta = theta.copy()
        theta[-1] -= k * np.pi

    diag = np.exp(1j * theta)
    a = (theta[0] + theta[1] - theta[2] - theta[3]) / 4
    b = (-theta[0] + theta[1] - theta[2] + theta[3]) / 4
    c = (theta[0] - theta[1] - theta[2] + theta[3]) / 4

    o1 = magic @ basis @ np.diag(1 / diag)
    if np.abs(o1.imag).max() > 1e-6:
        raise np.linalg.LinAlgError("left orthogonal factor is not real")
    k1 = MAGIC_BASIS @ o1.real @ _MAGIC_DAG
    k2 = MAGIC_BASIS @ basis.T @ _MAGIC_DAG
    ph1, k1l, k1r = decompose_kron(k1)
    ph2, k2l, k2r = decompose_kron(k2)
    phase = phase0 + np.angle(ph1) + np.angle(ph2)
    return WeylDecomposition(
        K1l=k1l, K1r=k1r, a=float(a), b=float(b), c=float(c),
        K2l=k2l, K2r=k2r, phase=float(phase),
    )


def weyl_coordinates(unitary: np.ndarray) -> tuple[float, float, float]:
    """Return only the canonical-gate coordinates of ``unitary``."""
    decomposition = weyl_decompose(unitary)
    return decomposition.coordinates


def _gamma_trace_invariants(unitary: np.ndarray) -> tuple[complex, complex]:
    """Traces ``tr(M2)`` and ``tr(M2 @ M2)`` of the magic-basis Gram matrix."""
    unitary = np.asarray(unitary, dtype=complex)
    det = np.linalg.det(unitary)
    special = unitary * np.exp(-1j * np.angle(det) / 4)
    magic = _MAGIC_DAG @ special @ MAGIC_BASIS
    m2 = magic.T @ magic
    return complex(np.trace(m2)), complex(np.trace(m2 @ m2))


def num_cnots_required(unitary: np.ndarray, atol: float = 1e-8) -> int:
    """Minimum number of CNOT gates needed to implement ``unitary``.

    Implements the Shende--Bullock--Markov invariant tests on the spectrum of
    the magic-basis Gram matrix ``M^T M``:

    * 0 CNOTs  <=>  ``tr(M2) = +/-4`` (tensor product),
    * 1 CNOT   <=>  spectrum ``{i, i, -i, -i}``: ``tr(M2) = 0`` and
      ``tr(M2^2) = -4``,
    * 2 CNOTs  <=>  ``tr(M2)`` is real,
    * otherwise 3.
    """
    trace, trace_sq = _gamma_trace_invariants(unitary)
    if abs(trace.imag) < atol and abs(abs(trace.real) - 4.0) < atol:
        return 0
    if abs(trace) < atol and abs(trace_sq + 4.0) < atol:
        return 1
    if abs(trace.imag) < atol:
        return 2
    return 3
