"""One-qubit Euler-angle (``u3``) decomposition.

Every single-qubit unitary can be written, up to a global phase, as the IBM
basis gate ``u3(theta, phi, lam)``::

    u3(theta, phi, lam) = [[cos(theta/2),                -exp(i*lam)*sin(theta/2)],
                           [exp(i*phi)*sin(theta/2), exp(i*(phi+lam))*cos(theta/2)]]

which equals ``exp(i*(phi+lam)/2) * Rz(phi) * Ry(theta) * Rz(lam)``.  The
pure-state analysis of the RPO pass (paper Sec. VI-B) and the
``Optimize1qGates`` transpiler pass both rely on the extraction and merging
routines in this module.
"""

from __future__ import annotations

import cmath
import math

import numpy as np

__all__ = [
    "u3_matrix",
    "u3_params_from_unitary",
    "euler_zyz_angles",
    "merge_u3",
]


def u3_matrix(theta: float, phi: float, lam: float) -> np.ndarray:
    """Return the 2x2 matrix of ``u3(theta, phi, lam)``."""
    cos = math.cos(theta / 2)
    sin = math.sin(theta / 2)
    return np.array(
        [
            [cos, -cmath.exp(1j * lam) * sin],
            [cmath.exp(1j * phi) * sin, cmath.exp(1j * (phi + lam)) * cos],
        ],
        dtype=complex,
    )


def u3_params_from_unitary(matrix: np.ndarray) -> tuple[float, float, float, float]:
    """Decompose a 2x2 unitary as ``exp(i*gamma) * u3(theta, phi, lam)``.

    Returns ``(theta, phi, lam, gamma)``.  The decomposition is exact (up to
    floating point); ``u3_matrix(theta, phi, lam) * exp(i*gamma)``
    reconstructs the input.
    """
    matrix = np.asarray(matrix, dtype=complex)
    if matrix.shape != (2, 2):
        raise ValueError(f"expected a 2x2 matrix, got shape {matrix.shape}")
    # abs() clamps tiny negative rounding; min() clamps values just over 1.
    cos_half = min(abs(matrix[0, 0]), 1.0)
    sin_half = min(abs(matrix[1, 0]), 1.0)
    theta = 2 * math.atan2(sin_half, cos_half)

    if cos_half < 1e-12:
        # Anti-diagonal: u3(pi, phi, lam) = [[0, -e^{i lam}], [e^{i phi}, 0]].
        gamma = 0.0
        phi = cmath.phase(matrix[1, 0])
        lam = cmath.phase(-matrix[0, 1])
    elif sin_half < 1e-12:
        # Diagonal: u3(0, phi, lam) = diag(1, e^{i(phi+lam)}).
        gamma = cmath.phase(matrix[0, 0])
        phi = cmath.phase(matrix[1, 1]) - gamma
        lam = 0.0
    else:
        gamma = cmath.phase(matrix[0, 0])
        phi = cmath.phase(matrix[1, 0]) - gamma
        lam = cmath.phase(-matrix[0, 1]) - gamma
    return theta, phi, lam, gamma


def euler_zyz_angles(matrix: np.ndarray) -> tuple[float, float, float, float]:
    """Decompose a 2x2 unitary as ``exp(i*alpha) * Rz(phi) Ry(theta) Rz(lam)``.

    Returns ``(theta, phi, lam, alpha)``.
    """
    theta, phi, lam, gamma = u3_params_from_unitary(matrix)
    # u3(t, p, l) = exp(i*(p+l)/2) Rz(p) Ry(t) Rz(l)
    alpha = gamma + (phi + lam) / 2
    return theta, phi, lam, alpha


def merge_u3(
    first: tuple[float, float, float], second: tuple[float, float, float]
) -> tuple[float, float, float, float]:
    """Fuse two ``u3`` gates applied in sequence (``first`` then ``second``).

    Returns ``(theta, phi, lam, gamma)`` such that::

        u3(*second) @ u3(*first) == exp(i*gamma) * u3(theta, phi, lam)

    This mirrors Qiskit's 1q-gate merging and is what the pure-state tracker
    uses to propagate ``(theta, phi)`` Bloch tuples through u3 gates
    (paper Sec. VI-B).
    """
    product = u3_matrix(*second) @ u3_matrix(*first)
    return u3_params_from_unitary(product)
