"""Linear-algebra substrate for quantum circuit synthesis and analysis.

This package contains everything the transpiler and the RPO passes need to
reason about unitaries as matrices:

* :mod:`repro.linalg.predicates` -- unitarity / equivalence checks,
* :mod:`repro.linalg.euler` -- one-qubit ZYZ (``u3``) Euler decomposition,
* :mod:`repro.linalg.weyl` -- two-qubit Weyl (KAK) decomposition,
* :mod:`repro.linalg.kron` -- tensor-product factorisation,
* :mod:`repro.linalg.state_prep` -- pure-state preparation synthesis,
* :mod:`repro.linalg.random` -- seeded random unitaries and states,
* :mod:`repro.linalg.batch` -- batched kernels over stacked operands
  (``N x 2 x 2`` / ``N x 4 x 4`` arrays),
* :mod:`repro.linalg.backend` -- the pluggable array backend the batched
  kernels dispatch through (NumPy default, optional CuPy).

Circuit-emitting synthesis routines (which need the circuit IR) live in
:mod:`repro.linalg.two_qubit_synthesis` and
:mod:`repro.linalg.controlled_synthesis`.
"""

from repro.linalg.predicates import (
    is_unitary,
    is_hermitian,
    is_identity_up_to_phase,
    matrices_equal_up_to_phase,
    phase_difference,
)
from repro.linalg.euler import (
    euler_zyz_angles,
    u3_params_from_unitary,
    u3_matrix,
    merge_u3,
)
from repro.linalg.kron import decompose_kron, nearest_kron_factors
from repro.linalg.weyl import WeylDecomposition, weyl_decompose, canonical_gate, num_cnots_required
from repro.linalg.state_prep import (
    schmidt_decomposition,
    prepare_one_qubit_state,
    two_qubit_state_prep_factors,
)
from repro.linalg.random import random_unitary, random_statevector, random_su2
from repro.linalg.backend import backend_name, get_backend, set_backend
from repro.linalg.batch import (
    chain_products,
    embed_1q_in_2q,
    euler_zyz_angles_batch,
    is_identity_up_to_phase_batch,
    fold_matmul,
    is_unitary_batch,
    kron_batch,
    permute_2q,
    reduce_matmul,
    stack_chains,
    two_qubit_chain_unitaries,
    u3_params_batch,
    weyl_coordinates_batch,
)

__all__ = [
    "is_unitary",
    "is_hermitian",
    "is_identity_up_to_phase",
    "matrices_equal_up_to_phase",
    "phase_difference",
    "euler_zyz_angles",
    "u3_params_from_unitary",
    "u3_matrix",
    "merge_u3",
    "decompose_kron",
    "nearest_kron_factors",
    "WeylDecomposition",
    "weyl_decompose",
    "canonical_gate",
    "num_cnots_required",
    "schmidt_decomposition",
    "prepare_one_qubit_state",
    "two_qubit_state_prep_factors",
    "random_unitary",
    "random_statevector",
    "random_su2",
    "backend_name",
    "get_backend",
    "set_backend",
    "chain_products",
    "embed_1q_in_2q",
    "euler_zyz_angles_batch",
    "is_identity_up_to_phase_batch",
    "fold_matmul",
    "is_unitary_batch",
    "kron_batch",
    "permute_2q",
    "reduce_matmul",
    "stack_chains",
    "two_qubit_chain_unitaries",
    "u3_params_batch",
    "weyl_coordinates_batch",
]
