"""Quantum Volume model circuits (paper Sec. VII-B, ref. [10]).

Depth-``n`` layers; each layer permutes the qubits randomly and applies
Haar-random SU(4) gates on the paired qubits.  Fully seeded so the paper's
median-over-transpilations methodology is reproducible.
"""

from __future__ import annotations

import numpy as np

from repro.circuit.quantumcircuit import QuantumCircuit
from repro.gates import UnitaryGate
from repro.linalg.random import as_rng, random_unitary

__all__ = ["quantum_volume_circuit"]


def quantum_volume_circuit(
    num_qubits: int,
    depth: int | None = None,
    seed: int | np.random.Generator | None = None,
    measure: bool = False,
) -> QuantumCircuit:
    """A quantum-volume model circuit of the given width and depth."""
    rng = as_rng(seed)
    if depth is None:
        depth = num_qubits
    circuit = QuantumCircuit(num_qubits, num_qubits if measure else 0)
    for _ in range(depth):
        permutation = rng.permutation(num_qubits)
        for pair_index in range(num_qubits // 2):
            a = int(permutation[2 * pair_index])
            b = int(permutation[2 * pair_index + 1])
            gate = UnitaryGate(random_unitary(4, rng), label="su4")
            circuit.append(gate, (a, b))
    if measure:
        for qubit in range(num_qubits):
            circuit.measure(qubit, qubit)
    return circuit
