"""The paper's benchmark workloads (Sec. VII-B).

* Bernstein-Vazirani (boolean and phase oracle variants, Sec. VIII-A),
* Quantum Phase Estimation,
* VQE with the hardware-efficient RY ansatz (+ a Max-Cut driver),
* Quantum Volume model circuits,
* Grover's search (no-ancilla and clean-ancilla V-chain oracle designs,
  with optional annotations -- Sec. VIII-C),
* a ripple-carry adder (annotation showcase from Sec. VI-C's motivation).
"""

from repro.algorithms.bernstein_vazirani import (
    bernstein_vazirani_boolean,
    bernstein_vazirani_phase,
)
from repro.algorithms.qpe import quantum_phase_estimation
from repro.algorithms.grover import grover_circuit
from repro.algorithms.quantum_volume import quantum_volume_circuit
from repro.algorithms.vqe import ry_ansatz, maxcut_hamiltonian, vqe_maxcut
from repro.algorithms.arithmetic import ripple_carry_adder

__all__ = [
    "bernstein_vazirani_boolean",
    "bernstein_vazirani_phase",
    "quantum_phase_estimation",
    "grover_circuit",
    "quantum_volume_circuit",
    "ry_ansatz",
    "maxcut_hamiltonian",
    "vqe_maxcut",
    "ripple_carry_adder",
]
