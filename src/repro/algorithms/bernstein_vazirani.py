"""Bernstein-Vazirani circuits (paper Sec. VIII-A, Fig. 10).

Two implementations of the oracle ``f(x) = x . s``:

* the *boolean* oracle flips an ancilla prepared in ``|->`` through CNOTs
  (one per set bit of ``s``) -- the design QBO converts into the phase
  oracle by recognising the ``|->`` target (Table I);
* the *phase* oracle encodes ``f`` directly with Z gates.
"""

from __future__ import annotations

from repro.circuit.quantumcircuit import QuantumCircuit

__all__ = ["bernstein_vazirani_boolean", "bernstein_vazirani_phase"]


def _check(num_qubits: int, secret: int) -> None:
    if not 0 <= secret < (1 << num_qubits):
        raise ValueError(f"secret {secret:#x} does not fit in {num_qubits} bits")


def bernstein_vazirani_boolean(
    num_qubits: int, secret: int, measure: bool = True
) -> QuantumCircuit:
    """BV with the boolean (CNOT) oracle; uses one extra ancilla qubit."""
    _check(num_qubits, secret)
    circuit = QuantumCircuit(num_qubits + 1, num_qubits if measure else 0)
    ancilla = num_qubits
    circuit.x(ancilla)
    circuit.h(ancilla)
    for qubit in range(num_qubits):
        circuit.h(qubit)
    for qubit in range(num_qubits):
        if (secret >> qubit) & 1:
            circuit.cx(qubit, ancilla)
    for qubit in range(num_qubits):
        circuit.h(qubit)
    if measure:
        for qubit in range(num_qubits):
            circuit.measure(qubit, qubit)
    return circuit


def bernstein_vazirani_phase(
    num_qubits: int, secret: int, measure: bool = True
) -> QuantumCircuit:
    """BV with the phase (Z-gate) oracle; no ancilla, no two-qubit gates."""
    _check(num_qubits, secret)
    circuit = QuantumCircuit(num_qubits, num_qubits if measure else 0)
    for qubit in range(num_qubits):
        circuit.h(qubit)
    for qubit in range(num_qubits):
        if (secret >> qubit) & 1:
            circuit.z(qubit)
    for qubit in range(num_qubits):
        circuit.h(qubit)
    if measure:
        for qubit in range(num_qubits):
            circuit.measure(qubit, qubit)
    return circuit
