"""Grover's search (paper Secs. VII-B, VIII-B, VIII-C, Fig. 7).

The oracle marks a single computational-basis element by phase inversion
(open controls realise the zero bits); the diffusion operator is the
standard ``H X (MCZ) X H`` inversion about the mean.  Two multi-controlled
designs are provided:

* ``design="noancilla"`` -- gray-code multi-controlled gates, ``O(2^n)``
  CNOTs (the expensive design the paper quotes ~1500 CNOTs for at 8
  qubits);
* ``design="vchain"`` -- clean-ancilla V-chain Toffoli ladders, linear cost
  (~400 CNOTs at 8 qubits), the design whose ancillas the paper annotates
  with ``ANNOT(0, 0)`` (Fig. 7) to keep the analysis alive across
  iterations.
"""

from __future__ import annotations

from repro.circuit.quantumcircuit import QuantumCircuit
from repro.gates import MCZGate

__all__ = ["grover_circuit"]


def grover_circuit(
    num_qubits: int,
    marked: int = None,
    iterations: int = 1,
    design: str = "noancilla",
    annotate: bool = False,
    measure: bool = True,
) -> QuantumCircuit:
    """Build a Grover search circuit.

    Args:
        num_qubits: search-register width ``n`` (searches ``2^n`` elements).
        marked: the marked element (default: all-ones).
        iterations: number of Grover iterations.
        design: ``"noancilla"`` or ``"vchain"`` multi-controlled design.
        annotate: insert ``ANNOT(0, 0)`` after each oracle/diffusion stage
            on the clean ancillas (only meaningful for ``"vchain"``).
        measure: append measurements of the search register.
    """
    if marked is None:
        marked = (1 << num_qubits) - 1
    if not 0 <= marked < (1 << num_qubits):
        raise ValueError(f"marked element {marked} out of range")
    if design not in ("noancilla", "vchain"):
        raise ValueError(f"unknown design {design!r}")

    num_ancillas = max(0, num_qubits - 3) if design == "vchain" else 0
    total = num_qubits + num_ancillas
    circuit = QuantumCircuit(total, num_qubits if measure else 0)
    ancillas = list(range(num_qubits, total))

    for qubit in range(num_qubits):
        circuit.h(qubit)
    for _ in range(iterations):
        _oracle(circuit, num_qubits, marked, design, ancillas)
        if annotate and ancillas:
            for ancilla in ancillas:
                circuit.annotate_zero(ancilla)
        _diffusion(circuit, num_qubits, design, ancillas)
        if annotate and ancillas:
            for ancilla in ancillas:
                circuit.annotate_zero(ancilla)
    if measure:
        for qubit in range(num_qubits):
            circuit.measure(qubit, qubit)
    return circuit


def _phase_flip_all_ones(circuit, qubits, design, ancillas) -> None:
    """Apply a phase of -1 exactly on the all-ones state of ``qubits``."""
    if len(qubits) == 1:
        circuit.z(qubits[0])
        return
    if design == "vchain" and len(qubits) >= 4:
        # MCZ = H . MCX . H on the last qubit, with the V-chain MCX
        target = qubits[-1]
        controls = qubits[:-1]
        needed = max(0, len(controls) - 2)
        circuit.h(target)
        circuit.mcx_vchain(controls, target, ancillas[:needed])
        circuit.h(target)
        return
    circuit.append(MCZGate(len(qubits) - 1), tuple(qubits))


def _oracle(circuit, num_qubits, marked, design, ancillas) -> None:
    """Phase-flip the marked element (open controls via X conjugation)."""
    zeros = [q for q in range(num_qubits) if not (marked >> q) & 1]
    for qubit in zeros:
        circuit.x(qubit)
    _phase_flip_all_ones(circuit, list(range(num_qubits)), design, ancillas)
    for qubit in zeros:
        circuit.x(qubit)


def _diffusion(circuit, num_qubits, design, ancillas) -> None:
    for qubit in range(num_qubits):
        circuit.h(qubit)
    for qubit in range(num_qubits):
        circuit.x(qubit)
    _phase_flip_all_ones(circuit, list(range(num_qubits)), design, ancillas)
    for qubit in range(num_qubits):
        circuit.x(qubit)
    for qubit in range(num_qubits):
        circuit.h(qubit)
