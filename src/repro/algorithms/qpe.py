"""Quantum Phase Estimation (paper Secs. VII-B, VIII-B, VIII-E).

Estimates the eigenphase ``theta`` of a unitary.  As in the paper's
experiments we estimate the phase of a ``u1(2*pi*theta)`` gate whose
eigenvector ``|1>`` is prepared on a target qubit; with ``theta`` expressed
exactly in ``n`` bits the correct counting-register outcome is
deterministic (all-ones for the default ``theta = 1 - 2^-n``, matching the
paper's 3-qubit experiment whose correct output is ``111``).
"""

from __future__ import annotations

import math

from repro.circuit.quantumcircuit import QuantumCircuit

__all__ = ["quantum_phase_estimation"]


def quantum_phase_estimation(
    num_counting: int,
    theta: float | None = None,
    measure: bool = True,
) -> QuantumCircuit:
    """QPE with ``num_counting`` counting qubits and one eigenstate qubit.

    ``theta`` is the phase to estimate in turns (defaults to
    ``1 - 2^-num_counting``, which makes the all-ones string the exact
    answer).  The circuit uses controlled-``u1`` power gates and an inverse
    QFT on the counting register.
    """
    if theta is None:
        theta = 1.0 - 2.0 ** (-num_counting)
    total = num_counting + 1
    target = num_counting
    circuit = QuantumCircuit(total, num_counting if measure else 0)

    # eigenstate |1> of u1
    circuit.x(target)
    for qubit in range(num_counting):
        circuit.h(qubit)
    # controlled powers: counting qubit k controls u1(2^k * 2*pi*theta)
    for k in range(num_counting):
        angle = 2 * math.pi * theta * (2**k)
        circuit.cp(angle, k, target)
    _inverse_qft(circuit, num_counting)
    if measure:
        for qubit in range(num_counting):
            circuit.measure(qubit, qubit)
    return circuit


def _inverse_qft(circuit: QuantumCircuit, num_qubits: int) -> None:
    """In-place inverse QFT on qubits ``0 .. num_qubits-1`` (with swaps)."""
    for i in range(num_qubits // 2):
        circuit.swap(i, num_qubits - 1 - i)
    for j in range(num_qubits):
        for m in range(j):
            circuit.cp(-math.pi / (2 ** (j - m)), m, j)
        circuit.h(j)
