"""Quantum ripple-carry adder (annotation showcase).

The paper motivates annotations with "quantum networks for elementary
arithmetic operations" (Sec. VI-C, ref. [44]): such networks uncompute
their carry qubits, so the programmer knows they are back in ``|0>`` and
can annotate them.  This module provides a VBE-style ripple-carry adder
whose carry ancillas are uncomputed, with optional ``ANNOT(0, 0)`` marks.
"""

from __future__ import annotations

from repro.circuit.quantumcircuit import QuantumCircuit

__all__ = ["ripple_carry_adder"]


def _majority(circuit, a, b, c) -> None:
    circuit.cx(c, b)
    circuit.cx(c, a)
    circuit.ccx(a, b, c)


def _unmajority(circuit, a, b, c) -> None:
    circuit.ccx(a, b, c)
    circuit.cx(c, a)
    circuit.cx(a, b)


def ripple_carry_adder(
    num_bits: int,
    annotate: bool = False,
    measure: bool = False,
) -> QuantumCircuit:
    """Cuccaro-style in-place adder ``b := a + b`` on two n-bit registers.

    Wire layout: ``a`` = qubits ``0..n-1``, ``b`` = ``n..2n-1``, one carry
    ancilla at ``2n``, carry-out at ``2n+1``.  The carry ancilla is
    uncomputed; with ``annotate=True`` an ``ANNOT(0, 0)`` records that for
    the state analysis.
    """
    n = num_bits
    carry = 2 * n
    carry_out = 2 * n + 1
    circuit = QuantumCircuit(2 * n + 2, 2 * n + 2 if measure else 0)

    a = list(range(n))
    b = list(range(n, 2 * n))

    _majority(circuit, carry, b[0], a[0])
    for i in range(1, n):
        _majority(circuit, a[i - 1], b[i], a[i])
    circuit.cx(a[n - 1], carry_out)
    for i in range(n - 1, 0, -1):
        _unmajority(circuit, a[i - 1], b[i], a[i])
    _unmajority(circuit, carry, b[0], a[0])
    if annotate:
        circuit.annotate_zero(carry)
    if measure:
        for qubit in range(2 * n + 2):
            circuit.measure(qubit, qubit)
    return circuit
