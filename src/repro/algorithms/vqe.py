"""VQE with the hardware-efficient RY ansatz, driving Max-Cut
(paper Sec. VII-B: "the VQE program and the hardware-efficient ansatz RY
... to solve the Max-Cut problem").

The transpilation benchmarks consume :func:`ry_ansatz` (the circuit shape
is what matters for Table II); :func:`vqe_maxcut` is a complete
variational loop using scipy's COBYLA, provided for the examples.
"""

from __future__ import annotations

import numpy as np

from repro.circuit.quantumcircuit import QuantumCircuit
from repro.linalg.random import as_rng
from repro.simulators.statevector import simulate_statevector

__all__ = ["ry_ansatz", "maxcut_hamiltonian", "maxcut_expectation", "vqe_maxcut"]


def ry_ansatz(
    num_qubits: int,
    depth: int = 3,
    parameters: np.ndarray | None = None,
    seed: int | np.random.Generator | None = None,
    entanglement: str = "full",
    measure: bool = False,
) -> QuantumCircuit:
    """The hardware-efficient RY ansatz: Ry layers + CX entangler layers.

    ``entanglement`` is ``"full"`` (every pair per layer, the Qiskit Aqua
    default the paper uses) or ``"linear"`` (nearest neighbours only).
    ``parameters`` has shape ``(depth + 1, num_qubits)``; random angles are
    drawn (seeded) when omitted, matching how the transpile benchmarks
    instantiate the ansatz.
    """
    rng = as_rng(seed)
    if parameters is None:
        parameters = rng.uniform(0, 2 * np.pi, size=(depth + 1, num_qubits))
    parameters = np.asarray(parameters, dtype=float)
    if parameters.shape != (depth + 1, num_qubits):
        raise ValueError(
            f"parameters shape {parameters.shape} != {(depth + 1, num_qubits)}"
        )
    if entanglement == "full":
        pairs = [
            (a, b) for a in range(num_qubits) for b in range(a + 1, num_qubits)
        ]
    elif entanglement == "linear":
        pairs = [(q, q + 1) for q in range(num_qubits - 1)]
    else:
        raise ValueError(f"unknown entanglement {entanglement!r}")
    circuit = QuantumCircuit(num_qubits, num_qubits if measure else 0)
    for qubit in range(num_qubits):
        circuit.ry(float(parameters[0, qubit]), qubit)
    for layer in range(depth):
        for a, b in pairs:
            circuit.cx(a, b)
        for qubit in range(num_qubits):
            circuit.ry(float(parameters[layer + 1, qubit]), qubit)
    if measure:
        for qubit in range(num_qubits):
            circuit.measure(qubit, qubit)
    return circuit


def maxcut_hamiltonian(edges, num_qubits: int) -> list[tuple[float, tuple[int, int]]]:
    """Max-Cut cost terms: ``C = sum_{(i,j)} (1 - Z_i Z_j) / 2``.

    Returned as ``(weight, (i, j))`` ZZ terms (the constant offset is
    ``len(edges) / 2``).
    """
    return [(-0.5, (int(a), int(b))) for a, b in edges if max(a, b) < num_qubits]


def maxcut_expectation(statevector: np.ndarray, edges, num_qubits: int) -> float:
    """Expected cut value ``<C>`` of a state."""
    probabilities = np.abs(statevector) ** 2
    outcomes = np.arange(len(statevector))
    value = 0.0
    for a, b in edges:
        bit_a = (outcomes >> a) & 1
        bit_b = (outcomes >> b) & 1
        value += float(np.sum(probabilities * (bit_a ^ bit_b)))
    return value


def vqe_maxcut(
    edges,
    num_qubits: int,
    depth: int = 2,
    seed: int = 7,
    maxiter: int = 150,
):
    """Full VQE loop for Max-Cut: COBYLA over the RY-ansatz parameters.

    Returns ``(best_cut_value, best_parameters, best_bitstring)``.
    """
    from scipy.optimize import minimize

    rng = as_rng(seed)
    shape = (depth + 1, num_qubits)
    initial = rng.uniform(0, 2 * np.pi, size=shape)

    def objective(flat_params: np.ndarray) -> float:
        circuit = ry_ansatz(num_qubits, depth, flat_params.reshape(shape))
        state = simulate_statevector(circuit)
        return -maxcut_expectation(state, edges, num_qubits)

    result = minimize(
        objective, initial.ravel(), method="COBYLA", options={"maxiter": maxiter}
    )
    best_params = result.x.reshape(shape)
    circuit = ry_ansatz(num_qubits, depth, best_params)
    state = simulate_statevector(circuit)
    best_bitstring = format(int(np.argmax(np.abs(state) ** 2)), f"0{num_qubits}b")
    return -float(result.fun), best_params, best_bitstring
