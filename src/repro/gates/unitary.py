"""Arbitrary-matrix gates.

``UnitaryGate`` wraps an explicit unitary matrix.  One- and two-qubit
unitary gates can be lowered to basis gates (via the Euler and Weyl
synthesis routines); this is what lets the Quantum Volume benchmark's random
SU(4) layers flow through the transpiler.
"""

from __future__ import annotations

import numpy as np

from repro.circuit.instruction import Gate
from repro.linalg.predicates import is_unitary

__all__ = ["UnitaryGate"]


class UnitaryGate(Gate):
    """A gate defined by an explicit unitary matrix (little-endian)."""

    def __init__(self, matrix: np.ndarray, label: str | None = None):
        matrix = np.asarray(matrix, dtype=complex)
        dim = matrix.shape[0]
        if matrix.shape != (dim, dim) or dim & (dim - 1):
            raise ValueError(f"matrix shape {matrix.shape} is not a power-of-two square")
        if not is_unitary(matrix):
            raise ValueError("matrix is not unitary")
        num_qubits = int(dim).bit_length() - 1
        super().__init__("unitary", num_qubits, label=label)
        self._matrix = matrix

    def to_matrix(self) -> np.ndarray:
        return self._matrix.copy()

    def inverse(self) -> "UnitaryGate":
        return UnitaryGate(self._matrix.conj().T, label=self.label)

    def __eq__(self, other):
        if not isinstance(other, UnitaryGate):
            return NotImplemented
        return self._matrix.shape == other._matrix.shape and np.allclose(
            self._matrix, other._matrix, atol=1e-10
        )

    def __hash__(self):
        return hash(("unitary", self._matrix.shape))

    def _define(self):
        from repro.circuit.quantumcircuit import QuantumCircuit
        from repro.linalg.euler import u3_params_from_unitary

        if self.num_qubits == 1:
            theta, phi, lam, gamma = u3_params_from_unitary(self._matrix)
            circuit = QuantumCircuit(1, global_phase=gamma)
            circuit.u3(theta, phi, lam, 0)
            return circuit
        if self.num_qubits == 2:
            from repro.linalg.two_qubit_synthesis import synthesize_two_qubit_unitary

            return synthesize_two_qubit_unitary(self._matrix)
        return None
