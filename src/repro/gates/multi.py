"""Multi-qubit gates: Toffoli, Fredkin and multi-controlled families.

The multi-controlled phase gate uses a gray-code parity network (cost
``O(2^n)`` CNOTs, the standard ancilla-free construction); the V-chain MCX
uses ``2(k-2)+1`` Toffolis with *clean* ancillas -- the design whose
annotation-based optimization the paper studies in Sec. VIII-C.
"""

from __future__ import annotations

import math

from repro.circuit.instruction import ControlledGate, Gate
from repro.gates.parametric import RZGate, U1Gate
from repro.gates.standard import HGate, TdgGate, TGate, XGate, ZGate
from repro.gates.twoqubit import CXGate

__all__ = [
    "CCXGate",
    "CCZGate",
    "CSwapGate",
    "MCU1Gate",
    "MCXGate",
    "MCZGate",
    "MCXVChainGate",
]


def _circuit(num_qubits, global_phase=0.0):
    from repro.circuit.quantumcircuit import QuantumCircuit

    return QuantumCircuit(num_qubits, global_phase=global_phase)


class CCXGate(ControlledGate):
    """Toffoli gate; standard six-CNOT decomposition."""

    def __init__(self, ctrl_state: int | None = None):
        super().__init__("ccx", 2, XGate(), ctrl_state=ctrl_state)

    def inverse(self):
        return CCXGate(ctrl_state=self.ctrl_state)

    def _define(self):
        if self.ctrl_state != 3:
            return super()._define()
        circuit = _circuit(3)
        circuit.append(HGate(), (2,))
        circuit.append(CXGate(), (1, 2))
        circuit.append(TdgGate(), (2,))
        circuit.append(CXGate(), (0, 2))
        circuit.append(TGate(), (2,))
        circuit.append(CXGate(), (1, 2))
        circuit.append(TdgGate(), (2,))
        circuit.append(CXGate(), (0, 2))
        circuit.append(TGate(), (1,))
        circuit.append(TGate(), (2,))
        circuit.append(HGate(), (2,))
        circuit.append(CXGate(), (0, 1))
        circuit.append(TGate(), (0,))
        circuit.append(TdgGate(), (1,))
        circuit.append(CXGate(), (0, 1))
        return circuit


class CCZGate(ControlledGate):
    """Doubly-controlled Z."""

    def __init__(self, ctrl_state: int | None = None):
        super().__init__("ccz", 2, ZGate(), ctrl_state=ctrl_state)

    def inverse(self):
        return CCZGate(ctrl_state=self.ctrl_state)

    def _define(self):
        if self.ctrl_state != 3:
            return super()._define()
        circuit = _circuit(3)
        circuit.append(HGate(), (2,))
        circuit.append(CCXGate(), (0, 1, 2))
        circuit.append(HGate(), (2,))
        return circuit


class CSwapGate(Gate):
    """Fredkin (controlled-SWAP) gate.

    Decomposition per paper Fig. 14: CNOT, Toffoli, CNOT.  Argument order
    ``(control, a, b)``.
    """

    def __init__(self):
        super().__init__("cswap", 3)

    def to_matrix(self):
        import numpy as np

        matrix = np.eye(8, dtype=complex)
        # control is bit 0; swap bits 1 and 2 when bit 0 is set
        for state in range(8):
            if state & 1:
                bit_a = (state >> 1) & 1
                bit_b = (state >> 2) & 1
                swapped = (state & 1) | (bit_b << 1) | (bit_a << 2)
                matrix[state, state] = 0
                matrix[swapped, state] = 1
        return matrix

    def inverse(self):
        return CSwapGate()

    def _define(self):
        circuit = _circuit(3)
        circuit.append(CXGate(), (2, 1))
        circuit.append(CCXGate(), (0, 1, 2))
        circuit.append(CXGate(), (2, 1))
        return circuit


class MCU1Gate(ControlledGate):
    """Multi-controlled phase gate (``num_ctrl`` controls + one target).

    Applies ``exp(i*lam)`` exactly when every control *and* the target are
    ``|1>`` (the gate is symmetric in all of its wires).  The definition is
    a gray-code parity network: phase polynomials ``exp(i*theta_T Z_T)`` over
    all wire subsets ``T``, recursing on the wire count.
    """

    def __init__(self, lam: float, num_ctrl_qubits: int, ctrl_state: int | None = None):
        super().__init__("mcu1", num_ctrl_qubits, U1Gate(lam), ctrl_state=ctrl_state)

    def inverse(self):
        return MCU1Gate(-self.params[0], self.num_ctrl_qubits, ctrl_state=self.ctrl_state)

    def _define(self):
        all_ones = (1 << self.num_ctrl_qubits) - 1
        if self.ctrl_state != all_ones:
            return super()._define()
        (lam,) = self.params
        num_wires = self.num_qubits
        return _mcphase_definition(lam, num_wires)


def _mcphase_definition(lam: float, num_wires: int):
    """Definition of ``exp(i*lam * x_0 x_1 ... x_{n-1})`` over ``n`` wires.

    Expands the AND into Z-parity terms: the terms involving the last wire
    form a gray-code CNOT/Rz ladder on it; the remaining terms are the same
    gate with half the angle on one fewer wire (handled by recursion through
    the unroller).
    """
    circuit = _circuit(num_wires)
    if num_wires == 1:
        circuit.append(U1Gate(lam), (0,))
        return circuit

    accumulator = num_wires - 1
    rest = num_wires - 1
    unit = lam / (2**num_wires)
    # T = {accumulator}: theta = -unit (|T| = 1); exp(i*theta*Z) = Rz(-2*theta)
    circuit.append(RZGate(2 * unit), (accumulator,))
    gray_prev = 0
    for index in range(1, 2**rest):
        gray = index ^ (index >> 1)
        changed = (gray ^ gray_prev).bit_length() - 1
        circuit.append(CXGate(), (changed, accumulator))
        parity = bin(gray).count("1")  # |S|; |T| = |S| + 1
        theta = unit * ((-1) ** (parity + 1))
        circuit.append(RZGate(-2 * theta), (accumulator,))
        gray_prev = gray
    # final gray code of the loop is 2^(rest-1): a single set bit to undo
    last_wire = gray_prev.bit_length() - 1
    circuit.append(CXGate(), (last_wire, accumulator))

    # Remaining subsets (those without the accumulator) form exactly the
    # half-angle gate on the first n-1 wires -- including the empty-set
    # global-phase term, so no extra phase is added here.
    if rest == 1:
        circuit.append(U1Gate(lam / 2), (0,))
    else:
        circuit.append(MCU1Gate(lam / 2, rest - 1), tuple(range(rest)))
    return circuit


class MCXGate(ControlledGate):
    """Multi-controlled X without ancillas.

    For three or more controls the definition is ``H . MCU1(pi) . H`` on the
    target, inheriting the gray-code network (``O(2^n)`` CNOTs -- the
    expensive design the paper contrasts with the V-chain, Sec. VIII-C).
    """

    def __init__(self, num_ctrl_qubits: int, ctrl_state: int | None = None):
        name = "cx" if num_ctrl_qubits == 1 else ("ccx" if num_ctrl_qubits == 2 else "mcx")
        super().__init__(name, num_ctrl_qubits, XGate(), ctrl_state=ctrl_state)

    def inverse(self):
        return MCXGate(self.num_ctrl_qubits, ctrl_state=self.ctrl_state)

    def _define(self):
        all_ones = (1 << self.num_ctrl_qubits) - 1
        if self.ctrl_state != all_ones:
            return super()._define()
        k = self.num_ctrl_qubits
        circuit = _circuit(k + 1)
        if k == 1:
            circuit.append(CXGate(), (0, 1))
        elif k == 2:
            circuit.append(CCXGate(), (0, 1, 2))
        else:
            circuit.append(HGate(), (k,))
            circuit.append(MCU1Gate(math.pi, k), tuple(range(k + 1)))
            circuit.append(HGate(), (k,))
        return circuit


class MCZGate(ControlledGate):
    """Multi-controlled Z: a phase of ``pi`` on the all-ones state."""

    def __init__(self, num_ctrl_qubits: int, ctrl_state: int | None = None):
        name = "cz" if num_ctrl_qubits == 1 else ("ccz" if num_ctrl_qubits == 2 else "mcz")
        super().__init__(name, num_ctrl_qubits, ZGate(), ctrl_state=ctrl_state)

    def inverse(self):
        return MCZGate(self.num_ctrl_qubits, ctrl_state=self.ctrl_state)

    def _define(self):
        all_ones = (1 << self.num_ctrl_qubits) - 1
        if self.ctrl_state != all_ones:
            return super()._define()
        k = self.num_ctrl_qubits
        circuit = _circuit(k + 1)
        circuit.append(MCU1Gate(math.pi, k), tuple(range(k + 1)))
        return circuit


class MCXVChainGate(Gate):
    """Multi-controlled X with a chain of *clean* ancilla qubits.

    Argument order: ``controls + ancillas + (target,)`` with
    ``num_ancillas = max(0, num_controls - 2)``.  Uses ``2(k-2)+1`` Toffolis
    (linear cost); the ancillas are computed and uncomputed, so they end in
    ``|0>`` again -- exactly the "clean ancilla" pattern the paper's
    ``ANNOT(0, 0)`` annotations exploit (Fig. 7).
    """

    def __init__(self, num_ctrl_qubits: int):
        if num_ctrl_qubits < 1:
            raise ValueError("need at least one control")
        self.num_ctrl_qubits = int(num_ctrl_qubits)
        self.num_ancillas = max(0, num_ctrl_qubits - 2)
        super().__init__(
            "mcx_vchain", num_ctrl_qubits + self.num_ancillas + 1
        )

    def inverse(self):
        return MCXVChainGate(self.num_ctrl_qubits)

    def _define(self):
        k = self.num_ctrl_qubits
        circuit = _circuit(self.num_qubits)
        controls = list(range(k))
        ancillas = list(range(k, k + self.num_ancillas))
        target = self.num_qubits - 1
        if k == 1:
            circuit.append(CXGate(), (controls[0], target))
            return circuit
        if k == 2:
            circuit.append(CCXGate(), (controls[0], controls[1], target))
            return circuit
        # compute chain
        compute = [(controls[0], controls[1], ancillas[0])]
        for i in range(2, k - 1):
            compute.append((controls[i], ancillas[i - 2], ancillas[i - 1]))
        for triple in compute:
            circuit.append(CCXGate(), triple)
        circuit.append(CCXGate(), (controls[k - 1], ancillas[-1], target))
        for triple in reversed(compute):
            circuit.append(CCXGate(), triple)
        return circuit
