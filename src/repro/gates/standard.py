"""Fixed (parameter-free) one-qubit gates.

Each gate carries an exact matrix and a definition in terms of the IBM basis
gates ``u1``/``u2``/``u3`` so the unroller can lower it (paper Sec. II-A:
the backends support ``u1, u2, u3, id, cx``).  Definitions track global
phase exactly.
"""

from __future__ import annotations

import math

from repro.circuit.instruction import Gate
from repro.gates.matrices import standard_gate_matrix

__all__ = [
    "IGate",
    "XGate",
    "YGate",
    "ZGate",
    "HGate",
    "SGate",
    "SdgGate",
    "TGate",
    "TdgGate",
    "SXGate",
]

_SQRT2 = 1 / math.sqrt(2)


def _u3_definition(theta, phi, lam, global_phase=0.0):
    from repro.circuit.quantumcircuit import QuantumCircuit
    from repro.gates.parametric import U3Gate

    circuit = QuantumCircuit(1, global_phase=global_phase)
    circuit.append(U3Gate(theta, phi, lam), (0,))
    return circuit


def _u1_definition(lam, global_phase=0.0):
    from repro.circuit.quantumcircuit import QuantumCircuit
    from repro.gates.parametric import U1Gate

    circuit = QuantumCircuit(1, global_phase=global_phase)
    circuit.append(U1Gate(lam), (0,))
    return circuit


class IGate(Gate):
    """Identity gate."""

    def __init__(self):
        super().__init__("id", 1)

    def to_matrix(self):
        return standard_gate_matrix("id")

    def inverse(self):
        return IGate()


class XGate(Gate):
    """Pauli X (NOT) gate."""

    def __init__(self):
        super().__init__("x", 1)

    def to_matrix(self):
        return standard_gate_matrix("x")

    def inverse(self):
        return XGate()

    def _define(self):
        return _u3_definition(math.pi, 0.0, math.pi)


class YGate(Gate):
    """Pauli Y gate."""

    def __init__(self):
        super().__init__("y", 1)

    def to_matrix(self):
        return standard_gate_matrix("y")

    def inverse(self):
        return YGate()

    def _define(self):
        return _u3_definition(math.pi, math.pi / 2, math.pi / 2)


class ZGate(Gate):
    """Pauli Z gate."""

    def __init__(self):
        super().__init__("z", 1)

    def to_matrix(self):
        return standard_gate_matrix("z")

    def inverse(self):
        return ZGate()

    def _define(self):
        return _u1_definition(math.pi)


class HGate(Gate):
    """Hadamard gate: swaps the Z and X bases (paper Fig. 5 transitions)."""

    def __init__(self):
        super().__init__("h", 1)

    def to_matrix(self):
        return standard_gate_matrix("h")

    def inverse(self):
        return HGate()

    def _define(self):
        from repro.circuit.quantumcircuit import QuantumCircuit
        from repro.gates.parametric import U2Gate

        circuit = QuantumCircuit(1)
        circuit.append(U2Gate(0.0, math.pi), (0,))
        return circuit


class SGate(Gate):
    """Phase gate S = sqrt(Z): a quarter turn about Z."""

    def __init__(self):
        super().__init__("s", 1)

    def to_matrix(self):
        return standard_gate_matrix("s")

    def inverse(self):
        return SdgGate()

    def _define(self):
        return _u1_definition(math.pi / 2)


class SdgGate(Gate):
    """Inverse phase gate S-dagger."""

    def __init__(self):
        super().__init__("sdg", 1)

    def to_matrix(self):
        return standard_gate_matrix("sdg")

    def inverse(self):
        return SGate()

    def _define(self):
        return _u1_definition(-math.pi / 2)


class TGate(Gate):
    """T gate = fourth root of Z."""

    def __init__(self):
        super().__init__("t", 1)

    def to_matrix(self):
        return standard_gate_matrix("t")

    def inverse(self):
        return TdgGate()

    def _define(self):
        return _u1_definition(math.pi / 4)


class TdgGate(Gate):
    """Inverse T gate."""

    def __init__(self):
        super().__init__("tdg", 1)

    def to_matrix(self):
        return standard_gate_matrix("tdg")

    def inverse(self):
        return TGate()

    def _define(self):
        return _u1_definition(-math.pi / 4)


class SXGate(Gate):
    """Square root of X."""

    def __init__(self):
        super().__init__("sx", 1)

    def to_matrix(self):
        return standard_gate_matrix("sx")

    def inverse(self):
        from repro.gates.unitary import UnitaryGate

        return UnitaryGate(self.to_matrix().conj().T, label="sxdg")

    def _define(self):
        # SX = exp(i*pi/4) * Rx(pi/2) and Rx(t) = u3(t, -pi/2, pi/2)
        return _u3_definition(
            math.pi / 2, -math.pi / 2, math.pi / 2, global_phase=math.pi / 4
        )
