"""The gate library.

Every gate the paper's optimization rules mention is available here,
including the paper's own :class:`~repro.gates.twoqubit.SwapZGate` (the
two-CNOT "swap-with-zero", Eq. 3) and the
:class:`~repro.gates.instruction_ops.Annotation` directive (Sec. VI-C).

Matrix conventions are little-endian in gate-argument order: bit ``k`` of a
matrix index is the ``k``-th qubit argument (controls come first).
"""

from repro.gates.standard import (
    IGate,
    XGate,
    YGate,
    ZGate,
    HGate,
    SGate,
    SdgGate,
    TGate,
    TdgGate,
    SXGate,
)
from repro.gates.parametric import RXGate, RYGate, RZGate, U1Gate, U2Gate, U3Gate
from repro.gates.twoqubit import (
    CXGate,
    CYGate,
    CZGate,
    CHGate,
    CPhaseGate,
    CRXGate,
    CRYGate,
    CRZGate,
    CU3Gate,
    SwapGate,
    SwapZGate,
    ISwapGate,
)
from repro.gates.multi import (
    CCXGate,
    CCZGate,
    CSwapGate,
    MCU1Gate,
    MCXGate,
    MCZGate,
    MCXVChainGate,
)
from repro.gates.instruction_ops import Measure, Reset, Barrier, Annotation
from repro.gates.unitary import UnitaryGate

__all__ = [
    "IGate",
    "XGate",
    "YGate",
    "ZGate",
    "HGate",
    "SGate",
    "SdgGate",
    "TGate",
    "TdgGate",
    "SXGate",
    "RXGate",
    "RYGate",
    "RZGate",
    "U1Gate",
    "U2Gate",
    "U3Gate",
    "CXGate",
    "CYGate",
    "CZGate",
    "CHGate",
    "CPhaseGate",
    "CRXGate",
    "CRYGate",
    "CRZGate",
    "CU3Gate",
    "SwapGate",
    "SwapZGate",
    "ISwapGate",
    "CCXGate",
    "CCZGate",
    "CSwapGate",
    "MCU1Gate",
    "MCXGate",
    "MCZGate",
    "MCXVChainGate",
    "Measure",
    "Reset",
    "Barrier",
    "Annotation",
    "UnitaryGate",
]
