"""Parametric one-qubit gates: rotations and the IBM ``u1/u2/u3`` basis.

``u1``, ``u2`` and ``u3`` are primitives (they are what the fake backends
declare as basis gates); the rotation gates define themselves in terms of
them with exact global-phase tracking.
"""

from __future__ import annotations

import cmath
import math

import numpy as np

from repro.circuit.instruction import Gate

__all__ = ["RXGate", "RYGate", "RZGate", "U1Gate", "U2Gate", "U3Gate"]


class U3Gate(Gate):
    """Generic one-qubit rotation ``u3(theta, phi, lam)``."""

    def __init__(self, theta: float, phi: float, lam: float):
        super().__init__("u3", 1, params=[float(theta), float(phi), float(lam)])

    def to_matrix(self):
        theta, phi, lam = self.params
        cos = math.cos(theta / 2)
        sin = math.sin(theta / 2)
        return np.array(
            [
                [cos, -cmath.exp(1j * lam) * sin],
                [cmath.exp(1j * phi) * sin, cmath.exp(1j * (phi + lam)) * cos],
            ],
            dtype=complex,
        )

    def inverse(self):
        theta, phi, lam = self.params
        return U3Gate(-theta, -lam, -phi)


class U2Gate(Gate):
    """``u2(phi, lam) = u3(pi/2, phi, lam)``."""

    def __init__(self, phi: float, lam: float):
        super().__init__("u2", 1, params=[float(phi), float(lam)])

    def to_matrix(self):
        phi, lam = self.params
        return U3Gate(math.pi / 2, phi, lam).to_matrix()

    def inverse(self):
        phi, lam = self.params
        return U3Gate(-math.pi / 2, -lam, -phi)

    def _define(self):
        from repro.circuit.quantumcircuit import QuantumCircuit

        phi, lam = self.params
        circuit = QuantumCircuit(1)
        circuit.append(U3Gate(math.pi / 2, phi, lam), (0,))
        return circuit


class U1Gate(Gate):
    """Diagonal phase gate ``u1(lam) = diag(1, e^{i lam})``."""

    def __init__(self, lam: float):
        super().__init__("u1", 1, params=[float(lam)])

    def to_matrix(self):
        (lam,) = self.params
        return np.array([[1, 0], [0, cmath.exp(1j * lam)]], dtype=complex)

    def inverse(self):
        return U1Gate(-self.params[0])


class RXGate(Gate):
    """Rotation about X: ``Rx(theta) = exp(-i theta X / 2)``."""

    def __init__(self, theta: float):
        super().__init__("rx", 1, params=[float(theta)])

    def to_matrix(self):
        (theta,) = self.params
        cos = math.cos(theta / 2)
        sin = math.sin(theta / 2)
        return np.array([[cos, -1j * sin], [-1j * sin, cos]], dtype=complex)

    def inverse(self):
        return RXGate(-self.params[0])

    def _define(self):
        from repro.circuit.quantumcircuit import QuantumCircuit

        (theta,) = self.params
        circuit = QuantumCircuit(1)
        circuit.append(U3Gate(theta, -math.pi / 2, math.pi / 2), (0,))
        return circuit


class RYGate(Gate):
    """Rotation about Y: ``Ry(theta) = exp(-i theta Y / 2)``."""

    def __init__(self, theta: float):
        super().__init__("ry", 1, params=[float(theta)])

    def to_matrix(self):
        (theta,) = self.params
        cos = math.cos(theta / 2)
        sin = math.sin(theta / 2)
        return np.array([[cos, -sin], [sin, cos]], dtype=complex)

    def inverse(self):
        return RYGate(-self.params[0])

    def _define(self):
        from repro.circuit.quantumcircuit import QuantumCircuit

        (theta,) = self.params
        circuit = QuantumCircuit(1)
        circuit.append(U3Gate(theta, 0.0, 0.0), (0,))
        return circuit


class RZGate(Gate):
    """Rotation about Z: ``Rz(phi) = exp(-i phi Z / 2) = e^{-i phi/2} u1(phi)``."""

    def __init__(self, phi: float):
        super().__init__("rz", 1, params=[float(phi)])

    def to_matrix(self):
        (phi,) = self.params
        return np.array(
            [[cmath.exp(-1j * phi / 2), 0], [0, cmath.exp(1j * phi / 2)]],
            dtype=complex,
        )

    def inverse(self):
        return RZGate(-self.params[0])

    def _define(self):
        from repro.circuit.quantumcircuit import QuantumCircuit

        (phi,) = self.params
        circuit = QuantumCircuit(1, global_phase=-phi / 2)
        circuit.append(U1Gate(phi), (0,))
        return circuit
