"""Two-qubit gates.

Includes the paper's :class:`SwapZGate` (Eq. 3): the two-CNOT circuit that
swaps correctly whenever its first qubit carries ``|0>``.  ``SwapZGate`` is
*not* unitarily equal to ``SwapGate`` -- replacing one with the other is
exactly the kind of relaxed (functional, not unitary) rewrite RPO performs.
"""

from __future__ import annotations

from repro.circuit.instruction import ControlledGate, Gate
from repro.gates.matrices import standard_gate_matrix
from repro.gates.parametric import RYGate, RZGate, U1Gate, U3Gate
from repro.gates.standard import HGate, SdgGate, SGate, TdgGate, TGate, XGate, YGate, ZGate

__all__ = [
    "CXGate",
    "CYGate",
    "CZGate",
    "CHGate",
    "CPhaseGate",
    "CRXGate",
    "CRYGate",
    "CRZGate",
    "CU3Gate",
    "SwapGate",
    "SwapZGate",
    "ISwapGate",
]


def _circuit(num_qubits, global_phase=0.0):
    from repro.circuit.quantumcircuit import QuantumCircuit

    return QuantumCircuit(num_qubits, global_phase=global_phase)


class CXGate(ControlledGate):
    """Controlled-NOT.  Argument order: (control, target)."""

    def __init__(self, ctrl_state: int | None = None):
        super().__init__("cx", 1, XGate(), ctrl_state=ctrl_state)

    def inverse(self):
        return CXGate(ctrl_state=self.ctrl_state)


class CYGate(ControlledGate):
    """Controlled-Y."""

    def __init__(self, ctrl_state: int | None = None):
        super().__init__("cy", 1, YGate(), ctrl_state=ctrl_state)

    def inverse(self):
        return CYGate(ctrl_state=self.ctrl_state)

    def _define(self):
        if self.ctrl_state != 1:
            return super()._define()
        circuit = _circuit(2)
        circuit.append(SdgGate(), (1,))
        circuit.append(CXGate(), (0, 1))
        circuit.append(SGate(), (1,))
        return circuit


class CZGate(ControlledGate):
    """Controlled-Z (symmetric in its two qubits)."""

    def __init__(self, ctrl_state: int | None = None):
        super().__init__("cz", 1, ZGate(), ctrl_state=ctrl_state)

    def inverse(self):
        return CZGate(ctrl_state=self.ctrl_state)

    def _define(self):
        if self.ctrl_state != 1:
            return super()._define()
        circuit = _circuit(2)
        circuit.append(HGate(), (1,))
        circuit.append(CXGate(), (0, 1))
        circuit.append(HGate(), (1,))
        return circuit


class CHGate(ControlledGate):
    """Controlled-Hadamard."""

    def __init__(self, ctrl_state: int | None = None):
        super().__init__("ch", 1, HGate(), ctrl_state=ctrl_state)

    def inverse(self):
        return CHGate(ctrl_state=self.ctrl_state)

    def _define(self):
        if self.ctrl_state != 1:
            return super()._define()
        circuit = _circuit(2)
        circuit.append(SGate(), (1,))
        circuit.append(HGate(), (1,))
        circuit.append(TGate(), (1,))
        circuit.append(CXGate(), (0, 1))
        circuit.append(TdgGate(), (1,))
        circuit.append(HGate(), (1,))
        circuit.append(SdgGate(), (1,))
        return circuit


class CPhaseGate(ControlledGate):
    """Controlled-phase ``cp(lam) = diag(1, 1, 1, e^{i lam})``."""

    def __init__(self, lam: float, ctrl_state: int | None = None):
        super().__init__("cp", 1, U1Gate(lam), ctrl_state=ctrl_state)

    def inverse(self):
        return CPhaseGate(-self.params[0], ctrl_state=self.ctrl_state)

    def _define(self):
        if self.ctrl_state != 1:
            return super()._define()
        (lam,) = self.params
        circuit = _circuit(2)
        circuit.append(U1Gate(lam / 2), (0,))
        circuit.append(CXGate(), (0, 1))
        circuit.append(U1Gate(-lam / 2), (1,))
        circuit.append(CXGate(), (0, 1))
        circuit.append(U1Gate(lam / 2), (1,))
        return circuit


class CRZGate(ControlledGate):
    """Controlled Rz rotation."""

    def __init__(self, theta: float, ctrl_state: int | None = None):
        super().__init__("crz", 1, RZGate(theta), ctrl_state=ctrl_state)

    def inverse(self):
        return CRZGate(-self.params[0], ctrl_state=self.ctrl_state)

    def _define(self):
        if self.ctrl_state != 1:
            return super()._define()
        (theta,) = self.params
        circuit = _circuit(2)
        circuit.append(RZGate(theta / 2), (1,))
        circuit.append(CXGate(), (0, 1))
        circuit.append(RZGate(-theta / 2), (1,))
        circuit.append(CXGate(), (0, 1))
        return circuit


class CRYGate(ControlledGate):
    """Controlled Ry rotation."""

    def __init__(self, theta: float, ctrl_state: int | None = None):
        super().__init__("cry", 1, RYGate(theta), ctrl_state=ctrl_state)

    def inverse(self):
        return CRYGate(-self.params[0], ctrl_state=self.ctrl_state)

    def _define(self):
        if self.ctrl_state != 1:
            return super()._define()
        (theta,) = self.params
        circuit = _circuit(2)
        circuit.append(RYGate(theta / 2), (1,))
        circuit.append(CXGate(), (0, 1))
        circuit.append(RYGate(-theta / 2), (1,))
        circuit.append(CXGate(), (0, 1))
        return circuit


class CRXGate(ControlledGate):
    """Controlled Rx rotation."""

    def __init__(self, theta: float, ctrl_state: int | None = None):
        from repro.gates.parametric import RXGate

        super().__init__("crx", 1, RXGate(theta), ctrl_state=ctrl_state)

    def inverse(self):
        return CRXGate(-self.params[0], ctrl_state=self.ctrl_state)

    def _define(self):
        if self.ctrl_state != 1:
            return super()._define()
        (theta,) = self.params
        circuit = _circuit(2)
        circuit.append(HGate(), (1,))
        circuit.append(RZGate(theta / 2), (1,))
        circuit.append(CXGate(), (0, 1))
        circuit.append(RZGate(-theta / 2), (1,))
        circuit.append(CXGate(), (0, 1))
        circuit.append(HGate(), (1,))
        return circuit


class CU3Gate(ControlledGate):
    """Controlled generic rotation ``cu3(theta, phi, lam)``."""

    def __init__(self, theta: float, phi: float, lam: float, ctrl_state: int | None = None):
        super().__init__("cu3", 1, U3Gate(theta, phi, lam), ctrl_state=ctrl_state)

    def inverse(self):
        theta, phi, lam = self.params
        return CU3Gate(-theta, -lam, -phi, ctrl_state=self.ctrl_state)

    def _define(self):
        if self.ctrl_state != 1:
            return super()._define()
        theta, phi, lam = self.params
        circuit = _circuit(2)
        circuit.append(U1Gate((lam + phi) / 2), (0,))
        circuit.append(U1Gate((lam - phi) / 2), (1,))
        circuit.append(CXGate(), (0, 1))
        circuit.append(U3Gate(-theta / 2, 0.0, -(phi + lam) / 2), (1,))
        circuit.append(CXGate(), (0, 1))
        circuit.append(U3Gate(theta / 2, phi, 0.0), (1,))
        return circuit


class SwapGate(Gate):
    """SWAP gate; decomposes into three CNOTs (paper Fig. 2)."""

    def __init__(self):
        super().__init__("swap", 2)

    def to_matrix(self):
        return standard_gate_matrix("swap")

    def inverse(self):
        return SwapGate()

    def _define(self):
        circuit = _circuit(2)
        circuit.append(CXGate(), (0, 1))
        circuit.append(CXGate(), (1, 0))
        circuit.append(CXGate(), (0, 1))
        return circuit


class SwapZGate(Gate):
    """SWAPZ (paper Eq. 3): two CNOTs that swap when qubit 0 is ``|0>``.

    Argument order is ``(zero_qubit, other)``: the gate swaps any state on
    ``other`` with the ``|0>`` expected on ``zero_qubit``.  Its unitary is
    the SWAP decomposition *without* the initial CNOT controlled by the zero
    qubit, i.e. ``CX(0,1) @ CX(1,0)`` in matrix order.
    """

    def __init__(self):
        super().__init__("swapz", 2)

    def to_matrix(self):
        return standard_gate_matrix("swapz")

    def inverse(self):
        from repro.gates.unitary import UnitaryGate

        return UnitaryGate(self.to_matrix().conj().T, label="swapz_dg")

    def _define(self):
        circuit = _circuit(2)
        circuit.append(CXGate(), (1, 0))
        circuit.append(CXGate(), (0, 1))
        return circuit


class ISwapGate(Gate):
    """iSWAP gate."""

    def __init__(self):
        super().__init__("iswap", 2)

    def to_matrix(self):
        return standard_gate_matrix("iswap")

    def inverse(self):
        from repro.gates.unitary import UnitaryGate

        return UnitaryGate(self.to_matrix().conj().T, label="iswap_dg")

    def _define(self):
        circuit = _circuit(2)
        circuit.append(SGate(), (0,))
        circuit.append(SGate(), (1,))
        circuit.append(HGate(), (0,))
        circuit.append(CXGate(), (0, 1))
        circuit.append(CXGate(), (1, 0))
        circuit.append(HGate(), (1,))
        return circuit
