"""Non-unitary instructions and compiler directives.

``Annotation`` is the paper's ``ANNOT(theta, phi)`` (Sec. VI-C): a promise
from the programmer that a qubit is in the pure state ``|psi(theta, phi)>``
at that point.  It is a *directive*: simulators and hardware ignore it, but
the state-analysis passes consume it to re-enter tracked states (e.g. clean
``|0>`` ancillas after an uncomputation, Fig. 7).
"""

from __future__ import annotations

from repro.circuit.instruction import Instruction

__all__ = ["Measure", "Reset", "Barrier", "Annotation"]


class Measure(Instruction):
    """Computational-basis measurement into one classical bit."""

    def __init__(self):
        super().__init__("measure", 1, num_clbits=1)

    def inverse(self):
        raise ValueError("measurement is not invertible")


class Reset(Instruction):
    """Reset a qubit to ``|0>`` (paper Sec. II-A / Fig. 5 RESET edge)."""

    def __init__(self):
        super().__init__("reset", 1)

    def inverse(self):
        raise ValueError("reset is not invertible")


class Barrier(Instruction):
    """Optimization barrier across the given qubits."""

    def __init__(self, num_qubits: int):
        super().__init__("barrier", num_qubits)

    @property
    def is_directive(self) -> bool:
        return True

    def inverse(self):
        return Barrier(self.num_qubits)


class Annotation(Instruction):
    """State annotation ``ANNOT(theta, phi)`` (paper Sec. VI-C).

    Parameters are the Bloch angles of the promised single-qubit pure state
    ``cos(theta/2)|0> + e^{i phi} sin(theta/2)|1>``.  ``ANNOT(0, 0)``
    promises a clean ``|0>`` ancilla.
    """

    def __init__(self, theta: float, phi: float):
        super().__init__("annot", 1, params=[float(theta), float(phi)])

    @property
    def is_directive(self) -> bool:
        return True

    def inverse(self):
        # Inverting a circuit invalidates forward-looking promises; the
        # safest inverse is to drop the promise, which a directive with the
        # same wires but no effect accomplishes.  We keep the annotation so
        # round-trips preserve structure; state trackers treat it the same.
        return Annotation(*self.params)

    @property
    def theta(self) -> float:
        return self.params[0]

    @property
    def phi(self) -> float:
        return self.params[1]

    def is_zero_state(self, atol: float = 1e-9) -> bool:
        return abs(self.theta) < atol and abs(self.phi) < atol
