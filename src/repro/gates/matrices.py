"""Module-level matrix table for parameter-free standard gates.

Every fixed (parameter-free) gate in the library has a single, immutable
matrix.  Constructing a fresh ndarray on every ``to_matrix()`` call is pure
overhead -- the state-analysis passes (QBO/QPO trackers, consolidation,
1q fusion) ask for the same handful of matrices thousands of times per
transpilation.  This table builds each matrix once at import time, marks it
read-only, and hands out the shared instance.

The matrices here are the *source of truth* used by the gate classes in
:mod:`repro.gates.standard` and :mod:`repro.gates.twoqubit`; the
:class:`~repro.transpiler.cache.AnalysisCache` treats a table hit as a free
lookup (no matrix construction).

Conventions match the rest of the library: little-endian in gate-argument
order, controls first.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["STANDARD_GATE_MATRICES", "standard_gate_matrix"]

_SQRT2 = 1 / math.sqrt(2)


def _controlled(base: np.ndarray, num_ctrl: int = 1) -> np.ndarray:
    """Embed ``base`` as a closed-control gate (controls = low qubit args)."""
    n_base = int(base.shape[0]).bit_length() - 1
    ctrl_state = (1 << num_ctrl) - 1
    dim = 2 ** (num_ctrl + n_base)
    matrix = np.eye(dim, dtype=complex)
    for base_row in range(2**n_base):
        row = (base_row << num_ctrl) | ctrl_state
        for base_col in range(2**n_base):
            col = (base_col << num_ctrl) | ctrl_state
            matrix[row, col] = base[base_row, base_col]
    return matrix


def _build_table() -> dict[str, np.ndarray]:
    identity = np.eye(2, dtype=complex)
    x = np.array([[0, 1], [1, 0]], dtype=complex)
    y = np.array([[0, -1j], [1j, 0]], dtype=complex)
    z = np.array([[1, 0], [0, -1]], dtype=complex)
    h = np.array([[_SQRT2, _SQRT2], [_SQRT2, -_SQRT2]], dtype=complex)
    s = np.array([[1, 0], [0, 1j]], dtype=complex)
    t = np.array([[1, 0], [0, np.exp(1j * math.pi / 4)]], dtype=complex)
    sx = 0.5 * np.array([[1 + 1j, 1 - 1j], [1 - 1j, 1 + 1j]], dtype=complex)
    swap = np.array(
        [[1, 0, 0, 0], [0, 0, 1, 0], [0, 1, 0, 0], [0, 0, 0, 1]], dtype=complex
    )
    # SWAPZ (paper Eq. 3), time order cx(1,0) then cx(0,1)
    cx_10 = np.array(
        [[1, 0, 0, 0], [0, 1, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0]], dtype=complex
    )
    cx_01 = _controlled(x)
    iswap = np.array(
        [[1, 0, 0, 0], [0, 0, 1j, 0], [0, 1j, 0, 0], [0, 0, 0, 1]], dtype=complex
    )
    table = {
        "id": identity,
        "x": x,
        "y": y,
        "z": z,
        "h": h,
        "s": s,
        "sdg": s.conj().T,
        "t": t,
        "tdg": t.conj().T,
        "sx": sx,
        "cx": cx_01,
        "cy": _controlled(y),
        "cz": _controlled(z),
        "ch": _controlled(h),
        "swap": swap,
        "swapz": cx_01 @ cx_10,
        "iswap": iswap,
        "ccx": _controlled(x, 2),
        "ccz": _controlled(z, 2),
        "cswap": _controlled(swap),
    }
    for matrix in table.values():
        matrix.setflags(write=False)
    return table


#: Immutable matrices of the parameter-free standard gates, keyed by name.
STANDARD_GATE_MATRICES: dict[str, np.ndarray] = _build_table()


def standard_gate_matrix(name: str) -> np.ndarray | None:
    """The shared read-only matrix for a fixed standard gate, or ``None``."""
    return STANDARD_GATE_MATRICES.get(name)
