"""repro-lint: an AST-based linter for repo-specific invariants.

Ruff and mypy enforce generic Python hygiene; the rules here enforce
invariants of *this* codebase that only hold by convention -- the kind a
sanitizer layer enforces in a training/inference stack.  Run it as::

    python -m repro.analysis.lint src/

Rule catalog (every rule is individually selectable and suppressible):

* **RES001** -- backend residency: no raw ``np.``/``numpy.`` array
  constructions or contractions inside function bodies of
  backend-resident simulator modules; route them through
  :mod:`repro.linalg.backend` so CuPy execution keeps arrays on device.
  Module-level constants are host-side staging and exempt.
* **PAS001** -- pass metadata: every ``TransformationPass`` subclass
  declares ``requires``/``preserves``/``invalidates`` in its class body,
  and every ``AnalysisPass`` subclass declares ``provides``.  The
  requirements-aware pass manager *skips work* based on these
  declarations; an implicit inherit is how stale analyses slip through.
* **PCK001** -- pickle boundary: classes whose instances cross the
  process-pool or wire boundary define ``__getstate__``/``__reduce__``
  or are registered picklable-as-is; holding a threading primitive
  without a pickle hook is always a finding.
* **DET001** -- deterministic keys: fingerprint- and cache-key-producing
  functions must not consult wall clocks or entropy sources
  (``time.*``, ``random``, ``np.random``, ``uuid``, ``secrets``,
  ``datetime.now``) -- a key that varies across runs silently disables
  every cache keyed on it.
* **LCK001** -- locked module state: module-level mutable containers in
  the service/cache/result-cache/backend/server layers may only be
  mutated inside a ``with <lock>:`` block naming a lock.

Suppress a finding on one line with ``# repro-lint: ignore[RULE]``
(comma-separate several rule ids); skip a whole file with
``# repro-lint: skip-file``.  Every pragma should carry a reason or a
TODO -- a pragma is a tracked debt, not a global disable.
"""

from __future__ import annotations

import argparse
import ast
import re
import sys
from dataclasses import dataclass
from pathlib import Path

__all__ = [
    "Finding",
    "Rule",
    "RULES",
    "lint_source",
    "lint_paths",
    "main",
]


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} {self.message}"


_PRAGMA_RE = re.compile(r"#\s*repro-lint:\s*ignore\[([A-Za-z0-9_,\s]+)\]")
_SKIP_FILE_RE = re.compile(r"#\s*repro-lint:\s*skip-file")


def _line_pragmas(lines: list[str]) -> dict[int, set[str]]:
    """Per-line suppressed rule ids (1-indexed line numbers)."""
    pragmas: dict[int, set[str]] = {}
    for number, line in enumerate(lines, start=1):
        match = _PRAGMA_RE.search(line)
        if match:
            pragmas[number] = {
                rule.strip() for rule in match.group(1).split(",") if rule.strip()
            }
    return pragmas


def _dotted(node: ast.expr) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class Rule:
    """One lint rule: a scope predicate plus an AST check."""

    id: str = ""
    description: str = ""

    def applies_to(self, path: str) -> bool:
        return True

    def check(self, tree: ast.Module, path: str) -> list[Finding]:
        raise NotImplementedError


# --------------------------------------------------------------------------
# RES001 -- backend residency in simulator hot paths
# --------------------------------------------------------------------------

#: Simulator modules whose function bodies are backend-resident (arrays
#: must live on whatever device :mod:`repro.linalg.backend` selected).
_RES_SCOPE = (
    "repro/simulators/statevector.py",
    "repro/simulators/unitary.py",
    "repro/simulators/density_matrix.py",
    "repro/simulators/noisy.py",
    "repro/simulators/fusion.py",
)

#: Array constructions/contractions that allocate or compute -- these are
#: the calls that must go through the active backend's ``xp`` namespace.
_RES_DENYLIST = frozenset(
    {
        "zeros",
        "ones",
        "empty",
        "full",
        "eye",
        "identity",
        "kron",
        "matmul",
        "einsum",
        "tensordot",
        "outer",
        "dot",
        "vdot",
        "trace",
    }
)


class BackendResidency(Rule):
    id = "RES001"
    description = (
        "no raw numpy array ops in backend-resident simulator code; "
        "route through repro.linalg.backend"
    )

    def applies_to(self, path: str) -> bool:
        return any(path.endswith(suffix) for suffix in _RES_SCOPE)

    def check(self, tree: ast.Module, path: str) -> list[Finding]:
        findings: list[Finding] = []
        for function in ast.walk(tree):
            if not isinstance(function, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for node in ast.walk(function):
                if not isinstance(node, ast.Call):
                    continue
                dotted = _dotted(node.func)
                if dotted is None:
                    continue
                parts = dotted.split(".")
                if parts[0] not in ("np", "numpy"):
                    continue
                if "linalg" in parts[1:-1] or parts[-1] in _RES_DENYLIST:
                    findings.append(
                        Finding(
                            path,
                            node.lineno,
                            self.id,
                            f"raw numpy call {dotted}() in backend-resident "
                            "simulator code; use repro.linalg.backend's xp "
                            "namespace so arrays stay on device",
                        )
                    )
        return findings


# --------------------------------------------------------------------------
# PAS001 -- explicit pass-metadata declarations
# --------------------------------------------------------------------------

_PAS_TRANSFORM_REQUIRED = ("requires", "preserves", "invalidates")
_PAS_ANALYSIS_REQUIRED = ("provides",)


class PassMetadata(Rule):
    id = "PAS001"
    description = (
        "TransformationPass subclasses declare requires/preserves/"
        "invalidates; AnalysisPass subclasses declare provides"
    )

    def check(self, tree: ast.Module, path: str) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.ClassDef):
                continue
            bases = {
                base
                for base in (_dotted(expr) for expr in node.bases)
                if base is not None
            }
            base_names = {base.split(".")[-1] for base in bases}
            if "TransformationPass" in base_names:
                required = _PAS_TRANSFORM_REQUIRED
            elif "AnalysisPass" in base_names:
                required = _PAS_ANALYSIS_REQUIRED
            else:
                continue
            declared = set()
            for statement in node.body:
                if isinstance(statement, ast.Assign):
                    declared.update(
                        target.id
                        for target in statement.targets
                        if isinstance(target, ast.Name)
                    )
                elif isinstance(statement, ast.AnnAssign) and isinstance(
                    statement.target, ast.Name
                ):
                    declared.add(statement.target.id)
            missing = [name for name in required if name not in declared]
            if missing:
                findings.append(
                    Finding(
                        path,
                        node.lineno,
                        self.id,
                        f"pass {node.name} does not declare "
                        f"{', '.join(missing)}; the requirements-aware "
                        "scheduler skips analyses based on these -- declare "
                        "them explicitly (empty tuples are fine)",
                    )
                )
        return findings


# --------------------------------------------------------------------------
# PCK001 -- pickle-boundary safety
# --------------------------------------------------------------------------

#: Classes whose instances cross the process-pool pickle channel or the
#: compile-server wire protocol.  Crossing is a property of the
#: architecture, not the class body, so the set is an explicit registry.
_PCK_BOUNDARY_CLASSES = frozenset(
    {
        "QuantumCircuit",
        "Target",
        "PropertySet",
        "TranspileResult",
        "PassMetrics",
        "AnalysisCache",
        "TranspilerError",
        "ContractViolation",
    }
)

#: Boundary classes audited picklable as-is (plain data, no hooks needed).
_PCK_REGISTERED_PICKLABLE = frozenset(
    {
        "QuantumCircuit",
        "PropertySet",
        "TranspileResult",
        "PassMetrics",
        "AnalysisCache",
        "TranspilerError",
    }
)

_PCK_HOOKS = ("__getstate__", "__reduce__", "__reduce_ex__")

#: Constructors that produce unpicklable members when assigned to self.
_PCK_UNPICKLABLE_CALLS = frozenset(
    {
        "threading.Lock",
        "threading.RLock",
        "threading.Condition",
        "threading.Event",
        "threading.Semaphore",
        "threading.local",
        "ThreadPoolExecutor",
        "ProcessPoolExecutor",
    }
)


def _unpicklable_member_line(node: ast.ClassDef) -> int | None:
    """Line of the first ``self.x = threading.Lock()``-style member."""
    for child in ast.walk(node):
        if not isinstance(child, ast.Assign):
            continue
        if not isinstance(child.value, ast.Call):
            continue
        dotted = _dotted(child.value.func)
        if dotted is None:
            continue
        name = dotted if dotted in _PCK_UNPICKLABLE_CALLS else dotted.split(".")[-1]
        if name not in _PCK_UNPICKLABLE_CALLS:
            continue
        for target in child.targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ) or isinstance(target, ast.Name):
                return child.lineno
    return None


class PickleBoundary(Rule):
    id = "PCK001"
    description = (
        "boundary-crossing classes define __getstate__/__reduce__ or are "
        "registered picklable; threading members always need a hook"
    )

    def check(self, tree: ast.Module, path: str) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if node.name not in _PCK_BOUNDARY_CLASSES:
                continue
            methods = {
                statement.name
                for statement in node.body
                if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            has_hook = any(hook in methods for hook in _PCK_HOOKS)
            if has_hook:
                continue
            bad_member = _unpicklable_member_line(node)
            if bad_member is not None:
                findings.append(
                    Finding(
                        path,
                        bad_member,
                        self.id,
                        f"boundary class {node.name} holds an unpicklable "
                        "member but defines no __getstate__/__reduce__; it "
                        "will fail (or leak a live primitive) when crossing "
                        "the process/wire boundary",
                    )
                )
            elif node.name not in _PCK_REGISTERED_PICKLABLE:
                findings.append(
                    Finding(
                        path,
                        node.lineno,
                        self.id,
                        f"boundary class {node.name} defines no pickle hook "
                        "and is not registered picklable-as-is; add "
                        "__getstate__/__reduce__ or register it in "
                        "repro.analysis.lint after auditing",
                    )
                )
        return findings


# --------------------------------------------------------------------------
# DET001 -- deterministic fingerprint / cache-key producers
# --------------------------------------------------------------------------

#: A function is a key producer when its name says so.
_DET_NAME_RE = re.compile(r"fingerprint|cache_key|digest|_key$|^key$")

#: (root module, attribute) patterns that read clocks or entropy.  An
#: attribute of ``None`` bans every attribute of the module.
_DET_BANNED_MODULES = {
    "time": {"time", "time_ns", "monotonic", "monotonic_ns", "perf_counter", "perf_counter_ns"},
    "random": None,
    "secrets": None,
    "uuid": {"uuid1", "uuid4"},
}

_DET_BANNED_FROM_IMPORTS = {
    "time": {"time", "time_ns", "monotonic", "monotonic_ns", "perf_counter", "perf_counter_ns"},
    "random": "*",
    "secrets": "*",
    "uuid": {"uuid1", "uuid4"},
    "datetime": set(),  # datetime.now reached via the class, handled below
}

_DET_DATETIME_METHODS = frozenset({"now", "utcnow", "today"})


class DeterministicKeys(Rule):
    id = "DET001"
    description = (
        "no clocks or entropy (time.time/random/uuid/secrets/"
        "datetime.now) inside fingerprint- or cache-key-producing functions"
    )

    def check(self, tree: ast.Module, path: str) -> list[Finding]:
        banned_bare: set[str] = set()
        for node in tree.body:
            if isinstance(node, ast.ImportFrom) and node.module in _DET_BANNED_FROM_IMPORTS:
                allowed = _DET_BANNED_FROM_IMPORTS[node.module]
                for alias in node.names:
                    if allowed == "*" or alias.name in allowed:
                        banned_bare.add(alias.asname or alias.name)
        findings: list[Finding] = []
        for function in ast.walk(tree):
            if not isinstance(function, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not _DET_NAME_RE.search(function.name):
                continue
            for node in ast.walk(function):
                if not isinstance(node, ast.Call):
                    continue
                culprit = self._banned_call(node, banned_bare)
                if culprit is not None:
                    findings.append(
                        Finding(
                            path,
                            node.lineno,
                            self.id,
                            f"{culprit}() inside key producer "
                            f"{function.name}(); a fingerprint that varies "
                            "across runs silently disables every cache "
                            "keyed on it",
                        )
                    )
        return findings

    @staticmethod
    def _banned_call(node: ast.Call, banned_bare: set[str]) -> str | None:
        if isinstance(node.func, ast.Name):
            return node.func.id if node.func.id in banned_bare else None
        dotted = _dotted(node.func)
        if dotted is None:
            return None
        parts = dotted.split(".")
        root, leaf = parts[0], parts[-1]
        allowed = _DET_BANNED_MODULES.get(root)
        if root in _DET_BANNED_MODULES and (allowed is None or leaf in allowed):
            return dotted
        if root in ("np", "numpy") and "random" in parts[1:]:
            return dotted
        if leaf in _DET_DATETIME_METHODS and "datetime" in parts[:-1]:
            return dotted
        return None


# --------------------------------------------------------------------------
# LCK001 -- module-level mutable state mutated under a lock
# --------------------------------------------------------------------------

_LCK_SCOPE = (
    "repro/transpiler/service.py",
    "repro/transpiler/cache.py",
    "repro/transpiler/result_cache.py",
    "repro/linalg/backend.py",
)

_LCK_MUTABLE_FACTORIES = frozenset(
    {"dict", "list", "set", "defaultdict", "OrderedDict", "deque", "Counter"}
)

_LCK_MUTATORS = frozenset(
    {
        "append",
        "appendleft",
        "add",
        "update",
        "pop",
        "popitem",
        "popleft",
        "clear",
        "remove",
        "discard",
        "extend",
        "insert",
        "setdefault",
    }
)


def _mentions_lock(node: ast.expr) -> bool:
    for child in ast.walk(node):
        if isinstance(child, ast.Name) and "lock" in child.id.lower():
            return True
        if isinstance(child, ast.Attribute) and "lock" in child.attr.lower():
            return True
    return False


class LockedModuleState(Rule):
    id = "LCK001"
    description = (
        "module-level mutable state in service/cache/result_cache/backend/"
        "server modules is mutated only under a named lock"
    )

    def applies_to(self, path: str) -> bool:
        return any(path.endswith(suffix) for suffix in _LCK_SCOPE) or (
            "repro/server/" in path
        )

    def check(self, tree: ast.Module, path: str) -> list[Finding]:
        tracked: set[str] = set()
        for node in tree.body:
            targets: list[ast.expr] = []
            value: ast.expr | None = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            if value is None:
                continue
            mutable = isinstance(value, (ast.Dict, ast.List, ast.Set)) or (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)
                and value.func.id in _LCK_MUTABLE_FACTORIES
            )
            if mutable:
                tracked.update(
                    target.id for target in targets if isinstance(target, ast.Name)
                )
        if not tracked:
            return []
        findings: list[Finding] = []
        # every function anywhere (ast.walk reaches nested ones) starts a
        # fresh runtime scope: it runs later, outside any enclosing lock
        for function in ast.walk(tree):
            if isinstance(function, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for statement in function.body:
                    self._scan(statement, tracked, False, path, findings)
        return findings

    def _scan(
        self,
        node: ast.AST,
        tracked: set[str],
        locked: bool,
        path: str,
        out: list[Finding],
    ) -> None:
        """Depth-first scan tracking the lexical lock state.

        Prunes nested function/lambda subtrees (they get their own
        top-level scan, unlocked) and flips ``locked`` inside ``with``
        blocks whose context expression names a lock.
        """
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            inner = locked or any(
                _mentions_lock(item.context_expr) for item in node.items
            )
            for item in node.items:  # the lock acquisition itself runs unlocked
                self._scan(item, tracked, locked, path, out)
            for statement in node.body:
                self._scan(statement, tracked, inner, path, out)
            return
        if not locked:
            name = self._mutates(node, tracked)
            if name is not None:
                out.append(
                    Finding(
                        path,
                        getattr(node, "lineno", 0),
                        self.id,
                        f"module-level mutable {name} mutated outside a "
                        "'with <lock>:' block; concurrent callers race "
                        "on shared service/cache state",
                    )
                )
        for child in ast.iter_child_nodes(node):
            self._scan(child, tracked, locked, path, out)

    @staticmethod
    def _mutates(node: ast.AST, tracked: set[str]) -> str | None:
        """Name mutated by this single node (children are scanned separately)."""
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id in tracked
            and node.func.attr in _LCK_MUTATORS
        ):
            return node.func.value.id
        if (
            isinstance(node, ast.Subscript)
            and isinstance(node.value, ast.Name)
            and node.value.id in tracked
            and isinstance(node.ctx, (ast.Store, ast.Del))
        ):
            return node.value.id
        if (
            isinstance(node, ast.AugAssign)
            and isinstance(node.target, ast.Name)
            and node.target.id in tracked
        ):
            return node.target.id
        return None


RULES: tuple[Rule, ...] = (
    BackendResidency(),
    PassMetadata(),
    PickleBoundary(),
    DeterministicKeys(),
    LockedModuleState(),
)


# --------------------------------------------------------------------------
# driver
# --------------------------------------------------------------------------


def lint_source(
    source: str, path: str = "<memory>", select: set[str] | None = None
) -> list[Finding]:
    """Lint one source string; ``path`` drives rule scoping (use a
    repo-style posix path like ``src/repro/simulators/statevector.py``)."""
    normalized = path.replace("\\", "/")
    lines = source.splitlines()
    if any(_SKIP_FILE_RE.search(line) for line in lines[:5]):
        return []
    tree = ast.parse(source, filename=path)
    pragmas = _line_pragmas(lines)
    findings: list[Finding] = []
    for rule in RULES:
        if select is not None and rule.id not in select:
            continue
        if not rule.applies_to(normalized):
            continue
        for finding in rule.check(tree, path):
            if finding.rule in pragmas.get(finding.line, ()):  # suppressed
                continue
            findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


def lint_paths(
    paths: list[str], select: set[str] | None = None
) -> list[Finding]:
    """Lint files and directory trees; returns all findings."""
    files: list[Path] = []
    for entry in paths:
        root = Path(entry)
        if root.is_dir():
            files.extend(sorted(root.rglob("*.py")))
        else:
            files.append(root)
    findings: list[Finding] = []
    for file in files:
        try:
            source = file.read_text(encoding="utf-8")
        except OSError as exc:
            findings.append(Finding(str(file), 0, "E000", f"unreadable: {exc}"))
            continue
        try:
            findings.extend(lint_source(source, str(file), select))
        except SyntaxError as exc:
            findings.append(
                Finding(str(file), exc.lineno or 0, "E999", f"syntax error: {exc.msg}")
            )
    return findings


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.lint",
        description="repro-lint: repo-invariant static analysis",
    )
    parser.add_argument("paths", nargs="*", default=["src"], help="files or trees")
    parser.add_argument(
        "--select", help="comma-separated rule ids to run (default: all)"
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog and exit"
    )
    args = parser.parse_args(argv)
    if args.list_rules:
        for rule in RULES:
            print(f"{rule.id}  {rule.description}")
        return 0
    select = (
        {rule.strip() for rule in args.select.split(",") if rule.strip()}
        if args.select
        else None
    )
    findings = lint_paths(args.paths, select)
    for finding in findings:
        print(finding.render())
    count = len(findings)
    print(
        f"repro-lint: {count} finding{'s' if count != 1 else ''}",
        file=sys.stderr,
    )
    return 1 if findings else 0


if __name__ == "__main__":
    raise SystemExit(main())
