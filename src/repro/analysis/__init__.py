"""Static and dynamic program analysis for the repro toolchain.

Two tools live here:

* :mod:`repro.analysis.qsan` -- **QSAN**, the translation-validation
  sanitizer: an opt-in :class:`~repro.transpiler.passmanager.PassManager`
  mode that checks, after every transformation pass, that the rewrite
  preserved the circuit's semantics under the pass's declared equivalence
  contract and that the pass's ``preserves``/``invalidates`` metadata is
  honest.
* :mod:`repro.analysis.lint` -- **repro-lint**, an AST-based linter
  enforcing repo-specific invariants ruff cannot (backend residency,
  pass-metadata declarations, pickle-boundary safety, deterministic
  fingerprints, locked module state).  Run it as
  ``python -m repro.analysis.lint src/``.
"""

from repro.analysis.qsan import ContractViolation, QsanConfig, QsanValidator

__all__ = ["ContractViolation", "QsanConfig", "QsanValidator"]
