"""QSAN: the translation-validation sanitizer for the pass pipeline.

The paper's central claim is that relaxed-peephole rewrites preserve
semantics *under relaxed preconditions*.  QSAN machine-checks that claim on
every pipeline run it watches: after each transformation pass it verifies
the pass's input and output are equivalent under the pass's declared
``equivalence`` contract, and audits that the pass's scheduling metadata
(``preserves``/``invalidates``/``provides``/``writes``) told the truth
about what it did to the property set.  A pass caught lying raises a
structured :class:`ContractViolation` naming the pass, the property (when
one is implicated) and a circuit diff.

Enabling it
===========

* per run: ``PassManager.run_with_result(..., validate="full")`` (or
  ``"contracts"`` for the metadata audit without semantic checks);
* per batch: ``CompileOptions(validate="full")`` /
  ``transpile(..., validate="full")``;
* globally: ``REPRO_QSAN=1`` (or ``full`` / ``contracts``) in the
  environment -- this is how CI runs the tier-1 pipeline suite under the
  sanitizer without touching call sites.

``REPRO_QSAN_REPORT=1`` records violations on
``TranspileResult.violations`` (and in per-pass metrics) instead of
raising.  ``REPRO_QSAN_UNITARY_CAP`` / ``REPRO_QSAN_STATE_CAP`` move the
width thresholds below.

Checking tiers
==============

Semantic equivalence is checked at the strongest tier the circuit width
allows:

* ``<= unitary_cap`` (default 8) qubits, measurement-free: exact unitary
  equivalence up to global phase via
  :func:`~repro.simulators.unitary.circuit_unitary`;
* ``<= state_cap`` (default 14) qubits: statevector equivalence from the
  all-zeros initial state up to global phase (terminal measurements are
  stripped and their qubit->clbit maps compared; circuits that measure
  also get a fixed-seed sampling-parity check);
* wider circuits: :class:`~repro.rpo.pure_tracker.PureStateTracker`
  fingerprints -- each side's provable per-qubit pure states must be
  *compatible* (equal wherever both sides prove a state; the unknown TOP
  state is compatible with anything, so the tier cannot false-positive).

Circuits carrying ``ANNOT`` promises are checked at the fingerprint tier
regardless of width: the trackers honor annotations exactly the way the
paper's passes do, while a raw simulation from ``|0...0>`` would not.

The relaxed contracts ("state", "permutation", "layout", "measurement")
exist because most pipeline passes are *not* unitary-equivalent rewrites:
QBO/QPO/Hoare only promise behavior from the all-zeros state, routing adds
an output permutation, layout embeds into the device, and pre-measurement
cleanup only preserves outcome statistics.  See
:class:`~repro.transpiler.passmanager.BasePass` for the contract taxonomy.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass

import numpy as np

from repro.circuit.quantumcircuit import QuantumCircuit
from repro.transpiler.exceptions import TranspilerError
from repro.transpiler.passmanager import (
    AnalysisPass,
    PropertySet,
    _unchanged,
)

__all__ = ["ContractViolation", "QsanConfig", "QsanValidator", "QSAN_SAMPLE_SEED"]

#: Fixed seed for the sampling-parity check -- the CGO 2021 camera-ready
#: date, chosen once and never derived from wall clock or process state.
QSAN_SAMPLE_SEED = 20210227

_ATOL = 1e-8
#: Bloch-vector tolerance for tracker fingerprint comparison.
_BLOCH_ATOL = 1e-6


def _rebuild_violation(message, kind, pass_name, property_name, diff):
    return ContractViolation(
        message,
        kind=kind,
        pass_name=pass_name,
        property_name=property_name,
        diff=diff,
    )


class ContractViolation(TranspilerError):
    """A pass broke its declared contract.

    Attributes:
        kind: violation family -- ``"equivalence"``, ``"false-preserves"``,
            ``"undeclared-write"``, ``"undeclared-clobber"`` or
            ``"analysis-mutation"``.
        pass_name: the offending pass.
        property_name: the implicated property (``None`` for semantic
            violations).
        diff: a short textual circuit diff (``None`` when the circuit was
            not implicated).
    """

    def __init__(
        self,
        message: str,
        *,
        kind: str,
        pass_name: str,
        property_name: str | None = None,
        diff: str | None = None,
    ):
        super().__init__(message)
        self.kind = kind
        self.pass_name = pass_name
        self.property_name = property_name
        self.diff = diff

    def __reduce__(self):
        # keyword-only constructor args need an explicit recipe to cross
        # the process/wire boundary inside TranspileResult.violations
        return (
            _rebuild_violation,
            (self.args[0], self.kind, self.pass_name, self.property_name, self.diff),
        )


@dataclass(frozen=True)
class QsanConfig:
    """Resolved sanitizer settings for one pipeline run."""

    mode: str = "off"  # "off" | "contracts" | "full"
    report_only: bool = False
    unitary_cap: int = 8
    state_cap: int = 14
    sample_shots: int = 128

    @property
    def enabled(self) -> bool:
        return self.mode != "off"

    @classmethod
    def resolve(cls, validate: str | None = None) -> "QsanConfig":
        """Build a config from an explicit mode or the environment.

        An explicit ``validate`` argument wins; ``None`` falls back to
        ``REPRO_QSAN`` (``1``/``full`` -> full, ``contracts`` ->
        contracts, unset/``0``/``off`` -> off).
        """
        mode = validate
        if mode is None:
            raw = os.environ.get("REPRO_QSAN", "").strip().lower()
            aliases = {"": "off", "0": "off", "off": "off", "1": "full"}
            mode = aliases.get(raw, raw)
        if mode not in ("off", "contracts", "full"):
            raise TranspilerError(
                f"unrecognized QSAN mode {mode!r}; expected 'off', 'contracts' or 'full'"
            )
        return cls(
            mode=mode,
            report_only=os.environ.get("REPRO_QSAN_REPORT", "").strip().lower()
            in ("1", "true", "yes"),
            unitary_cap=int(os.environ.get("REPRO_QSAN_UNITARY_CAP", 8)),
            state_cap=int(os.environ.get("REPRO_QSAN_STATE_CAP", 14)),
        )


# ======================================================================
# circuit helpers
# ======================================================================


def _instruction_lines(circuit: QuantumCircuit) -> list[str]:
    lines = []
    for instruction in circuit.data:
        operation = instruction.operation
        params = ",".join(f"{float(p):.6g}" for p in getattr(operation, "params", ()))
        head = f"{operation.name}({params})" if params else operation.name
        wires = ",".join(str(q) for q in instruction.qubits)
        if instruction.clbits:
            wires += " -> " + ",".join(str(c) for c in instruction.clbits)
        lines.append(f"{head} @ {wires}")
    return lines


def circuit_diff(before: QuantumCircuit, after: QuantumCircuit, limit: int = 10) -> str:
    """A compact textual diff of two circuits' instruction streams."""
    old, new = _instruction_lines(before), _instruction_lines(after)
    parts = [
        f"before: {len(old)} ops, {before.num_qubits}q, phase {before.global_phase:.6g}",
        f"after:  {len(new)} ops, {after.num_qubits}q, phase {after.global_phase:.6g}",
    ]
    shown = 0
    for index in range(max(len(old), len(new))):
        left = old[index] if index < len(old) else "<absent>"
        right = new[index] if index < len(new) else "<absent>"
        if left == right:
            continue
        parts.append(f"  [{index}] - {left}")
        parts.append(f"  [{index}] + {right}")
        shown += 1
        if shown >= limit:
            parts.append("  ...")
            break
    return "\n".join(parts)


def _has_operation(circuit: QuantumCircuit, names) -> bool:
    return any(instruction.operation.name in names for instruction in circuit.data)


def _terminal_measure_map(circuit: QuantumCircuit) -> dict[int, int] | None:
    """``qubit -> clbit`` for purely terminal measurements, else ``None``.

    ``None`` means the circuit cannot be checked by stripping measures: it
    resets, or it measures mid-circuit.
    """
    measured: dict[int, int] = {}
    for instruction in circuit.data:
        name = instruction.operation.name
        if name == "reset":
            return None
        if name == "measure":
            qubit = instruction.qubits[0]
            if qubit in measured:
                return None
            measured[qubit] = instruction.clbits[0]
        elif name != "barrier" and any(q in measured for q in instruction.qubits):
            return None
    return measured


def _without_measures(circuit: QuantumCircuit) -> QuantumCircuit:
    output = circuit.copy_empty_like()
    for instruction in circuit.data:
        if instruction.operation.name == "measure":
            continue
        output.append(instruction.operation, instruction.qubits, instruction.clbits)
    return output


#: Minimum state fidelity for the relaxed ``"state"`` contract.  The RPO
#: rewrites drop a gate whenever the tracked state's overlap with the
#: gate's eigenstate is within ``1e-9`` of one (``repro.rpo.states``), so
#: the semantic guarantee they make is *fidelity*, not exact amplitudes;
#: QSAN checks the contract the optimizer actually promises, with
#: headroom for one pass dropping many near-identity gates (the loss
#: compounds linearly; a genuinely wrong rewrite costs fidelity of O(1)).
_STATE_FIDELITY_TOL = 1e-7


def _states_fidelity_equal(
    reference: np.ndarray, candidate: np.ndarray, tol: float = _STATE_FIDELITY_TOL
) -> bool:
    reference = np.asarray(reference).ravel()
    candidate = np.asarray(candidate).ravel()
    if reference.shape != candidate.shape:
        return False
    overlap = abs(np.vdot(reference, candidate))
    return bool(1.0 - overlap <= tol)


def _equal_up_to_phase(reference: np.ndarray, candidate: np.ndarray, atol: float = _ATOL) -> bool:
    reference = np.asarray(reference).ravel()
    candidate = np.asarray(candidate).ravel()
    if reference.shape != candidate.shape:
        return False
    anchor = int(np.argmax(np.abs(reference)))
    if abs(reference[anchor]) < 1e-12:
        return bool(np.allclose(candidate, 0.0, atol=atol))
    phase = candidate[anchor] / reference[anchor]
    if abs(abs(phase) - 1.0) > 1e-6:
        return False
    return bool(np.allclose(reference * phase, candidate, atol=atol))


def _gather_indices(num_source_qubits: int, placement) -> np.ndarray:
    """Index map embedding a ``2**k`` state into a wider register.

    ``placement[q]`` is the destination wire of source qubit ``q``; the
    returned array ``J`` satisfies ``wide_state[J[i]] == narrow_state[i]``
    for an embedding that leaves every unplaced destination wire in
    ``|0>``.
    """
    source = np.arange(2**num_source_qubits, dtype=np.int64)
    destination = np.zeros_like(source)
    for qubit, wire in enumerate(placement):
        destination |= ((source >> qubit) & 1) << wire
    return destination


# ======================================================================
# the tracker fingerprint tier
# ======================================================================

_Z_AXIS_EPS = 1e-9


def _is_z_basis(tracker, qubit: int) -> bool:
    state = tracker.state(qubit)
    if state is None:
        return False
    theta = state[0] % (2 * math.pi)
    return min(abs(theta), abs(theta - math.pi), abs(theta - 2 * math.pi)) < _Z_AXIS_EPS


def pure_fingerprint(circuit: QuantumCircuit):
    """Drive a :class:`PureStateTracker` over ``circuit``.

    The driver understands exactly what the paper's analyses understand --
    one-qubit gates, SWAP, Z-controlled CX/CZ, validated SWAPZ, ANNOT
    promises, measure and reset -- and sends everything else to the
    unknown TOP state, so a claimed (non-TOP) state is always provable.
    """
    from repro.rpo.pure_tracker import PureStateTracker

    tracker = PureStateTracker(circuit.num_qubits)
    x_matrix = np.array([[0, 1], [1, 0]], dtype=complex)
    z_matrix = np.array([[1, 0], [0, -1]], dtype=complex)
    for instruction in circuit.data:
        operation = instruction.operation
        name = operation.name
        qubits = instruction.qubits
        if name == "annot":
            tracker.apply_annotation(qubits[0], *operation.params[:2])
            continue
        if operation.is_directive:
            continue
        if name == "measure":
            tracker.apply_measure(qubits[0])
            continue
        if name == "reset":
            tracker.apply_reset(qubits[0])
            continue
        if not operation.is_gate():
            tracker.invalidate(qubits)
            continue
        if operation.num_qubits == 1:
            tracker.apply_1q_gate(qubits[0], operation.to_matrix())
            continue
        if name == "swap":
            tracker.apply_swap(*qubits)
            continue
        if name == "swapz":
            # SWAPZ equals SWAP exactly when both inputs are Z-basis states
            if _is_z_basis(tracker, qubits[0]) and _is_z_basis(tracker, qubits[1]):
                tracker.apply_swap(*qubits)
            else:
                tracker.invalidate(qubits)
            continue
        if name in ("cx", "cz"):
            control, target = qubits
            state = tracker.state(control)
            theta = (state[0] % (2 * math.pi)) if state is not None else None
            if theta is not None and min(theta, 2 * math.pi - theta) < _Z_AXIS_EPS:
                continue  # control provably |0>: the gate acts as identity
            if theta is not None and abs(theta - math.pi) < _Z_AXIS_EPS:
                # control provably |1>: apply the base gate to the target
                tracker.apply_1q_gate(target, x_matrix if name == "cx" else z_matrix)
                continue
            tracker.invalidate(qubits)
            continue
        tracker.invalidate(qubits)
    return tracker


def _bloch_vector(state) -> np.ndarray:
    theta, phi = state
    return np.array(
        [
            math.sin(theta) * math.cos(phi),
            math.sin(theta) * math.sin(phi),
            math.cos(theta),
        ]
    )


def _fingerprints_compatible(before, after, placement=None) -> int | None:
    """First qubit where two tracker fingerprints provably disagree.

    ``placement[q]`` maps a before-side qubit to its after-side wire
    (identity when ``None``).  TOP on either side is compatible with
    anything, so only qubits *proved* to be in different pure states
    report.
    """
    num_before = len(before.known)
    for qubit in range(num_before):
        wire = placement[qubit] if placement is not None else qubit
        left = before.state(qubit)
        right = after.state(wire)
        if left is None or right is None:
            continue
        if not np.allclose(
            _bloch_vector(left), _bloch_vector(right), atol=_BLOCH_ATOL
        ):
            return qubit
    return None


# ======================================================================
# false-preserves recomputation registry
# ======================================================================

_SKIP = object()


def _recompute_is_swap_mapped(circuit: QuantumCircuit, properties: PropertySet):
    target = properties.get("target")
    coupling = getattr(target, "coupling_map", None)
    if coupling is None:
        return _SKIP
    for instruction in circuit.data:
        if instruction.operation.is_directive:
            continue
        if len(instruction.qubits) == 2 and not coupling.are_coupled(
            *instruction.qubits
        ):
            return False
        if len(instruction.qubits) > 2:
            return False
    return True


#: Analyses QSAN can recompute from scratch to audit ``preserves`` claims.
_RECOMPUTABLE = {
    "size": lambda circuit, properties: circuit.size(),
    "depth": lambda circuit, properties: circuit.depth(),
    "count_ops": lambda circuit, properties: circuit.count_ops(),
    "is_swap_mapped": _recompute_is_swap_mapped,
}


# ======================================================================
# the validator
# ======================================================================


class QsanValidator:
    """Per-run sanitizer driven by :class:`PassManager`.

    One validator watches one pipeline run.  Semantic references (states,
    unitaries, tracker fingerprints) are cached keyed on circuit object
    identity, so chained passes simulate each intermediate circuit once --
    pass *k*'s output is pass *k+1*'s input.
    """

    def __init__(self, config: QsanConfig):
        self.config = config
        self.violations: list[ContractViolation] = []
        # id(circuit) -> (circuit, {tier-key: value}); the strong circuit
        # reference pins the id so it cannot be recycled under us
        self._memo: dict[int, tuple[QuantumCircuit, dict]] = {}

    # -- entry point ---------------------------------------------------

    def check_pass(
        self,
        pass_,
        before: QuantumCircuit,
        after: QuantumCircuit,
        properties: PropertySet,
        *,
        snapshot: dict,
        written: set,
        valid_before: set,
        changed: bool,
    ) -> list[ContractViolation]:
        violations = self._audit_contract(
            pass_, before, after, properties, snapshot, written, valid_before, changed
        )
        if self.config.mode == "full" and changed:
            violations.extend(self._check_equivalence(pass_, before, after, properties))
        self.violations.extend(violations)
        # keep only the live circuit's semantic reference: the next pass's
        # input is this pass's output, everything older is unreachable
        entry = self._memo.get(id(after))
        self._memo = {id(after): entry} if entry is not None else {}
        return violations

    # -- contract audit ------------------------------------------------

    def _audit_contract(
        self, pass_, before, after, properties, snapshot, written, valid_before, changed
    ) -> list[ContractViolation]:
        violations = []
        declared = set(pass_.provides) | set(pass_.writes) | set(pass_.invalidates)
        if isinstance(pass_, AnalysisPass) and changed:
            violations.append(
                ContractViolation(
                    f"analysis pass {pass_.name} mutated the circuit",
                    kind="analysis-mutation",
                    pass_name=pass_.name,
                    diff=circuit_diff(before, after),
                )
            )
        for key in sorted(written):
            if key in declared:
                continue
            if key in snapshot:
                violations.append(
                    ContractViolation(
                        f"pass {pass_.name} clobbered property {key!r} without "
                        "declaring it in provides/writes/invalidates",
                        kind="undeclared-clobber",
                        pass_name=pass_.name,
                        property_name=key,
                    )
                )
            else:
                violations.append(
                    ContractViolation(
                        f"pass {pass_.name} wrote property {key!r} without "
                        "declaring it in provides/writes",
                        kind="undeclared-write",
                        pass_name=pass_.name,
                        property_name=key,
                    )
                )
        if changed:
            claimed = (
                set(valid_before)
                if pass_.preserves == "all"
                else set(pass_.preserves) & valid_before
            )
            for key in sorted(claimed & set(snapshot) & set(_RECOMPUTABLE)):
                expected = _RECOMPUTABLE[key](after, properties)
                if expected is _SKIP or expected == snapshot[key]:
                    continue
                violations.append(
                    ContractViolation(
                        f"pass {pass_.name} changed the circuit but claimed to "
                        f"preserve {key!r}: recorded value {snapshot[key]!r}, "
                        f"recomputed {expected!r}",
                        kind="false-preserves",
                        pass_name=pass_.name,
                        property_name=key,
                        diff=circuit_diff(before, after),
                    )
                )
        return violations

    # -- semantic equivalence ------------------------------------------

    def _check_equivalence(
        self, pass_, before, after, properties
    ) -> list[ContractViolation]:
        contract = getattr(pass_, "equivalence", "unitary")
        if contract in ("none", "identity"):
            return []
        placement = None
        if contract == "permutation":
            permutation = properties.get("final_permutation")
            if permutation is None:
                return []
            placement = list(permutation)
        elif contract == "layout":
            layout = properties.get("layout")
            if layout is None:
                return []
            placement = [layout.physical(q) for q in range(before.num_qubits)]

        width = max(before.num_qubits, after.num_qubits)
        annotated = _has_operation(before, ("annot",)) or _has_operation(
            after, ("annot",)
        )
        before_measures = _terminal_measure_map(before)
        after_measures = _terminal_measure_map(after)
        exact_feasible = (
            not annotated
            and before_measures is not None
            and after_measures is not None
            and width <= self.config.state_cap
        )
        if exact_feasible:
            return self._check_exact(
                pass_, contract, before, after, before_measures, after_measures, placement
            )
        return self._check_fingerprint(pass_, contract, before, after, placement)

    def _violation(self, pass_, before, after, detail) -> ContractViolation:
        return ContractViolation(
            f"pass {pass_.name} broke its {pass_.equivalence!r} equivalence "
            f"contract: {detail}",
            kind="equivalence",
            pass_name=pass_.name,
            diff=circuit_diff(before, after),
        )

    def _check_exact(
        self, pass_, contract, before, after, before_measures, after_measures, placement
    ) -> list[ContractViolation]:
        # measurement bookkeeping must line up under the wire relabeling
        if placement is None:
            if before_measures != after_measures:
                return [
                    self._violation(
                        pass_, before, after, "terminal measurement maps differ"
                    )
                ]
        else:
            expected = {placement[q]: c for q, c in before_measures.items()}
            if expected != after_measures:
                return [
                    self._violation(
                        pass_,
                        before,
                        after,
                        "terminal measurement maps differ under the wire relabeling",
                    )
                ]

        if (
            contract == "unitary"
            and not before_measures
            and not after_measures
            and max(before.num_qubits, after.num_qubits) <= self.config.unitary_cap
        ):
            unitary_before = self._semantics(before, "unitary")
            unitary_after = self._semantics(after, "unitary")
            if not _equal_up_to_phase(unitary_before, unitary_after):
                return [
                    self._violation(
                        pass_, before, after, "unitaries differ (up to global phase)"
                    )
                ]
            return []

        state_before = self._semantics(before, "state")
        state_after = self._semantics(after, "state")
        violations = []
        if contract == "measurement":
            # diagonal-before-measure removal may change phases, never
            # outcome probabilities
            probabilities_before = np.abs(state_before) ** 2
            probabilities_after = np.abs(state_after) ** 2
            if not np.allclose(probabilities_before, probabilities_after, atol=_ATOL):
                violations.append(
                    self._violation(
                        pass_, before, after, "outcome probabilities differ"
                    )
                )
        elif contract == "state":
            # relaxed-precondition rewrites promise fidelity, not exact
            # amplitudes: near-identity gates may be dropped by design
            if not _states_fidelity_equal(state_before, state_after):
                violations.append(
                    self._violation(
                        pass_,
                        before,
                        after,
                        "statevectors from |0...0> differ beyond the relaxed-"
                        "rewrite fidelity tolerance",
                    )
                )
        elif placement is None:
            if not _equal_up_to_phase(state_before, state_after):
                violations.append(
                    self._violation(
                        pass_,
                        before,
                        after,
                        "statevectors from |0...0> differ (up to global phase)",
                    )
                )
        else:
            gathered = state_after[_gather_indices(before.num_qubits, placement)]
            if abs(np.linalg.norm(gathered) - 1.0) > 1e-6 or not _equal_up_to_phase(
                state_before, gathered
            ):
                violations.append(
                    self._violation(
                        pass_,
                        before,
                        after,
                        "statevectors differ under the declared wire relabeling",
                    )
                )

        # identical seed + index-identical probability vector => identical
        # draws.  Under a wire relabeling the vector is permuted, so equal
        # distributions can still sample differently -- there the state
        # comparison plus the relabeled measure-map equality above already
        # prove outcome-distribution equality.
        if not violations and before_measures and placement is None:
            violations.extend(self._check_sampling(pass_, before, after))
        return violations

    def _check_sampling(self, pass_, before, after) -> list[ContractViolation]:
        """Fixed-seed sampling parity over the terminal-measurement path."""
        from repro.simulators.statevector import StatevectorSimulator

        shots = self.config.sample_shots
        counts_before = StatevectorSimulator(seed=QSAN_SAMPLE_SEED).run(before, shots)
        counts_after = StatevectorSimulator(seed=QSAN_SAMPLE_SEED).run(after, shots)
        if dict(counts_before) != dict(counts_after):
            return [
                self._violation(
                    pass_,
                    before,
                    after,
                    f"fixed-seed sampling diverged over {shots} shots",
                )
            ]
        return []

    def _check_fingerprint(
        self, pass_, contract, before, after, placement
    ) -> list[ContractViolation]:
        fingerprint_before = self._semantics(before, "fingerprint")
        fingerprint_after = self._semantics(after, "fingerprint")
        disagreement = _fingerprints_compatible(
            fingerprint_before, fingerprint_after, placement
        )
        if disagreement is not None:
            return [
                self._violation(
                    pass_,
                    before,
                    after,
                    f"tracker fingerprints prove different pure states on "
                    f"qubit {disagreement}",
                )
            ]
        return []

    # -- memoized semantic references ----------------------------------

    def _semantics(self, circuit: QuantumCircuit, tier: str):
        entry = self._memo.get(id(circuit))
        if entry is None or entry[0] is not circuit:
            entry = (circuit, {})
            self._memo[id(circuit)] = entry
        values = entry[1]
        if tier not in values:
            if tier == "unitary":
                from repro.simulators.unitary import circuit_unitary

                values[tier] = circuit_unitary(circuit)
            elif tier == "state":
                from repro.simulators.statevector import StatevectorSimulator

                values[tier] = StatevectorSimulator(fusion=True).statevector(
                    _without_measures(circuit)
                )
            else:
                values[tier] = pure_fingerprint(circuit)
        return values[tier]


# re-exported for introspection/tests; _unchanged is the structural
# comparison the scheduler itself uses
structurally_unchanged = _unchanged
