"""Idle-wire removal.

Transpiled circuits are device-wide (e.g. 53 qubits on Rochester) even when
only a handful of wires carry gates.  Simulating them naively allocates a
``2^53`` statevector; :func:`remove_idle_qubits` compacts the circuit onto
its active wires first.
"""

from __future__ import annotations

from repro.circuit.quantumcircuit import QuantumCircuit

__all__ = ["remove_idle_qubits"]


def remove_idle_qubits(circuit: QuantumCircuit) -> tuple[QuantumCircuit, dict[int, int]]:
    """Drop qubits no operation touches.

    Returns ``(compacted_circuit, mapping)`` where ``mapping`` sends old
    qubit indices to new ones.  Classical bits are preserved unchanged.
    """
    active = sorted({q for inst in circuit.data for q in inst.qubits})
    mapping = {old: new for new, old in enumerate(active)}
    compacted = QuantumCircuit(
        len(active), circuit.num_clbits, name=circuit.name
    )
    compacted.global_phase = circuit.global_phase
    for instruction in circuit.data:
        compacted.append(
            instruction.operation,
            tuple(mapping[q] for q in instruction.qubits),
            instruction.clbits,
        )
    return compacted, mapping
