"""OpenQASM 2.0 export and import.

Round-trips the gate set the transpiler emits (basis gates, the standard
library, SWAP/SWAPZ) so compiled circuits can be exchanged with other
toolchains.  ``swapz`` and ``annot`` have no OpenQASM equivalents: SWAPZ is
emitted through an inline ``gate`` definition (its two CNOTs), annotations
as structured comments that :func:`from_qasm` restores.
"""

from __future__ import annotations

import math
import re

from repro.circuit.quantumcircuit import QuantumCircuit

__all__ = ["to_qasm", "from_qasm"]

_SIMPLE = {
    "id", "x", "y", "z", "h", "s", "sdg", "t", "tdg", "sx",
    "cx", "cy", "cz", "ch", "swap", "ccx", "ccz", "cswap",
}
_PARAMETRIC = {
    "u1": 1, "u2": 2, "u3": 3, "rx": 1, "ry": 1, "rz": 1, "cp": 1,
    "crx": 1, "cry": 1, "crz": 1, "cu3": 3,
}

_HEADER = 'OPENQASM 2.0;\ninclude "qelib1.inc";\n'
_SWAPZ_DEF = "gate swapz a,b { cx b,a; cx a,b; }\n"


def _format_angle(value: float) -> str:
    """Emit angles as exact multiples of pi where possible."""
    for denominator in (1, 2, 3, 4, 6, 8, 16):
        for numerator in range(-16, 17):
            if numerator == 0:
                continue
            if abs(value - numerator * math.pi / denominator) < 1e-12:
                sign = "-" if numerator < 0 else ""
                num = abs(numerator)
                numerator_text = "pi" if num == 1 else f"{num}*pi"
                if denominator == 1:
                    return f"{sign}{numerator_text}"
                return f"{sign}{numerator_text}/{denominator}"
    if abs(value) < 1e-15:
        return "0"
    return repr(float(value))


def to_qasm(circuit: QuantumCircuit) -> str:
    """Serialise ``circuit`` to an OpenQASM 2.0 program string."""
    lines = [_HEADER.rstrip()]
    if any(inst.operation.name == "swapz" for inst in circuit.data):
        lines.append(_SWAPZ_DEF.rstrip())
    lines.append(f"qreg q[{max(circuit.num_qubits, 1)}];")
    if circuit.num_clbits:
        lines.append(f"creg c[{circuit.num_clbits}];")

    for instruction in circuit.data:
        operation = instruction.operation
        name = operation.name
        qargs = ",".join(f"q[{q}]" for q in instruction.qubits)
        if name == "measure":
            lines.append(
                f"measure q[{instruction.qubits[0]}] -> c[{instruction.clbits[0]}];"
            )
        elif name == "reset":
            lines.append(f"reset q[{instruction.qubits[0]}];")
        elif name == "barrier":
            lines.append(f"barrier {qargs};")
        elif name == "annot":
            theta, phi = operation.params[:2]
            lines.append(
                f"// ANNOT({_format_angle(theta)},{_format_angle(phi)}) "
                f"q[{instruction.qubits[0]}]"
            )
        elif name in _SIMPLE or name == "swapz":
            lines.append(f"{name} {qargs};")
        elif name in _PARAMETRIC:
            params = ",".join(_format_angle(p) for p in operation.params)
            lines.append(f"{name}({params}) {qargs};")
        else:
            raise ValueError(
                f"operation {name!r} has no OpenQASM 2 representation; "
                "unroll the circuit to basis gates first"
            )
    return "\n".join(lines) + "\n"


_INSTRUCTION_RE = re.compile(
    r"^(?P<name>[a-z_][a-z0-9_]*)\s*"
    r"(?:\((?P<params>[^)]*)\))?\s*"
    r"(?P<args>[^;]+);$"
)
_MEASURE_RE = re.compile(r"^measure\s+q\[(\d+)\]\s*->\s*c\[(\d+)\];$")
_ANNOT_RE = re.compile(r"^// ANNOT\(([^,]+),([^)]+)\)\s+q\[(\d+)\]$")


def _eval_angle(text: str) -> float:
    text = text.strip().replace("pi", repr(math.pi))
    if not re.fullmatch(r"[0-9eE\.\+\-\*/\(\) ]+", text):
        raise ValueError(f"unsupported angle expression {text!r}")
    return float(eval(text, {"__builtins__": {}}, {}))  # noqa: S307 - sanitised


def from_qasm(text: str) -> QuantumCircuit:
    """Parse an OpenQASM 2.0 program produced by :func:`to_qasm`.

    Supports the single ``q``/``c`` register layout, the gate set above,
    inline ``swapz`` definitions, and ANNOT comments.
    """
    num_qubits = num_clbits = 0
    body: list[str] = []
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith(("OPENQASM", "include", "gate ")):
            if line.startswith("// ANNOT"):
                body.append(line)
            continue
        match = re.match(r"^qreg\s+q\[(\d+)\];$", line)
        if match:
            num_qubits = int(match.group(1))
            continue
        match = re.match(r"^creg\s+c\[(\d+)\];$", line)
        if match:
            num_clbits = int(match.group(1))
            continue
        if line.startswith("//") and not line.startswith("// ANNOT"):
            continue
        body.append(line)

    circuit = QuantumCircuit(num_qubits, num_clbits)
    for line in body:
        annot = _ANNOT_RE.match(line)
        if annot:
            circuit.annotate(int(annot.group(3)), _eval_angle(annot.group(1)),
                             _eval_angle(annot.group(2)))
            continue
        measure = _MEASURE_RE.match(line)
        if measure:
            circuit.measure(int(measure.group(1)), int(measure.group(2)))
            continue
        match = _INSTRUCTION_RE.match(line)
        if not match:
            raise ValueError(f"cannot parse OpenQASM line {line!r}")
        name = match.group("name")
        params = [
            _eval_angle(p) for p in (match.group("params") or "").split(",") if p
        ]
        qubits = [int(q) for q in re.findall(r"q\[(\d+)\]", match.group("args"))]
        if name == "barrier":
            circuit.barrier(*qubits)
        elif name == "reset":
            circuit.reset(qubits[0])
        elif name in _SIMPLE or name == "swapz":
            getattr(circuit, name if name != "id" else "id")(*qubits)
        elif name in _PARAMETRIC:
            getattr(circuit, name)(*params, *qubits)
        else:
            raise ValueError(f"unsupported OpenQASM gate {name!r}")
    return circuit
