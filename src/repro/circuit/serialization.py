"""Compact, process-portable circuit (and target) payloads.

The :class:`~repro.transpiler.service.CompileService` ships circuits to
worker processes and optimized circuits back, each job envelope pairing a
circuit payload with a compact :class:`~repro.transpiler.target.Target`
payload (``Target.to_payload()`` / ``Target.from_payload()``).  Plain
``pickle`` of a :class:`~repro.circuit.quantumcircuit.QuantumCircuit`
works but is wasteful:
every gate object pickles its class closure, and memoized ``_definition``
sub-circuits multiply the payload size.  This module flattens a circuit to a
small tuple tree of primitives:

* distinct operations are serialized once into an operation table (standard
  gates reduce to ``(class_name, params, ctrl_state)`` specs; arbitrary
  unitaries keep their matrix; anything unknown falls back to the object
  itself, which the surrounding pickle handles);
* instructions reference the table by index, so the per-instruction cost is
  three small tuples;
* reconstruction shares one gate object per table entry, preserving the
  operation-identity sharing the DAG cache keys on.

Round-trips preserve structure exactly: wire counts, global phase, operation
names/parameters/control states, qubit and clbit arguments.
"""

from __future__ import annotations

from repro.circuit.instruction import Instruction
from repro.circuit.quantumcircuit import QuantumCircuit

__all__ = [
    "circuit_to_payload",
    "circuit_from_payload",
    "payload_fingerprints",
    "payload_param_slots",
    "payload_rebind",
    "PAYLOAD_VERSION",
]

PAYLOAD_VERSION = 1

#: Gate classes reconstructed as ``cls()``.
_NO_ARG = frozenset(
    {
        "IGate", "XGate", "YGate", "ZGate", "HGate", "SGate", "SdgGate",
        "TGate", "TdgGate", "SXGate",
        "SwapGate", "SwapZGate", "ISwapGate", "CSwapGate",
        "Measure", "Reset",
    }
)

#: Gate classes reconstructed as ``cls(*params)``.
_PARAM_ONLY = frozenset(
    {"U1Gate", "U2Gate", "U3Gate", "RXGate", "RYGate", "RZGate", "Annotation"}
)

#: Controlled gates reconstructed as ``cls(ctrl_state=...)``.
_CTRL_ONLY = frozenset({"CXGate", "CYGate", "CZGate", "CHGate", "CCXGate", "CCZGate"})

#: Controlled gates reconstructed as ``cls(*params, ctrl_state=...)``.
_PARAM_CTRL = frozenset({"CPhaseGate", "CRXGate", "CRYGate", "CRZGate", "CU3Gate"})


def _gate_classes():
    """Name -> class map of every registry-serializable operation."""
    import repro.gates as gates

    names = _NO_ARG | _PARAM_ONLY | _CTRL_ONLY | _PARAM_CTRL
    names |= {"MCU1Gate", "MCXGate", "MCZGate", "MCXVChainGate", "Barrier"}
    table = {name: getattr(gates, name) for name in names if hasattr(gates, name)}
    table["Annotation"] = gates.Annotation
    return table


_CLASSES = None


def _classes():
    global _CLASSES
    if _CLASSES is None:
        _CLASSES = _gate_classes()
    return _CLASSES


def _operation_spec(operation: Instruction):
    """Primitive spec of ``operation``, or ``None`` if not registry-backed.

    Every spec ends with the operation's label (usually ``None``) so
    labeled and unlabeled gates neither collide in the dedup table nor
    lose their label across the process boundary.
    """
    base = _base_spec(operation)
    if base is None:
        return None
    return (*base, operation.label)


def _base_spec(operation: Instruction):
    cls = type(operation).__name__
    params = tuple(
        float(p) for p in operation.params
        if isinstance(p, (int, float)) and not isinstance(p, bool)
    )
    if len(params) != len(operation.params):
        return None  # symbolic / matrix-valued parameters: fall back
    if cls in _NO_ARG:
        return (cls,)
    if cls == "Barrier":
        return (cls, operation.num_qubits)
    if cls in _PARAM_ONLY:
        return (cls, params)
    if cls in _CTRL_ONLY:
        return (cls, operation.ctrl_state)
    if cls in _PARAM_CTRL:
        return (cls, params, operation.ctrl_state)
    if cls in ("MCXGate", "MCZGate"):
        return (cls, operation.num_ctrl_qubits, operation.ctrl_state)
    if cls == "MCU1Gate":
        return (cls, params[0], operation.num_ctrl_qubits, operation.ctrl_state)
    if cls == "MCXVChainGate":
        return (cls, operation.num_ctrl_qubits)
    return None


def _build_operation(spec) -> Instruction:
    cls_name = spec[0]
    if cls_name == "unitary":
        from repro.gates import UnitaryGate

        return UnitaryGate(spec[1], label=spec[2])
    if cls_name == "raw":
        return spec[1]
    *spec, label = spec
    operation = _build_registry_operation(spec)
    if label is not None:
        operation.label = label
    return operation


def _build_registry_operation(spec) -> Instruction:
    cls_name = spec[0]
    cls = _classes()[cls_name]
    if cls_name in _NO_ARG:
        return cls()
    if cls_name == "Barrier":
        return cls(spec[1])
    if cls_name in _PARAM_ONLY:
        return cls(*spec[1])
    if cls_name in _CTRL_ONLY:
        return cls(ctrl_state=spec[1])
    if cls_name in _PARAM_CTRL:
        return cls(*spec[1], ctrl_state=spec[2])
    if cls_name in ("MCXGate", "MCZGate"):
        return cls(spec[1], ctrl_state=spec[2])
    if cls_name == "MCU1Gate":
        return cls(spec[1], spec[2], ctrl_state=spec[3])
    if cls_name == "MCXVChainGate":
        return cls(spec[1])
    raise ValueError(f"unknown operation spec {spec!r}")  # pragma: no cover


def circuit_to_payload(circuit: QuantumCircuit) -> tuple:
    """Flatten ``circuit`` into a compact picklable tuple tree."""
    from repro.gates import UnitaryGate

    table: list = []
    by_spec: dict = {}  # hashable spec -> table index
    by_id: dict[int, int] = {}  # operation identity -> table index
    data = []
    for instruction in circuit.data:
        operation = instruction.operation
        index = by_id.get(id(operation))
        if index is None:
            spec = _operation_spec(operation)
            if spec is not None:
                index = by_spec.get(spec)
                if index is None:
                    index = len(table)
                    table.append(spec)
                    by_spec[spec] = index
            elif isinstance(operation, UnitaryGate):
                index = len(table)
                table.append(("unitary", operation._matrix, operation.label))
            else:
                # exotic operation: let the surrounding pickle carry the
                # object (Instruction.__getstate__ keeps it lean)
                index = len(table)
                table.append(("raw", operation))
            by_id[id(operation)] = index
        data.append((index, instruction.qubits, instruction.clbits))
    return (
        PAYLOAD_VERSION,
        circuit.name,
        circuit.num_qubits,
        circuit.num_clbits,
        circuit.global_phase,
        tuple(table),
        tuple(data),
    )


# ---------------------------------------------------------------------------
# content fingerprints
#
# The result cache (repro.transpiler.result_cache) addresses compiled
# answers by circuit *content*.  Two fingerprints are derived from one
# payload walk:
#
# * the **exact key** -- per-instruction operation specs with every
#   parameter value included, plus wire counts and global phase; two
#   circuits with the same exact key compile to bit-identical outputs
#   (for the same target/options), so the key can address the answer.
# * the **template key** -- the same walk with every rotation-angle
#   parameter of the standard parametric gates replaced by a positional
#   placeholder, the angles extracted into a parameter vector (instruction
#   order, global phase appended last).  "Same ansatz, different bound
#   parameters" collapses onto one template key, which is what lets the
#   cache serve near-duplicate traffic by re-binding parameters instead of
#   recompiling.
#
# Circuit *names* deliberately take part in neither key: content
# addressing must not fragment on labels.

#: Parametric gate classes whose float params are rotation angles --
#: exactly the ones the template fingerprint canonicalizes out.
#: ``Annotation`` params are semantic markers, not angles, and stay put.
ANGLE_GATE_CLASSES = frozenset(
    {
        "U1Gate", "U2Gate", "U3Gate", "RXGate", "RYGate", "RZGate",
        "CPhaseGate", "CRXGate", "CRYGate", "CRZGate", "CU3Gate",
        "MCU1Gate",
    }
)

#: Placeholder standing in for a stripped angle inside template specs.
_ANGLE_SLOT = "θ"


def _spec_angles(spec: tuple):
    """``(hashable_exact, hashable_template, angles)`` of one table entry.

    Returns ``None`` for entries with no canonical content form ("raw"
    operations carried by pickle) -- circuits holding those cannot be
    content-addressed.
    """
    cls = spec[0]
    if cls == "raw":
        return None
    if cls == "unitary":
        matrix = spec[1]
        body = ("unitary", matrix.shape, matrix.dtype.str, matrix.tobytes())
        return (body, body, ())
    if cls not in ANGLE_GATE_CLASSES:
        return (spec, spec, ())
    if cls == "MCU1Gate":
        # (cls, angle, num_ctrl_qubits, ctrl_state, label)
        template = (cls, _ANGLE_SLOT, *spec[2:])
        return (spec, template, (spec[1],))
    # _PARAM_ONLY: (cls, params, label); _PARAM_CTRL: (cls, params, cs, label)
    params = spec[1]
    template = (cls, (_ANGLE_SLOT, len(params)), *spec[2:])
    return (spec, template, tuple(params))


def payload_fingerprints(payload: tuple):
    """``(exact_key, template_key, params)`` content keys of a payload.

    ``exact_key`` and ``template_key`` are hashable tuples; ``params`` is
    the tuple of extracted rotation angles in instruction order with the
    circuit's global phase appended as the final slot (so phase rides the
    same re-binding machinery as any other angle).  Returns ``None`` when
    the circuit carries operations with no canonical content form.
    """
    version, _name, num_qubits, num_clbits, phase, table, data = payload
    per_entry = []
    for spec in table:
        entry = _spec_angles(spec)
        if entry is None:
            return None
        per_entry.append(entry)
    exact_body = []
    template_body = []
    params: list[float] = []
    for index, qubits, clbits in data:
        exact_spec, template_spec, angles = per_entry[index]
        exact_body.append((exact_spec, tuple(qubits), tuple(clbits)))
        template_body.append((template_spec, tuple(qubits), tuple(clbits)))
        params.extend(angles)
    params.append(float(phase))
    exact_key = (version, num_qubits, num_clbits, float(phase), tuple(exact_body))
    template_key = (version, num_qubits, num_clbits, tuple(template_body))
    return exact_key, template_key, tuple(params)


def payload_param_slots(payload: tuple):
    """Gate-level structure of a payload's angle-slot vector.

    Returns ``[(gate_class, start, count), ...]`` -- one entry per
    angle-bearing instruction occurrence, in the same order
    :func:`payload_fingerprints` extracts the slots (the trailing global
    phase slot is not listed; callers know it is last).  The result-cache
    re-binding machinery uses this to fit *gate-level* relations (an
    Euler-merged ``u3`` is one unit of three coupled angles, not three
    independent slots).  Returns ``None`` for payloads with no canonical
    content form.
    """
    _version, _name, _nq, _nc, _phase, table, data = payload
    per_entry = []
    for spec in table:
        entry = _spec_angles(spec)
        if entry is None:
            return None
        per_entry.append(entry)
    groups = []
    cursor = 0
    for index, _qubits, _clbits in data:
        count = len(per_entry[index][2])
        if count:
            groups.append((table[index][0], cursor, count))
            cursor += count
    return groups


def payload_rebind(payload: tuple, params) -> tuple:
    """A copy of ``payload`` with its angle slots bound to ``params``.

    ``params`` follows the :func:`payload_fingerprints` vector layout:
    one value per rotation angle in instruction order, global phase last.
    The operation table is rebuilt (with de-duplication) because two
    instructions sharing one table entry may bind to different values.
    """
    version, name, num_qubits, num_clbits, _phase, table, data = payload
    params = list(params)
    phase = params.pop()
    table_angles = [_spec_angles(spec) for spec in table]
    new_table: list = []
    by_spec: dict = {}  # rebound (hashable) spec -> new table index
    by_old: dict = {}  # untouched old table index -> new table index
    new_data = []
    cursor = 0
    for index, qubits, clbits in data:
        entry = table_angles[index]
        if entry is not None and entry[2]:
            count = len(entry[2])
            values = tuple(params[cursor : cursor + count])
            cursor += count
            spec = table[index]
            cls = spec[0]
            if cls == "MCU1Gate":
                spec = (cls, values[0], *spec[2:])
            else:
                spec = (cls, values, *spec[2:])
            new_index = by_spec.get(spec)
            if new_index is None:
                new_index = len(new_table)
                new_table.append(spec)
                by_spec[spec] = new_index
        else:
            # angle-free entry: carried over as-is (specs may hold
            # unhashable leaves -- unitary matrices -- so dedup by the
            # old index, which the source payload already de-duplicated)
            new_index = by_old.get(index)
            if new_index is None:
                new_index = len(new_table)
                new_table.append(table[index])
                by_old[index] = new_index
        new_data.append((new_index, qubits, clbits))
    if cursor != len(params):
        raise ValueError(
            f"payload_rebind got {len(params) + 1} values for "
            f"{cursor + 1} angle slots"
        )
    return (
        version,
        name,
        num_qubits,
        num_clbits,
        phase,
        tuple(new_table),
        tuple(new_data),
    )


def circuit_from_payload(payload: tuple) -> QuantumCircuit:
    """Rebuild the :class:`QuantumCircuit` a payload describes."""
    from repro.circuit.quantumcircuit import CircuitInstruction

    version, name, num_qubits, num_clbits, phase, table, data = payload
    if version != PAYLOAD_VERSION:
        raise ValueError(f"unsupported circuit payload version {version}")
    operations = [_build_operation(spec) for spec in table]
    circuit = QuantumCircuit(num_qubits, num_clbits, name=name, global_phase=phase)
    append = circuit.data.append
    for index, qubits, clbits in data:
        append(CircuitInstruction(operations[index], tuple(qubits), tuple(clbits)))
    return circuit
