"""Compact, process-portable circuit (and target) payloads.

The :class:`~repro.transpiler.service.CompileService` ships circuits to
worker processes and optimized circuits back, each job envelope pairing a
circuit payload with a compact :class:`~repro.transpiler.target.Target`
payload (``Target.to_payload()`` / ``Target.from_payload()``).  Plain
``pickle`` of a :class:`~repro.circuit.quantumcircuit.QuantumCircuit`
works but is wasteful:
every gate object pickles its class closure, and memoized ``_definition``
sub-circuits multiply the payload size.  This module flattens a circuit to a
small tuple tree of primitives:

* distinct operations are serialized once into an operation table (standard
  gates reduce to ``(class_name, params, ctrl_state)`` specs; arbitrary
  unitaries keep their matrix; anything unknown falls back to the object
  itself, which the surrounding pickle handles);
* instructions reference the table by index, so the per-instruction cost is
  three small tuples;
* reconstruction shares one gate object per table entry, preserving the
  operation-identity sharing the DAG cache keys on.

Round-trips preserve structure exactly: wire counts, global phase, operation
names/parameters/control states, qubit and clbit arguments.
"""

from __future__ import annotations

from repro.circuit.instruction import Instruction
from repro.circuit.quantumcircuit import QuantumCircuit

__all__ = ["circuit_to_payload", "circuit_from_payload", "PAYLOAD_VERSION"]

PAYLOAD_VERSION = 1

#: Gate classes reconstructed as ``cls()``.
_NO_ARG = frozenset(
    {
        "IGate", "XGate", "YGate", "ZGate", "HGate", "SGate", "SdgGate",
        "TGate", "TdgGate", "SXGate",
        "SwapGate", "SwapZGate", "ISwapGate", "CSwapGate",
        "Measure", "Reset",
    }
)

#: Gate classes reconstructed as ``cls(*params)``.
_PARAM_ONLY = frozenset(
    {"U1Gate", "U2Gate", "U3Gate", "RXGate", "RYGate", "RZGate", "Annotation"}
)

#: Controlled gates reconstructed as ``cls(ctrl_state=...)``.
_CTRL_ONLY = frozenset({"CXGate", "CYGate", "CZGate", "CHGate", "CCXGate", "CCZGate"})

#: Controlled gates reconstructed as ``cls(*params, ctrl_state=...)``.
_PARAM_CTRL = frozenset({"CPhaseGate", "CRXGate", "CRYGate", "CRZGate", "CU3Gate"})


def _gate_classes():
    """Name -> class map of every registry-serializable operation."""
    import repro.gates as gates

    names = _NO_ARG | _PARAM_ONLY | _CTRL_ONLY | _PARAM_CTRL
    names |= {"MCU1Gate", "MCXGate", "MCZGate", "MCXVChainGate", "Barrier"}
    table = {name: getattr(gates, name) for name in names if hasattr(gates, name)}
    table["Annotation"] = gates.Annotation
    return table


_CLASSES = None


def _classes():
    global _CLASSES
    if _CLASSES is None:
        _CLASSES = _gate_classes()
    return _CLASSES


def _operation_spec(operation: Instruction):
    """Primitive spec of ``operation``, or ``None`` if not registry-backed.

    Every spec ends with the operation's label (usually ``None``) so
    labeled and unlabeled gates neither collide in the dedup table nor
    lose their label across the process boundary.
    """
    base = _base_spec(operation)
    if base is None:
        return None
    return (*base, operation.label)


def _base_spec(operation: Instruction):
    cls = type(operation).__name__
    params = tuple(
        float(p) for p in operation.params
        if isinstance(p, (int, float)) and not isinstance(p, bool)
    )
    if len(params) != len(operation.params):
        return None  # symbolic / matrix-valued parameters: fall back
    if cls in _NO_ARG:
        return (cls,)
    if cls == "Barrier":
        return (cls, operation.num_qubits)
    if cls in _PARAM_ONLY:
        return (cls, params)
    if cls in _CTRL_ONLY:
        return (cls, operation.ctrl_state)
    if cls in _PARAM_CTRL:
        return (cls, params, operation.ctrl_state)
    if cls in ("MCXGate", "MCZGate"):
        return (cls, operation.num_ctrl_qubits, operation.ctrl_state)
    if cls == "MCU1Gate":
        return (cls, params[0], operation.num_ctrl_qubits, operation.ctrl_state)
    if cls == "MCXVChainGate":
        return (cls, operation.num_ctrl_qubits)
    return None


def _build_operation(spec) -> Instruction:
    cls_name = spec[0]
    if cls_name == "unitary":
        from repro.gates import UnitaryGate

        return UnitaryGate(spec[1], label=spec[2])
    if cls_name == "raw":
        return spec[1]
    *spec, label = spec
    operation = _build_registry_operation(spec)
    if label is not None:
        operation.label = label
    return operation


def _build_registry_operation(spec) -> Instruction:
    cls_name = spec[0]
    cls = _classes()[cls_name]
    if cls_name in _NO_ARG:
        return cls()
    if cls_name == "Barrier":
        return cls(spec[1])
    if cls_name in _PARAM_ONLY:
        return cls(*spec[1])
    if cls_name in _CTRL_ONLY:
        return cls(ctrl_state=spec[1])
    if cls_name in _PARAM_CTRL:
        return cls(*spec[1], ctrl_state=spec[2])
    if cls_name in ("MCXGate", "MCZGate"):
        return cls(spec[1], ctrl_state=spec[2])
    if cls_name == "MCU1Gate":
        return cls(spec[1], spec[2], ctrl_state=spec[3])
    if cls_name == "MCXVChainGate":
        return cls(spec[1])
    raise ValueError(f"unknown operation spec {spec!r}")  # pragma: no cover


def circuit_to_payload(circuit: QuantumCircuit) -> tuple:
    """Flatten ``circuit`` into a compact picklable tuple tree."""
    from repro.gates import UnitaryGate

    table: list = []
    by_spec: dict = {}  # hashable spec -> table index
    by_id: dict[int, int] = {}  # operation identity -> table index
    data = []
    for instruction in circuit.data:
        operation = instruction.operation
        index = by_id.get(id(operation))
        if index is None:
            spec = _operation_spec(operation)
            if spec is not None:
                index = by_spec.get(spec)
                if index is None:
                    index = len(table)
                    table.append(spec)
                    by_spec[spec] = index
            elif isinstance(operation, UnitaryGate):
                index = len(table)
                table.append(("unitary", operation._matrix, operation.label))
            else:
                # exotic operation: let the surrounding pickle carry the
                # object (Instruction.__getstate__ keeps it lean)
                index = len(table)
                table.append(("raw", operation))
            by_id[id(operation)] = index
        data.append((index, instruction.qubits, instruction.clbits))
    return (
        PAYLOAD_VERSION,
        circuit.name,
        circuit.num_qubits,
        circuit.num_clbits,
        circuit.global_phase,
        tuple(table),
        tuple(data),
    )


def circuit_from_payload(payload: tuple) -> QuantumCircuit:
    """Rebuild the :class:`QuantumCircuit` a payload describes."""
    from repro.circuit.quantumcircuit import CircuitInstruction

    version, name, num_qubits, num_clbits, phase, table, data = payload
    if version != PAYLOAD_VERSION:
        raise ValueError(f"unsupported circuit payload version {version}")
    operations = [_build_operation(spec) for spec in table]
    circuit = QuantumCircuit(num_qubits, num_clbits, name=name, global_phase=phase)
    append = circuit.data.append
    for index, qubits, clbits in data:
        append(CircuitInstruction(operations[index], tuple(qubits), tuple(clbits)))
    return circuit
