"""Converters between the linear circuit form and the DAG form."""

from __future__ import annotations

from repro.circuit.dag import DAGCircuit
from repro.circuit.quantumcircuit import QuantumCircuit

__all__ = ["circuit_to_dag", "dag_to_circuit"]


def circuit_to_dag(circuit: QuantumCircuit) -> DAGCircuit:
    """Build the dependency DAG of ``circuit``."""
    dag = DAGCircuit(circuit.num_qubits, circuit.num_clbits, name=circuit.name)
    dag.global_phase = circuit.global_phase
    for instruction in circuit.data:
        dag.apply_operation_back(
            instruction.operation, instruction.qubits, instruction.clbits
        )
    return dag


def dag_to_circuit(dag: DAGCircuit) -> QuantumCircuit:
    """Linearise a DAG back into a circuit (deterministic topological order)."""
    circuit = QuantumCircuit(dag.num_qubits, dag.num_clbits, name=dag.name)
    circuit.global_phase = dag.global_phase
    for node in dag.topological_op_nodes():
        circuit.append(node.operation, node.qubits, node.clbits)
    return circuit
