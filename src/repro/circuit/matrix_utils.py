"""Helpers for assembling full-circuit unitaries from gate matrices.

Only used for small circuits (tests, two-qubit block consolidation); the
statevector simulator has its own tensor-contraction path.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["embed_gate"]


def embed_gate(
    gate_matrix: np.ndarray, qargs: Sequence[int], num_qubits: int
) -> np.ndarray:
    """Embed a k-qubit gate acting on ``qargs`` into an n-qubit unitary.

    Little-endian: bit ``j`` of the gate's own index corresponds to
    ``qargs[j]``; bit ``q`` of the full index corresponds to circuit qubit
    ``q``.
    """
    k = len(qargs)
    if gate_matrix.shape != (2**k, 2**k):
        raise ValueError(
            f"gate matrix shape {gate_matrix.shape} does not match {k} qubits"
        )
    if len(set(qargs)) != k:
        raise ValueError(f"duplicate qubits in {qargs}")
    if any(q < 0 or q >= num_qubits for q in qargs):
        raise ValueError(f"qubit arguments {qargs} out of range for {num_qubits} qubits")

    rest = [q for q in range(num_qubits) if q not in qargs]
    full = np.zeros((2**num_qubits, 2**num_qubits), dtype=complex)
    for rest_assignment in range(2 ** len(rest)):
        base = 0
        for j, wire in enumerate(rest):
            if (rest_assignment >> j) & 1:
                base |= 1 << wire
        rows = np.empty(2**k, dtype=np.intp)
        for local in range(2**k):
            index = base
            for j, wire in enumerate(qargs):
                if (local >> j) & 1:
                    index |= 1 << wire
            rows[local] = index
        full[np.ix_(rows, rows)] = gate_matrix
    return full
