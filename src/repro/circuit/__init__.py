"""Quantum circuit intermediate representation.

The IR mirrors the layered design of production quantum compilers:

* :class:`~repro.circuit.instruction.Instruction` /
  :class:`~repro.circuit.instruction.Gate` -- operations, optionally with a
  ``definition`` sub-circuit (used by the unroller);
* :class:`~repro.circuit.register.QuantumRegister` /
  :class:`~repro.circuit.register.ClassicalRegister` -- named wire groups;
* :class:`~repro.circuit.quantumcircuit.QuantumCircuit` -- the builder API
  programs are written against (qubits are plain integer wire indices);
* :class:`~repro.circuit.dag.DAGCircuit` -- the dependency-graph form the
  transpiler passes operate on.

Matrix conventions are little-endian throughout: bit ``k`` of a state/matrix
index corresponds to the ``k``-th qubit argument of a gate, and to qubit
``k`` of a circuit.
"""

from repro.circuit.instruction import Instruction, Gate, ControlledGate
from repro.circuit.register import QuantumRegister, ClassicalRegister
from repro.circuit.quantumcircuit import QuantumCircuit, CircuitInstruction
from repro.circuit.dag import DAGCircuit, DAGNode
from repro.circuit.converters import circuit_to_dag, dag_to_circuit
from repro.circuit.compact import remove_idle_qubits
from repro.circuit.qasm import to_qasm, from_qasm
from repro.circuit.serialization import circuit_from_payload, circuit_to_payload

__all__ = [
    "Instruction",
    "Gate",
    "ControlledGate",
    "QuantumRegister",
    "ClassicalRegister",
    "QuantumCircuit",
    "CircuitInstruction",
    "DAGCircuit",
    "DAGNode",
    "circuit_to_dag",
    "dag_to_circuit",
    "remove_idle_qubits",
    "to_qasm",
    "from_qasm",
    "circuit_to_payload",
    "circuit_from_payload",
]
