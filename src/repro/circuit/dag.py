"""Directed-acyclic-graph circuit representation.

Transpiler passes that need dependency information (routing layers, block
collection, commutation analysis, one-qubit run merging) operate on
:class:`DAGCircuit`.  Wires are ``("q", i)`` or ``("c", i)`` tuples; each
wire threads from an input boundary node through the operation nodes to an
output boundary node, exactly as in production transpilers.

Node identifiers are insertion-ordered integers, which makes
:meth:`topological_op_nodes` deterministic (lexicographic topological sort
keyed on the id) -- important for reproducible benchmark medians.
"""

from __future__ import annotations

import itertools
from collections import Counter
from typing import Iterator

import networkx as nx

from repro.circuit.instruction import Instruction

__all__ = ["DAGCircuit", "DAGNode"]

Wire = tuple[str, int]


class DAGNode:
    """A node in the circuit DAG: an input/output boundary or an operation."""

    __slots__ = ("node_id", "type", "wire", "operation", "qubits", "clbits")

    def __init__(
        self,
        node_id: int,
        node_type: str,
        wire: Wire | None = None,
        operation: Instruction | None = None,
        qubits: tuple[int, ...] = (),
        clbits: tuple[int, ...] = (),
    ):
        self.node_id = node_id
        self.type = node_type  # 'in' | 'out' | 'op'
        self.wire = wire
        self.operation = operation
        self.qubits = qubits
        self.clbits = clbits

    @property
    def name(self) -> str | None:
        return self.operation.name if self.operation is not None else None

    def is_op(self) -> bool:
        return self.type == "op"

    def wires(self) -> list[Wire]:
        if self.type != "op":
            return [self.wire] if self.wire is not None else []
        return [("q", q) for q in self.qubits] + [("c", c) for c in self.clbits]

    def __repr__(self) -> str:
        if self.type == "op":
            return f"<DAGNode {self.node_id} op={self.name} q={self.qubits}>"
        return f"<DAGNode {self.node_id} {self.type} wire={self.wire}>"


class DAGCircuit:
    """A quantum circuit as an operation dependency graph."""

    def __init__(self, num_qubits: int, num_clbits: int = 0, name: str | None = None):
        self.name = name or "dag"
        self.num_qubits = num_qubits
        self.num_clbits = num_clbits
        self.global_phase = 0.0
        self._graph = nx.MultiDiGraph()
        self._nodes: dict[int, DAGNode] = {}
        self._counter = itertools.count()
        self.input_map: dict[Wire, int] = {}
        self.output_map: dict[Wire, int] = {}
        for wire in self.wires():
            in_node = self._new_node("in", wire=wire)
            out_node = self._new_node("out", wire=wire)
            self.input_map[wire] = in_node.node_id
            self.output_map[wire] = out_node.node_id
            self._graph.add_edge(in_node.node_id, out_node.node_id, wire=wire)

    # ------------------------------------------------------------------

    def wires(self) -> list[Wire]:
        return [("q", q) for q in range(self.num_qubits)] + [
            ("c", c) for c in range(self.num_clbits)
        ]

    def _new_node(self, node_type: str, **kwargs) -> DAGNode:
        node = DAGNode(next(self._counter), node_type, **kwargs)
        self._nodes[node.node_id] = node
        self._graph.add_node(node.node_id)
        return node

    def node(self, node_id: int) -> DAGNode:
        return self._nodes[node_id]

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def apply_operation_back(
        self,
        operation: Instruction,
        qubits: tuple[int, ...],
        clbits: tuple[int, ...] = (),
    ) -> DAGNode:
        """Append an operation at the end of the DAG."""
        qubits = tuple(qubits)
        clbits = tuple(clbits)
        node = self._new_node("op", operation=operation, qubits=qubits, clbits=clbits)
        for wire in node.wires():
            out_id = self.output_map[wire]
            # the unique current edge into the output boundary on this wire
            predecessors = [
                (source, key)
                for source, _, key, data in self._graph.in_edges(
                    out_id, keys=True, data=True
                )
                if data["wire"] == wire
            ]
            if len(predecessors) != 1:
                raise RuntimeError(f"corrupt wire {wire}: {predecessors}")
            source, key = predecessors[0]
            self._graph.remove_edge(source, out_id, key)
            self._graph.add_edge(source, node.node_id, wire=wire)
            self._graph.add_edge(node.node_id, out_id, wire=wire)
        return node

    def remove_op_node(self, node: DAGNode | int) -> None:
        """Remove an operation node, reconnecting each wire across it."""
        node_id = node.node_id if isinstance(node, DAGNode) else node
        dag_node = self._nodes[node_id]
        if not dag_node.is_op():
            raise ValueError("can only remove op nodes")
        for wire in dag_node.wires():
            sources = [
                source
                for source, _, data in self._graph.in_edges(node_id, data=True)
                if data["wire"] == wire
            ]
            targets = [
                target
                for _, target, data in self._graph.out_edges(node_id, data=True)
                if data["wire"] == wire
            ]
            if len(sources) != 1 or len(targets) != 1:
                raise RuntimeError(f"corrupt wire {wire} at node {node_id}")
            self._graph.add_edge(sources[0], targets[0], wire=wire)
        self._graph.remove_node(node_id)
        del self._nodes[node_id]

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def op_nodes(self, name: str | None = None) -> list[DAGNode]:
        nodes = [n for n in self._nodes.values() if n.is_op()]
        if name is not None:
            nodes = [n for n in nodes if n.name == name]
        return nodes

    def topological_op_nodes(self) -> Iterator[DAGNode]:
        """Op nodes in a deterministic topological order."""
        order = nx.lexicographical_topological_sort(self._graph, key=lambda nid: nid)
        for node_id in order:
            node = self._nodes[node_id]
            if node.is_op():
                yield node

    def successors(self, node: DAGNode) -> list[DAGNode]:
        return [self._nodes[i] for i in self._graph.successors(node.node_id)]

    def predecessors(self, node: DAGNode) -> list[DAGNode]:
        return [self._nodes[i] for i in self._graph.predecessors(node.node_id)]

    def wire_successor(self, node: DAGNode, wire: Wire) -> DAGNode:
        """The next node on ``wire`` after ``node``."""
        for _, target, data in self._graph.out_edges(node.node_id, data=True):
            if data["wire"] == wire:
                return self._nodes[target]
        raise ValueError(f"wire {wire} does not pass through node {node.node_id}")

    def wire_predecessor(self, node: DAGNode, wire: Wire) -> DAGNode:
        for source, _, data in self._graph.in_edges(node.node_id, data=True):
            if data["wire"] == wire:
                return self._nodes[source]
        raise ValueError(f"wire {wire} does not pass through node {node.node_id}")

    def count_ops(self) -> dict[str, int]:
        counts = Counter(n.name for n in self._nodes.values() if n.is_op())
        return dict(counts.most_common())

    def size(self) -> int:
        return sum(
            1
            for n in self._nodes.values()
            if n.is_op() and not n.operation.is_directive
        )

    def depth(self) -> int:
        """Longest path in operation count (directives excluded)."""
        lengths: dict[int, int] = {}
        for node_id in nx.topological_sort(self._graph):
            node = self._nodes[node_id]
            incoming = [
                lengths[source] for source in self._graph.predecessors(node_id)
            ]
            best = max(incoming, default=0)
            weight = 1 if node.is_op() and not node.operation.is_directive else 0
            lengths[node_id] = best + weight
        return max(lengths.values(), default=0)

    # ------------------------------------------------------------------
    # structured traversals used by passes
    # ------------------------------------------------------------------

    def layers(self) -> Iterator[list[DAGNode]]:
        """Yield maximal front layers of simultaneously-applicable ops."""
        in_degree: dict[int, int] = {}
        ready: list[int] = []
        for node_id in self._graph.nodes:
            node = self._nodes[node_id]
            degree = self._graph.in_degree(node_id)
            in_degree[node_id] = degree
            if degree == 0:
                ready.append(node_id)
        while ready:
            layer_ops: list[DAGNode] = []
            next_ready: list[int] = []
            for node_id in sorted(ready):
                node = self._nodes[node_id]
                if node.is_op():
                    layer_ops.append(node)
                for successor in self._graph.successors(node_id):
                    in_degree[successor] -= self._graph.number_of_edges(
                        node_id, successor
                    )
                    if in_degree[successor] == 0:
                        next_ready.append(successor)
            if layer_ops:
                yield layer_ops
            ready = next_ready

    def collect_1q_runs(self) -> list[list[DAGNode]]:
        """Maximal runs of single-qubit gates on the same wire."""
        runs: list[list[DAGNode]] = []
        seen: set[int] = set()

        def is_1q_gate(node: DAGNode) -> bool:
            return (
                node.is_op()
                and node.operation.is_gate()
                and node.operation.num_qubits == 1
                and not node.operation.is_directive
            )

        for node in self.topological_op_nodes():
            if node.node_id in seen or not is_1q_gate(node):
                continue
            wire = ("q", node.qubits[0])
            run = [node]
            seen.add(node.node_id)
            current = node
            while True:
                nxt = self.wire_successor(current, wire)
                if not is_1q_gate(nxt):
                    break
                run.append(nxt)
                seen.add(nxt.node_id)
                current = nxt
            runs.append(run)
        return runs

    def front_layer(self) -> list[DAGNode]:
        """Op nodes whose quantum-wire predecessors are all input boundaries.

        This is the working set of the routing pass: the gates that could be
        executed right now.
        """
        front = []
        for node in self.topological_op_nodes():
            if all(
                self.wire_predecessor(node, wire).type == "in"
                for wire in node.wires()
            ):
                front.append(node)
        return front
