"""Operation classes carried by circuits.

``Instruction`` is the base class for anything that can appear in a circuit
(gates, measurements, resets, barriers, annotations).  ``Gate`` adds a
unitary matrix.  ``ControlledGate`` adds control qubits with an arbitrary
control state (open/closed controls, paper Appendix C).

An instruction may carry a *definition*: a sub-circuit over
``num_qubits + num_clbits`` local wires that implements it in terms of more
primitive operations.  The transpiler's unroller expands definitions until
only backend basis gates remain.
"""

from __future__ import annotations

import copy as _copy
from typing import TYPE_CHECKING, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.circuit.quantumcircuit import QuantumCircuit

__all__ = ["Instruction", "Gate", "ControlledGate"]

_STANDARD_MATRIX_LOOKUP = None


def _standard_matrix(name: str):
    """Shared immutable matrix of a fixed standard gate, or ``None``.

    Resolved lazily because :mod:`repro.gates.matrices` sits above this
    module in the import graph.
    """
    global _STANDARD_MATRIX_LOOKUP
    if _STANDARD_MATRIX_LOOKUP is None:
        from repro.gates.matrices import standard_gate_matrix

        _STANDARD_MATRIX_LOOKUP = standard_gate_matrix
    return _STANDARD_MATRIX_LOOKUP(name)


class Instruction:
    """A generic circuit operation.

    Attributes:
        name: lowercase mnemonic (``"cx"``, ``"measure"``, ...).
        num_qubits: number of qubit arguments.
        num_clbits: number of classical-bit arguments.
        params: numeric parameters (rotation angles etc.).
        label: optional display label.
    """

    def __init__(
        self,
        name: str,
        num_qubits: int,
        num_clbits: int = 0,
        params: Sequence[float] | None = None,
        label: str | None = None,
    ):
        self.name = name
        self.num_qubits = int(num_qubits)
        self.num_clbits = int(num_clbits)
        self.params = list(params) if params is not None else []
        self.label = label
        self._definition: "QuantumCircuit | None" = None

    # -- definition -------------------------------------------------------

    def _define(self) -> "QuantumCircuit | None":
        """Build the definition sub-circuit.  Subclasses override this."""
        return None

    @property
    def definition(self) -> "QuantumCircuit | None":
        """Sub-circuit implementing this operation, or ``None`` if primitive."""
        if self._definition is None:
            self._definition = self._define()
        return self._definition

    # -- behaviour queries --------------------------------------------------

    def is_gate(self) -> bool:
        return isinstance(self, Gate)

    @property
    def is_directive(self) -> bool:
        """Directives (barriers, annotations) do not affect the quantum state."""
        return False

    # -- transformation -----------------------------------------------------

    def inverse(self) -> "Instruction":
        """Return the inverse operation.

        The default implementation inverts the definition circuit; primitive
        non-unitary instructions (measure, reset) raise.
        """
        defn = self.definition
        if defn is None:
            raise ValueError(f"cannot invert primitive instruction {self.name!r}")
        inverse_defn = defn.inverse()
        inverse_gate = Gate(
            name=f"{self.name}_dg",
            num_qubits=self.num_qubits,
            params=list(self.params),
        )
        inverse_gate._definition = inverse_defn
        return inverse_gate

    def copy(self) -> "Instruction":
        return _copy.deepcopy(self)

    def __getstate__(self):
        """Drop the memoized definition when the class can rebuild it.

        Definitions are derived data for every class that overrides
        :meth:`_define`; stripping them keeps pickles (and the process-pool
        payloads of :mod:`repro.circuit.serialization`) small.  Plain
        :class:`Gate`/:class:`Instruction` objects whose ``_definition`` was
        assigned directly (e.g. by :meth:`inverse`) keep it -- for them it
        is the only record of the operation's semantics.
        """
        state = self.__dict__.copy()
        if (
            state.get("_definition") is not None
            and type(self)._define is not Instruction._define
        ):
            state["_definition"] = None
        return state

    # -- comparison / display ------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Instruction):
            return NotImplemented
        if self.name != other.name or self.num_qubits != other.num_qubits:
            return False
        if len(self.params) != len(other.params):
            return False
        return all(
            abs(complex(a) - complex(b)) < 1e-10
            for a, b in zip(self.params, other.params)
        )

    def __hash__(self):  # params are floats; hash on structure only
        return hash((self.name, self.num_qubits, self.num_clbits, len(self.params)))

    def __repr__(self) -> str:
        params = ", ".join(f"{p:.6g}" if isinstance(p, float) else repr(p) for p in self.params)
        return f"{type(self).__name__}({self.name!r}{', ' + params if params else ''})"


class Gate(Instruction):
    """A unitary operation."""

    def __init__(
        self,
        name: str,
        num_qubits: int,
        params: Sequence[float] | None = None,
        label: str | None = None,
    ):
        super().__init__(name, num_qubits, 0, params, label)

    def to_matrix(self) -> np.ndarray:
        """Unitary matrix, little-endian in the gate's qubit arguments.

        Fixed standard gates return a *shared, read-only* array (see
        :mod:`repro.gates.matrices`); callers must not mutate the result
        -- take a ``.copy()`` first.  Falls back to multiplying out the
        definition circuit.
        """
        defn = self.definition
        if defn is None:
            raise NotImplementedError(f"gate {self.name!r} defines no matrix")
        return defn.to_matrix()

    def inverse(self) -> "Gate":
        defn = self.definition
        if defn is not None:
            inverse_gate = Gate(
                name=f"{self.name}_dg", num_qubits=self.num_qubits, params=list(self.params)
            )
            inverse_gate._definition = defn.inverse()
            return inverse_gate
        # primitive gate without definition: invert through the matrix
        from repro.gates.unitary import UnitaryGate

        return UnitaryGate(self.to_matrix().conj().T, label=f"{self.name}_dg")

    def control(self, num_ctrl_qubits: int = 1, ctrl_state: int | None = None) -> "ControlledGate":
        """Return the controlled version of this gate."""
        return ControlledGate(
            name="c" * num_ctrl_qubits + self.name,
            num_ctrl_qubits=num_ctrl_qubits,
            base_gate=self,
            ctrl_state=ctrl_state,
        )


class ControlledGate(Gate):
    """A gate activated when control qubits match ``ctrl_state``.

    Qubit argument order is ``controls + base-gate qubits``; control bit
    ``i`` of ``ctrl_state`` corresponds to control argument ``i`` (so the
    default all-ones state gives conventional closed controls).
    """

    def __init__(
        self,
        name: str,
        num_ctrl_qubits: int,
        base_gate: Gate,
        ctrl_state: int | None = None,
        label: str | None = None,
    ):
        super().__init__(
            name,
            num_ctrl_qubits + base_gate.num_qubits,
            params=list(base_gate.params),
            label=label,
        )
        self.num_ctrl_qubits = int(num_ctrl_qubits)
        self.base_gate = base_gate
        if ctrl_state is None:
            ctrl_state = (1 << num_ctrl_qubits) - 1
        if not 0 <= ctrl_state < (1 << num_ctrl_qubits):
            raise ValueError(f"ctrl_state {ctrl_state} out of range")
        self.ctrl_state = int(ctrl_state)

    def to_matrix(self) -> np.ndarray:
        if self.ctrl_state == (1 << self.num_ctrl_qubits) - 1:
            shared = _standard_matrix(self.name)
            if shared is not None and shared.shape == (2**self.num_qubits,) * 2:
                return shared
        base = self.base_gate.to_matrix()
        n_ctrl = self.num_ctrl_qubits
        n_base = self.base_gate.num_qubits
        dim = 2 ** (n_ctrl + n_base)
        matrix = np.eye(dim, dtype=complex)
        # Little-endian: controls are qubit args 0..n_ctrl-1 (low bits).  The
        # base gate acts on the subspace where the control bits match
        # ``ctrl_state``; everything else stays identity.
        for base_row in range(2**n_base):
            row = (base_row << n_ctrl) | self.ctrl_state
            for base_col in range(2**n_base):
                col = (base_col << n_ctrl) | self.ctrl_state
                matrix[row, col] = base[base_row, base_col]
        return matrix

    def inverse(self) -> "ControlledGate":
        return ControlledGate(
            name=self.name + "_dg",
            num_ctrl_qubits=self.num_ctrl_qubits,
            base_gate=self.base_gate.inverse(),
            ctrl_state=self.ctrl_state,
        )

    def _define(self):
        """Expand through the open-control identity (paper Appendix C).

        A closed-control version conjugated by X gates on the open controls.
        The closed-control gate itself is decomposed by the synthesis layer.
        """
        from repro.circuit.quantumcircuit import QuantumCircuit
        from repro.gates.standard import XGate

        all_ones = (1 << self.num_ctrl_qubits) - 1
        if self.ctrl_state == all_ones:
            return None  # primitive closed-control form; synthesis handles it
        closed = ControlledGate(
            name=self.name,
            num_ctrl_qubits=self.num_ctrl_qubits,
            base_gate=self.base_gate,
            ctrl_state=all_ones,
        )
        circuit = QuantumCircuit(self.num_qubits)
        flips = [
            i for i in range(self.num_ctrl_qubits) if not (self.ctrl_state >> i) & 1
        ]
        for qubit in flips:
            circuit.append(XGate(), (qubit,))
        circuit.append(closed, tuple(range(self.num_qubits)))
        for qubit in flips:
            circuit.append(XGate(), (qubit,))
        return circuit
