"""Named groups of quantum and classical wires.

Registers are a thin naming layer over the integer wire indices the rest of
the stack uses.  A register is *bound* to a circuit when the circuit is
constructed with it; binding assigns the global indices.
"""

from __future__ import annotations

import itertools

__all__ = ["QuantumRegister", "ClassicalRegister"]

_quantum_counter = itertools.count()
_classical_counter = itertools.count()


class _Register:
    """Common implementation for quantum and classical registers."""

    _prefix = "reg"

    def __init__(self, size: int, name: str | None = None):
        if size < 0:
            raise ValueError("register size must be non-negative")
        if name is None:
            name = f"{self._prefix}{next(self._counter())}"
        self.size = int(size)
        self.name = name
        self._indices: list[int] | None = None

    @classmethod
    def _counter(cls):
        raise NotImplementedError

    def _bind(self, start: int) -> None:
        """Assign global wire indices ``start .. start+size-1``."""
        if self._indices is not None:
            raise ValueError(f"register {self.name!r} is already bound to a circuit")
        self._indices = list(range(start, start + self.size))

    @property
    def indices(self) -> list[int]:
        if self._indices is None:
            raise ValueError(f"register {self.name!r} is not bound to a circuit")
        return list(self._indices)

    def __len__(self) -> int:
        return self.size

    def __getitem__(self, key: int | slice):
        if self._indices is None:
            raise ValueError(f"register {self.name!r} is not bound to a circuit")
        return self._indices[key]

    def __iter__(self):
        return iter(self.indices)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.size}, {self.name!r})"


class QuantumRegister(_Register):
    """A named group of qubits."""

    _prefix = "q"

    @classmethod
    def _counter(cls):
        return _quantum_counter


class ClassicalRegister(_Register):
    """A named group of classical bits."""

    _prefix = "c"

    @classmethod
    def _counter(cls):
        return _classical_counter
