"""The :class:`QuantumCircuit` builder.

Circuits hold a linear sequence of :class:`CircuitInstruction` records over
integer qubit/clbit wire indices, plus a tracked global phase.  The builder
API provides one convenience method per standard gate; the gate objects
themselves live in :mod:`repro.gates` (imported lazily to break the
circular dependency between gate definitions and circuits).
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, NamedTuple, Sequence

import numpy as np

from repro.circuit.instruction import Gate, Instruction
from repro.circuit.matrix_utils import embed_gate
from repro.circuit.register import ClassicalRegister, QuantumRegister

__all__ = ["QuantumCircuit", "CircuitInstruction"]


class CircuitInstruction(NamedTuple):
    """One operation applied to specific wires."""

    operation: Instruction
    qubits: tuple[int, ...]
    clbits: tuple[int, ...] = ()


class QuantumCircuit:
    """A quantum program as an ordered list of operations.

    Construct with integers (anonymous wire counts) and/or registers::

        qc = QuantumCircuit(3)                  # 3 qubits
        qc = QuantumCircuit(3, 3)               # 3 qubits, 3 clbits
        qr = QuantumRegister(2, "q"); qc = QuantumCircuit(qr)
    """

    def __init__(self, *wires, name: str | None = None, global_phase: float = 0.0):
        self.name = name or "circuit"
        self.global_phase = float(global_phase)
        self.data: list[CircuitInstruction] = []
        self.qregs: list[QuantumRegister] = []
        self.cregs: list[ClassicalRegister] = []
        self._num_qubits = 0
        self._num_clbits = 0

        integer_args = [w for w in wires if isinstance(w, int)]
        register_args = [w for w in wires if not isinstance(w, int)]
        if integer_args and register_args:
            raise ValueError("mix of integer and register arguments is not supported")
        if integer_args:
            if len(integer_args) > 2:
                raise ValueError("at most two integer arguments (qubits, clbits)")
            self._num_qubits = integer_args[0]
            self._num_clbits = integer_args[1] if len(integer_args) > 1 else 0
        for register in register_args:
            if isinstance(register, QuantumRegister):
                register._bind(self._num_qubits)
                self._num_qubits += register.size
                self.qregs.append(register)
            elif isinstance(register, ClassicalRegister):
                register._bind(self._num_clbits)
                self._num_clbits += register.size
                self.cregs.append(register)
            else:
                raise TypeError(f"unsupported circuit argument {register!r}")

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------

    @property
    def num_qubits(self) -> int:
        return self._num_qubits

    @property
    def num_clbits(self) -> int:
        return self._num_clbits

    @property
    def qubits(self) -> range:
        return range(self._num_qubits)

    @property
    def clbits(self) -> range:
        return range(self._num_clbits)

    def __len__(self) -> int:
        return len(self.data)

    def __iter__(self):
        return iter(self.data)

    # ------------------------------------------------------------------
    # building
    # ------------------------------------------------------------------

    def _check_wires(self, qubits: Sequence[int], clbits: Sequence[int]) -> None:
        for qubit in qubits:
            if not 0 <= qubit < self._num_qubits:
                raise IndexError(f"qubit {qubit} out of range (0..{self._num_qubits - 1})")
        if len(set(qubits)) != len(qubits):
            raise ValueError(f"duplicate qubit arguments {tuple(qubits)}")
        for clbit in clbits:
            if not 0 <= clbit < self._num_clbits:
                raise IndexError(f"clbit {clbit} out of range (0..{self._num_clbits - 1})")

    def append(
        self,
        operation: Instruction,
        qubits: Sequence[int],
        clbits: Sequence[int] = (),
    ) -> "QuantumCircuit":
        """Append ``operation`` to the given wires.  Returns ``self``."""
        qubits = tuple(int(q) for q in qubits)
        clbits = tuple(int(c) for c in clbits)
        if operation.num_qubits != len(qubits):
            raise ValueError(
                f"{operation.name} expects {operation.num_qubits} qubits, got {len(qubits)}"
            )
        if operation.num_clbits != len(clbits):
            raise ValueError(
                f"{operation.name} expects {operation.num_clbits} clbits, got {len(clbits)}"
            )
        self._check_wires(qubits, clbits)
        self.data.append(CircuitInstruction(operation, qubits, clbits))
        return self

    # -- one-qubit gates -------------------------------------------------

    def id(self, qubit: int):
        from repro.gates import IGate

        return self.append(IGate(), (qubit,))

    def x(self, qubit: int):
        from repro.gates import XGate

        return self.append(XGate(), (qubit,))

    def y(self, qubit: int):
        from repro.gates import YGate

        return self.append(YGate(), (qubit,))

    def z(self, qubit: int):
        from repro.gates import ZGate

        return self.append(ZGate(), (qubit,))

    def h(self, qubit: int):
        from repro.gates import HGate

        return self.append(HGate(), (qubit,))

    def s(self, qubit: int):
        from repro.gates import SGate

        return self.append(SGate(), (qubit,))

    def sdg(self, qubit: int):
        from repro.gates import SdgGate

        return self.append(SdgGate(), (qubit,))

    def t(self, qubit: int):
        from repro.gates import TGate

        return self.append(TGate(), (qubit,))

    def tdg(self, qubit: int):
        from repro.gates import TdgGate

        return self.append(TdgGate(), (qubit,))

    def sx(self, qubit: int):
        from repro.gates import SXGate

        return self.append(SXGate(), (qubit,))

    def rx(self, theta: float, qubit: int):
        from repro.gates import RXGate

        return self.append(RXGate(theta), (qubit,))

    def ry(self, theta: float, qubit: int):
        from repro.gates import RYGate

        return self.append(RYGate(theta), (qubit,))

    def rz(self, phi: float, qubit: int):
        from repro.gates import RZGate

        return self.append(RZGate(phi), (qubit,))

    def p(self, lam: float, qubit: int):
        from repro.gates import U1Gate

        return self.append(U1Gate(lam), (qubit,))

    def u1(self, lam: float, qubit: int):
        from repro.gates import U1Gate

        return self.append(U1Gate(lam), (qubit,))

    def u2(self, phi: float, lam: float, qubit: int):
        from repro.gates import U2Gate

        return self.append(U2Gate(phi, lam), (qubit,))

    def u3(self, theta: float, phi: float, lam: float, qubit: int):
        from repro.gates import U3Gate

        return self.append(U3Gate(theta, phi, lam), (qubit,))

    def u(self, theta: float, phi: float, lam: float, qubit: int):
        return self.u3(theta, phi, lam, qubit)

    def unitary(self, matrix: np.ndarray, qubits: Sequence[int], label: str | None = None):
        from repro.gates import UnitaryGate

        if isinstance(qubits, int):
            qubits = (qubits,)
        return self.append(UnitaryGate(matrix, label=label), tuple(qubits))

    # -- two-qubit gates ---------------------------------------------------

    def cx(self, control: int, target: int):
        from repro.gates import CXGate

        return self.append(CXGate(), (control, target))

    def cy(self, control: int, target: int):
        from repro.gates import CYGate

        return self.append(CYGate(), (control, target))

    def cz(self, control: int, target: int):
        from repro.gates import CZGate

        return self.append(CZGate(), (control, target))

    def ch(self, control: int, target: int):
        from repro.gates import CHGate

        return self.append(CHGate(), (control, target))

    def cp(self, lam: float, control: int, target: int):
        from repro.gates import CPhaseGate

        return self.append(CPhaseGate(lam), (control, target))

    def cu1(self, lam: float, control: int, target: int):
        return self.cp(lam, control, target)

    def crx(self, theta: float, control: int, target: int):
        from repro.gates import CRXGate

        return self.append(CRXGate(theta), (control, target))

    def cry(self, theta: float, control: int, target: int):
        from repro.gates import CRYGate

        return self.append(CRYGate(theta), (control, target))

    def crz(self, theta: float, control: int, target: int):
        from repro.gates import CRZGate

        return self.append(CRZGate(theta), (control, target))

    def cu3(self, theta: float, phi: float, lam: float, control: int, target: int):
        from repro.gates import CU3Gate

        return self.append(CU3Gate(theta, phi, lam), (control, target))

    def swap(self, a: int, b: int):
        from repro.gates import SwapGate

        return self.append(SwapGate(), (a, b))

    def swapz(self, zero_qubit: int, other: int):
        """Append a SWAPZ gate (paper Eq. 3): swaps correctly when
        ``zero_qubit`` carries ``|0>``."""
        from repro.gates import SwapZGate

        return self.append(SwapZGate(), (zero_qubit, other))

    def iswap(self, a: int, b: int):
        from repro.gates import ISwapGate

        return self.append(ISwapGate(), (a, b))

    # -- multi-qubit gates ---------------------------------------------------

    def ccx(self, control1: int, control2: int, target: int):
        from repro.gates import CCXGate

        return self.append(CCXGate(), (control1, control2, target))

    def toffoli(self, control1: int, control2: int, target: int):
        return self.ccx(control1, control2, target)

    def ccz(self, control1: int, control2: int, target: int):
        from repro.gates import CCZGate

        return self.append(CCZGate(), (control1, control2, target))

    def cswap(self, control: int, a: int, b: int):
        from repro.gates import CSwapGate

        return self.append(CSwapGate(), (control, a, b))

    def fredkin(self, control: int, a: int, b: int):
        return self.cswap(control, a, b)

    def mcx(self, controls: Sequence[int], target: int):
        from repro.gates import MCXGate

        controls = tuple(controls)
        return self.append(MCXGate(len(controls)), controls + (target,))

    def mcx_vchain(self, controls: Sequence[int], target: int, ancillas: Sequence[int]):
        """Multi-controlled X using the clean-ancilla V-chain design the
        paper's Grover benchmark uses (Sec. VIII-C)."""
        from repro.gates import MCXVChainGate

        controls = tuple(controls)
        ancillas = tuple(ancillas)
        gate = MCXVChainGate(len(controls))
        if len(ancillas) != gate.num_ancillas:
            raise ValueError(
                f"v-chain mcx with {len(controls)} controls needs "
                f"{gate.num_ancillas} ancillas, got {len(ancillas)}"
            )
        return self.append(gate, controls + ancillas + (target,))

    def mcz(self, controls: Sequence[int], target: int):
        from repro.gates import MCZGate

        controls = tuple(controls)
        return self.append(MCZGate(len(controls)), controls + (target,))

    # -- non-unitary / directives ---------------------------------------------

    def measure(self, qubit: int, clbit: int):
        from repro.gates import Measure

        return self.append(Measure(), (qubit,), (clbit,))

    def measure_all(self):
        from repro.gates import Measure

        if self._num_clbits < self._num_qubits:
            raise ValueError("not enough classical bits to measure all qubits")
        for qubit in range(self._num_qubits):
            self.append(Measure(), (qubit,), (qubit,))
        return self

    def reset(self, qubit: int):
        from repro.gates import Reset

        return self.append(Reset(), (qubit,))

    def barrier(self, *qubits: int):
        from repro.gates import Barrier

        if not qubits:
            qubits = tuple(range(self._num_qubits))
        return self.append(Barrier(len(qubits)), qubits)

    def annotate(self, qubit: int, theta: float, phi: float):
        """State annotation ``ANNOT(theta, phi)`` (paper Sec. VI-C).

        Promises the compiler that ``qubit`` is in the pure state
        ``|psi(theta, phi)>`` at this point.  Unrolls to nothing on hardware.
        """
        from repro.gates import Annotation

        return self.append(Annotation(theta, phi), (qubit,))

    def annotate_zero(self, qubit: int):
        """Annotate that ``qubit`` is a clean ``|0>`` ancilla here."""
        return self.annotate(qubit, 0.0, 0.0)

    # ------------------------------------------------------------------
    # circuit-level transformations
    # ------------------------------------------------------------------

    def copy_empty_like(self, name: str | None = None) -> "QuantumCircuit":
        other = QuantumCircuit(self._num_qubits, self._num_clbits, name=name or self.name)
        other.global_phase = self.global_phase
        return other

    def copy(self, name: str | None = None) -> "QuantumCircuit":
        other = self.copy_empty_like(name)
        other.data = list(self.data)
        return other

    def compose(
        self,
        other: "QuantumCircuit",
        qubits: Sequence[int] | None = None,
        clbits: Sequence[int] | None = None,
    ) -> "QuantumCircuit":
        """Return a new circuit with ``other`` appended onto these wires."""
        if qubits is None:
            qubits = list(range(other.num_qubits))
        if clbits is None:
            clbits = list(range(other.num_clbits))
        if len(qubits) != other.num_qubits or len(clbits) != other.num_clbits:
            raise ValueError("wire mapping does not match the composed circuit")
        result = self.copy()
        result.global_phase += other.global_phase
        for instruction in other.data:
            mapped_q = tuple(qubits[q] for q in instruction.qubits)
            mapped_c = tuple(clbits[c] for c in instruction.clbits)
            result.append(instruction.operation, mapped_q, mapped_c)
        return result

    def inverse(self) -> "QuantumCircuit":
        """Return the inverse circuit (reversed order, inverted gates)."""
        result = self.copy_empty_like(f"{self.name}_dg")
        result.global_phase = -self.global_phase
        for instruction in reversed(self.data):
            operation = instruction.operation
            if operation.is_directive:
                result.append(operation, instruction.qubits, instruction.clbits)
                continue
            result.append(operation.inverse(), instruction.qubits, instruction.clbits)
        return result

    def decompose(self, names: Iterable[str] | None = None) -> "QuantumCircuit":
        """Expand one level of gate definitions.

        When ``names`` is given only the listed operations are expanded.
        """
        names = set(names) if names is not None else None
        result = self.copy_empty_like()
        for instruction in self.data:
            operation = instruction.operation
            expand = names is None or operation.name in names
            definition = operation.definition if expand else None
            if definition is None:
                result.append(operation, instruction.qubits, instruction.clbits)
                continue
            result.global_phase += definition.global_phase
            for inner in definition.data:
                mapped_q = tuple(instruction.qubits[q] for q in inner.qubits)
                mapped_c = tuple(instruction.clbits[c] for c in inner.clbits)
                result.append(inner.operation, mapped_q, mapped_c)
        return result

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------

    def size(self) -> int:
        """Number of operations, excluding directives."""
        return sum(1 for inst in self.data if not inst.operation.is_directive)

    def count_ops(self) -> dict[str, int]:
        """Operation counts by name, most frequent first."""
        counts = Counter(inst.operation.name for inst in self.data)
        return dict(counts.most_common())

    def num_nonlocal_gates(self) -> int:
        """Number of multi-qubit gates (entangling cost proxy)."""
        return sum(
            1
            for inst in self.data
            if inst.operation.is_gate() and inst.operation.num_qubits >= 2
        )

    def depth(self) -> int:
        """Circuit depth counting all non-directive operations."""
        levels = [0] * (self._num_qubits + self._num_clbits)
        depth = 0
        for instruction in self.data:
            if instruction.operation.is_directive:
                continue
            wires = list(instruction.qubits) + [
                self._num_qubits + c for c in instruction.clbits
            ]
            level = 1 + max(levels[w] for w in wires)
            for wire in wires:
                levels[wire] = level
            depth = max(depth, level)
        return depth

    # ------------------------------------------------------------------
    # numerics
    # ------------------------------------------------------------------

    def to_matrix(self) -> np.ndarray:
        """Full little-endian unitary of the circuit.

        Directives are skipped; measurements and resets raise.
        """
        dim = 2**self._num_qubits
        matrix = np.eye(dim, dtype=complex)
        for instruction in self.data:
            operation = instruction.operation
            if operation.is_directive:
                continue
            if not operation.is_gate():
                raise ValueError(
                    f"cannot express non-unitary {operation.name!r} as a matrix"
                )
            gate_matrix = operation.to_matrix()
            matrix = embed_gate(gate_matrix, instruction.qubits, self._num_qubits) @ matrix
        return matrix * np.exp(1j * self.global_phase)

    # ------------------------------------------------------------------
    # display
    # ------------------------------------------------------------------

    def __repr__(self) -> str:
        ops = self.count_ops()
        summary = ", ".join(f"{name}:{count}" for name, count in list(ops.items())[:6])
        return (
            f"<QuantumCircuit {self.name!r} qubits={self._num_qubits} "
            f"clbits={self._num_clbits} ops=[{summary}]>"
        )

    def draw(self) -> str:
        """Minimal text drawing: one line per qubit, columns per layer."""
        columns: list[dict[int, str]] = []
        levels = [0] * self._num_qubits
        for instruction in self.data:
            operation = instruction.operation
            qubits = instruction.qubits
            if not qubits:
                continue
            level = max(levels[q] for q in qubits)
            while len(columns) <= level:
                columns.append({})
            label = operation.name
            if operation.params:
                label += "(" + ",".join(f"{p:.3g}" for p in operation.params) + ")"
            for position, qubit in enumerate(qubits):
                tag = label if len(qubits) == 1 else f"{label}[{position}]"
                columns[level][qubit] = tag
            for qubit in qubits:
                levels[qubit] = level + 1
        lines = []
        for qubit in range(self._num_qubits):
            cells = []
            for column in columns:
                cell = column.get(qubit, "-")
                cells.append(cell.center(12, "-"))
            lines.append(f"q{qubit}: " + "".join(cells))
        return "\n".join(lines)
