"""Angle arithmetic helpers.

Rotation parameters in quantum circuits are only meaningful modulo ``2*pi``
(and some, such as the canonical-gate coordinates, modulo ``pi/2``).  The
helpers here centralise the branch-cut conventions so every module agrees on
what "equal angles" means.
"""

from __future__ import annotations

import math

PI = math.pi
PI2 = math.pi / 2
PI4 = math.pi / 4

_DEFAULT_ATOL = 1e-9


def normalize_angle(angle: float, period: float = 2 * math.pi) -> float:
    """Fold ``angle`` into the half-open interval ``[0, period)``.

    Values within numerical noise of ``period`` are folded to ``0.0`` so that
    e.g. ``normalize_angle(2*pi - 1e-15)`` compares equal to zero.
    """
    folded = angle % period
    if period - folded < _DEFAULT_ATOL:
        folded = 0.0
    # avoid the negative zero that ``%`` can produce for tiny negatives
    return abs(folded) if folded == 0 else folded


def angles_close(
    a: float, b: float, period: float = 2 * math.pi, atol: float = _DEFAULT_ATOL
) -> bool:
    """Return ``True`` when two angles agree modulo ``period``."""
    diff = (a - b) % period
    return diff < atol or period - diff < atol
