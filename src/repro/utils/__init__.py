"""Small shared utilities used across the :mod:`repro` package."""

from repro.utils.angles import normalize_angle, angles_close, PI, PI2, PI4

__all__ = ["normalize_angle", "angles_close", "PI", "PI2", "PI4"]
