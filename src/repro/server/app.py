"""The HTTP compile server: a wire front for one :class:`CompileService`.

:class:`CompileServer` binds a :class:`~http.server.ThreadingHTTPServer`
(stdlib only -- no new dependencies) around a persistent
:class:`~repro.transpiler.service.CompileService`, so one long-lived pool
plus one warm :class:`~repro.transpiler.cache.AnalysisCache` serve every
client on the network.  Routes:

* ``POST /compile`` -- one chunked job envelope in
  (:func:`repro.server.protocol.encode_jobs` frame), one result envelope
  out.  Jobs are handed to the service in payload form
  (:meth:`CompileService.submit_payloads`), so the server process never
  rebuilds circuits it is only going to re-flatten; per-job errors come
  back inside the result envelope, request-level garbage is HTTP 400 with
  an ``error`` envelope.
* ``GET /healthz`` -- liveness JSON (status, uptime, jobs completed);
  what a load balancer or the CI smoke job polls.
* ``GET /metrics`` -- the service's ``stats()`` plus server-side wire
  counters (requests, jobs, per-target job counts -- the shard-affinity
  signal) and the compiled-result cache's hit/miss/eviction counters,
  as JSON.
* ``GET /cache/<fingerprint>`` -- peer lookup into the compiled-result
  cache: a ``cache`` frame with the result payload on a hit, HTTP 404
  on a miss.  ``POST /compile`` responses also carry an
  ``X-Repro-Cache-Hits`` header counting the request's cache-served
  jobs, and each result entry its ``"cached"`` disposition
  (protocol version 2).
* ``POST /shutdown`` -- graceful remote stop: drains the pool, persists
  the cache snapshot, exits ``serve_forever``.  For operational use
  behind a trusted network only, like every other route (the server
  deliberately binds loopback by default and speaks no auth).

Run one from the shell with ``python -m repro.server`` (see
:mod:`repro.server.__main__` for the flags) or embed one in-process::

    from repro.server import CompileServer

    with CompileServer(mode="process", pipeline="rpo") as server:
        server.start()                       # background thread
        print("serving on", server.endpoint)
        ...
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.server.protocol import (
    ProtocolError,
    decode_frame,
    decode_jobs,
    encode_cache_entry,
    encode_error,
    encode_frame,
    encode_results,
)
from repro.transpiler.exceptions import TranspilerError
from repro.transpiler.service import (
    CACHE_PROPERTY,
    TARGET_PROPERTY,
    CompileService,
    _sanitize_properties,
)
from repro.circuit.serialization import circuit_to_payload

__all__ = ["CompileServer"]

#: Content type of protocol frames on the wire.
FRAME_CONTENT_TYPE = "application/x-repro-frame"

#: Response header on ``POST /compile``: how many of the request's jobs
#: were served from the compiled-result cache instead of the pool.
CACHE_HITS_HEADER = "X-Repro-Cache-Hits"

#: Request bodies above this are refused before reading (HTTP 413).
MAX_REQUEST_BYTES = 256 * 1024 * 1024


class _CompileHTTPServer(ThreadingHTTPServer):
    daemon_threads = True  # in-flight handlers never block interpreter exit
    compile_server: "CompileServer" = None  # attached right after construction


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"

    # -- plumbing ----------------------------------------------------------

    @property
    def compile_server(self) -> "CompileServer":
        return self.server.compile_server

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if self.compile_server.verbose:
            super().log_message(format, *args)

    def _send(
        self, status: int, body: bytes, content_type: str, headers: dict | None = None
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, str(value))
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, status: int, payload: dict) -> None:
        self._send(
            status,
            json.dumps(payload, sort_keys=True).encode("utf-8"),
            "application/json",
        )

    def _send_frame(
        self, status: int, envelope: dict, headers: dict | None = None
    ) -> None:
        self._send(status, encode_frame(envelope), FRAME_CONTENT_TYPE, headers)

    def _read_body(self) -> bytes:
        length = int(self.headers.get("Content-Length", 0))
        if length > MAX_REQUEST_BYTES:
            raise ProtocolError(f"request body of {length} bytes refused")
        return self.rfile.read(length)

    # -- routes ------------------------------------------------------------

    def do_GET(self):  # noqa: N802 - stdlib casing
        server = self.compile_server
        if self.path == "/healthz":
            self._send_json(200, server.health())
        elif self.path == "/metrics":
            self._send_json(200, server.metrics())
        elif self.path.startswith("/cache/"):
            fingerprint = self.path[len("/cache/") :]
            envelope = server.handle_cache_lookup(fingerprint)
            if envelope is None:
                self._send_json(404, {"found": False, "fingerprint": fingerprint})
            else:
                self._send_frame(200, envelope)
        else:
            self._send_json(404, {"error": f"unknown path {self.path!r}"})

    def do_POST(self):  # noqa: N802 - stdlib casing
        server = self.compile_server
        if self.path == "/compile":
            try:
                body = self._read_body()
                response, cache_hits = server.handle_compile(body)
            except ProtocolError as exc:
                server._count("protocol_errors")
                self._send_frame(400, encode_error(str(exc)))
            except Exception as exc:  # noqa: BLE001 - wire boundary
                server._count("internal_errors")
                self._send_frame(500, encode_error(f"internal error: {exc}"))
            else:
                self._send_frame(200, response, {CACHE_HITS_HEADER: cache_hits})
        elif self.path == "/shutdown":
            self._send_json(200, {"status": "shutting down"})
            # from a thread: shutdown() must not wait on this very handler
            threading.Thread(target=server.shutdown, daemon=True).start()
        else:
            self._send_json(404, {"error": f"unknown path {self.path!r}"})


class CompileServer:
    """One network-facing compile endpoint wrapping one service.

    Constructed either around a caller-owned service (``service=``) or --
    the common case -- from service keyword arguments, in which case the
    server owns the service and shuts it down (persisting its snapshot)
    with itself.  ``port=0`` binds an ephemeral free port; read
    :attr:`endpoint` after construction.
    """

    def __init__(
        self,
        service: CompileService | None = None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        verbose: bool = False,
        **service_kwargs,
    ):
        if service is not None and service_kwargs:
            raise TranspilerError(
                "pass either a service or service keyword arguments, not both"
            )
        self._owns_service = service is None
        self.service = (
            service if service is not None else CompileService(**service_kwargs)
        )
        self.verbose = verbose
        self._httpd = _CompileHTTPServer((host, port), _Handler)
        self._httpd.compile_server = self
        self._thread: threading.Thread | None = None
        self._started = time.monotonic()
        self._lock = threading.Lock()
        self._counters = {
            "requests": 0,
            "jobs": 0,
            "job_failures": 0,
            "protocol_errors": 0,
            "internal_errors": 0,
        }
        self._jobs_by_target: dict[str, int] = {}
        self._serving = False
        self._shutdown = False
        self._shutdown_complete = threading.Event()

    # -- addressing --------------------------------------------------------

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def endpoint(self) -> str:
        """The URL clients point a ``RemoteCompileService`` at."""
        return f"http://{self.host}:{self.port}"

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "CompileServer":
        """Serve on a daemon thread; returns self for chaining."""
        if self._thread is None:
            self._serving = True
            self._thread = threading.Thread(
                target=self._httpd.serve_forever, daemon=True
            )
            self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread (the ``python -m repro.server`` path)."""
        self._serving = True
        self._httpd.serve_forever()

    def shutdown(self) -> None:
        """Stop serving; shut down (and snapshot) an owned service.

        Concurrent callers block until the working caller has finished --
        the ``POST /shutdown`` handler runs this on a daemon thread, and
        the main thread's own shutdown must not let the process exit
        while that thread is still persisting the cache snapshot.
        """
        with self._lock:
            already, self._shutdown = self._shutdown, True
            serving, self._serving = self._serving, False
        if already:
            self._shutdown_complete.wait(timeout=60.0)
            return
        try:
            if serving:
                # blocks until serve_forever exits -- only valid if started
                self._httpd.shutdown()
            self._httpd.server_close()
            if self._thread is not None:
                self._thread.join(timeout=10.0)
                self._thread = None
            if self._owns_service:
                self.service.shutdown()
        finally:
            self._shutdown_complete.set()

    def __enter__(self) -> "CompileServer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()

    # -- request handling ---------------------------------------------------

    def _count(self, key: str, amount: int = 1) -> None:
        with self._lock:
            self._counters[key] = self._counters.get(key, 0) + amount

    def handle_compile(self, body: bytes) -> tuple[dict, int]:
        """One compile envelope in; ``(result envelope, cache hits)`` out.

        Raises :class:`ProtocolError` for malformed requests (the handler
        maps it to HTTP 400); job-level failures are encoded per job so
        the rest of the chunk still returns compiled circuits.  The hit
        count (jobs served from the compiled-result cache rather than the
        pool) rides back in the :data:`CACHE_HITS_HEADER` header, and
        each result entry carries its ``"cached"`` disposition.
        """
        envelope = decode_frame(body)
        jobs = decode_jobs(envelope)
        self._count("requests")
        self._count("jobs", len(jobs))
        with self._lock:
            for _, target_payload, _ in jobs:
                label = str(target_payload[1]) if len(target_payload) > 1 else "?"
                self._jobs_by_target[label] = self._jobs_by_target.get(label, 0) + 1
        futures = self.service.submit_payloads(jobs)
        outcomes = []
        cached = []
        cache_hits = 0
        for future in futures:
            try:
                result = future.result()
            except Exception as exc:  # noqa: BLE001 - encoded per job
                self._count("job_failures")
                outcomes.append(("error", exc))
                cached.append(None)
                continue
            disposition = result.properties.get(CACHE_PROPERTY)
            if disposition is not None:
                cache_hits += 1
            properties = _sanitize_properties(result.properties)
            # the client re-attaches its own (equal) Target object; no
            # point shipping ours back
            properties.pop(TARGET_PROPERTY, None)
            outcomes.append(
                (
                    "ok",
                    (
                        circuit_to_payload(result.circuit),
                        result.metrics,
                        result.loops,
                        result.time,
                        properties,
                    ),
                )
            )
            cached.append(disposition)
        if cache_hits:
            self._count("jobs_cached", cache_hits)
        return encode_results(outcomes, cached), cache_hits

    def handle_cache_lookup(self, fingerprint: str) -> dict | None:
        """The ``GET /cache/<fingerprint>`` body: a ``cache`` envelope
        when this shard's result cache holds the exact entry, else
        ``None`` (the handler answers 404).

        This is the peer-lookup route: a :class:`~repro.server.router
        .ShardRouter` (or any client knowing a job's
        :func:`~repro.transpiler.result_cache.job_fingerprint`) asks
        shards for already-compiled results before dispatching work.
        """
        cache = self.service.result_cache
        if cache is None or not fingerprint:
            return None
        found = cache.lookup_fingerprint(fingerprint)
        if found is None:
            return None
        return encode_cache_entry(fingerprint, found)

    # -- introspection -----------------------------------------------------

    def health(self) -> dict:
        """The ``/healthz`` body: liveness plus headline counters."""
        stats = self.service.stats()
        return {
            "status": "ok",
            "uptime": time.monotonic() - self._started,
            "mode": stats["mode"],
            "jobs_completed": stats["completed"],
            "jobs_failed": stats["failed"],
        }

    def metrics(self) -> dict:
        """The ``/metrics`` body: wire counters + full service stats."""
        with self._lock:
            counters = dict(self._counters)
            by_target = dict(self._jobs_by_target)
        return {
            "server": {
                "uptime": time.monotonic() - self._started,
                "endpoint": self.endpoint,
                **counters,
                "jobs_by_target": by_target,
            },
            "service": self.service.stats(),
            "cache": {
                "snapshot_skipped": self.service.cache.snapshot_skipped,
                "stats": {
                    k: v
                    for k, v in self.service.cache.stats.items()
                    if isinstance(v, (int, float))
                },
            },
            "result_cache": (
                self.service.result_cache.stats()
                if self.service.result_cache is not None
                else None
            ),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CompileServer {self.endpoint} service={self.service!r}>"
