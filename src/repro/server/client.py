"""``RemoteCompileService``: the drop-in network client.

Mirrors the :class:`~repro.transpiler.service.CompileService` surface --
``submit()`` returning a :class:`concurrent.futures.Future`, blocking
order-preserving ``map()``, ``stats()``, ``default_target``, context
manager -- so anything written against a local service (including
``frontend.transpile(..., service=...)``) talks to a remote compile farm
by swapping the object::

    from repro.server import RemoteCompileService
    from repro.transpiler import transpile

    with RemoteCompileService("http://compile-farm:8642") as remote:
        results = remote.map(circuits, targets="melbourne", seeds=seeds)
        # or, drop-in through the front-end:
        circuits_out = transpile(circuits, target="melbourne", service=remote)

    # the one-liner: transpile() builds (and closes) the client itself
    transpile(circuits, target="melbourne",
              executor="remote", endpoint="http://compile-farm:8642")

Transport is stdlib ``urllib`` over the frame protocol of
:mod:`repro.server.protocol`.  ``map()`` splits the batch into **chunked
job envelopes** -- one HTTP request per chunk, several chunks in flight at
once on a small connection pool -- so a 200-circuit batch of cheap
circuits costs a handful of round-trips, not 200.  Results carry their
:class:`~repro.transpiler.target.Target` and the serving endpoint (under
the ``"shard"`` property), which is how
:func:`repro.transpiler.metrics.aggregate_batch` breaks batches down per
shard.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Sequence

from repro.circuit.quantumcircuit import QuantumCircuit
from repro.circuit.serialization import circuit_from_payload, circuit_to_payload
from repro.server.protocol import (
    ProtocolError,
    decode_cache_entry,
    decode_frame,
    decode_results,
    encode_frame,
    encode_jobs,
    split_chunks,
)
from repro.transpiler.exceptions import TranspilerError
from repro.transpiler.options import CompileOptions
from repro.transpiler.passes import IBM_BASIS
from repro.transpiler.passmanager import PropertySet, TranspileResult
from repro.transpiler.service import (
    _CHUNK_MAX_JOBS,
    TARGET_PROPERTY,
    normalize_batch,
)
from repro.transpiler.target import Target

__all__ = ["RemoteCompileService", "SHARD_PROPERTY"]

#: Result-property key naming the endpoint that compiled the job.
SHARD_PROPERTY = "shard"

#: ``chunk_size="auto"``: keep at least this many chunks per connection
#: in flight, so a slow chunk cannot serialize the whole batch.
_MIN_CHUNKS_IN_FLIGHT = 2


class RemoteCompileService:
    """A compile-service client speaking the frame protocol over HTTP."""

    def __init__(
        self,
        endpoint: str,
        *,
        timeout: float = 300.0,
        max_connections: int = 4,
        chunk_size: int | str = "auto",
        target: Target | str | None = None,
        basis_gates=IBM_BASIS,
        options: CompileOptions | None = None,
    ):
        """Args:
            endpoint: the server's base URL, e.g. ``"http://host:8642"``.
            timeout: per-request socket timeout in seconds.  One request
                carries a whole chunk, so size it for the chunk, not the
                circuit.
            max_connections: concurrent requests kept in flight by
                :meth:`map` (and backing :meth:`submit` futures).
            chunk_size: jobs per request -- ``"auto"`` (size by batch and
                connections), or a fixed positive integer (1 = one
                request per circuit).
            target / basis_gates: client-side defaults mirroring the
                local service; jobs always ship a fully-resolved target.
            options: a :class:`~repro.transpiler.options.CompileOptions`
                providing default ``pipeline`` / ``optimization_level`` /
                ``seed`` / ``initial_layout`` for submissions that name
                none (per-call arguments win).
        """
        self.endpoint = endpoint.rstrip("/")
        self.timeout = float(timeout)
        self.chunk_size = chunk_size
        self.options = options if options is not None else CompileOptions()
        self._basis = tuple(basis_gates)
        self._default_target = (
            Target.coerce(target, basis=self._basis) if target is not None else None
        )
        self._max_connections = max(1, int(max_connections))
        self._pool: ThreadPoolExecutor | None = None
        self._lock = threading.Lock()
        self._closed = False
        self._requests = 0
        self._jobs_sent = 0
        self._remote_cache_hits = 0

    # -- service-mirror surface --------------------------------------------

    @property
    def default_target(self) -> Target | None:
        """The target applied to submissions that name none (mirrors
        :attr:`CompileService.default_target`, read by ``transpile``)."""
        return self._default_target

    def submit(
        self,
        circuit: QuantumCircuit,
        *,
        target: Target | str | None = None,
        pipeline: str | None = None,
        optimization_level: int | None = None,
        seed: int | None = None,
        initial_layout=None,
        validate: str | None = None,
    ) -> Future:
        """Queue one compilation; returns a future of a
        :class:`~repro.transpiler.passmanager.TranspileResult`.

        Each ``submit`` is its own single-job request; use :meth:`map`
        for batches so chunking can amortize the round-trips.
        """
        job, resolved_target = self._resolve(
            circuit, target, pipeline, optimization_level, seed, initial_layout,
            validate,
        )
        pool = self._ensure_pool()
        inner = pool.submit(self._compile_chunk, [job], [resolved_target])
        outer: Future = Future()

        def relay(done: Future, outer=outer) -> None:
            try:
                outcome = done.result()[0]
            except BaseException as exc:  # noqa: BLE001 - relayed
                outer.set_exception(exc)
                return
            if isinstance(outcome, BaseException):
                outer.set_exception(outcome)
            else:
                outer.set_result(outcome)

        inner.add_done_callback(relay)
        return outer

    def map(
        self,
        circuits: Sequence[QuantumCircuit],
        *,
        targets=None,
        seeds=None,
        pipeline: str | None = None,
        optimization_level: int | None = None,
        initial_layout=None,
        validate: str | None = None,
        chunk_size: int | str | None = None,
    ) -> list[TranspileResult]:
        """Compile a batch remotely; blocks, preserves input order.

        The batch is cut into chunked job envelopes (one request each,
        up to ``max_connections`` in flight); per-job remote errors are
        re-raised here exactly as a local service's ``map`` would raise
        them.
        """
        batch = list(circuits)
        if not batch:
            return []
        per_targets, per_seeds = normalize_batch(batch, targets, seeds)
        jobs = []
        resolved_targets = []
        for circuit, target, seed in zip(batch, per_targets, per_seeds):
            job, resolved = self._resolve(
                circuit, target, pipeline, optimization_level, seed,
                initial_layout, validate,
            )
            jobs.append(job)
            resolved_targets.append(resolved)
        chunk = self._effective_chunk_size(len(jobs), chunk_size)
        job_chunks = split_chunks(jobs, chunk)
        target_chunks = split_chunks(resolved_targets, chunk)
        pool = self._ensure_pool()
        futures = [
            pool.submit(self._compile_chunk, job_chunk, target_chunk)
            for job_chunk, target_chunk in zip(job_chunks, target_chunks)
        ]
        results: list[TranspileResult] = []
        first_error: BaseException | None = None
        for future in futures:
            for outcome in future.result():
                if isinstance(outcome, BaseException):
                    if first_error is None:
                        first_error = outcome
                else:
                    results.append(outcome)
        if first_error is not None:
            raise first_error
        return results

    # -- request plumbing ---------------------------------------------------

    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._closed:
                raise TranspilerError("RemoteCompileService has been closed")
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self._max_connections,
                    thread_name_prefix="remote-compile",
                )
            return self._pool

    def _resolve(
        self, circuit, target, pipeline, optimization_level, seed,
        initial_layout, validate=None,
    ) -> tuple[tuple, Target]:
        if not isinstance(circuit, QuantumCircuit):
            raise TranspilerError("RemoteCompileService expects QuantumCircuit inputs")
        if target is not None:
            resolved = Target.coerce(target, basis=self._basis)
        elif self._default_target is not None:
            resolved = self._default_target
        else:
            resolved = Target.full(circuit.num_qubits, basis=self._basis)
        options = self.options
        # a sequence seed is a per-circuit schedule; it cannot default a
        # single job's seed, so only a scalar option seed applies here
        option_seed = options.seed if not isinstance(options.seed, tuple) else None
        settings = {
            "pipeline": pipeline if pipeline is not None else options.pipeline,
            "optimization_level": (
                optimization_level
                if optimization_level is not None
                else options.optimization_level
            ),
            "seed": seed if seed is not None else option_seed,
            "initial_layout": (
                initial_layout
                if initial_layout is not None
                else options.initial_layout
            ),
            "validate": validate if validate is not None else options.validate,
        }
        job = (circuit_to_payload(circuit), resolved.to_payload(), settings)
        return job, resolved

    def _effective_chunk_size(self, batch_size: int, override) -> int:
        choice = override if override is not None else self.chunk_size
        if choice == "auto" or choice is None:
            # enough chunks to keep every connection busy at least twice
            # over, each chunk as large as that allows (bounded)
            per_chunk = max(
                1,
                batch_size // (self._max_connections * _MIN_CHUNKS_IN_FLIGHT),
            )
            return max(1, min(_CHUNK_MAX_JOBS, per_chunk))
        return max(1, int(choice))

    def _compile_chunk(self, jobs: list[tuple], targets: list[Target]) -> list:
        """POST one chunk; returns per-job TranspileResult-or-exception."""
        frame = encode_frame(encode_jobs(jobs))
        with self._lock:
            self._requests += 1
            self._jobs_sent += len(jobs)
        envelope, headers = self._post("/compile", frame)
        try:
            remote_hits = int(headers.get("X-Repro-Cache-Hits", 0))
        except (TypeError, ValueError):
            remote_hits = 0
        if remote_hits:
            with self._lock:
                self._remote_cache_hits += remote_hits
        outcomes = decode_results(envelope)
        if len(outcomes) != len(jobs):
            raise ProtocolError(
                f"server returned {len(outcomes)} results for {len(jobs)} jobs"
            )
        out = []
        for (status, value), target in zip(outcomes, targets):
            if status != "ok":
                out.append(value)
                continue
            payload, metrics, loops, elapsed, props = value
            properties = PropertySet(props)
            properties[TARGET_PROPERTY] = target
            properties[SHARD_PROPERTY] = self.endpoint
            out.append(
                TranspileResult(
                    circuit=circuit_from_payload(payload),
                    properties=properties,
                    metrics=metrics,
                    loops=loops,
                    time=elapsed,
                )
            )
        return out

    def _post(self, path: str, frame: bytes) -> tuple[dict, dict]:
        """POST one frame; returns ``(envelope, response headers)``."""
        request = urllib.request.Request(
            self.endpoint + path,
            data=frame,
            headers={"Content-Type": "application/x-repro-frame"},
            method="POST",
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return decode_frame(response.read()), dict(response.headers)
        except urllib.error.HTTPError as exc:
            body = exc.read()
            try:
                envelope = decode_frame(body)
                detail = envelope.get("error", "")
            except ProtocolError:
                detail = body[:200].decode("utf-8", "replace")
            raise ProtocolError(
                f"compile server at {self.endpoint} answered HTTP "
                f"{exc.code}: {detail}"
            ) from None
        except urllib.error.URLError as exc:
            raise TranspilerError(
                f"cannot reach compile server at {self.endpoint}: {exc.reason}"
            ) from None

    def _get_json(self, path: str) -> dict:
        try:
            with urllib.request.urlopen(
                self.endpoint + path, timeout=self.timeout
            ) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.URLError as exc:
            raise TranspilerError(
                f"cannot reach compile server at {self.endpoint}: "
                f"{getattr(exc, 'reason', exc)}"
            ) from None

    # -- introspection / lifecycle -----------------------------------------

    def healthz(self) -> dict:
        """The server's ``/healthz`` body."""
        return self._get_json("/healthz")

    def cache_lookup(self, fingerprint: str):
        """Peer lookup: the server's cached result payload under an exact
        :func:`~repro.transpiler.result_cache.job_fingerprint`, or
        ``None`` (a miss, or a server with result caching disabled).

        Unreachable-server errors still raise; only an HTTP 404 is a
        clean miss.
        """
        request = urllib.request.Request(
            f"{self.endpoint}/cache/{fingerprint}", method="GET"
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return decode_cache_entry(decode_frame(response.read()))
        except urllib.error.HTTPError as exc:
            if exc.code == 404:
                return None
            raise ProtocolError(
                f"compile server at {self.endpoint} answered HTTP {exc.code} "
                "to a cache lookup"
            ) from None
        except urllib.error.URLError as exc:
            raise TranspilerError(
                f"cannot reach compile server at {self.endpoint}: {exc.reason}"
            ) from None

    def stats(self) -> dict:
        """Client counters + the server's ``/metrics`` body."""
        remote = self._get_json("/metrics")
        with self._lock:
            local = {
                "endpoint": self.endpoint,
                "requests": self._requests,
                "jobs_sent": self._jobs_sent,
                "remote_cache_hits": self._remote_cache_hits,
            }
        return {"client": local, **remote}

    def shutdown_server(self) -> dict:
        """Ask the server to stop (``POST /shutdown``); returns its ack."""
        request = urllib.request.Request(
            self.endpoint + "/shutdown", data=b"", method="POST"
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.URLError as exc:
            raise TranspilerError(
                f"cannot reach compile server at {self.endpoint}: "
                f"{getattr(exc, 'reason', exc)}"
            ) from None

    def close(self) -> None:
        """Release the client's connection pool (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    #: Local-service compatibility: ``transpile`` and tooling written for
    #: ``CompileService`` may call ``shutdown()``; for a *client* that
    #: only ever means "stop talking", never "stop the farm".
    def shutdown(self, wait: bool = True, save: bool = True) -> None:
        self.close()

    def __enter__(self) -> "RemoteCompileService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else "open"
        return f"<RemoteCompileService {self.endpoint} {state}>"
