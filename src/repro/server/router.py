"""``ShardRouter``: fan one batch out across several compile servers.

The router owns one :class:`~repro.server.client.RemoteCompileService`
per endpoint and splits batches between them with **target-affinity
routing**: every job compiles for some
:class:`~repro.transpiler.target.Target`, and all jobs for the same
target value go to the same shard, because that shard's service cache
already holds the target's analyses (its warmed matrices, its workers'
memoized coupling data).  A target seen for the first time is pinned to
the least-loaded shard and stays pinned for the router's lifetime, so a
farm serving a handful of devices converges to one warm shard per
device instead of smearing every device's working set over every
machine.

The router mirrors the service surface (``submit()`` / ``map()`` /
``stats()`` / ``default_target``), so it *is* a service as far as
``transpile()`` is concerned::

    from repro.server import ShardRouter

    with ShardRouter(["http://farm-a:8642", "http://farm-b:8642"]) as router:
        results = router.map(circuits, targets=per_circuit_targets, seeds=seeds)

    # or through the front-end, from a list of endpoints:
    transpile(circuits, target=..., executor="remote",
              endpoint=["http://farm-a:8642", "http://farm-b:8642"])

Each shard's sub-batch goes out as chunked envelopes concurrently; the
results come back scattered to input order, every result stamped with the
endpoint that served it (the ``"shard"`` property), and
:func:`~repro.transpiler.metrics.aggregate_batch` merges per-shard
breakdowns into the ``by_target`` report.

When batches name their ``pipeline`` and ``optimization_level``
explicitly, the router also consults the *other* shards' compiled-result
caches (``GET /cache/<fingerprint>``) before dispatching -- an identical
compile another shard already served comes back without ever shipping
the job (``peer_cache=False`` turns this off).
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Sequence

from repro.circuit.quantumcircuit import QuantumCircuit
from repro.circuit.serialization import circuit_from_payload, circuit_to_payload
from repro.server.client import SHARD_PROPERTY, RemoteCompileService
from repro.transpiler.exceptions import TranspilerError
from repro.transpiler.result_cache import job_fingerprint
from repro.transpiler.service import CACHE_PROPERTY, TARGET_PROPERTY, normalize_batch
from repro.transpiler.passes import IBM_BASIS
from repro.transpiler.passmanager import PropertySet, TranspileResult
from repro.transpiler.target import Target

__all__ = ["ShardRouter"]


class ShardRouter:
    """Target-affinity dispatch over several compile-server endpoints."""

    def __init__(
        self,
        shards: Sequence,
        *,
        timeout: float = 300.0,
        max_connections: int = 4,
        chunk_size: int | str = "auto",
        target: Target | str | None = None,
        basis_gates=IBM_BASIS,
        peer_cache: bool = True,
    ):
        """Args:
            shards: endpoint URLs and/or prebuilt
                :class:`RemoteCompileService` clients, one per shard.
            timeout / max_connections / chunk_size: forwarded to clients
                built from bare URLs (prebuilt clients keep their own).
            target / basis_gates: router-level defaults, mirroring the
                local service.
            peer_cache: consult the *other* shards' compiled-result
                caches (``GET /cache/<fingerprint>``) before dispatching
                a :meth:`map` job to its affine shard.  Only activates
                for batches whose ``pipeline`` and ``optimization_level``
                are explicit -- the client cannot reconstruct a server's
                defaults, and a wrong guess must miss, not mis-hit.
        """
        if not shards:
            raise TranspilerError("ShardRouter needs at least one shard endpoint")
        self.shards: list[RemoteCompileService] = [
            shard
            if isinstance(shard, RemoteCompileService)
            else RemoteCompileService(
                shard,
                timeout=timeout,
                max_connections=max_connections,
                chunk_size=chunk_size,
                basis_gates=basis_gates,
            )
            for shard in shards
        ]
        self._basis = tuple(basis_gates)
        self._default_target = (
            Target.coerce(target, basis=self._basis) if target is not None else None
        )
        self.peer_cache = bool(peer_cache)
        self._lock = threading.Lock()
        #: Target -> shard index; the affinity memory.
        self._affinity: dict[Target, int] = {}
        #: jobs routed per shard, the load-balance signal for new targets
        self._routed = [0] * len(self.shards)
        self._peer_lookups = 0
        self._peer_hits = 0
        self._pool: ThreadPoolExecutor | None = None
        self._closed = False

    # -- routing ------------------------------------------------------------

    @property
    def default_target(self) -> Target | None:
        return self._default_target

    def route(self, target: Target) -> int:
        """The shard index serving ``target`` (sticky; least-loaded on
        first sight).  Also counts the job against the shard's load."""
        with self._lock:
            index = self._affinity.get(target)
            if index is None:
                index = min(range(len(self.shards)), key=lambda i: self._routed[i])
                self._affinity[target] = index
            self._routed[index] += 1
            return index

    def _resolve_target(self, circuit: QuantumCircuit, target) -> Target:
        if target is not None:
            return Target.coerce(target, basis=self._basis)
        if self._default_target is not None:
            return self._default_target
        return Target.full(circuit.num_qubits, basis=self._basis)

    # -- service-mirror surface --------------------------------------------

    def submit(
        self,
        circuit: QuantumCircuit,
        *,
        target: Target | str | None = None,
        pipeline: str | None = None,
        optimization_level: int | None = None,
        seed: int | None = None,
        initial_layout=None,
        validate: str | None = None,
    ) -> Future:
        """Queue one compilation on the job's affine shard."""
        resolved = self._resolve_target(circuit, target)
        shard = self.shards[self.route(resolved)]
        return shard.submit(
            circuit,
            target=resolved,
            pipeline=pipeline,
            optimization_level=optimization_level,
            seed=seed,
            initial_layout=initial_layout,
            validate=validate,
        )

    def map(
        self,
        circuits: Sequence[QuantumCircuit],
        *,
        targets=None,
        seeds=None,
        pipeline: str | None = None,
        optimization_level: int | None = None,
        initial_layout=None,
        validate: str | None = None,
        chunk_size: int | str | None = None,
    ) -> list[TranspileResult]:
        """Fan a batch across the shards; blocks, preserves input order.

        Jobs are grouped by their routed shard, each group ships as that
        shard's own chunked sub-batch, and all shards compile
        concurrently -- the wall-clock is the slowest shard's, not the
        sum.
        """
        batch = list(circuits)
        if not batch:
            return []
        per_targets, per_seeds = normalize_batch(batch, targets, seeds)
        resolved = [
            self._resolve_target(circuit, target)
            for circuit, target in zip(batch, per_targets)
        ]
        routes = [self.route(target) for target in resolved]
        peer_served = self._peer_lookup(
            batch, resolved, routes, per_seeds,
            pipeline, optimization_level, initial_layout,
        )
        by_shard: dict[int, list[int]] = {}
        for index, shard_index in enumerate(routes):
            if index in peer_served:
                continue
            by_shard.setdefault(shard_index, []).append(index)

        def run_shard(shard_index: int, indices: list[int]) -> list[TranspileResult]:
            return self.shards[shard_index].map(
                [batch[i] for i in indices],
                targets=[resolved[i] for i in indices],
                seeds=[per_seeds[i] for i in indices],
                pipeline=pipeline,
                optimization_level=optimization_level,
                initial_layout=initial_layout,
                validate=validate,
                chunk_size=chunk_size,
            )

        pool = self._ensure_pool()
        futures = {
            shard_index: pool.submit(run_shard, shard_index, indices)
            for shard_index, indices in by_shard.items()
        }
        results: list[TranspileResult | None] = [None] * len(batch)
        for index, result in peer_served.items():
            results[index] = result
        first_error: BaseException | None = None
        for shard_index, indices in by_shard.items():
            try:
                shard_results = futures[shard_index].result()
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                if first_error is None:
                    first_error = exc
                continue
            for index, result in zip(indices, shard_results):
                results[index] = result
        if first_error is not None:
            raise first_error
        return results  # type: ignore[return-value]

    # -- peer cache lookup ---------------------------------------------------

    def _peer_lookup(
        self, batch, resolved, routes, per_seeds,
        pipeline, optimization_level, initial_layout,
    ) -> dict[int, TranspileResult]:
        """Results served by *other* shards' caches, by batch index.

        A target's affine shard checks its own cache the moment the job
        arrives; what it cannot see is an identical compile another shard
        already did (a re-pinned target, an overlapping client).  One
        ``GET /cache/<fingerprint>`` per peer answers that before the job
        ships.  Only runs when the batch's ``pipeline`` and
        ``optimization_level`` are explicit: the exact cache key includes
        them as the *server* resolves them, so defaults left to the
        server are unknowable here -- and the fingerprint must match
        exactly or not at all.  An unreachable or cache-less peer is a
        miss, never an error.
        """
        if (
            not self.peer_cache
            or len(self.shards) < 2
            or pipeline is None
            or optimization_level is None
            or initial_layout is not None
        ):
            return {}
        served: dict[int, TranspileResult] = {}
        for index, circuit in enumerate(batch):
            fingerprint = job_fingerprint(
                circuit_to_payload(circuit),
                resolved[index].to_payload(),
                (pipeline, optimization_level, per_seeds[index]),
            )
            if fingerprint is None:
                continue
            for shard_index, shard in enumerate(self.shards):
                if shard_index == routes[index]:
                    continue  # its own cache answers at dispatch anyway
                with self._lock:
                    self._peer_lookups += 1
                try:
                    value = shard.cache_lookup(fingerprint)
                except Exception:  # noqa: BLE001 - a dead peer is a miss
                    continue
                if value is None:
                    continue
                payload, metrics, loops, elapsed, props = value
                # content addressing ignores names; serve under the
                # requester's label, like the cache itself does
                payload = (payload[0], circuit.name) + tuple(payload[2:])
                properties = PropertySet(props)
                properties[TARGET_PROPERTY] = resolved[index]
                properties[SHARD_PROPERTY] = shard.endpoint
                properties[CACHE_PROPERTY] = "peer"
                served[index] = TranspileResult(
                    circuit=circuit_from_payload(payload),
                    properties=properties,
                    metrics=metrics,
                    loops=loops,
                    time=elapsed,
                )
                with self._lock:
                    self._peer_hits += 1
                break
        return served

    # -- introspection / lifecycle -----------------------------------------

    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._closed:
                raise TranspilerError("ShardRouter has been closed")
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=len(self.shards), thread_name_prefix="shard-router"
                )
            return self._pool

    def stats(self) -> dict:
        """Routing table + per-shard client/server stats (JSON-ready)."""
        with self._lock:
            affinity = {
                target.label: self.shards[index].endpoint
                for target, index in self._affinity.items()
            }
            routed = {
                shard.endpoint: count
                for shard, count in zip(self.shards, self._routed)
            }
            peer = {
                "enabled": self.peer_cache,
                "lookups": self._peer_lookups,
                "hits": self._peer_hits,
            }
        per_shard = {}
        for shard in self.shards:
            try:
                per_shard[shard.endpoint] = shard.stats()
            except TranspilerError as exc:
                per_shard[shard.endpoint] = {"unreachable": str(exc)}
        return {
            "num_shards": len(self.shards),
            "affinity": affinity,
            "jobs_routed": routed,
            "peer_cache": peer,
            "shards": per_shard,
        }

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)
        for shard in self.shards:
            shard.close()

    def shutdown(self, wait: bool = True, save: bool = True) -> None:
        """Service-surface alias of :meth:`close` (never stops the farm)."""
        self.close()

    def __enter__(self) -> "ShardRouter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        endpoints = ", ".join(shard.endpoint for shard in self.shards)
        return f"<ShardRouter [{endpoints}]>"
