"""``python -m repro.server`` -- boot a compile server from the shell.

Example: a warm-restarting RPO compile shard on port 8642::

    python -m repro.server --port 8642 --pipeline rpo \
        --snapshot-path /var/lib/repro/cache.snap --autosave-interval 60

Point clients at it with ``RemoteCompileService("http://host:8642")`` or
``transpile(..., executor="remote", endpoint="http://host:8642")``; check
``GET /healthz`` for liveness and ``GET /metrics`` for wire + service
counters.  SIGINT/SIGTERM (and ``POST /shutdown``) drain the pool and
persist the cache snapshot before exiting.
"""

from __future__ import annotations

import argparse
import signal
import threading

from repro.server.app import CompileServer
from repro.transpiler.frontend import PIPELINES
from repro.transpiler.result_cache import ResultCache
from repro.transpiler.service import SERVICE_MODES


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.server", description=__doc__
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=8642, help="bind port (0 = ephemeral)"
    )
    parser.add_argument(
        "--mode",
        default="process",
        choices=SERVICE_MODES,
        help="worker pool flavour (default: process)",
    )
    parser.add_argument(
        "--max-workers", type=int, default=None, help="pool width (default: cores-1)"
    )
    parser.add_argument(
        "--pipeline",
        default="preset",
        choices=PIPELINES,
        help="default pipeline for jobs that name none",
    )
    parser.add_argument(
        "--optimization-level",
        type=int,
        default=1,
        help="default preset level (default 1)",
    )
    parser.add_argument(
        "--target",
        default=None,
        help='default target preset for jobs that name none ("melbourne", '
        '"linear:5", ...)',
    )
    parser.add_argument(
        "--snapshot-path",
        default=None,
        help="disk-backed AnalysisCache snapshot (loaded at boot, saved at "
        "shutdown and by --autosave-interval)",
    )
    parser.add_argument(
        "--autosave-interval",
        type=float,
        default=0.0,
        help="seconds between background snapshot autosaves (0 = shutdown-only)",
    )
    parser.add_argument(
        "--harvest-interval",
        type=float,
        default=0.0,
        help="min seconds between worker cache-delta exports (0 = every chunk)",
    )
    parser.add_argument(
        "--no-result-cache",
        action="store_true",
        help="disable the compiled-result cache (every job compiles)",
    )
    parser.add_argument(
        "--result-cache-size",
        type=int,
        default=4096,
        help="LRU bound on exact result-cache entries (default 4096)",
    )
    parser.add_argument(
        "--result-cache-ttl",
        type=float,
        default=None,
        help="seconds a cached result stays servable (default: forever)",
    )
    parser.add_argument(
        "--verbose", action="store_true", help="log every HTTP request"
    )
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    result_cache = (
        False
        if args.no_result_cache
        else ResultCache(
            max_entries=args.result_cache_size, ttl=args.result_cache_ttl
        )
    )
    server = CompileServer(
        host=args.host,
        port=args.port,
        verbose=args.verbose,
        mode=args.mode,
        max_workers=args.max_workers,
        pipeline=args.pipeline,
        optimization_level=args.optimization_level,
        target=args.target,
        snapshot_path=args.snapshot_path,
        harvest_interval=args.harvest_interval,
        autosave_interval=args.autosave_interval,
        result_cache=result_cache,
    )

    def stop(signum, frame):  # noqa: ARG001 - signal signature
        # shutdown() must run off this thread: the handler interrupts the
        # very thread inside serve_forever, and BaseServer.shutdown()
        # waits for that loop to exit -- calling it here deadlocks.  The
        # spawned thread stops the loop; the finally block below then
        # finishes (and waits on) the full shutdown, snapshot included.
        print("shutting down", flush=True)
        threading.Thread(target=server.shutdown, daemon=True).start()

    signal.signal(signal.SIGINT, stop)
    signal.signal(signal.SIGTERM, stop)
    print(
        f"compile server listening on {server.endpoint} "
        f"(mode={args.mode}, pipeline={args.pipeline})",
        flush=True,
    )
    try:
        server.serve_forever()
    finally:
        server.shutdown()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
