"""The networked compile farm: an HTTP/RPC front over the compile stack.

This package turns the in-process
:class:`~repro.transpiler.service.CompileService` into a wire service so
compilation batches can be sharded across machines -- the scaling step
the compact job envelopes of :mod:`repro.circuit.serialization` were
shaped for.  Four pieces, bottom to top:

* :mod:`repro.server.protocol` -- versioned, length-prefixed frames
  (base64 blobs over JSON) carrying chunked job envelopes;
  anything malformed raises :class:`ProtocolError`.
* :mod:`repro.server.app` -- :class:`CompileServer`, a stdlib
  ``ThreadingHTTPServer`` wrapping one persistent service: ``POST
  /compile``, ``GET /healthz``, ``GET /metrics``, ``GET
  /cache/<fingerprint>`` (compiled-result peer lookup), ``POST
  /shutdown``.  ``python -m repro.server`` boots one from the shell.
* :mod:`repro.server.client` -- :class:`RemoteCompileService`, the
  drop-in client mirroring ``submit()``/``map()``; pass it anywhere a
  local service goes (``transpile(..., service=remote)``) or let the
  front-end build one (``executor="remote", endpoint=...``).
* :mod:`repro.server.router` -- :class:`ShardRouter`, fanning one batch
  across several endpoints with sticky target-affinity routing, so each
  shard keeps serving the devices whose analyses it already holds.
"""

from repro.server.app import CompileServer
from repro.server.client import SHARD_PROPERTY, RemoteCompileService
from repro.server.protocol import PROTOCOL_VERSION, ProtocolError
from repro.server.router import ShardRouter

__all__ = [
    "CompileServer",
    "RemoteCompileService",
    "ShardRouter",
    "ProtocolError",
    "PROTOCOL_VERSION",
    "SHARD_PROPERTY",
]
