"""The compile server's wire protocol: versioned, length-prefixed frames.

One frame is one message.  Its layout::

    +-------+---------+------------------+----------------+
    | magic | version | body length (u32)| JSON body ...  |
    | 4 B   | 1 B     | 4 B big-endian   | length bytes   |
    +-------+---------+------------------+----------------+

The body is UTF-8 JSON, so envelopes stay greppable on the wire and
debuggable with ``curl``; binary leaves -- the compact circuit payloads of
:mod:`repro.circuit.serialization`, :class:`~repro.transpiler.target.Target`
payloads, pickled pass metrics -- ride inside it as base64 *blobs*
(:func:`pack_blob` / :func:`unpack_blob`).  The frame header makes every
message self-delimiting independently of the HTTP transport, so the same
encoding works over a raw socket, a file, or a queue.

Malformed input of any flavour -- truncated frame, wrong magic, foreign
protocol version, length/body mismatch, non-JSON body, corrupt base64 or
pickle -- raises :class:`ProtocolError` (a
:class:`~repro.transpiler.exceptions.TranspilerError`), never a bare
``struct``/``json``/``pickle`` exception, so callers have exactly one
failure mode to handle and the server can map it to HTTP 400.

Job envelopes are **chunked**: one ``compile`` envelope carries any number
of jobs (each its own circuit + target + settings blob), so a huge batch
of cheap circuits costs one request per *chunk* rather than per circuit.
:func:`split_chunks` / :func:`merge_chunks` are the (index-preserving)
split/reassembly helpers the client and the shard router share.

Protocol version 2 added the compiled-result-cache vocabulary: ``result``
entries may carry a ``"cached"`` disposition (``"hit"``/``"template"``),
and the ``cache`` envelope answers the ``GET /cache/<fingerprint>``
peer-lookup route.  Version-1 frames (which simply lack those fields)
are still accepted; see :data:`ACCEPTED_VERSIONS`.
"""

from __future__ import annotations

import base64
import json
import pickle
import struct
from typing import Sequence

from repro.transpiler.exceptions import TranspilerError

__all__ = [
    "PROTOCOL_VERSION",
    "ACCEPTED_VERSIONS",
    "ProtocolError",
    "encode_frame",
    "decode_frame",
    "pack_blob",
    "unpack_blob",
    "encode_jobs",
    "decode_jobs",
    "encode_results",
    "decode_results",
    "decode_cached",
    "encode_cache_entry",
    "decode_cache_entry",
    "encode_error",
    "split_chunks",
    "merge_chunks",
]

#: Version byte of the frame header.  Version 2 added the result-cache
#: vocabulary: per-result ``"cached"`` dispositions inside ``result``
#: envelopes and the ``cache`` envelope of the peer-lookup route.
PROTOCOL_VERSION = 2

#: Versions this build decodes.  Version 1 frames differ only by the
#: *absence* of the cache fields, so they remain fully readable; frames
#: from the future are rejected.
ACCEPTED_VERSIONS = (1, 2)

_MAGIC = b"RPOC"
_HEADER = struct.Struct(">4sBI")

#: Frames above this are rejected before allocation -- a corrupt length
#: field must not make the receiver try to allocate gigabytes.
MAX_FRAME_BYTES = 256 * 1024 * 1024


class ProtocolError(TranspilerError):
    """A malformed, truncated or foreign-version wire message."""


# -- framing ----------------------------------------------------------------


def encode_frame(envelope: dict) -> bytes:
    """Serialize one envelope dict into a self-delimiting frame."""
    body = json.dumps(envelope, separators=(",", ":")).encode("utf-8")
    return _HEADER.pack(_MAGIC, PROTOCOL_VERSION, len(body)) + body


def decode_frame(data: bytes) -> dict:
    """Parse one frame; raises :class:`ProtocolError` on anything off."""
    if len(data) < _HEADER.size:
        raise ProtocolError(
            f"truncated frame: {len(data)} bytes is shorter than the "
            f"{_HEADER.size}-byte header"
        )
    magic, version, length = _HEADER.unpack_from(data)
    if magic != _MAGIC:
        raise ProtocolError(f"bad frame magic {magic!r} (expected {_MAGIC!r})")
    if version not in ACCEPTED_VERSIONS:
        raise ProtocolError(
            f"foreign protocol version {version} (this build speaks "
            f"{', '.join(map(str, ACCEPTED_VERSIONS))})"
        )
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame length {length} exceeds {MAX_FRAME_BYTES}")
    body = data[_HEADER.size :]
    if len(body) != length:
        raise ProtocolError(
            f"frame length mismatch: header promises {length} body bytes, "
            f"got {len(body)}"
        )
    try:
        envelope = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"frame body is not JSON: {exc}") from None
    if not isinstance(envelope, dict):
        raise ProtocolError(
            f"frame body must be a JSON object, got {type(envelope).__name__}"
        )
    return envelope


# -- binary leaves ----------------------------------------------------------


def pack_blob(obj) -> str:
    """Pickle ``obj`` and wrap it base64 for a JSON envelope."""
    return base64.b64encode(
        pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    ).decode("ascii")


def unpack_blob(blob: str):
    """Inverse of :func:`pack_blob`; :class:`ProtocolError` on corruption."""
    if not isinstance(blob, str):
        raise ProtocolError(f"blob must be a string, got {type(blob).__name__}")
    try:
        raw = base64.b64decode(blob.encode("ascii"), validate=True)
    except Exception as exc:
        raise ProtocolError(f"corrupt base64 blob: {exc}") from None
    try:
        return pickle.loads(raw)
    except Exception as exc:
        raise ProtocolError(f"corrupt pickle blob: {exc}") from None


# -- job / result envelopes -------------------------------------------------
#
# A job is (circuit_payload, target_payload, settings) -- exactly the tuple
# the CompileService's chunked worker envelope carries, so the server can
# hand decoded jobs straight to its service.  Settings may contain
# non-JSON values (an initial Layout, None-vs-absent distinctions), so the
# whole job tuple travels as one blob.


def encode_jobs(jobs: Sequence[tuple]) -> dict:
    """A ``compile`` envelope carrying one chunk of job tuples."""
    return {
        "type": "compile",
        "protocol": PROTOCOL_VERSION,
        "jobs": [pack_blob(job) for job in jobs],
    }


def decode_jobs(envelope: dict) -> list[tuple]:
    """Job tuples of a ``compile`` envelope; validates the shape."""
    if envelope.get("type") != "compile":
        raise ProtocolError(
            f"expected a 'compile' envelope, got {envelope.get('type')!r}"
        )
    blobs = envelope.get("jobs")
    if not isinstance(blobs, list):
        raise ProtocolError("compile envelope lacks a 'jobs' list")
    jobs = []
    for blob in blobs:
        job = unpack_blob(blob)
        if not isinstance(job, tuple) or len(job) != 3:
            raise ProtocolError(
                "job blob must decode to a (circuit, target, settings) tuple"
            )
        jobs.append(job)
    return jobs


def encode_results(outcomes: Sequence[tuple], cached: Sequence | None = None) -> dict:
    """A ``result`` envelope: per-job ``("ok", payloads)`` / ``("error", exc)``.

    Mirrors the chunked worker envelope's outcome shape -- errors stay
    per-job so one bad circuit reports *its* failure while its chunk-mates
    come back compiled.  ``cached`` (protocol 2) optionally tags each job
    with its result-cache disposition: ``"hit"``, ``"template"`` or
    ``None`` (freshly compiled).
    """
    if cached is None:
        cached = [None] * len(outcomes)
    results = []
    for (status, value), disposition in zip(outcomes, cached):
        if status == "ok":
            entry = {"ok": True, "blob": pack_blob(value)}
            if disposition is not None:
                entry["cached"] = disposition
            results.append(entry)
        else:
            results.append(
                {
                    "ok": False,
                    "error": str(value),
                    "kind": type(value).__name__,
                }
            )
    return {
        "type": "result",
        "protocol": PROTOCOL_VERSION,
        "results": results,
    }


def decode_results(envelope: dict) -> list[tuple]:
    """Outcome tuples of a ``result`` envelope (inverse of
    :func:`encode_results`); server-side errors come back as
    :class:`~repro.transpiler.exceptions.TranspilerError` instances."""
    if envelope.get("type") == "error":
        raise ProtocolError(
            f"server error: {envelope.get('error', 'unknown failure')}"
        )
    if envelope.get("type") != "result":
        raise ProtocolError(
            f"expected a 'result' envelope, got {envelope.get('type')!r}"
        )
    entries = envelope.get("results")
    if not isinstance(entries, list):
        raise ProtocolError("result envelope lacks a 'results' list")
    outcomes = []
    for entry in entries:
        if not isinstance(entry, dict):
            raise ProtocolError("result entry must be an object")
        if entry.get("ok"):
            blob = entry.get("blob")
            if blob is None:
                raise ProtocolError("ok-result entry lacks its 'blob'")
            outcomes.append(("ok", unpack_blob(blob)))
        else:
            message = entry.get("error", "job failed remotely")
            kind = entry.get("kind")
            label = f"{kind}: {message}" if kind not in (None, "TranspilerError") else message
            outcomes.append(("error", TranspilerError(label)))
    return outcomes


def decode_cached(envelope: dict) -> list:
    """Per-job cache dispositions of a ``result`` envelope.

    ``"hit"`` / ``"template"`` / ``None`` per entry, in job order.
    Version-1 envelopes (no ``cached`` keys) decode to all-``None``.
    """
    entries = envelope.get("results")
    if not isinstance(entries, list):
        raise ProtocolError("result envelope lacks a 'results' list")
    return [
        entry.get("cached") if isinstance(entry, dict) else None
        for entry in entries
    ]


# -- peer cache lookup (protocol 2) -----------------------------------------


def encode_cache_entry(fingerprint: str, result_payload) -> dict:
    """A ``cache`` envelope: one peer-lookup answer (the found case; a
    miss is an HTTP 404, no envelope needed)."""
    return {
        "type": "cache",
        "protocol": PROTOCOL_VERSION,
        "fingerprint": fingerprint,
        "blob": pack_blob(result_payload),
    }


def decode_cache_entry(envelope: dict):
    """The result payload of a ``cache`` envelope."""
    if envelope.get("type") != "cache":
        raise ProtocolError(
            f"expected a 'cache' envelope, got {envelope.get('type')!r}"
        )
    blob = envelope.get("blob")
    if blob is None:
        raise ProtocolError("cache envelope lacks its 'blob'")
    return unpack_blob(blob)


def encode_error(message: str) -> dict:
    """An ``error`` envelope for request-level failures (HTTP 400/500)."""
    return {"type": "error", "protocol": PROTOCOL_VERSION, "error": str(message)}


# -- chunking ---------------------------------------------------------------


def split_chunks(items: Sequence, chunk_size: int) -> list[list]:
    """Split ``items`` into consecutive chunks of at most ``chunk_size``."""
    if chunk_size < 1:
        raise ProtocolError(f"chunk_size must be >= 1, got {chunk_size}")
    items = list(items)
    return [items[i : i + chunk_size] for i in range(0, len(items), chunk_size)]


def merge_chunks(chunks: Sequence[Sequence]) -> list:
    """Reassemble :func:`split_chunks` output back into one flat list."""
    merged: list = []
    for chunk in chunks:
        merged.extend(chunk)
    return merged
