"""Virtual-to-physical qubit layouts."""

from __future__ import annotations

from typing import Mapping

from repro.transpiler.exceptions import TranspilerError

__all__ = ["Layout"]


class Layout:
    """A bijection between virtual (circuit) and physical (device) qubits."""

    def __init__(self, virtual_to_physical: Mapping[int, int] | None = None):
        self._v2p: dict[int, int] = {}
        self._p2v: dict[int, int] = {}
        if virtual_to_physical:
            for virtual, physical in virtual_to_physical.items():
                self.add(virtual, physical)

    @classmethod
    def trivial(cls, num_qubits: int) -> "Layout":
        return cls({i: i for i in range(num_qubits)})

    def add(self, virtual: int, physical: int) -> None:
        if virtual in self._v2p or physical in self._p2v:
            raise TranspilerError(
                f"layout collision adding virtual {virtual} -> physical {physical}"
            )
        self._v2p[virtual] = physical
        self._p2v[physical] = virtual

    def physical(self, virtual: int) -> int:
        return self._v2p[virtual]

    def virtual(self, physical: int) -> int:
        return self._p2v[physical]

    def swap_physical(self, a: int, b: int) -> None:
        """Update the layout after a SWAP on physical qubits ``a`` and ``b``."""
        virtual_a = self._p2v.get(a)
        virtual_b = self._p2v.get(b)
        if virtual_a is not None:
            self._v2p[virtual_a] = b
        if virtual_b is not None:
            self._v2p[virtual_b] = a
        self._p2v[a], self._p2v[b] = virtual_b, virtual_a
        if self._p2v[a] is None:
            del self._p2v[a]
        if self._p2v[b] is None:
            del self._p2v[b]

    @property
    def virtual_to_physical(self) -> dict[int, int]:
        return dict(self._v2p)

    @property
    def physical_to_virtual(self) -> dict[int, int]:
        return dict(self._p2v)

    def copy(self) -> "Layout":
        return Layout(self._v2p)

    def __len__(self) -> int:
        return len(self._v2p)

    def __eq__(self, other) -> bool:
        if not isinstance(other, Layout):
            return NotImplemented
        return self._v2p == other._v2p

    def __repr__(self) -> str:
        mapping = ", ".join(f"{v}->{p}" for v, p in sorted(self._v2p.items()))
        return f"<Layout {mapping}>"
