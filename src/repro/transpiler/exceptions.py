"""Transpiler error types."""


class TranspilerError(Exception):
    """Raised when a transpiler pass cannot complete."""
