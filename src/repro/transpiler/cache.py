"""Shared analysis cache for the pass scheduler.

One :class:`AnalysisCache` instance rides along a pipeline run (stored in
the property set under :attr:`AnalysisCache.PROPERTY_KEY`) and memoizes the
derived data every pass otherwise recomputes from scratch:

* **gate matrices** -- keyed by gate identity (name, parameters, control
  state), so the thousands of ``to_matrix()`` requests the state trackers,
  1q fusion and block consolidation issue per transpilation collapse to one
  construction per distinct gate.  Parameter-free standard gates resolve
  through the immutable module-level table in
  :mod:`repro.gates.matrices` and never count as constructions at all.
* **same-pair adjacency** (:func:`repro.rpo.adjacency.same_pair_adjacent_indices`)
  and **per-wire instruction indices** -- keyed by a structural circuit
  fingerprint, so QBO and QPO (which both guard their SWAP rewrites on the
  same adjacency map) share one computation when they see the same circuit.
* **DAG views** -- keyed by the fingerprint plus operation identity; the
  keyed circuit is kept alive so identity keys stay valid.

Caches are invalidated implicitly: a rewritten circuit has a different
fingerprint, so stale entries are simply never hit again.  The cache is
therefore safe to share across pipeline runs -- that sharing is exactly
what makes a second run of the paper's Table II workloads construct far
fewer matrices (see ``tests/transpiler/test_cache.py``).

``stats`` counts hits/misses/uncached requests per family.  Per-pass
rewrite counts deliberately do NOT live here: the cache may be shared by
concurrent runs, so they go into the per-run property set instead (see
:func:`rewrite_counter`), which the pass manager snapshots around each
pass to attach rewrite counts to its metrics.

Entry counts are bounded (FIFO eviction) so a cache shared by a long-lived
service cannot grow without limit.

Caches also cross process boundaries: :meth:`AnalysisCache.export_snapshot`
produces a picklable warm-start snapshot of the value-keyed families
(matrices, adjacency, wire indices -- DAG views are identity-keyed and stay
local), and :meth:`AnalysisCache.import_snapshot` merges one in.  The
:class:`~repro.transpiler.service.CompileService` warm-starts every worker
from the parent's snapshot and harvests worker deltas (entries plus
hit/miss stats accrued since the last export) back with job results.

Snapshots also persist across process *restarts*: :meth:`AnalysisCache.save`
writes the snapshot to disk stamped with a library fingerprint, and
:meth:`AnalysisCache.load` / :meth:`AnalysisCache.load_snapshot` restore it.
Restoring is deliberately forgiving -- a snapshot written by a different
library version (or a corrupt/missing file) is a no-op rather than an
error, so a service can always boot from whatever snapshot it finds.  The
rejection is *observable*, though: a :class:`RuntimeWarning` names both
fingerprints, :attr:`AnalysisCache.snapshot_skipped` records the reason,
and ``stats["snapshot_rejected"]`` counts occurrences, so an operator can
tell why warm-start did not kick in.
"""

from __future__ import annotations

import os
import pickle
import warnings
from collections import Counter
from typing import TYPE_CHECKING

import numpy as np

from repro.circuit.instruction import ControlledGate, Instruction

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.circuit.quantumcircuit import QuantumCircuit

__all__ = ["AnalysisCache", "library_fingerprint", "rewrite_counter"]


def library_fingerprint() -> str:
    """Version stamp written into persisted snapshots.

    Combines the package version with the snapshot wire-format version:
    a snapshot written by any other combination is silently ignored on
    import, because cached matrices/analyses may not match what the
    current code would compute.
    """
    import repro

    return f"repro-{repro.__version__}/snapshot-{AnalysisCache.SNAPSHOT_VERSION}"

#: FIFO caps per cache family -- far above any single pipeline's working
#: set, low enough that a cache shared across many runs stays bounded.
_MAX_MATRICES = 4096
_MAX_CIRCUIT_VIEWS = 512


def rewrite_counter(property_set) -> Counter:
    """The per-run rewrite counter, stored in the property set.

    Lives on the property set (one per run) rather than on the shared
    :class:`AnalysisCache` so concurrent runs never see each other's
    counts; the pass manager diffs it around each pass execution.
    """
    counter = None
    if property_set is not None:
        counter = property_set.get("rewrite_counts")
    if not isinstance(counter, Counter):
        counter = Counter()
        if property_set is not None:
            property_set["rewrite_counts"] = counter
    return counter


def _bounded_insert(table: dict, key, value, limit: int) -> None:
    """Insert with FIFO eviction once ``limit`` entries are reached."""
    if len(table) >= limit:
        table.pop(next(iter(table)))
    table[key] = value

#: Gates whose matrix is fully determined by ``(name, num_qubits, params)``.
#: Anything else (e.g. ``UnitaryGate``, ad-hoc inverses) is left uncached --
#: caching by name would be unsound for gates carrying hidden state.
_CACHEABLE_NAMES = frozenset(
    {
        "id", "x", "y", "z", "h", "s", "sdg", "t", "tdg", "sx",
        "u1", "u2", "u3", "rx", "ry", "rz",
        "cx", "cy", "cz", "ch", "cp", "crx", "cry", "crz", "cu3",
        "swap", "swapz", "iswap",
        "ccx", "ccz", "cswap", "mcx", "mcz", "mcu1", "mcx_vchain",
    }
)


def _matrix_key(operation: Instruction):
    """Hashable identity of a gate's unitary, or ``None`` if uncacheable."""
    params = []
    for param in operation.params:
        if isinstance(param, (int, float)) and not isinstance(param, bool):
            params.append(float(param))
        else:
            return None  # matrices, symbols, ... -- not value-keyable
    if isinstance(operation, ControlledGate):
        base_key = _matrix_key(operation.base_gate)
        if base_key is None:
            return None
        return (
            operation.name,
            operation.num_qubits,
            tuple(params),
            operation.ctrl_state,
            base_key,
        )
    if operation.name not in _CACHEABLE_NAMES:
        return None
    return (operation.name, operation.num_qubits, tuple(params))


def _structural_fingerprint(circuit: "QuantumCircuit", with_identity: bool = False):
    """Precise structural key: per-instruction (name, qubits, clbits).

    With ``with_identity`` the operation objects themselves join the key
    (needed when the cached artifact holds references to them, e.g. DAGs).
    """
    if with_identity:
        body = tuple(
            (id(inst.operation), inst.qubits, inst.clbits) for inst in circuit.data
        )
    else:
        body = tuple(
            (inst.operation.name, inst.qubits, inst.clbits) for inst in circuit.data
        )
    return (circuit.num_qubits, circuit.num_clbits, body)


class AnalysisCache:
    """Memoized analysis results shared by the passes of a pipeline run."""

    #: Key under which the pass manager stores the cache in the property set.
    PROPERTY_KEY = "analysis_cache"

    #: Version tag of the warm-start snapshot wire format.
    SNAPSHOT_VERSION = 1

    def __init__(self):
        self._matrices: dict = {}
        self._adjacency: dict = {}
        self._wire_indices: dict = {}
        self._dags: dict = {}
        #: keys already shared through import/export -- the delta baseline
        self._shared: dict[str, set] = {
            "matrices": set(),
            "adjacency": set(),
            "wire_indices": set(),
        }
        self.stats: Counter = Counter()
        #: stats totals as of the last delta export (for incremental stats)
        self._stats_exported: Counter = Counter()
        #: why the most recent snapshot import was rejected (``None`` when
        #: nothing was rejected) -- surfaced by ``CompileService.stats()``
        #: so operators can tell why warm-start did not kick in
        self.snapshot_skipped: str | None = None

    @classmethod
    def ensure(cls, property_set) -> "AnalysisCache":
        """The run's cache; installs a fresh one into the property set if
        missing, so directly-invoked passes still share within a run."""
        cache = None
        if property_set is not None:
            cache = property_set.get(cls.PROPERTY_KEY)
        if not isinstance(cache, AnalysisCache):
            cache = cls()
            if property_set is not None:
                property_set[cls.PROPERTY_KEY] = cache
        return cache

    # -- gate matrices -----------------------------------------------------

    def matrix(self, operation: Instruction) -> np.ndarray:
        """Memoized ``operation.to_matrix()``.

        Returned arrays are read-only and shared -- callers must not mutate
        them (compose into fresh arrays instead, as all passes already do).
        """
        if not operation.params and not isinstance(operation, ControlledGate):
            from repro.gates.matrices import standard_gate_matrix

            shared = standard_gate_matrix(operation.name)
            if shared is not None and shared.shape == (2**operation.num_qubits,) * 2:
                self.stats["matrix_table"] += 1
                return shared
        key = _matrix_key(operation)
        if key is None:
            self.stats["matrix_uncached"] += 1
            return operation.to_matrix()
        cached = self._matrices.get(key)
        if cached is not None:
            self.stats["matrix_hits"] += 1
            return cached
        self.stats["matrix_misses"] += 1
        matrix = operation.to_matrix()
        if matrix.flags.writeable:
            matrix.setflags(write=False)
        _bounded_insert(self._matrices, key, matrix, _MAX_MATRICES)
        return matrix

    def matrices(self, operations) -> list[np.ndarray]:
        """Bulk memoized lookup: one matrix per operation, in order.

        The batched passes (block consolidation, 1q-run merging, simulator
        gate fusion) gather *all* their operand matrices up front before one
        stacked reduction; this entry point keeps that gather cheap by
        resolving repeats of the same gate within the request against a
        local memo (one shared-cache probe per distinct gate instead of one
        per occurrence).
        """
        local: dict = {}
        out: list[np.ndarray] = []
        for operation in operations:
            key = _matrix_key(operation)
            if key is None:
                out.append(self.matrix(operation))
                continue
            hit = local.get(key)
            if hit is None:
                hit = self.matrix(operation)
                local[key] = hit
            else:
                self.stats["matrix_hits"] += 1
            out.append(hit)
        return out

    @property
    def matrix_constructions(self) -> int:
        """Matrices actually built on behalf of callers (miss + uncached).

        The seed code path built one matrix per request, i.e. this would
        equal ``matrix_requests``; the gap is the cache's saving.
        """
        return self.stats["matrix_misses"] + self.stats["matrix_uncached"]

    @property
    def matrix_requests(self) -> int:
        return (
            self.stats["matrix_hits"]
            + self.stats["matrix_misses"]
            + self.stats["matrix_uncached"]
            + self.stats["matrix_table"]
        )

    # -- circuit-level views ----------------------------------------------

    def same_pair_adjacency(self, circuit: "QuantumCircuit") -> set[int]:
        """Memoized :func:`repro.rpo.adjacency.same_pair_adjacent_indices`."""
        from repro.rpo.adjacency import same_pair_adjacent_indices

        key = _structural_fingerprint(circuit)
        cached = self._adjacency.get(key)
        if cached is not None:
            self.stats["adjacency_hits"] += 1
            return cached
        self.stats["adjacency_misses"] += 1
        result = same_pair_adjacent_indices(circuit)
        _bounded_insert(self._adjacency, key, result, _MAX_CIRCUIT_VIEWS)
        return result

    def wire_indices(self, circuit: "QuantumCircuit") -> dict[int, list[int]]:
        """Per-qubit ordered instruction indices (a cheap DAG projection)."""
        key = _structural_fingerprint(circuit)
        cached = self._wire_indices.get(key)
        if cached is not None:
            self.stats["wire_indices_hits"] += 1
            return cached
        self.stats["wire_indices_misses"] += 1
        wires: dict[int, list[int]] = {q: [] for q in range(circuit.num_qubits)}
        for index, instruction in enumerate(circuit.data):
            for qubit in instruction.qubits:
                wires[qubit].append(index)
        _bounded_insert(self._wire_indices, key, wires, _MAX_CIRCUIT_VIEWS)
        return wires

    def dag(self, circuit: "QuantumCircuit"):
        """Memoized DAG view of the circuit.

        Keyed on operation identity; the circuit is retained alongside the
        DAG so the identity key cannot be recycled while the entry lives.
        """
        from repro.circuit.converters import circuit_to_dag

        key = _structural_fingerprint(circuit, with_identity=True)
        cached = self._dags.get(key)
        if cached is not None:
            self.stats["dag_hits"] += 1
            return cached[1]
        self.stats["dag_misses"] += 1
        dag = circuit_to_dag(circuit)
        _bounded_insert(self._dags, key, (circuit, dag), _MAX_CIRCUIT_VIEWS)
        return dag

    # -- warm-start snapshots ----------------------------------------------
    #
    # The process-pool executor ships these across process boundaries: the
    # parent exports its warm cache once at pool init, every worker imports
    # it, and workers ship back deltas (entries they computed that the
    # parent has not seen) for merging.  Only value-keyed families travel:
    # matrices, adjacency and wire indices are keyed by gate parameters or
    # structural fingerprints, both stable across processes.  DAG views are
    # keyed by operation *identity* (``id()``), which is meaningless in
    # another process, so they never leave home.

    _SNAPSHOT_FAMILIES = ("matrices", "adjacency", "wire_indices")

    def _family_table(self, family: str) -> dict:
        return getattr(self, f"_{family}")

    def export_snapshot(self, delta_only: bool = False) -> dict:
        """A picklable warm-start snapshot of every portable cache family.

        With ``delta_only`` the snapshot contains only entries added since
        the last :meth:`import_snapshot` / :meth:`export_snapshot` call, and
        those entries are marked shared -- repeated delta exports from a
        long-lived worker stay incremental.  Delta snapshots also carry the
        ``stats`` accrued since the previous export, so a parent merging
        worker deltas sees the workers' hit/miss counts, not just their
        cache entries.
        """
        snapshot: dict = {"version": self.SNAPSHOT_VERSION}
        for family in self._SNAPSHOT_FAMILIES:
            table = self._family_table(family)
            shared = self._shared[family]
            if delta_only:
                entries = {k: v for k, v in table.items() if k not in shared}
            else:
                entries = dict(table)
            shared.update(entries)
            snapshot[family] = entries
        if delta_only:
            snapshot["stats"] = dict(self.stats - self._stats_exported)
            self._stats_exported = Counter(self.stats)
        return snapshot

    def import_snapshot(self, snapshot: dict) -> int:
        """Merge a snapshot from another cache; returns entries adopted.

        Existing entries win (they may already be referenced by callers);
        imported entries count as shared, so a later delta export does not
        echo them back to their origin.  Imports respect the same FIFO
        bounds as organic inserts.

        A snapshot written by a different snapshot format or library
        version (the ``"library"`` stamp :meth:`save` adds) is a
        **non-fatal no-op**: the method returns 0, counts the rejection in
        ``stats["snapshot_rejected"]``, records the reason in
        :attr:`snapshot_skipped` and emits a :class:`RuntimeWarning`
        naming both fingerprints.  Persisted snapshots outliving the code
        that wrote them is the normal case for a long-lived service, not
        an error -- but an operator debugging a cold warm-start needs to
        see which version wrote the snapshot being ignored.
        """
        if not isinstance(snapshot, dict):
            return self._reject_snapshot(
                f"not a snapshot mapping (got {type(snapshot).__name__})"
            )
        if snapshot.get("version") != self.SNAPSHOT_VERSION:
            return self._reject_snapshot(
                f"snapshot format version {snapshot.get('version')!r} != "
                f"this build's {self.SNAPSHOT_VERSION!r}"
            )
        stamp = snapshot.get("library")
        if stamp is not None and stamp != library_fingerprint():
            return self._reject_snapshot(
                f"snapshot written by {stamp!r}, this build is "
                f"{library_fingerprint()!r}"
            )
        limits = {
            "matrices": _MAX_MATRICES,
            "adjacency": _MAX_CIRCUIT_VIEWS,
            "wire_indices": _MAX_CIRCUIT_VIEWS,
        }
        adopted = 0
        self.stats.update(snapshot.get("stats", {}))
        for family in self._SNAPSHOT_FAMILIES:
            table = self._family_table(family)
            shared = self._shared[family]
            for key, value in snapshot.get(family, {}).items():
                shared.add(key)
                if key in table:
                    continue
                if family == "matrices" and value.flags.writeable:
                    value.setflags(write=False)  # pickling re-enables writes
                _bounded_insert(table, key, value, limits[family])
                adopted += 1
        self.stats["snapshot_imports"] += 1
        self.stats["snapshot_entries_adopted"] += adopted
        return adopted

    def _reject_snapshot(self, reason: str) -> int:
        """Record + warn about an unusable snapshot; always returns 0."""
        self.stats["snapshot_rejected"] += 1
        self.snapshot_skipped = reason
        warnings.warn(
            f"ignoring analysis-cache snapshot: {reason}; starting cold",
            RuntimeWarning,
            stacklevel=3,
        )
        return 0

    # -- disk persistence --------------------------------------------------

    def save(self, path) -> None:
        """Persist a full warm-start snapshot to ``path``.

        The snapshot is stamped with :func:`library_fingerprint`, so a
        later :meth:`load` by a different library version quietly starts
        cold instead of adopting possibly-stale entries.  Written
        atomically (tmp file + rename) so a crash mid-save never leaves a
        truncated snapshot behind.
        """
        snapshot = self.export_snapshot()
        snapshot["library"] = library_fingerprint()
        tmp_path = f"{path}.tmp.{os.getpid()}"
        with open(tmp_path, "wb") as handle:
            pickle.dump(snapshot, handle, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp_path, path)

    def load_snapshot(self, path) -> int:
        """Merge a persisted snapshot from disk; returns entries adopted.

        Missing files, unreadable or malformed pickles (including ones
        referencing renamed modules from other library versions) and
        version-mismatched snapshots are all non-fatal no-ops (returning
        0), mirroring :meth:`import_snapshot`'s tolerance -- a service
        must always be able to boot, cold at worst, from whatever it
        finds.  A *missing* file is the expected first boot and stays
        quiet; anything present-but-unusable warns and sets
        :attr:`snapshot_skipped` so the cold start is explainable.
        """
        try:
            with open(path, "rb") as handle:
                snapshot = pickle.load(handle)
        except FileNotFoundError:
            return 0
        except Exception as exc:
            return self._reject_snapshot(
                f"could not read snapshot {str(path)!r} "
                f"({type(exc).__name__}: {exc})"
            )
        return self.import_snapshot(snapshot)

    @classmethod
    def load(cls, path) -> "AnalysisCache":
        """A fresh cache warm-started from a persisted snapshot (if valid)."""
        cache = cls()
        cache.load_snapshot(path)
        return cache

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<AnalysisCache matrices={len(self._matrices)} "
            f"requests={self.matrix_requests} "
            f"constructions={self.matrix_constructions}>"
        )
