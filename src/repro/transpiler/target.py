"""A first-class compilation target: basis + connectivity + calibration.

A :class:`Target` bundles everything the pipelines need to know about the
hardware a circuit is compiled for -- the native basis gates, the
:class:`~repro.transpiler.coupling.CouplingMap`, and (optionally) the
device's :class:`~repro.backends.backend.BackendProperties` calibration
data -- into one hashable, picklable value object.  Before this module the
same information was smeared across loose ``coupling`` / ``basis`` /
``backend_properties`` keyword arguments on every pass-manager factory;
now :func:`repro.transpiler.frontend.pass_manager_for`, the preset levels
and the RPO/Hoare pipelines all consume a ``Target``, and the executor
layer routes on it, which is what lets a single ``transpile()`` batch mix
circuits bound for different devices (heterogeneous multi-backend
compilation) and lets metrics break a batch down per target.

Key properties:

* **hashable / comparable** -- two targets with the same name, basis,
  edges and calibration data hash and compare equal, so targets work as
  dictionary keys (per-target metric grouping, worker-side memoization).
* **picklable and compact** -- targets cross process boundaries both via
  plain pickle and via the compact payload form used by the
  :class:`~repro.transpiler.service.CompileService` job envelopes
  (:meth:`Target.to_payload` / :meth:`Target.from_payload`).
* **named presets** -- :meth:`Target.preset` resolves the paper's three
  devices (``"melbourne"``, ``"almaden"``, ``"rochester"``), an
  ``ibmq_manhattan``-style 65-qubit grid (``"manhattan"``), and
  parameterized families: ``"linear:N"``, ``"ring:N"``, ``"grid:RxC"``
  and ``"full:N"``.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.transpiler.coupling import CouplingMap
from repro.transpiler.exceptions import TranspilerError
from repro.transpiler.passes.unroller import IBM_BASIS

__all__ = ["Target", "TARGET_PRESETS"]

TARGET_PAYLOAD_VERSION = 1


def _properties_key(properties):
    """Canonical hashable form of a BackendProperties, or ``None``."""
    if properties is None:
        return None
    return (
        tuple(sorted(properties.single_qubit_error.items())),
        tuple(sorted((tuple(k), v) for k, v in properties.two_qubit_error.items())),
        tuple(sorted(properties.readout_error.items())),
        properties.default_single_qubit_error,
        properties.default_two_qubit_error,
        tuple(properties.default_readout_error),
    )


class Target:
    """Hashable, picklable description of a compilation target."""

    __slots__ = ("name", "basis", "coupling_map", "properties", "_key", "_hash")

    def __init__(
        self,
        coupling_map: CouplingMap,
        basis: Iterable[str] = IBM_BASIS,
        properties=None,
        name: str = "custom",
    ):
        if not isinstance(coupling_map, CouplingMap):
            raise TranspilerError(
                f"Target needs a CouplingMap, got {type(coupling_map).__name__}"
            )
        self.name = str(name)
        self.basis = tuple(basis)
        self.coupling_map = coupling_map
        self.properties = properties
        self._key = (
            self.name,
            self.basis,
            coupling_map.num_qubits,
            frozenset(coupling_map.edges),
            _properties_key(properties),
        )
        self._hash = hash(self._key)

    # -- construction ------------------------------------------------------

    @classmethod
    def from_backend(cls, backend, basis: Iterable[str] = IBM_BASIS) -> "Target":
        """Target of a :class:`~repro.backends.backend.FakeBackend`."""
        return cls(
            backend.coupling_map,
            basis=basis,
            properties=backend.properties,
            name=backend.name,
        )

    @classmethod
    def full(cls, num_qubits: int, basis: Iterable[str] = IBM_BASIS) -> "Target":
        """All-to-all connectivity -- the no-device default."""
        return cls(
            CouplingMap.full(num_qubits), basis=basis, name=f"full:{num_qubits}"
        )

    @classmethod
    def preset(cls, spec: str, basis: Iterable[str] = IBM_BASIS) -> "Target":
        """Resolve a named preset target (see :data:`TARGET_PRESETS`)."""
        name = spec.strip().lower()
        factory = TARGET_PRESETS.get(name.split(":", 1)[0])
        if factory is None:
            raise TranspilerError(
                f"unknown target preset {spec!r}; choose one of "
                f"{', '.join(sorted(TARGET_PRESETS))} "
                "(parameterized presets take ':N' / ':RxC' suffixes)"
            )
        return factory(name, basis)

    @classmethod
    def coerce(
        cls,
        value,
        basis: Iterable[str] = IBM_BASIS,
        properties=None,
        name: str | None = None,
    ) -> "Target":
        """Normalize any target-like value into a :class:`Target`.

        Accepts a ``Target`` (returned unchanged), a preset name string, a
        bare :class:`CouplingMap` (wrapped with the given basis/properties)
        or a backend object exposing ``coupling_map`` and ``properties``.
        This is the back-compat shim that lets the pass-manager factories
        keep accepting the historical loose keyword arguments.
        """
        if isinstance(value, Target):
            return value
        if isinstance(value, str):
            return cls.preset(value, basis=basis)
        if isinstance(value, CouplingMap):
            return cls(value, basis=basis, properties=properties, name=name or "custom")
        if hasattr(value, "coupling_map") and hasattr(value, "properties"):
            return cls.from_backend(value, basis=basis)
        raise TranspilerError(
            f"cannot build a Target from {type(value).__name__}"
        )

    # -- value semantics ---------------------------------------------------

    @property
    def num_qubits(self) -> int:
        return self.coupling_map.num_qubits

    @property
    def label(self) -> str:
        """Short stable identifier used for per-target metric grouping."""
        return f"{self.name}[{self.num_qubits}q]"

    def __eq__(self, other) -> bool:
        return isinstance(other, Target) and self._key == other._key

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return (
            f"<Target {self.name!r} ({self.num_qubits} qubits, "
            f"{len(self.coupling_map.edges)} edges, basis={'/'.join(self.basis)})>"
        )

    def __getstate__(self):
        return self.to_payload()

    def __setstate__(self, state):
        rebuilt = Target.from_payload(state)
        for slot in ("name", "basis", "coupling_map", "properties", "_key", "_hash"):
            object.__setattr__(self, slot, getattr(rebuilt, slot))

    # -- compact payloads --------------------------------------------------
    #
    # The service's job envelopes ship one payload per job; workers
    # memoize the rebuilt Target keyed by the (hashable) payload so the
    # coupling map's derived data (distance matrix) is computed once per
    # distinct target per worker, not once per job.

    def to_payload(self) -> tuple:
        """Flatten to a compact, hashable, picklable tuple."""
        properties = None
        if self.properties is not None:
            properties = _properties_key(self.properties)
        return (
            TARGET_PAYLOAD_VERSION,
            self.name,
            self.basis,
            self.num_qubits,
            tuple(sorted(self.coupling_map.edges)),
            properties,
        )

    @classmethod
    def from_payload(cls, payload: tuple) -> "Target":
        """Rebuild the :class:`Target` a payload describes."""
        version, name, basis, num_qubits, edges, props = payload
        if version != TARGET_PAYLOAD_VERSION:
            raise TranspilerError(f"unsupported target payload version {version}")
        properties = None
        if props is not None:
            from repro.backends.backend import BackendProperties

            single, two, readout, d_single, d_two, d_readout = props
            properties = BackendProperties(
                single_qubit_error=dict(single),
                two_qubit_error={tuple(k): v for k, v in two},
                readout_error=dict(readout),
                default_single_qubit_error=d_single,
                default_two_qubit_error=d_two,
                default_readout_error=tuple(d_readout),
            )
        return cls(
            CouplingMap(edges, num_qubits=num_qubits),
            basis=basis,
            properties=properties,
            name=name,
        )


# -- named presets ---------------------------------------------------------


def _reject_suffix(name: str) -> None:
    """Fixed-size presets take no ':N' suffix -- fail loudly, not with a
    silently wrong-sized device."""
    base, _, suffix = name.partition(":")
    if suffix:
        raise TranspilerError(
            f"preset {base!r} has a fixed size; drop the {suffix!r} suffix"
        )


def _device_preset(factory_name: str):
    def build(name: str, basis) -> Target:
        import repro.backends as backends

        _reject_suffix(name)
        return Target.from_backend(getattr(backends, factory_name)(), basis=basis)

    return build


def _int_suffix(name: str, default: int | None = None) -> int:
    _, _, suffix = name.partition(":")
    if not suffix:
        if default is None:
            raise TranspilerError(f"preset {name!r} needs a ':N' size suffix")
        return default
    try:
        return int(suffix)
    except ValueError:
        raise TranspilerError(f"bad size suffix in target preset {name!r}") from None


def _linear(name: str, basis) -> Target:
    n = _int_suffix(name)
    return Target(CouplingMap.line(n), basis=basis, name=f"linear:{n}")


def _ring(name: str, basis) -> Target:
    n = _int_suffix(name)
    return Target(CouplingMap.ring(n), basis=basis, name=f"ring:{n}")


def _full(name: str, basis) -> Target:
    n = _int_suffix(name)
    return Target(CouplingMap.full(n), basis=basis, name=f"full:{n}")


def _grid(name: str, basis) -> Target:
    _, _, suffix = name.partition(":")
    try:
        rows, cols = (int(part) for part in suffix.split("x"))
    except ValueError:
        raise TranspilerError(
            f"grid preset needs a ':RxC' suffix, got {name!r}"
        ) from None
    return Target(CouplingMap.grid(rows, cols), basis=basis, name=f"grid:{rows}x{cols}")


def _manhattan(name: str, basis) -> Target:
    """An ``ibmq_manhattan``-style 65-qubit grid (5 x 13 stand-in)."""
    _reject_suffix(name)
    return Target(CouplingMap.grid(5, 13), basis=basis, name="manhattan")


#: Preset name (before any ``:`` suffix) -> ``factory(full_name, basis)``.
TARGET_PRESETS: dict[str, object] = {
    "melbourne": _device_preset("FakeMelbourne"),
    "almaden": _device_preset("FakeAlmaden"),
    "rochester": _device_preset("FakeRochester"),
    "manhattan": _manhattan,
    "linear": _linear,
    "ring": _ring,
    "grid": _grid,
    "full": _full,
}


def resolve_targets(
    batch: Sequence,
    target,
    backend,
    coupling_map,
    backend_properties,
    basis_gates,
) -> list[Target]:
    """Per-circuit targets for a batch, from whichever form the caller used.

    Precedence: an explicit ``target`` (one value or a per-circuit
    sequence) wins over ``backend``, which wins over a loose
    ``coupling_map``/``backend_properties`` pair; with none of those, each
    circuit gets an all-to-all target of its own width.
    """
    if target is not None:
        if isinstance(target, (list, tuple)):
            if len(target) != len(batch):
                raise TranspilerError(
                    f"got {len(target)} targets for {len(batch)} circuits"
                )
            return [Target.coerce(t, basis=basis_gates) for t in target]
        return [Target.coerce(target, basis=basis_gates)] * len(batch)
    if backend is not None:
        return [Target.from_backend(backend, basis=basis_gates)] * len(batch)
    if coupling_map is not None:
        return [
            Target(coupling_map, basis=basis_gates, properties=backend_properties)
        ] * len(batch)
    # all-to-all fallback; calibration data, if any, still rides along so
    # noise-aware layout keeps seeing it (as the pre-Target frontend did)
    by_width: dict[int, Target] = {}
    return [
        by_width.setdefault(
            circuit.num_qubits,
            Target(
                CouplingMap.full(circuit.num_qubits),
                basis=basis_gates,
                properties=backend_properties,
                name=f"full:{circuit.num_qubits}",
            ),
        )
        for circuit in batch
    ]
