"""Content-addressed compiled-result cache: compile once, serve millions.

The :class:`~repro.transpiler.cache.AnalysisCache` memoizes *analysis*;
this module memoizes the *answer*.  A :class:`ResultCache` maps

    (circuit content fingerprint, Target payload, options key)

to the full compiled-result payload (circuit + per-pass metrics + loop
metrics + wall time + properties), so a :class:`CompileService` serving
production traffic answers a repeated request without a single job
reaching its pool.  Keys are SHA-256 digests of the canonical tuple forms
(:func:`repro.circuit.serialization.payload_fingerprints`,
:meth:`Target.to_payload`, :func:`~repro.transpiler.options.options_cache_key`),
which makes them compact strings a compile server can expose for peer
lookups (``GET /cache/<fingerprint>``) and a :class:`ShardRouter` can ask
other shards about before dispatching a compile.

**Template entries** are the headline lever for near-duplicate traffic.
Millions of VQE iterations submit the *same ansatz with different bound
rotation angles*; the template fingerprint canonicalizes those angles out
of the structural key, so every iteration lands on one template entry.
Serving from a template requires knowing how the *output* angles depend
on the *input* angles, which the cache **learns from observation** rather
than assuming: the first compile of a template records the input/output
pair; a later compile in which **every** rotation angle differs from
the first sample yields a usable second pair (pairs that move only some
inputs are deferred -- an unmoved input cannot be implicated, so
learning from such a pair would bake its value into the map; the
global-phase input alone may stay tied, which pins template serves to
that phase), and the
two samples are solved per output slot for a relation of the form
``out = s * theta[i] + c`` with ``s`` drawn from a small discrete set
(+-1, +-1/2, +-2 -- the scales the standard decompositions produce).  A
slot that fits no single-input relation (an Euler merge mixing several
angles, an angle-dependent rewrite branch) marks the template
*unbindable* and traffic falls back to exact-key caching; a template
whose every slot resolves is *ready*, and from the third variant on the
cache answers by re-binding parameters on the cached result -- no pool
job, no pipeline, just a payload rewrite.  The derived map is verified
against the second sample before it is trusted.

Operational properties, matching the rest of the codebase's caches:

* **TTL + LRU eviction** -- ``ttl`` seconds per entry (``None`` = no
  expiry) and ``max_entries`` / ``max_templates`` LRU bounds, so a
  long-lived farm cache cannot grow or staleness without limit.
* **thread-safe stats** -- every counter mutates under the cache lock;
  ``stats()`` returns a JSON-ready dict the service and the compile
  server's ``/metrics`` expose verbatim.
* **versioned snapshots** -- :meth:`save` / :meth:`load_snapshot` persist
  the cache alongside the existing :class:`AnalysisCache` snapshots,
  stamped with the same library fingerprint and rejected (observably,
  never fatally) when written by a different build.
"""

from __future__ import annotations

import cmath
import hashlib
import math
import os
import pickle
import threading
import time
import warnings
from collections import Counter, OrderedDict

import numpy as np

from repro.circuit.serialization import (
    payload_fingerprints,
    payload_param_slots,
    payload_rebind,
)
from repro.utils.angles import normalize_angle

__all__ = ["ResultCache", "RESULT_SNAPSHOT_VERSION", "job_fingerprint"]

#: Version tag of the persisted result-snapshot wire format.
RESULT_SNAPSHOT_VERSION = 1

#: Scales tried when attributing an output angle to one input angle.
#: Discrete on purpose: two observation samples determine an arbitrary
#: linear relation exactly (zero residual, pure overfit), but for a fixed
#: scale the two samples must agree on the offset -- one real constraint.
_REBIND_SCALES = (1.0, -1.0, 0.5, -0.5, 2.0, -2.0)

#: Residual tolerance for relation fits and map verification.  Output
#: angles pass through trig/atan2, so exact float equality is too strict;
#: 1e-9 matches the library-wide angle tolerance.
_REBIND_TOL = 1e-9

_TWO_PI = 2.0 * math.pi

#: Serve-time margin around Euler-emission branch boundaries.  A re-bound
#: ``u3`` whose angle lands this close to a boundary (where a fresh
#: compile would emit ``u1``/``u2`` or take the anti-diagonal branch) is
#: refused -- the request falls through to a real compile.
_BRANCH_MARGIN = 1e-6


class _Unservable(Exception):
    """A learned relation declining to serve one parameter point."""


def _digest(key) -> str:
    """Compact stable address of a canonical key tuple."""
    return hashlib.sha256(
        pickle.dumps(key, protocol=pickle.HIGHEST_PROTOCOL)
    ).hexdigest()


def job_fingerprint(circuit_payload, target_payload, options_key) -> str | None:
    """The exact-entry digest of one job -- the farm-wide cache address.

    What ``GET /cache/<fingerprint>`` looks up on a peer shard.  Computed
    from payloads alone so a *client* (which has no :class:`ResultCache`)
    can address remote caches; ``None`` for uncacheable circuits.  Must
    stay in lockstep with :meth:`ResultCache.address`.
    """
    keys = payload_fingerprints(circuit_payload)
    if keys is None:
        return None
    return _digest((keys[0], target_payload, options_key))


def _mod_close(a: float, b: float, tol: float = _REBIND_TOL) -> bool:
    diff = (a - b) % _TWO_PI
    return diff < tol or _TWO_PI - diff < tol


def _slot_periodic(cls: str, offset: int) -> bool:
    """Whether a gate's angle slot is 2*pi-periodic (mod-2*pi fits OK).

    Diagonal-phase gates and the ``phi``/``lam`` Euler angles enter their
    matrices only as ``exp(i*angle)``; rotation angles (``theta`` slots,
    RX/RY/RZ and friends) are 4*pi-periodic in SU(2) and must match
    exactly.
    """
    if cls in ("U1Gate", "CPhaseGate", "MCU1Gate", "U2Gate"):
        return True
    if cls in ("U3Gate", "CU3Gate"):
        return offset > 0  # theta exact; phi/lam periodic
    return False


def _fit_slot(a: float, b: float, params0, params1, periodic: bool):
    """One output slot's relation from two samples, or ``None``.

    ``("const", v)`` when the slot did not move; ``("lin", i, s, c)`` for
    an exact affine dependence ``out = s * theta[i] + c`` on exactly one
    input; ``("lin2pi", i, s, c)`` when the dependence holds modulo
    2*pi (wrapped phase accumulation -- only for periodic slots).  More
    than one input fitting is ambiguity, and ambiguity is failure: a
    relation that merely *might* be right must not serve traffic.
    """
    if abs(a - b) < _REBIND_TOL:
        return ("const", a)
    candidates = []
    for i, (t0, t1) in enumerate(zip(params0, params1)):
        if abs(t0 - t1) < _REBIND_TOL:
            continue  # this input did not move; it cannot explain a != b
        for scale in _REBIND_SCALES:
            if abs((a - scale * t0) - (b - scale * t1)) < _REBIND_TOL:
                candidates.append(("lin", i, scale, a - scale * t0))
                break
            if periodic and _mod_close(a - scale * t0, b - scale * t1):
                candidates.append(("lin2pi", i, scale, a - scale * t0))
                break
    if len(candidates) != 1:
        return None
    return candidates[0]


def _fit_u3conj(avals, bvals, params0, params1):
    """Gate-level relation for one Euler-merged ``u3``: learn the
    rotation the merged run applies as a function of one input angle.

    Per-slot fits fail on merged runs because the optimizer's Euler
    extraction (:func:`repro.linalg.euler.u3_params_from_unitary`) folds
    ``theta`` into ``[0, pi]`` and branch-shifts ``phi``/``lam`` by pi --
    piecewise behaviour no affine slot relation captures.  The fix is to
    model the *matrix*: if the run is ``A . P(s*theta + c) . B`` for
    fixed unitaries A, B and a single-angle rotation generator, then

        G(t1) . G(t0)^dag = A . P(s * (t1 - t0)) . A^dag

    -- the constants cancel, and the two cached sample gates determine
    the one-parameter rotation group through them (eigenprojectors +
    per-eigenvector phase interpolation).  Re-binding evaluates the group
    at the new angle and re-runs the *same* Euler extraction the
    optimizer uses, so every fold and branch shift is reproduced rather
    than modelled.

    Returns ``("u3conj", i, s, t0, delta, phi1, phi2, Q1, Q2, G0)`` or
    ``None`` (no single input explains the motion, or the rotation is a
    half-turn, whose axis direction two samples cannot orient).
    """
    from repro.linalg.euler import u3_matrix

    g0 = u3_matrix(avals[0], avals[1], avals[2])
    g1 = u3_matrix(bvals[0], bvals[1], bvals[2])
    w = g1 @ g0.conj().T
    trace = w[0, 0] + w[1, 1]
    det = w[0, 0] * w[1, 1] - w[0, 1] * w[1, 0]
    disc = (trace * trace - 4.0 * det) ** 0.5
    w1 = (trace + disc) / 2.0
    w2 = (trace - disc) / 2.0
    if abs(w1 - w2) < 1e-6:
        return None  # (near-)degenerate rotation: no axis to learn
    identity = np.eye(2, dtype=complex)
    q1 = (w - w2 * identity) / (w1 - w2)
    q2 = identity - q1
    p1 = cmath.phase(w1)
    p2 = cmath.phase(w2)
    candidates = []
    for i, (t0, t1) in enumerate(zip(params0, params1)):
        delta = t1 - t0
        if abs(delta) < _REBIND_TOL:
            continue
        for scale in _REBIND_SCALES:
            x = scale * delta
            if abs(cmath.exp(2j * x) - 1.0) < _REBIND_TOL:
                continue  # half/full turn: direction unidentifiable
            for lead, lead_q, trail_p, trail_q in (
                (p1, q1, p2, q2),
                (p2, q2, p1, q1),
            ):
                if abs(cmath.exp(1j * (lead + x)) - cmath.exp(1j * trail_p)) < 1e-9:
                    candidates.append(
                        ("u3conj", i, scale, t0, delta,
                         lead, lead + x, lead_q, trail_q, g0)
                    )
    # the swap symmetry (i, s, order) <-> (i, -s, swapped order) yields
    # the same gate-level model twice (they differ only in an unphysical
    # phase drift); collapse it before judging ambiguity
    distinct = {(rel[1], abs(rel[2])) for rel in candidates}
    if len(distinct) != 1:
        return None
    return candidates[0]


def _apply_u3conj(relation, params, guard: bool):
    """``((theta, phi, lam), gamma)`` of one re-bound merged ``u3``."""
    from repro.linalg.euler import u3_params_from_unitary

    _, slot, _scale, t0, delta, phi1, phi2, q1, q2, g0 = relation
    u = (params[slot] - t0) / delta
    w = cmath.exp(1j * phi1 * u) * q1 + cmath.exp(1j * phi2 * u) * q2
    theta, phi, lam, gamma = u3_params_from_unitary(w @ g0)
    if guard and (
        theta < _BRANCH_MARGIN
        or theta > math.pi - _BRANCH_MARGIN
        or abs(theta - math.pi / 2) < _BRANCH_MARGIN
    ):
        # a fresh compile near these boundaries emits a different gate
        # (u1/u2/anti-diagonal u3); declining the serve keeps template
        # hits structurally faithful
        raise _Unservable
    return (theta, phi, lam), gamma


def _derive_map(params0, result0, params1, result1):
    """Gate-level re-binding relations learned from two samples.

    ``params*`` are the input angle vectors (phase last), ``result*`` the
    corresponding compiled circuit payloads.  Returns a tuple of
    relations (one per output *gate* slot group, plus a trailing
    ``("phase", ...)`` -- or, when the samples' global-phase inputs are
    tied, ``("phasepin", ...)`` -- entry), or ``None`` when the two
    outputs differ
    structurally or some gate cannot be attributed.  The returned map is
    verified to reproduce sample 1 before it is trusted.
    """
    f0 = payload_fingerprints(result0)
    f1 = payload_fingerprints(result1)
    if f0 is None or f1 is None or f0[1] != f1[1]:
        return None  # structurally different outputs: not rebindable
    out0, out1 = f0[2], f1[2]
    groups = payload_param_slots(result0)
    if groups is None:
        return None
    relations = []
    has_matrix = False
    for cls, start, count in groups:
        avals = out0[start : start + count]
        bvals = out1[start : start + count]
        if cls == "U3Gate" and count == 3:
            # Euler-extraction outputs: per-slot affine fits are unsound
            # here even when two samples satisfy one (both may sit on the
            # same fold branch; a third point crosses it).  Either the
            # gate did not move at all, or it gets the matrix model.
            if all(abs(a - b) < _REBIND_TOL for a, b in zip(avals, bvals)):
                relations.extend(("const", a) for a in avals)
                continue
            relation = _fit_u3conj(avals, bvals, params0, params1)
            if relation is None:
                return None
            relations.append(relation)
            has_matrix = True
            continue
        slot_relations = []
        for offset in range(count):
            relation = _fit_slot(
                avals[offset], bvals[offset],
                params0, params1,
                _slot_periodic(cls, offset),
            )
            if relation is None:
                slot_relations = None
                break
            slot_relations.append(relation)
        if slot_relations is None:
            return None  # mixed or ambiguous dependence: stay exact-only
        relations.extend(slot_relations)
    # the trailing global-phase slot
    sub = _fit_slot(out0[-1], out1[-1], params0, params1, False)
    if sub is None and has_matrix:
        # Euler folds move pi in and out of the global phase; the
        # emission phases of the re-bound gates are the best available
        # estimate, and global phase is physically unobservable anyway
        sub = ("gamma", out0[-1])
    if sub is None:
        return None
    if abs(params0[-1] - params1[-1]) < _REBIND_TOL:
        # the global-phase input did not move between the samples, so no
        # learned relation can account for it; pin serves to the observed
        # phase value -- a request with a different input phase declines
        # the template and gets a real compile instead of a phase baked
        # in from the samples
        relations.append(("phasepin", params0[-1], sub))
    else:
        relations.append(("phase", sub))
    if not _verify_map(relations, params1, out1):
        return None
    return tuple(relations)


def _apply_map(relations, params, guard: bool = True):
    """``(values, modes)`` for ``params`` under learned ``relations``.

    ``values`` is the flat output vector :func:`payload_rebind` expects
    (phase last); ``modes`` tags each value with how faithful it is --
    ``"exact"`` (bit-level, up to float noise), ``"mod"`` (exact modulo
    2*pi) or ``"free"`` (best effort; only ever the global phase).
    """
    values: list[float] = []
    modes: list[str] = []
    gamma_total = 0.0
    for relation in relations:
        kind = relation[0]
        if kind == "const":
            values.append(relation[1])
            modes.append("exact")
        elif kind == "lin":
            _, slot, scale, offset = relation
            values.append(scale * params[slot] + offset)
            modes.append("exact")
        elif kind == "lin2pi":
            _, slot, scale, offset = relation
            values.append(normalize_angle(scale * params[slot] + offset))
            modes.append("mod")
        elif kind == "u3conj":
            triple, gamma = _apply_u3conj(relation, params, guard)
            values.extend(triple)
            modes.extend(("exact", "mod", "mod"))
            gamma_total += gamma
        else:  # ("phase", sub) or ("phasepin", pin, sub)
            if kind == "phasepin":
                if guard and abs(params[-1] - relation[1]) > _REBIND_TOL:
                    # learned under a tied phase input; only requests
                    # sharing that phase can be served faithfully
                    raise _Unservable
                sub = relation[2]
            else:
                sub = relation[1]
            if sub[0] == "const":
                values.append(sub[1])
                modes.append("exact")
            elif sub[0] == "lin":
                _, slot, scale, offset = sub
                values.append(scale * params[slot] + offset)
                modes.append("exact")
            else:  # ("gamma", base)
                values.append(sub[1] + gamma_total)
                modes.append("free")
    return values, modes


def _verify_map(relations, params1, out1) -> bool:
    """The learned map must reproduce sample 1 before it is trusted."""
    try:
        values, modes = _apply_map(relations, params1, guard=False)
    except Exception:  # pragma: no cover - defensive
        return False
    if len(values) != len(out1):
        return False
    for predicted, observed, mode in zip(values, out1, modes):
        if mode == "free":
            continue
        if mode == "mod":
            if not _mod_close(predicted, observed):
                return False
        elif abs(predicted - observed) > _REBIND_TOL:
            return False
    return True


def _copy_payload(result):
    """An isolated deep copy of one result payload.

    Result payloads carry mutable pieces -- the metrics and loops lists
    (PassMetrics objects) and nested property values -- so both the store
    and the serve sides must sever aliasing: the entry must not share
    state with whatever object the producer keeps, nor with any result
    handed to a caller.  Payloads are picklable by construction (they
    travel the pool and wire boundaries), so a pickle round-trip is the
    cheapest faithful deep copy.
    """
    return pickle.loads(pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL))


def _served(result, name):
    """A caller-safe copy of a cached result payload, re-labelled.

    Content addressing ignores circuit names, so the cached compile may
    have been stored under a different label; the serve patches the
    requester's name back in (slot 1 of the circuit payload), exactly
    what a fresh compile of their circuit would have carried.  The whole
    payload is deep-copied (:func:`_copy_payload`) so callers mutating
    their result -- metrics, loops, nested property values -- cannot
    corrupt the cached entry served to everyone after them.
    """
    circuit_payload, metrics, loops, elapsed, props = _copy_payload(result)
    patched = (circuit_payload[0], name) + tuple(circuit_payload[2:])
    return (patched, metrics, loops, elapsed, props)


class _Entry:
    """One exact-key entry: the result payload plus its expiry stamp."""

    __slots__ = ("result", "expires")

    def __init__(self, result, expires):
        self.result = result
        self.expires = expires


class _Template:
    """One template entry and its learning state.

    ``relations is None`` and not ``unbindable``: one sample seen, waiting
    for a second to learn from.  ``relations`` set: ready, serving by
    re-binding.  ``unbindable``: observation showed output angles mix or
    branch on inputs; exact-key caching only.
    """

    __slots__ = ("params", "result", "relations", "unbindable", "expires")

    def __init__(self, params, result, expires):
        self.params = params
        self.result = result
        self.relations = None
        self.unbindable = False
        self.expires = expires


class ResultCache:
    """Thread-safe content-addressed cache of compiled-result payloads."""

    def __init__(
        self,
        max_entries: int = 4096,
        ttl: float | None = None,
        max_templates: int = 512,
    ):
        """Args:
            max_entries: LRU bound on exact-key entries.
            ttl: seconds an entry stays servable (``None`` = forever).
                Measured against the wall clock so persisted snapshots
                age across restarts too.
            max_templates: LRU bound on template entries.
        """
        self.max_entries = int(max_entries)
        self.ttl = float(ttl) if ttl is not None else None
        self.max_templates = int(max_templates)
        self._entries: OrderedDict[str, _Entry] = OrderedDict()
        self._templates: OrderedDict[str, _Template] = OrderedDict()
        self._lock = threading.RLock()
        self._stats: Counter = Counter()
        #: why the most recent snapshot load was rejected (``None`` when
        #: nothing was rejected), mirroring ``AnalysisCache.snapshot_skipped``
        self.snapshot_skipped: str | None = None

    # -- addressing ---------------------------------------------------------

    def address(self, circuit_payload, target_payload, options_key):
        """``(exact_digest, template_digest, params)`` for one job.

        Returns ``None`` for jobs that cannot be content-addressed
        (circuits carrying operations with no canonical content form).
        """
        keys = payload_fingerprints(circuit_payload)
        if keys is None:
            return None
        exact_key, template_key, params = keys
        exact = _digest((exact_key, target_payload, options_key))
        template = _digest(("template", template_key, target_payload, options_key))
        return exact, template, params

    def key_for(self, circuit_payload, target_payload, options_key) -> str | None:
        """The exact-entry digest for one job -- what peers look up."""
        address = self.address(circuit_payload, target_payload, options_key)
        return address[0] if address is not None else None

    # -- expiry / eviction (call with the lock held) ------------------------

    def _expires(self) -> float | None:
        return time.time() + self.ttl if self.ttl is not None else None

    def _live(self, table: OrderedDict, digest: str):
        """The entry under ``digest`` if present and unexpired, else None."""
        entry = table.get(digest)
        if entry is None:
            return None
        if entry.expires is not None and entry.expires <= time.time():
            del table[digest]
            self._stats["evictions_ttl"] += 1
            return None
        table.move_to_end(digest)
        return entry

    def _insert(self, table: OrderedDict, digest: str, entry, limit: int) -> None:
        table[digest] = entry
        table.move_to_end(digest)
        while len(table) > limit:
            table.popitem(last=False)
            self._stats["evictions_lru"] += 1

    # -- the cache surface --------------------------------------------------

    def lookup(self, circuit_payload, target_payload, options_key):
        """``(result_payload, kind)`` for a job, or ``None`` on a miss.

        ``kind`` is ``"hit"`` (exact entry) or ``"template"`` (the payload
        was re-bound from a learned template).  An exact entry that was
        *stored* from a real compile is bit-identical to what that compile
        produced.  A template serve -- and the exact entry it is promoted
        into, which replays it bit-identically -- matches a fresh compile
        to re-binding arithmetic (~1e-12) in its angles, with one caveat:
        the serve-time guard (``_BRANCH_MARGIN``) only covers the ``u3``
        Euler-emission boundaries, so a re-bound angle landing on some
        *other* pipeline branch point (e.g. a rotation re-bound to 0 that
        a fresh compile's optimizer would eliminate or merge) yields a
        circuit that is unitarily equivalent but structurally different
        from what a fresh compile would emit.  Template serves also carry
        the template compile's per-pass metrics and wall time, not those
        of the compile they replace.
        """
        address = self.address(circuit_payload, target_payload, options_key)
        if address is None:
            with self._lock:
                self._stats["uncacheable"] += 1
            return None
        exact, template, params = address
        with self._lock:
            entry = self._live(self._entries, exact)
            if entry is not None:
                self._stats["hits"] += 1
                return _served(entry.result, circuit_payload[1]), "hit"
            tentry = self._live(self._templates, template)
            if tentry is not None and tentry.relations is not None:
                rebound = self._rebind(tentry, params)
                if rebound is not None:
                    self._stats["template_hits"] += 1
                    # promote the rebound result to a first-class exact
                    # entry: repeat requests skip the re-binding math and
                    # peer lookups (which only see exact keys) can find it.
                    # the promoted entry keeps template fidelity (see the
                    # lookup docstring), it does not become bit-identical
                    # to a fresh compile by promotion
                    self._insert(
                        self._entries,
                        exact,
                        _Entry(rebound, self._expires()),
                        self.max_entries,
                    )
                    return _served(rebound, circuit_payload[1]), "template"
            self._stats["misses"] += 1
            return None

    def _rebind(self, tentry: _Template, params) -> tuple | None:
        """A fresh result payload with ``params`` bound onto the template."""
        if len(params) != len(tentry.params):
            return None  # same structure but different angle count: never
        circuit_payload, metrics, loops, elapsed, props = tentry.result
        try:
            values, _modes = _apply_map(tentry.relations, params)
        except _Unservable:
            # near an emission-branch boundary: this one point is served
            # by a real compile, but the template itself stays good
            return None
        except Exception:  # pragma: no cover - defensive
            tentry.unbindable = True
            tentry.relations = None
            self._stats["template_unbindable"] += 1
            return None
        try:
            rebound_circuit = payload_rebind(circuit_payload, values)
        except Exception:  # pragma: no cover - map/payload disagreement
            tentry.unbindable = True
            tentry.relations = None
            self._stats["template_unbindable"] += 1
            return None
        return (rebound_circuit, metrics, loops, elapsed, dict(props))

    def store(self, circuit_payload, target_payload, options_key, result_payload):
        """Adopt one compiled result; feeds both exact and template entries.

        The first store of a template records the sample; the first later
        store whose angles *all* differ from that sample triggers map
        learning (partially-varied pairs are deferred, see the module
        docstring); further stores just refresh the exact entry.
        Idempotent and safe under concurrent duplicate stores -- last
        writer wins on equal content.  The payload is deep-copied on the
        way in, so the caller keeping (and mutating) its own reference
        cannot corrupt the entry.
        """
        address = self.address(circuit_payload, target_payload, options_key)
        if address is None:
            return
        exact, template, params = address
        # copied outside the lock: the producer (_run_local, _finish_chunk)
        # hands the same live metrics/properties objects to its caller
        result_payload = _copy_payload(result_payload)
        with self._lock:
            expires = self._expires()
            self._insert(
                self._entries, exact, _Entry(result_payload, expires), self.max_entries
            )
            self._stats["stores"] += 1
            if not params:
                return
            tentry = self._live(self._templates, template)
            if tentry is None:
                self._insert(
                    self._templates,
                    template,
                    _Template(params, result_payload, expires),
                    self.max_templates,
                )
                return
            tentry.expires = expires
            if tentry.unbindable or tentry.relations is not None:
                return
            if len(params) != len(tentry.params) or not all(
                abs(p0 - p1) > _REBIND_TOL
                for p0, p1 in zip(tentry.params[:-1], params[:-1])
            ):
                # a pair that moves only *some* inputs cannot implicate the
                # unmoved ones: _fit_slot would skip them and learn any
                # output they drive as a constant, and verification against
                # sample 1 (where they are equally unmoved) could not catch
                # it -- coordinate-descent traffic would then be served the
                # baked-in value.  Defer: keep the first sample and wait
                # for a pair in which every rotation slot differs.  (The
                # trailing global-phase input is exempt -- it is 0 in
                # virtually all traffic, so requiring it to move would
                # stop learning outright; a tied phase instead *pins*
                # template serves to that phase value, see _derive_map.)
                self._stats["template_deferred"] += 1
                return
            try:
                relations = _derive_map(
                    tentry.params, tentry.result[0], params, result_payload[0]
                )
            except Exception:  # noqa: BLE001 - malformed payloads: no template
                relations = None
            if relations is not None:  # _derive_map self-verifies vs sample 1
                tentry.relations = relations
                self._stats["template_learned"] += 1
            else:
                tentry.unbindable = True
                self._stats["template_unbindable"] += 1

    def lookup_fingerprint(self, digest: str):
        """Peer-lookup entry point: the payload under an exact digest.

        What ``GET /cache/<fingerprint>`` serves; counted separately so a
        farm operator can tell peer traffic from local traffic.
        """
        with self._lock:
            entry = self._live(self._entries, digest)
            if entry is None:
                self._stats["peer_misses"] += 1
                return None
            self._stats["peer_hits"] += 1
            return entry.result

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._templates.clear()

    # -- introspection ------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict:
        """JSON-ready counters (hits/misses/evictions/template states)."""
        with self._lock:
            ready = sum(
                1 for t in self._templates.values() if t.relations is not None
            )
            return {
                "entries": len(self._entries),
                "templates": len(self._templates),
                "templates_ready": ready,
                "max_entries": self.max_entries,
                "ttl": self.ttl,
                "hits": self._stats["hits"],
                "misses": self._stats["misses"],
                "template_hits": self._stats["template_hits"],
                "template_learned": self._stats["template_learned"],
                "template_deferred": self._stats["template_deferred"],
                "template_unbindable": self._stats["template_unbindable"],
                "stores": self._stats["stores"],
                "uncacheable": self._stats["uncacheable"],
                "evictions_lru": self._stats["evictions_lru"],
                "evictions_ttl": self._stats["evictions_ttl"],
                "peer_hits": self._stats["peer_hits"],
                "peer_misses": self._stats["peer_misses"],
            }

    # -- snapshots ----------------------------------------------------------

    def export_snapshot(self) -> dict:
        """A picklable snapshot of every live entry (stats excluded)."""
        from repro.transpiler.cache import library_fingerprint

        now = time.time()
        with self._lock:
            entries = [
                (digest, entry.result, entry.expires)
                for digest, entry in self._entries.items()
                if entry.expires is None or entry.expires > now
            ]
            templates = [
                (
                    digest,
                    tentry.params,
                    tentry.result,
                    tentry.relations,
                    tentry.unbindable,
                    tentry.expires,
                )
                for digest, tentry in self._templates.items()
                if tentry.expires is None or tentry.expires > now
            ]
        return {
            "version": RESULT_SNAPSHOT_VERSION,
            "library": library_fingerprint(),
            "entries": entries,
            "templates": templates,
        }

    def import_snapshot(self, snapshot: dict) -> int:
        """Merge a snapshot; returns entries adopted (0 on rejection).

        Mirrors :meth:`AnalysisCache.import_snapshot`'s tolerance: wrong
        shape, wrong format version or a foreign library fingerprint are
        observable no-ops (``snapshot_skipped``, a :class:`RuntimeWarning`
        and the ``snapshot_rejected`` counter), never errors.  Existing
        entries win; expired entries are dropped on the way in.
        """
        from repro.transpiler.cache import library_fingerprint

        if not isinstance(snapshot, dict):
            return self._reject(
                f"not a result snapshot mapping (got {type(snapshot).__name__})"
            )
        if snapshot.get("version") != RESULT_SNAPSHOT_VERSION:
            return self._reject(
                f"result snapshot format version {snapshot.get('version')!r} "
                f"!= this build's {RESULT_SNAPSHOT_VERSION!r}"
            )
        stamp = snapshot.get("library")
        if stamp is not None and stamp != library_fingerprint():
            return self._reject(
                f"result snapshot written by {stamp!r}, this build is "
                f"{library_fingerprint()!r}"
            )
        now = time.time()
        adopted = 0
        with self._lock:
            for digest, result, expires in snapshot.get("entries", []):
                if expires is not None and expires <= now:
                    continue
                if digest in self._entries:
                    continue
                self._insert(
                    self._entries, digest, _Entry(result, expires), self.max_entries
                )
                adopted += 1
            for digest, params, result, relations, unbindable, expires in (
                snapshot.get("templates", [])
            ):
                if expires is not None and expires <= now:
                    continue
                if digest in self._templates:
                    continue
                tentry = _Template(params, result, expires)
                tentry.relations = relations
                tentry.unbindable = unbindable
                self._insert(self._templates, digest, tentry, self.max_templates)
            self._stats["snapshot_imports"] += 1
            self._stats["snapshot_entries_adopted"] += adopted
        return adopted

    def _reject(self, reason: str) -> int:
        with self._lock:
            self._stats["snapshot_rejected"] += 1
        self.snapshot_skipped = reason
        warnings.warn(
            f"ignoring result-cache snapshot: {reason}; starting cold",
            RuntimeWarning,
            stacklevel=3,
        )
        return 0

    def save(self, path) -> None:
        """Persist atomically (tmp + rename), like every other snapshot."""
        snapshot = self.export_snapshot()
        tmp_path = f"{path}.tmp.{os.getpid()}"
        with open(tmp_path, "wb") as handle:
            pickle.dump(snapshot, handle, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp_path, path)

    def load_snapshot(self, path) -> int:
        """Merge a persisted snapshot; missing/corrupt files are no-ops."""
        try:
            with open(path, "rb") as handle:
                snapshot = pickle.load(handle)
        except FileNotFoundError:
            return 0
        except Exception as exc:
            return self._reject(
                f"could not read result snapshot {str(path)!r} "
                f"({type(exc).__name__}: {exc})"
            )
        return self.import_snapshot(snapshot)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        with self._lock:
            return (
                f"<ResultCache entries={len(self._entries)} "
                f"templates={len(self._templates)} "
                f"hits={self._stats['hits']} "
                f"template_hits={self._stats['template_hits']}>"
            )
