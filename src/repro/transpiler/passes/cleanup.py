"""Cleanup passes: pre-measurement diagonal removal, directive stripping."""

from __future__ import annotations

from repro.circuit.quantumcircuit import QuantumCircuit
from repro.transpiler.passmanager import PropertySet, TransformationPass

__all__ = ["RemoveDiagonalGatesBeforeMeasure", "RemoveAnnotations", "RemoveBarriers"]

_DIAGONAL_1Q = {"u1", "z", "s", "sdg", "t", "tdg", "rz"}


class RemoveDiagonalGatesBeforeMeasure(TransformationPass):
    """Drop diagonal one-qubit gates that immediately precede a measurement.

    Diagonal gates commute with computational-basis measurement, so they
    cannot affect outcome statistics.
    """

    requires = ()
    preserves = ("is_swap_mapped",)
    invalidates = ()
    # phases may change; measurement-outcome distributions may not
    equivalence = "measurement"

    def transform(self, circuit: QuantumCircuit, property_set: PropertySet) -> QuantumCircuit:
        survivors: list = list(circuit.data)
        # for each wire, walk backwards from each measure
        last_index_on_wire: dict[int, list[int]] = {}
        for index, instruction in enumerate(survivors):
            for qubit in instruction.qubits:
                last_index_on_wire.setdefault(qubit, []).append(index)

        for index, instruction in enumerate(survivors):
            if instruction is None or instruction.operation.name != "measure":
                continue
            qubit = instruction.qubits[0]
            chain = last_index_on_wire[qubit]
            position = chain.index(index)
            walk = position - 1
            while walk >= 0:
                earlier = survivors[chain[walk]]
                if earlier is None:
                    walk -= 1
                    continue
                if (
                    earlier.operation.name in _DIAGONAL_1Q
                    and len(earlier.qubits) == 1
                ):
                    survivors[chain[walk]] = None
                    walk -= 1
                    continue
                break
        output = circuit.copy_empty_like()
        for instruction in survivors:
            if instruction is not None:
                output.append(
                    instruction.operation, instruction.qubits, instruction.clbits
                )
        return output


class RemoveAnnotations(TransformationPass):
    """Strip ``ANNOT`` directives (after the state analyses consumed them)."""

    requires = ()
    # directives are invisible to size/depth and touch no couplings
    preserves = ("size", "depth", "is_swap_mapped")
    invalidates = ()
    # stripping a programmer promise is semantically free but erases the
    # very annotations the tracker tier would compare against
    equivalence = "none"

    def transform(self, circuit: QuantumCircuit, property_set: PropertySet) -> QuantumCircuit:
        output = circuit.copy_empty_like()
        for instruction in circuit.data:
            if instruction.operation.name == "annot":
                continue
            output.append(instruction.operation, instruction.qubits, instruction.clbits)
        return output


class RemoveBarriers(TransformationPass):
    """Strip barrier directives."""

    requires = ()
    preserves = ("size", "depth", "is_swap_mapped")
    invalidates = ()

    def transform(self, circuit: QuantumCircuit, property_set: PropertySet) -> QuantumCircuit:
        output = circuit.copy_empty_like()
        for instruction in circuit.data:
            if instruction.operation.name == "barrier":
                continue
            output.append(instruction.operation, instruction.qubits, instruction.clbits)
        return output
