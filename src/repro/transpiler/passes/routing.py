"""SWAP-insertion routing (``StochasticSwap``).

Makes every two-qubit gate act on coupled physical qubits by inserting SWAP
gates, mirroring Qiskit 0.18's stochastic router: several seeded trials are
run and the one inserting the fewest SWAPs wins (the paper reports medians
over 25 transpilations precisely because of this randomness, Sec. VII-B).

Each trial is a greedy scan with lookahead: for a blocked gate, candidate
SWAPs around either endpoint are scored by the resulting distance of the
blocked gate plus a decayed sum over upcoming two-qubit gates; ties (and
near-ties, within the trial's temperature) are broken randomly.

The inserted SWAPs are exactly what the paper's second QBO pass targets
(Fig. 8 line 5): swaps whose qubits are still in known states reduce to
SWAPZ (2 CNOTs) or less.
"""

from __future__ import annotations

import numpy as np

from repro.circuit.quantumcircuit import QuantumCircuit
from repro.gates import SwapGate
from repro.transpiler.coupling import CouplingMap
from repro.transpiler.exceptions import TranspilerError
from repro.transpiler.passmanager import PropertySet, TransformationPass

__all__ = ["StochasticSwap"]

_LOOKAHEAD = 12
_LOOKAHEAD_DECAY = 0.7


class StochasticSwap(TransformationPass):
    """Insert SWAPs so all two-qubit gates respect the coupling map."""

    requires = ()
    provides = ("routing_swaps", "final_permutation")
    preserves = ()
    invalidates = ()
    # output equals input up to the wire relabeling in final_permutation
    equivalence = "permutation"

    def __init__(self, coupling: CouplingMap, trials: int = 5, seed: int | None = None):
        self.coupling = coupling
        self.trials = max(1, trials)
        self.seed = 0 if seed is None else seed

    @property
    def name(self) -> str:
        return f"StochasticSwap(trials={self.trials})"

    def transform(self, circuit: QuantumCircuit, property_set: PropertySet) -> QuantumCircuit:
        if circuit.num_qubits != self.coupling.num_qubits:
            raise TranspilerError(
                "routing expects a device-wide circuit; run ApplyLayout first"
            )
        if self._already_mapped(circuit):
            property_set["final_permutation"] = list(range(circuit.num_qubits))
            return circuit

        best: QuantumCircuit | None = None
        best_swaps = None
        best_perm = None
        for trial in range(self.trials):
            rng = np.random.default_rng((self.seed, trial))
            routed, swaps, perm = self._route_once(circuit, rng)
            if best_swaps is None or swaps < best_swaps:
                best, best_swaps, best_perm = routed, swaps, perm
        property_set["routing_swaps"] = best_swaps
        property_set["final_permutation"] = best_perm
        return best

    # ------------------------------------------------------------------

    def _already_mapped(self, circuit: QuantumCircuit) -> bool:
        for instruction in circuit.data:
            if (
                len(instruction.qubits) == 2
                and not instruction.operation.is_directive
                and not self.coupling.are_coupled(*instruction.qubits)
            ):
                return False
            if len(instruction.qubits) > 2 and not instruction.operation.is_directive:
                raise TranspilerError(
                    f"cannot route {len(instruction.qubits)}-qubit gate "
                    f"{instruction.operation.name!r}; unroll first"
                )
        return True

    def _route_once(self, circuit: QuantumCircuit, rng: np.random.Generator):
        num_qubits = circuit.num_qubits
        # perm[wire] = current physical qubit holding that logical wire
        perm = list(range(num_qubits))
        output = circuit.copy_empty_like()
        swaps_inserted = 0
        distance = self.coupling.distance_matrix

        # precompute positions of 2q gates for the lookahead window
        two_qubit_gates = [
            (index, instruction.qubits)
            for index, instruction in enumerate(circuit.data)
            if len(instruction.qubits) == 2 and not instruction.operation.is_directive
        ]
        lookahead_starts = {index: order for order, (index, _) in enumerate(two_qubit_gates)}

        for index, instruction in enumerate(circuit.data):
            qubits = instruction.qubits
            if len(qubits) != 2 or instruction.operation.is_directive:
                mapped = tuple(perm[q] for q in qubits)
                output.append(instruction.operation, mapped, instruction.clbits)
                continue
            a, b = qubits
            guard = 0
            while not self.coupling.are_coupled(perm[a], perm[b]):
                guard += 1
                if guard > 4 * num_qubits:
                    raise TranspilerError("routing failed to make progress")
                if guard > 2 * num_qubits:
                    # lookahead is cycling: force a step along the shortest path
                    path = self.coupling.shortest_path(perm[a], perm[b])
                    swap_edge = tuple(sorted((path[0], path[1])))
                else:
                    swap_edge = self._choose_swap(
                        perm, a, b, two_qubit_gates, lookahead_starts.get(index, 0), rng
                    )
                output.append(SwapGate(), swap_edge)
                swaps_inserted += 1
                self._apply_swap(perm, swap_edge)
            output.append(instruction.operation, (perm[a], perm[b]), instruction.clbits)
        return output, swaps_inserted, perm

    def _choose_swap(self, perm, a, b, two_qubit_gates, window_start, rng):
        """Pick the physical edge to swap: lowest lookahead score wins."""
        distance = self.coupling.distance_matrix
        phys_a, phys_b = perm[a], perm[b]
        candidates = set()
        for endpoint in (phys_a, phys_b):
            for neighbor in self.coupling.neighbors(endpoint):
                candidates.add(tuple(sorted((endpoint, neighbor))))

        window = two_qubit_gates[window_start : window_start + _LOOKAHEAD]
        best_edges = []
        best_score = None
        for edge in sorted(candidates):
            trial_perm = list(perm)
            self._apply_swap(trial_perm, edge)
            score = 2.0 * distance[trial_perm[a], trial_perm[b]]
            weight = 1.0
            for _, (qa, qb) in window:
                score += weight * distance[trial_perm[qa], trial_perm[qb]]
                weight *= _LOOKAHEAD_DECAY
            if best_score is None or score < best_score - 1e-9:
                best_score = score
                best_edges = [edge]
            elif score < best_score + 1e-9:
                best_edges.append(edge)
        choice = best_edges[int(rng.integers(len(best_edges)))]
        return choice

    @staticmethod
    def _apply_swap(perm, edge):
        x, y = edge
        wire_x = perm.index(x)
        wire_y = perm.index(y)
        perm[wire_x], perm[wire_y] = perm[wire_y], perm[wire_x]
