"""Standard transpiler passes."""

from repro.transpiler.passes.unroller import Unroller, IBM_BASIS
from repro.transpiler.passes.optimize_1q import Optimize1qGates
from repro.transpiler.passes.cancellation import CXCancellation, CommutativeCancellation
from repro.transpiler.passes.consolidate import ConsolidateBlocks
from repro.transpiler.passes.layout_passes import (
    ApplyLayout,
    DenseLayout,
    SetLayout,
    TrivialLayout,
)
from repro.transpiler.passes.routing import StochasticSwap
from repro.transpiler.passes.analysis import CheckMap, CountOps, Depth, FixedPoint, Size
from repro.transpiler.passes.cleanup import (
    RemoveAnnotations,
    RemoveBarriers,
    RemoveDiagonalGatesBeforeMeasure,
)

__all__ = [
    "Unroller",
    "IBM_BASIS",
    "Optimize1qGates",
    "CXCancellation",
    "CommutativeCancellation",
    "ConsolidateBlocks",
    "ApplyLayout",
    "DenseLayout",
    "SetLayout",
    "TrivialLayout",
    "StochasticSwap",
    "CheckMap",
    "CountOps",
    "Depth",
    "FixedPoint",
    "Size",
    "RemoveAnnotations",
    "RemoveBarriers",
    "RemoveDiagonalGatesBeforeMeasure",
]
