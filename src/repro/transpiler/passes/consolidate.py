"""Two-qubit block collection and re-synthesis.

``ConsolidateBlocks`` is the unitary-preserving peephole optimization of
Qiskit's level 3 (paper Sec. II-B): it collects maximal runs of gates acting
on the same qubit pair (``Collect2qBlocks``), computes each block's 4x4
unitary, and replaces the block with a minimal-CNOT re-synthesis when that
reduces the two-qubit gate count.

This is the pass the paper contrasts RPO against: it must preserve the
block's *unitary*, so it can never exploit known input states the way
QBO/QPO do.

The pass runs in two phases: a linear scan collects every block of the
circuit (recording the flush order), then **all** block unitaries are
computed in one batched reduction (:func:`repro.linalg.batch.
two_qubit_chain_unitaries` -- per-gate matrices stacked, 1q gates embedded
via the batched kron, chains identity-padded and chain-multiplied with
log-depth pairwise matmuls) before any synthesis happens.  ``batched=False``
falls back to the original per-block Python accumulation; the two paths are
held to identical outputs by the parity tests.
"""

from __future__ import annotations

import numpy as np

from repro.circuit.quantumcircuit import CircuitInstruction, QuantumCircuit
from repro.linalg.batch import two_qubit_chain_unitaries
from repro.linalg.two_qubit_synthesis import synthesize_two_qubit_unitary
from repro.transpiler.cache import AnalysisCache, rewrite_counter
from repro.transpiler.passmanager import PropertySet, TransformationPass

__all__ = ["ConsolidateBlocks"]

_BLOCK_MIN_2Q = 2  # only consolidate blocks with at least this many 2q gates


#: CX-equivalent cost of two-qubit gates when they are later unrolled to
#: the CNOT basis (swap = 3, swapz = 2, generic unitary synthesis <= 3).
_CX_COST = {"cx": 1, "cz": 1, "cy": 1, "ch": 2, "cp": 2, "crx": 2, "cry": 2,
            "crz": 2, "cu3": 2, "swap": 3, "swapz": 2, "iswap": 2}


class _Block:
    """A growing run of gates confined to one qubit pair."""

    def __init__(self, pair: tuple[int, int]):
        self.pair = pair  # ordered (low, high)
        self.instructions: list[CircuitInstruction] = []
        self.num_2q = 0
        self.cx_cost = 0

    def add(self, instruction: CircuitInstruction) -> None:
        self.instructions.append(instruction)
        if len(instruction.qubits) == 2:
            self.num_2q += 1
            self.cx_cost += _CX_COST.get(instruction.operation.name, 3)

    def local_wires(self, instruction: CircuitInstruction) -> tuple[int, ...]:
        """Block-local wires of one instruction (wire 0 = ``pair[0]``)."""
        wire_of = {self.pair[0]: 0, self.pair[1]: 1}
        return tuple(wire_of[q] for q in instruction.qubits)

    def matrix(self, cache: AnalysisCache) -> np.ndarray:
        """4x4 unitary with local wire 0 = pair[0], wire 1 = pair[1].

        Serial reference path (one ``embed_gate`` + matmul per gate); the
        batched pass computes the same product for every block at once via
        :func:`two_qubit_chain_unitaries`.
        """
        from repro.circuit.matrix_utils import embed_gate

        matrix = np.eye(4, dtype=complex)
        for instruction in self.instructions:
            local = self.local_wires(instruction)
            matrix = embed_gate(cache.matrix(instruction.operation), local, 2) @ matrix
        return matrix


class ConsolidateBlocks(TransformationPass):
    """Collect and re-synthesise two-qubit blocks (Collect2qBlocks +
    ConsolidateBlocks rolled into one linear scan)."""

    requires = ()
    preserves = ("is_swap_mapped",)
    invalidates = ()

    def __init__(self, force: bool = False, batched: bool = True):
        # ``force`` re-synthesises even when the CNOT count does not drop
        # (useful in tests); the preset pipelines keep the default.
        # ``batched=False`` restores the per-block matrix accumulation.
        self.force = force
        self.batched = batched

    def collect(
        self, circuit: QuantumCircuit
    ) -> list[tuple[str, object, tuple, tuple]]:
        """Scan ``circuit`` into an ordered event list.

        Events are ``("raw", operation, qubits, clbits)`` for pass-through
        instructions and ``("block", block, (), ())`` for completed blocks,
        in exactly the order the serial pass would have emitted them.
        """
        events: list[tuple[str, object, tuple, tuple]] = []
        pending_1q: dict[int, list[CircuitInstruction]] = {}
        block_of: dict[int, _Block] = {}

        def flush_pending(qubit: int) -> None:
            for instruction in pending_1q.pop(qubit, []):
                events.append(
                    ("raw", instruction.operation, instruction.qubits, instruction.clbits)
                )

        def flush_block(block: _Block) -> None:
            for qubit in block.pair:
                block_of.pop(qubit, None)
            events.append(("block", block, (), ()))

        def flush_qubit(qubit: int) -> None:
            block = block_of.get(qubit)
            if block is not None:
                flush_block(block)
            flush_pending(qubit)

        for instruction in circuit.data:
            operation = instruction.operation
            qubits = instruction.qubits
            is_simple_gate = (
                operation.is_gate()
                and not operation.is_directive
                and not instruction.clbits
            )
            if is_simple_gate and len(qubits) == 1:
                qubit = qubits[0]
                block = block_of.get(qubit)
                if block is not None:
                    block.add(instruction)
                else:
                    pending_1q.setdefault(qubit, []).append(instruction)
                continue
            if is_simple_gate and len(qubits) == 2:
                a, b = qubits
                pair = (min(a, b), max(a, b))
                block = block_of.get(a)
                if block is not None and block is block_of.get(b) and block.pair == pair:
                    block.add(instruction)
                    continue
                flush_qubit(a)
                flush_qubit(b)
                block = _Block(pair)
                for qubit in pair:
                    for held in pending_1q.pop(qubit, []):
                        block.add(held)
                    block_of[qubit] = block
                block.add(instruction)
                continue
            # anything else fences the touched qubits
            for qubit in qubits:
                flush_qubit(qubit)
            events.append(("raw", operation, qubits, instruction.clbits))

        remaining = []
        for block in block_of.values():
            if block not in remaining:
                remaining.append(block)
        for block in remaining:
            flush_block(block)
        for qubit in sorted(pending_1q):
            flush_pending(qubit)
        return events

    def _block_matrices(
        self, blocks: list[_Block], cache: AnalysisCache
    ) -> dict[int, np.ndarray]:
        """4x4 unitaries of every block, keyed by ``id(block)``.

        Batched path: one bulk cache lookup gathers every gate matrix,
        then every block reduces in a single stacked-operand call.
        """
        if not blocks:
            return {}
        if not self.batched:
            return {id(block): block.matrix(cache) for block in blocks}
        all_instructions = [
            instruction for block in blocks for instruction in block.instructions
        ]
        matrices = cache.matrices(
            instruction.operation for instruction in all_instructions
        )
        chains = []
        cursor = 0
        for block in blocks:
            chain = []
            for instruction in block.instructions:
                chain.append((matrices[cursor], block.local_wires(instruction)))
                cursor += 1
            chains.append(chain)
        unitaries = two_qubit_chain_unitaries(chains)
        return {id(block): unitaries[index] for index, block in enumerate(blocks)}

    def transform(self, circuit: QuantumCircuit, property_set: PropertySet) -> QuantumCircuit:
        cache = AnalysisCache.ensure(property_set)
        rewrites = rewrite_counter(property_set)
        events = self.collect(circuit)
        candidates = [
            event[1]
            for event in events
            if event[0] == "block"
            and (event[1].num_2q >= _BLOCK_MIN_2Q or self.force)
        ]
        unitaries = self._block_matrices(candidates, cache)

        output = circuit.copy_empty_like()
        for kind, payload, qubits, clbits in events:
            if kind == "raw":
                output.append(payload, qubits, clbits)
            else:
                self._emit_block(payload, output, unitaries.get(id(payload)), rewrites)
        return output

    def _emit_block(
        self,
        block: _Block,
        output: QuantumCircuit,
        unitary: np.ndarray | None,
        rewrites,
    ) -> None:
        if unitary is None:  # below the 2q-count threshold: not consolidated
            self._emit_original(block, output)
            return
        try:
            replacement = synthesize_two_qubit_unitary(unitary)
        except Exception:
            self._emit_original(block, output)
            return
        new_2q = replacement.num_nonlocal_gates()
        better = new_2q < block.cx_cost or (
            new_2q == block.cx_cost
            and replacement.size() < len(block.instructions)
        )
        if not (better or self.force):
            self._emit_original(block, output)
            return
        rewrites[self.name] += 1
        output.global_phase += replacement.global_phase
        for inner in replacement.data:
            mapped = tuple(block.pair[q] for q in inner.qubits)
            output.append(inner.operation, mapped)

    @staticmethod
    def _emit_original(block: _Block, output: QuantumCircuit) -> None:
        for instruction in block.instructions:
            output.append(instruction.operation, instruction.qubits, instruction.clbits)
