"""Gate cancellation passes.

``CXCancellation`` removes directly adjacent self-inverse two-qubit pairs
(``cx``/``cz``/``swap``); ``CommutativeCancellation`` additionally cancels
CNOT pairs separated by gates that commute through the control (diagonal
gates, CNOTs sharing the control) or through the target (CNOTs sharing the
target).  These mirror the level 1/2 gate-cancellation procedures the paper
describes in Sec. II-B.
"""

from __future__ import annotations

from repro.circuit.quantumcircuit import CircuitInstruction, QuantumCircuit
from repro.transpiler.cache import AnalysisCache, rewrite_counter
from repro.transpiler.passmanager import PropertySet, TransformationPass

__all__ = ["CXCancellation", "CommutativeCancellation"]

_SELF_INVERSE_SYMMETRIC = {"cz", "swap"}
_DIAGONAL_1Q = {"u1", "z", "s", "sdg", "t", "tdg", "rz"}


def _emit_surviving(circuit: QuantumCircuit, survivors: list) -> QuantumCircuit:
    output = circuit.copy_empty_like()
    for item in survivors:
        if item is not None:
            output.append(item.operation, item.qubits, item.clbits)
    return output


class CXCancellation(TransformationPass):
    """Cancel immediately adjacent self-inverse two-qubit gate pairs."""

    requires = ()
    preserves = ("is_swap_mapped",)
    invalidates = ()

    def transform(self, circuit: QuantumCircuit, property_set: PropertySet) -> QuantumCircuit:
        rewrites = rewrite_counter(property_set)
        survivors: list[CircuitInstruction | None] = []
        last_on_wire: dict[int, int] = {}  # qubit -> index into survivors

        for instruction in circuit.data:
            operation = instruction.operation
            qubits = instruction.qubits
            cancelled = False
            if operation.name == "cx" or operation.name in _SELF_INVERSE_SYMMETRIC:
                indices = {last_on_wire.get(q) for q in qubits}
                if len(indices) == 1 and None not in indices:
                    (index,) = indices
                    previous = survivors[index]
                    if previous is not None and self._is_inverse_pair(
                        previous, instruction
                    ):
                        survivors[index] = None
                        for qubit in qubits:
                            del last_on_wire[qubit]
                        cancelled = True
                        rewrites[self.name] += 1
            if not cancelled:
                survivors.append(instruction)
                for qubit in qubits:
                    last_on_wire[qubit] = len(survivors) - 1
        return _emit_surviving(circuit, survivors)

    @staticmethod
    def _is_inverse_pair(a: CircuitInstruction, b: CircuitInstruction) -> bool:
        if a.operation.name != b.operation.name:
            return False
        if a.operation.name == "cx":
            return a.qubits == b.qubits
        if a.operation.name in _SELF_INVERSE_SYMMETRIC:
            return set(a.qubits) == set(b.qubits)
        return False


class CommutativeCancellation(TransformationPass):
    """Cancel CNOT pairs separated by commuting gates.

    A ``cx(c, t)`` commutes with diagonal one-qubit gates and other CNOT
    controls on ``c``, and with other CNOT targets (and X-axis rotations) on
    ``t``.  When two identical CNOTs see only such gates between them on
    both wires, the pair collapses.
    """

    requires = ()
    preserves = ("is_swap_mapped",)
    invalidates = ()

    def transform(self, circuit: QuantumCircuit, property_set: PropertySet) -> QuantumCircuit:
        cache = AnalysisCache.ensure(property_set)
        rewrites = rewrite_counter(property_set)
        survivors: list[CircuitInstruction | None] = list(circuit.data)
        # per-wire instruction indices, shared through the analysis cache
        wire_ops = cache.wire_indices(circuit)

        open_cx: dict[tuple[int, int], int] = {}  # (c, t) -> index of candidate
        for index, instruction in enumerate(survivors):
            if instruction is None:
                continue
            operation = instruction.operation
            if operation.name != "cx":
                # other ops simply invalidate candidates they conflict with
                self._invalidate(open_cx, instruction, survivors)
                continue
            control, target = instruction.qubits
            key = (control, target)
            if key in open_cx:
                earlier = open_cx.pop(key)
                if self._window_commutes(
                    survivors, wire_ops, earlier, index, control, target
                ):
                    survivors[earlier] = None
                    survivors[index] = None
                    rewrites[self.name] += 1
                    continue
            # a cx also threatens candidates on overlapping wires
            self._invalidate(open_cx, instruction, survivors, skip_key=key)
            open_cx[key] = index
        return _emit_surviving(circuit, survivors)

    @staticmethod
    def _invalidate(open_cx, instruction, survivors, skip_key=None):
        touched = set(instruction.qubits)
        operation = instruction.operation
        for key in list(open_cx):
            if key == skip_key:
                continue
            control, target = key
            blocking = False
            if control in touched:
                blocking = not (
                    operation.name in _DIAGONAL_1Q
                    or (operation.name == "cx" and instruction.qubits[0] == control)
                )
            if not blocking and target in touched:
                blocking = not (
                    operation.name == "cx" and instruction.qubits[1] == target
                )
            if blocking:
                del open_cx[key]

    @staticmethod
    def _window_commutes(survivors, wire_ops, start, stop, control, target) -> bool:
        """Check all surviving ops strictly between the pair on both wires."""
        for qubit, commute_ok in ((control, "control"), (target, "target")):
            for index in wire_ops[qubit]:
                if not start < index < stop:
                    continue
                instruction = survivors[index]
                if instruction is None:
                    continue
                name = instruction.operation.name
                if commute_ok == "control":
                    if name in _DIAGONAL_1Q:
                        continue
                    if name == "cx" and instruction.qubits[0] == control:
                        continue
                    return False
                if name == "cx" and instruction.qubits[1] == target:
                    continue
                return False
        return True
