"""Analysis passes: size/depth metrics, fixed-point detection, map checks."""

from __future__ import annotations

from repro.circuit.quantumcircuit import QuantumCircuit
from repro.transpiler.coupling import CouplingMap
from repro.transpiler.passmanager import AnalysisPass, PropertySet

__all__ = ["Size", "Depth", "CountOps", "FixedPoint", "CheckMap"]


class Size(AnalysisPass):
    """Record the operation count under ``property_set['size']``."""

    provides = ("size",)

    def analyze(self, circuit: QuantumCircuit, property_set: PropertySet) -> None:
        property_set["size"] = circuit.size()


class Depth(AnalysisPass):
    """Record the circuit depth under ``property_set['depth']``."""

    provides = ("depth",)

    def analyze(self, circuit: QuantumCircuit, property_set: PropertySet) -> None:
        property_set["depth"] = circuit.depth()


class CountOps(AnalysisPass):
    """Record per-gate counts under ``property_set['count_ops']``."""

    provides = ("count_ops",)

    def analyze(self, circuit: QuantumCircuit, property_set: PropertySet) -> None:
        property_set["count_ops"] = circuit.count_ops()


class FixedPoint(AnalysisPass):
    """Detect when a tracked property stops changing.

    Sets ``property_set[f"{key}_fixed_point"]`` -- the loop condition of the
    level-3 optimization loop (paper Fig. 8 line 9).

    Deliberately declares no ``provides``: the pass is stateful (it compares
    consecutive observations), so the scheduler must never skip it.
    """

    provides = ()

    def __init__(self, key: str):
        self.key = key
        # declared so QSAN does not flag the flag write as undeclared
        self.writes = (f"{key}_fixed_point",)

    @property
    def name(self) -> str:
        return f"FixedPoint({self.key})"

    def analyze(self, circuit: QuantumCircuit, property_set: PropertySet) -> None:
        current = property_set.get(self.key)
        previous = property_set.get(f"_{self.key}_previous")
        property_set[f"{self.key}_fixed_point"] = (
            previous is not None and current == previous
        )
        property_set[f"_{self.key}_previous"] = current


class CheckMap(AnalysisPass):
    """Verify every two-qubit gate respects the coupling map."""

    provides = ("is_swap_mapped",)

    def __init__(self, coupling: CouplingMap):
        self.coupling = coupling

    def analyze(self, circuit: QuantumCircuit, property_set: PropertySet) -> None:
        mapped = True
        for instruction in circuit.data:
            if instruction.operation.is_directive:
                continue
            if len(instruction.qubits) == 2 and not self.coupling.are_coupled(
                *instruction.qubits
            ):
                mapped = False
                break
            if len(instruction.qubits) > 2:
                mapped = False
                break
        property_set["is_swap_mapped"] = mapped
