"""Single-qubit gate fusion (``Optimize1qGates``).

Merges maximal runs of one-qubit gates into at most one ``u1``/``u2``/``u3``
gate, tracking global phase exactly.  The paper's pipeline runs this right
before QPO (Fig. 8 line 7) so that the pure-state tracker sees fused ``u3``
gates, and again inside the fixed-point loop.

Annotations act as fences: merging a gate across an ``ANNOT`` would move it
relative to the point where the programmer's promise holds.

The default implementation is batched: one scan collects every run of the
circuit, all run products are computed in a single stacked reduction
(:func:`repro.linalg.batch.chain_products`) and the Euler angles of every
merged run come from one vectorized extraction
(:func:`repro.linalg.batch.u3_params_batch`).  ``batched=False`` restores
the original one-matmul-per-gate accumulation.  The run products are
bit-identical between the two paths (sequential batched fold); the emitted
angles may differ in the last ulp because vectorized ``arctan2`` rounds
differently from libm's, so the parity tests pin structure exactly and
angles to 1e-12.
"""

from __future__ import annotations

import math

import numpy as np

from repro.circuit.quantumcircuit import QuantumCircuit
from repro.linalg.batch import chain_products, u3_params_batch
from repro.linalg.euler import u3_params_from_unitary
from repro.transpiler.cache import AnalysisCache, rewrite_counter
from repro.transpiler.passmanager import PropertySet, TransformationPass
from repro.utils.angles import normalize_angle

__all__ = ["Optimize1qGates"]

_EPS = 1e-10


class Optimize1qGates(TransformationPass):
    """Fuse runs of adjacent one-qubit gates into minimal u-gates."""

    requires = ()
    preserves = ("is_swap_mapped",)
    invalidates = ()

    def __init__(self, batched: bool = True):
        self.batched = batched

    def transform(self, circuit: QuantumCircuit, property_set: PropertySet) -> QuantumCircuit:
        if self.batched:
            return self._transform_batched(circuit, property_set)
        return self._transform_serial(circuit, property_set)

    # -- batched path ------------------------------------------------------

    def _transform_batched(
        self, circuit: QuantumCircuit, property_set: PropertySet
    ) -> QuantumCircuit:
        cache = AnalysisCache.ensure(property_set)
        rewrites = rewrite_counter(property_set)

        # Phase 1: scan into an ordered event list; runs carry operations
        # only (no matrix work happens during the scan).
        events: list[tuple[str, object, tuple, tuple]] = []
        runs: list[tuple[int, list]] = []  # (qubit, operations)
        pending: dict[int, int] = {}  # qubit -> index into ``runs``

        def flush(qubit: int) -> None:
            run_index = pending.pop(qubit, None)
            if run_index is not None:
                events.append(("run", run_index, (), ()))

        for instruction in circuit.data:
            operation = instruction.operation
            if (
                operation.is_gate()
                and operation.num_qubits == 1
                and not operation.is_directive
            ):
                qubit = instruction.qubits[0]
                run_index = pending.get(qubit)
                if run_index is None:
                    pending[qubit] = len(runs)
                    runs.append((qubit, [operation]))
                else:
                    runs[run_index][1].append(operation)
                continue
            for qubit in instruction.qubits:
                flush(qubit)
            events.append(
                ("raw", operation, instruction.qubits, instruction.clbits)
            )
        for qubit in sorted(pending):
            flush(qubit)

        # Phase 2: every run product in one stacked reduction, every Euler
        # extraction in one vectorized call.
        operations = [op for _, ops in runs for op in ops]
        matrices = cache.matrices(operations)
        chains: list[list[np.ndarray]] = []
        cursor = 0
        for _, ops in runs:
            chains.append(matrices[cursor : cursor + len(ops)])
            cursor += len(ops)
        products = chain_products(chains, 2)
        params = u3_params_batch(products) if len(runs) else np.empty((0, 4))

        output = circuit.copy_empty_like()
        for kind, payload, qubits, clbits in events:
            if kind == "raw":
                output.append(payload, qubits, clbits)
                continue
            run_qubit, ops = runs[payload]
            if len(ops) > 1:
                rewrites[self.name] += 1
            theta, phi, lam, gamma = (float(value) for value in params[payload])
            self._emit_params(theta, phi, lam, gamma, run_qubit, output)
        return output

    # -- serial reference path ---------------------------------------------

    def _transform_serial(
        self, circuit: QuantumCircuit, property_set: PropertySet
    ) -> QuantumCircuit:
        cache = AnalysisCache.ensure(property_set)
        rewrites = rewrite_counter(property_set)
        output = circuit.copy_empty_like()
        pending: dict[int, tuple[np.ndarray, int]] = {}  # matrix, run length

        def flush(qubit: int) -> None:
            entry = pending.pop(qubit, None)
            if entry is None:
                return
            matrix, run_length = entry
            if run_length > 1:
                rewrites[self.name] += 1
            self._emit(matrix, qubit, output)

        for instruction in circuit.data:
            operation = instruction.operation
            is_mergeable = (
                operation.is_gate()
                and operation.num_qubits == 1
                and not operation.is_directive
            )
            if is_mergeable:
                qubit = instruction.qubits[0]
                current = pending.get(qubit)
                matrix = cache.matrix(operation)
                pending[qubit] = (
                    (matrix, 1)
                    if current is None
                    else (matrix @ current[0], current[1] + 1)
                )
                continue
            for qubit in instruction.qubits:
                flush(qubit)
            output.append(operation, instruction.qubits, instruction.clbits)
        for qubit in sorted(pending):
            flush(qubit)
        return output

    # -- shared emission ---------------------------------------------------

    @classmethod
    def _emit(cls, matrix: np.ndarray, qubit: int, output: QuantumCircuit) -> None:
        theta, phi, lam, gamma = u3_params_from_unitary(matrix)
        cls._emit_params(theta, phi, lam, gamma, qubit, output)

    @staticmethod
    def _emit_params(
        theta: float, phi: float, lam: float, gamma: float,
        qubit: int, output: QuantumCircuit,
    ) -> None:
        output.global_phase += gamma
        theta_n = normalize_angle(theta)
        if theta_n < _EPS or abs(theta_n - 2 * math.pi) < _EPS:
            # diagonal: a pure phase gate (or identity)
            total = normalize_angle(phi + lam)
            if total > _EPS:
                output.u1(total, qubit)
            return
        if abs(theta_n - math.pi / 2) < _EPS:
            output.u2(phi, lam, qubit)
            return
        output.u3(theta, phi, lam, qubit)
