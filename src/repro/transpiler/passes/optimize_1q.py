"""Single-qubit gate fusion (``Optimize1qGates``).

Merges maximal runs of one-qubit gates into at most one ``u1``/``u2``/``u3``
gate, tracking global phase exactly.  The paper's pipeline runs this right
before QPO (Fig. 8 line 7) so that the pure-state tracker sees fused ``u3``
gates, and again inside the fixed-point loop.

Annotations act as fences: merging a gate across an ``ANNOT`` would move it
relative to the point where the programmer's promise holds.
"""

from __future__ import annotations

import math

import numpy as np

from repro.circuit.quantumcircuit import QuantumCircuit
from repro.linalg.euler import u3_params_from_unitary
from repro.transpiler.cache import AnalysisCache, rewrite_counter
from repro.transpiler.passmanager import PropertySet, TransformationPass
from repro.utils.angles import normalize_angle

__all__ = ["Optimize1qGates"]

_EPS = 1e-10


class Optimize1qGates(TransformationPass):
    """Fuse runs of adjacent one-qubit gates into minimal u-gates."""

    preserves = ("is_swap_mapped",)

    def transform(self, circuit: QuantumCircuit, property_set: PropertySet) -> QuantumCircuit:
        cache = AnalysisCache.ensure(property_set)
        rewrites = rewrite_counter(property_set)
        output = circuit.copy_empty_like()
        pending: dict[int, tuple[np.ndarray, int]] = {}  # matrix, run length

        def flush(qubit: int) -> None:
            entry = pending.pop(qubit, None)
            if entry is None:
                return
            matrix, run_length = entry
            if run_length > 1:
                rewrites[self.name] += 1
            self._emit(matrix, qubit, output)

        for instruction in circuit.data:
            operation = instruction.operation
            is_mergeable = (
                operation.is_gate()
                and operation.num_qubits == 1
                and not operation.is_directive
            )
            if is_mergeable:
                qubit = instruction.qubits[0]
                current = pending.get(qubit)
                matrix = cache.matrix(operation)
                pending[qubit] = (
                    (matrix, 1)
                    if current is None
                    else (matrix @ current[0], current[1] + 1)
                )
                continue
            for qubit in instruction.qubits:
                flush(qubit)
            output.append(operation, instruction.qubits, instruction.clbits)
        for qubit in sorted(pending):
            flush(qubit)
        return output

    @staticmethod
    def _emit(matrix: np.ndarray, qubit: int, output: QuantumCircuit) -> None:
        theta, phi, lam, gamma = u3_params_from_unitary(matrix)
        output.global_phase += gamma
        theta_n = normalize_angle(theta)
        if theta_n < _EPS or abs(theta_n - 2 * math.pi) < _EPS:
            # diagonal: a pure phase gate (or identity)
            total = normalize_angle(phi + lam)
            if total > _EPS:
                output.u1(total, qubit)
            return
        if abs(theta_n - math.pi / 2) < _EPS:
            output.u2(phi, lam, qubit)
            return
        output.u3(theta, phi, lam, qubit)
