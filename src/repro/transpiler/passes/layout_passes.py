"""Layout selection and application.

``TrivialLayout`` maps virtual qubit ``i`` to physical qubit ``i``;
``DenseLayout`` greedily picks a well-connected (and, when calibration data
is available, low-error) connected subgraph -- this models the noise-aware
layout selection of optimization levels 2 and 3 (paper Sec. II-B).
``ApplyLayout`` widens the circuit to the full device and permutes wires.
"""

from __future__ import annotations

from repro.circuit.quantumcircuit import QuantumCircuit
from repro.transpiler.coupling import CouplingMap
from repro.transpiler.exceptions import TranspilerError
from repro.transpiler.layout import Layout
from repro.transpiler.passmanager import AnalysisPass, PropertySet, TransformationPass

__all__ = ["TrivialLayout", "DenseLayout", "ApplyLayout", "SetLayout"]


class SetLayout(AnalysisPass):
    """Install a user-provided layout."""

    provides = ("layout",)

    def __init__(self, layout: Layout):
        self.layout = layout

    def analyze(self, circuit: QuantumCircuit, property_set: PropertySet) -> None:
        property_set["layout"] = self.layout.copy()


class TrivialLayout(AnalysisPass):
    """Identity virtual-to-physical mapping."""

    provides = ("layout",)

    def __init__(self, coupling: CouplingMap):
        self.coupling = coupling

    def analyze(self, circuit: QuantumCircuit, property_set: PropertySet) -> None:
        if circuit.num_qubits > self.coupling.num_qubits:
            raise TranspilerError(
                f"circuit needs {circuit.num_qubits} qubits but device has "
                f"{self.coupling.num_qubits}"
            )
        property_set["layout"] = Layout.trivial(circuit.num_qubits)


class DenseLayout(AnalysisPass):
    """Pick a connected, densely coupled, low-error physical subset.

    Greedy growth: seed with the best edge (lowest CX error when calibration
    data is present, otherwise the highest-degree edge), then repeatedly add
    the neighboring physical qubit with the most connections into the chosen
    set, breaking ties on error rates.
    """

    provides = ("layout",)

    def __init__(self, coupling: CouplingMap, backend_properties=None):
        self.coupling = coupling
        self.properties = backend_properties

    def _edge_cost(self, edge: tuple[int, int]) -> float:
        if self.properties is None:
            return 0.0
        return self.properties.two_qubit_error.get(
            tuple(sorted(edge)), self.properties.default_two_qubit_error
        )

    def _qubit_cost(self, qubit: int) -> float:
        if self.properties is None:
            return 0.0
        readout = self.properties.readout_error.get(
            qubit, self.properties.default_readout_error
        )
        return (readout[0] + readout[1]) / 2

    def analyze(self, circuit: QuantumCircuit, property_set: PropertySet) -> None:
        needed = circuit.num_qubits
        if needed > self.coupling.num_qubits:
            raise TranspilerError(
                f"circuit needs {needed} qubits but device has "
                f"{self.coupling.num_qubits}"
            )
        if needed == 0:
            property_set["layout"] = Layout()
            return
        edges = self.coupling.edges
        if not edges or needed == 1:
            best = min(range(self.coupling.num_qubits), key=self._qubit_cost)
            property_set["layout"] = Layout({0: best})
            return
        seed = min(
            edges,
            key=lambda e: (
                self._edge_cost(e),
                -(self.coupling.degree(e[0]) + self.coupling.degree(e[1])),
                e,
            ),
        )
        chosen = [seed[0], seed[1]]
        chosen_set = set(chosen)
        while len(chosen) < needed:
            candidates = set()
            for qubit in chosen_set:
                candidates.update(self.coupling.neighbors(qubit))
            candidates -= chosen_set
            if not candidates:
                raise TranspilerError("device connectivity exhausted during layout")
            best = min(
                candidates,
                key=lambda q: (
                    -sum(1 for n in self.coupling.neighbors(q) if n in chosen_set),
                    min(
                        self._edge_cost((q, n))
                        for n in self.coupling.neighbors(q)
                        if n in chosen_set
                    ),
                    self._qubit_cost(q),
                    q,
                ),
            )
            chosen.append(best)
            chosen_set.add(best)
        property_set["layout"] = Layout({v: p for v, p in enumerate(chosen)})


class ApplyLayout(TransformationPass):
    """Widen the circuit to device size and permute wires per the layout."""

    requires = ("layout",)
    provides = ("original_num_qubits",)
    preserves = ()
    invalidates = ()
    # output equals input embedded into the device per the layout property
    equivalence = "layout"

    def __init__(self, coupling: CouplingMap):
        self.coupling = coupling

    def transform(self, circuit: QuantumCircuit, property_set: PropertySet) -> QuantumCircuit:
        layout: Layout | None = property_set.get("layout")
        if layout is None:
            raise TranspilerError("ApplyLayout requires a layout in the property set")
        output = QuantumCircuit(
            self.coupling.num_qubits, circuit.num_clbits, name=circuit.name
        )
        output.global_phase = circuit.global_phase
        for instruction in circuit.data:
            mapped = tuple(layout.physical(q) for q in instruction.qubits)
            output.append(instruction.operation, mapped, instruction.clbits)
        property_set["original_num_qubits"] = circuit.num_qubits
        return output
