"""Gate decomposition down to a basis-gate set.

The ``Unroller`` recursively expands gate definitions until every operation
is a basis gate (paper Fig. 8 lines 2 and 6: the RPO pipeline unrolls twice,
the second time keeping ``swap`` and ``swapz`` as primitives so that QPO can
recognise them).  One- and two-qubit gates without definitions are lowered
through the Euler / Weyl synthesis routines.
"""

from __future__ import annotations

from typing import Iterable

from repro.circuit.quantumcircuit import QuantumCircuit
from repro.transpiler.exceptions import TranspilerError
from repro.transpiler.passmanager import PropertySet, TransformationPass

__all__ = ["Unroller", "IBM_BASIS"]

#: The IBM backend basis the paper targets (Sec. II-A).
IBM_BASIS = ("u1", "u2", "u3", "id", "cx")

_ALWAYS_ALLOWED = {"measure", "reset", "barrier", "annot"}

_MAX_DEPTH = 64


class Unroller(TransformationPass):
    """Expand all gates into the given basis."""

    requires = ()
    preserves = ()
    invalidates = ()

    def __init__(self, basis: Iterable[str] = IBM_BASIS):
        self.basis = set(basis) | _ALWAYS_ALLOWED

    @property
    def name(self) -> str:
        return f"Unroller({','.join(sorted(self.basis - _ALWAYS_ALLOWED))})"

    def transform(self, circuit: QuantumCircuit, property_set: PropertySet) -> QuantumCircuit:
        output = circuit.copy_empty_like()
        for instruction in circuit.data:
            self._unroll(
                instruction.operation, instruction.qubits, instruction.clbits, output, 0
            )
        return output

    def _unroll(self, operation, qubits, clbits, output, depth) -> None:
        if depth > _MAX_DEPTH:
            raise TranspilerError(
                f"definition recursion too deep while unrolling {operation.name!r}"
            )
        if operation.name in self.basis:
            output.append(operation, qubits, clbits)
            return
        definition = operation.definition
        if definition is None:
            definition = self._synthesize(operation)
        output.global_phase += definition.global_phase
        for inner in definition.data:
            mapped_qubits = tuple(qubits[q] for q in inner.qubits)
            mapped_clbits = tuple(clbits[c] for c in inner.clbits)
            self._unroll(inner.operation, mapped_qubits, mapped_clbits, output, depth + 1)

    def _synthesize(self, operation) -> QuantumCircuit:
        """Fallback lowering for definition-less gates via their matrices."""
        if not operation.is_gate():
            raise TranspilerError(
                f"cannot unroll non-gate {operation.name!r} into basis {sorted(self.basis)}"
            )
        if operation.num_qubits == 1:
            from repro.linalg.euler import u3_params_from_unitary

            theta, phi, lam, gamma = u3_params_from_unitary(operation.to_matrix())
            circuit = QuantumCircuit(1, global_phase=gamma)
            circuit.u3(theta, phi, lam, 0)
            return circuit
        if operation.num_qubits == 2:
            from repro.linalg.two_qubit_synthesis import synthesize_two_qubit_unitary

            return synthesize_two_qubit_unitary(operation.to_matrix())
        raise TranspilerError(
            f"gate {operation.name!r} has no definition and more than two qubits"
        )
