"""Device connectivity graphs.

A :class:`CouplingMap` records which physical qubit pairs support two-qubit
gates.  The paper's experiments use three IBM devices with very different
connectivity (Fig. 9); the map's all-pairs distance matrix drives both
routing and the connectivity study of Table IV.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import networkx as nx
import numpy as np

from repro.transpiler.exceptions import TranspilerError

__all__ = ["CouplingMap"]


class CouplingMap:
    """An undirected connectivity graph over physical qubits."""

    def __init__(self, edges: Iterable[Sequence[int]], num_qubits: int | None = None):
        self.graph = nx.Graph()
        edge_list = [tuple(edge) for edge in edges]
        if num_qubits is None:
            num_qubits = 1 + max((max(a, b) for a, b in edge_list), default=-1)
        self.num_qubits = int(num_qubits)
        self.graph.add_nodes_from(range(self.num_qubits))
        for a, b in edge_list:
            if a == b:
                raise TranspilerError(f"self-loop edge ({a}, {b})")
            self.graph.add_edge(int(a), int(b))
        self._distance: np.ndarray | None = None

    # ------------------------------------------------------------------

    @classmethod
    def line(cls, num_qubits: int) -> "CouplingMap":
        """A 1-D chain (worst-case connectivity, handy in tests)."""
        return cls([(i, i + 1) for i in range(num_qubits - 1)], num_qubits)

    @classmethod
    def ring(cls, num_qubits: int) -> "CouplingMap":
        edges = [(i, (i + 1) % num_qubits) for i in range(num_qubits)]
        return cls(edges, num_qubits)

    @classmethod
    def grid(cls, rows: int, cols: int) -> "CouplingMap":
        edges = []
        for r in range(rows):
            for c in range(cols):
                idx = r * cols + c
                if c + 1 < cols:
                    edges.append((idx, idx + 1))
                if r + 1 < rows:
                    edges.append((idx, idx + cols))
        return cls(edges, rows * cols)

    @classmethod
    def full(cls, num_qubits: int) -> "CouplingMap":
        edges = [(i, j) for i in range(num_qubits) for j in range(i + 1, num_qubits)]
        return cls(edges, num_qubits)

    # ------------------------------------------------------------------

    @property
    def edges(self) -> list[tuple[int, int]]:
        return [tuple(sorted(edge)) for edge in self.graph.edges]

    def neighbors(self, qubit: int) -> list[int]:
        return sorted(self.graph.neighbors(qubit))

    def is_connected(self) -> bool:
        return nx.is_connected(self.graph) if self.num_qubits else True

    def are_coupled(self, a: int, b: int) -> bool:
        return self.graph.has_edge(a, b)

    def distance(self, a: int, b: int) -> int:
        """Shortest-path distance between two physical qubits."""
        return int(self.distance_matrix[a, b])

    @property
    def distance_matrix(self) -> np.ndarray:
        if self._distance is None:
            matrix = np.full((self.num_qubits, self.num_qubits), np.inf)
            for source, lengths in nx.all_pairs_shortest_path_length(self.graph):
                for target, length in lengths.items():
                    matrix[source, target] = length
            self._distance = matrix
        return self._distance

    def shortest_path(self, a: int, b: int) -> list[int]:
        return nx.shortest_path(self.graph, a, b)

    def degree(self, qubit: int) -> int:
        return self.graph.degree[qubit]

    def __repr__(self) -> str:
        return f"<CouplingMap {self.num_qubits} qubits, {self.graph.number_of_edges()} edges>"
