"""The public ``transpile()`` front-end: one entry point for every pipeline.

This module is the top of the transpiler stack.  Everything below it --
preset levels 0-3, the paper's RPO pipeline (``pipeline="rpo"`` /
``"rpo_ext"``) and the Hoare baseline (``"hoare"``) -- is reached through
:func:`transpile` / :func:`pass_manager_for`, so callers (benchmarks,
examples, services) never wire pass managers by hand.

Architecture:

* **Pipeline routing** -- ``pipeline`` selects the pass-manager factory;
  the default ``"preset"`` dispatches on ``optimization_level`` exactly
  like the historical :func:`repro.transpiler.preset.transpile`.
* **Batching** -- ``transpile`` accepts a single circuit or a sequence.
  Batches are dispatched across a ``concurrent.futures`` thread pool; each
  job builds its own :class:`~repro.transpiler.passmanager.PassManager`
  (pass instances are single-run objects), so jobs never share mutable
  pass state.  ``seed`` may be one value for the whole batch or a
  per-circuit sequence.
* **Shared analysis cache** -- all jobs of a batch share one
  :class:`~repro.transpiler.cache.AnalysisCache` (pass your own to share
  across calls): repeated workloads skip most matrix constructions and
  circuit analyses, which is what makes high-throughput serving of
  similar circuits cheap.
* **Results** -- by default the transpiled circuit(s) come back in input
  order; ``full_result=True`` returns
  :class:`~repro.transpiler.passmanager.TranspileResult` objects carrying
  the property set and the structured per-pass/per-loop metrics.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import Sequence

from repro.circuit.quantumcircuit import QuantumCircuit
from repro.transpiler.cache import AnalysisCache
from repro.transpiler.coupling import CouplingMap
from repro.transpiler.exceptions import TranspilerError
from repro.transpiler.layout import Layout
from repro.transpiler.passmanager import PassManager, PropertySet, TranspileResult
from repro.transpiler.passes import IBM_BASIS

__all__ = ["transpile", "pass_manager_for", "PIPELINES"]

#: Named pipelines routed through :func:`pass_manager_for`.  ``"preset"``
#: dispatches on ``optimization_level``; ``"level0"``-``"level3"`` pin one;
#: the rest are the paper's configurations.
PIPELINES = (
    "preset",
    "level0",
    "level1",
    "level2",
    "level3",
    "rpo",
    "rpo_ext",
    "hoare",
)


def pass_manager_for(
    pipeline: str,
    coupling: CouplingMap,
    backend_properties=None,
    optimization_level: int = 1,
    seed: int | None = None,
    basis=IBM_BASIS,
    initial_layout: Layout | None = None,
) -> PassManager:
    """Build the pass manager for a named pipeline.

    The single routing point for preset levels, the RPO pipelines and the
    Hoare baseline -- new pipeline flavours plug in here.
    """
    # lazy imports: repro.rpo imports this package's submodules
    from repro.rpo.pipeline import (
        hoare_pass_manager,
        rpo_extended_pass_manager,
        rpo_pass_manager,
    )
    from repro.transpiler.preset import preset_pass_manager

    kwargs = dict(
        backend_properties=backend_properties,
        seed=seed,
        basis=basis,
        initial_layout=initial_layout,
    )
    if pipeline == "preset":
        return preset_pass_manager(optimization_level, coupling, **kwargs)
    if pipeline.startswith("level") and pipeline[5:].isdigit():
        return preset_pass_manager(int(pipeline[5:]), coupling, **kwargs)
    if pipeline == "rpo":
        return rpo_pass_manager(coupling, **kwargs)
    if pipeline == "rpo_ext":
        return rpo_extended_pass_manager(coupling, **kwargs)
    if pipeline == "hoare":
        return hoare_pass_manager(coupling, **kwargs)
    raise TranspilerError(
        f"unknown pipeline {pipeline!r}; choose one of {', '.join(PIPELINES)}"
    )


def transpile(
    circuits: QuantumCircuit | Sequence[QuantumCircuit],
    backend=None,
    coupling_map: CouplingMap | None = None,
    backend_properties=None,
    pipeline: str = "preset",
    optimization_level: int = 1,
    seed: int | Sequence[int] | None = None,
    basis_gates=IBM_BASIS,
    initial_layout: Layout | None = None,
    max_workers: int | None = None,
    analysis_cache: AnalysisCache | None = None,
    full_result: bool = False,
):
    """Compile one circuit -- or a batch -- for a target device.

    Args:
        circuits: a single :class:`QuantumCircuit` or a sequence of them.
        backend: a device from :mod:`repro.backends`; overrides
            ``coupling_map``/``backend_properties``.
        coupling_map: explicit device connectivity.  With neither backend
            nor map, an all-to-all map of each circuit's width is assumed.
        pipeline: ``"preset"`` (default, dispatches on
            ``optimization_level``), ``"level0"``-``"level3"``, ``"rpo"``,
            ``"rpo_ext"`` or ``"hoare"``.
        seed: routing seed; a sequence gives one seed per batched circuit.
        max_workers: thread-pool width for batches (default: CPU-bounded).
        analysis_cache: a shared :class:`AnalysisCache`; defaults to one
            fresh cache shared by the whole batch.
        full_result: return :class:`TranspileResult` objects (circuit +
            properties + per-pass metrics) instead of bare circuits.

    Returns:
        The transpiled circuit (or result) for single-circuit input, else
        a list in input order.
    """
    single = isinstance(circuits, QuantumCircuit)
    batch = [circuits] if single else list(circuits)
    if not batch:
        return []
    if any(not isinstance(circuit, QuantumCircuit) for circuit in batch):
        raise TranspilerError("transpile() expects QuantumCircuit inputs")

    if backend is not None:
        coupling_map = backend.coupling_map
        backend_properties = backend.properties

    if isinstance(seed, (list, tuple)):
        if len(seed) != len(batch):
            raise TranspilerError(
                f"got {len(seed)} seeds for {len(batch)} circuits"
            )
        seeds = list(seed)
    else:
        seeds = [seed] * len(batch)

    cache = analysis_cache if analysis_cache is not None else AnalysisCache()

    def job(circuit: QuantumCircuit, job_seed) -> TranspileResult:
        coupling = coupling_map
        if coupling is None:
            coupling = CouplingMap.full(circuit.num_qubits)
        manager = pass_manager_for(
            pipeline,
            coupling,
            backend_properties=backend_properties,
            optimization_level=optimization_level,
            seed=job_seed,
            basis=basis_gates,
            initial_layout=initial_layout,
        )
        return manager.run_with_result(
            circuit, PropertySet(), analysis_cache=cache
        )

    if len(batch) == 1:
        results = [job(batch[0], seeds[0])]
    else:
        workers = max_workers or min(len(batch), max(1, (os.cpu_count() or 2) - 1))
        with ThreadPoolExecutor(max_workers=workers) as pool:
            results = list(pool.map(job, batch, seeds))

    if not full_result:
        results = [result.circuit for result in results]
    return results[0] if single else results
