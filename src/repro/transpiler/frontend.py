"""The public ``transpile()`` front-end: one entry point for every pipeline.

This module is the top of the transpiler stack.  Everything below it --
preset levels 0-3, the paper's RPO pipeline (``pipeline="rpo"`` /
``"rpo_ext"``) and the Hoare baseline (``"hoare"``) -- is reached through
:func:`transpile` / :func:`pass_manager_for`, so callers (benchmarks,
examples, services) never wire pass managers by hand.

Architecture:

* **Pipeline routing** -- ``pipeline`` selects the pass-manager factory;
  the default ``"preset"`` dispatches on ``optimization_level`` exactly
  like the historical :func:`repro.transpiler.preset.transpile`.
* **Batching and executors** -- ``transpile`` accepts a single circuit or a
  sequence, dispatched through a pluggable executor backend:

  - ``"serial"`` runs jobs in-process, one after another;
  - ``"thread"`` fans out over a ``ThreadPoolExecutor`` -- cheap to start,
    but the pure-Python passes hold the GIL, so it overlaps little actual
    compilation;
  - ``"process"`` fans out over a ``ProcessPoolExecutor`` -- circuits
    travel as compact payloads (:mod:`repro.circuit.serialization`),
    workers are warm-started with the shared cache's snapshot and ship
    back deltas, and compilation scales with cores;
  - ``"auto"`` (default) picks serial for single circuits, process for
    large batches of wide circuits on multi-core hosts, thread otherwise.

  Each job builds its own :class:`~repro.transpiler.passmanager.PassManager`
  (pass instances are single-run objects), so jobs never share mutable
  pass state.  ``seed`` may be one value for the whole batch or a
  per-circuit sequence.
* **Shared analysis cache** -- all jobs of a batch share one
  :class:`~repro.transpiler.cache.AnalysisCache` (pass your own to share
  across calls).  Under the process executor the sharing crosses process
  boundaries: workers import the cache's warm-start snapshot at pool init
  and export deltas with every result, which the parent merges back, so
  repeated workloads skip most matrix constructions and circuit analyses
  whichever executor ran them.
* **Results** -- by default the transpiled circuit(s) come back in input
  order; ``full_result=True`` returns
  :class:`~repro.transpiler.passmanager.TranspileResult` objects carrying
  the property set and the structured per-pass metrics
  (:mod:`repro.transpiler.metrics` aggregates those across a batch).
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Sequence

from repro.circuit.quantumcircuit import QuantumCircuit
from repro.circuit.serialization import circuit_from_payload, circuit_to_payload
from repro.transpiler.cache import AnalysisCache
from repro.transpiler.coupling import CouplingMap
from repro.transpiler.exceptions import TranspilerError
from repro.transpiler.layout import Layout
from repro.transpiler.passmanager import PassManager, PropertySet, TranspileResult
from repro.transpiler.passes import IBM_BASIS

__all__ = ["transpile", "pass_manager_for", "PIPELINES", "EXECUTORS"]

#: Named pipelines routed through :func:`pass_manager_for`.  ``"preset"``
#: dispatches on ``optimization_level``; ``"level0"``-``"level3"`` pin one;
#: the rest are the paper's configurations.
PIPELINES = (
    "preset",
    "level0",
    "level1",
    "level2",
    "level3",
    "rpo",
    "rpo_ext",
    "hoare",
)

#: Executor backends accepted by :func:`transpile`.
EXECUTORS = ("auto", "serial", "thread", "process")

#: ``auto`` picks the process pool only when the batch is big and wide
#: enough to amortize pool start-up and payload shipping.
_PROCESS_MIN_BATCH = 8
_PROCESS_MIN_WIDTH = 5


def pass_manager_for(
    pipeline: str,
    coupling: CouplingMap,
    backend_properties=None,
    optimization_level: int = 1,
    seed: int | None = None,
    basis=IBM_BASIS,
    initial_layout: Layout | None = None,
) -> PassManager:
    """Build the pass manager for a named pipeline.

    The single routing point for preset levels, the RPO pipelines and the
    Hoare baseline -- new pipeline flavours plug in here.
    """
    # lazy imports: repro.rpo imports this package's submodules
    from repro.rpo.pipeline import (
        hoare_pass_manager,
        rpo_extended_pass_manager,
        rpo_pass_manager,
    )
    from repro.transpiler.preset import preset_pass_manager

    kwargs = dict(
        backend_properties=backend_properties,
        seed=seed,
        basis=basis,
        initial_layout=initial_layout,
    )
    if pipeline == "preset":
        return preset_pass_manager(optimization_level, coupling, **kwargs)
    if pipeline.startswith("level") and pipeline[5:].isdigit():
        return preset_pass_manager(int(pipeline[5:]), coupling, **kwargs)
    if pipeline == "rpo":
        return rpo_pass_manager(coupling, **kwargs)
    if pipeline == "rpo_ext":
        return rpo_extended_pass_manager(coupling, **kwargs)
    if pipeline == "hoare":
        return hoare_pass_manager(coupling, **kwargs)
    raise TranspilerError(
        f"unknown pipeline {pipeline!r}; choose one of {', '.join(PIPELINES)}"
    )


def _choose_executor(batch: Sequence[QuantumCircuit], requested: str) -> str:
    """Resolve ``"auto"`` by batch size, circuit width and host cores."""
    if requested != "auto":
        return requested
    if len(batch) <= 1:
        return "serial"
    if (os.cpu_count() or 1) <= 1:
        return "thread"  # a process pool cannot add parallelism here
    width = max(circuit.num_qubits for circuit in batch)
    if len(batch) >= _PROCESS_MIN_BATCH and width >= _PROCESS_MIN_WIDTH:
        return "process"
    return "thread"


def _default_workers(batch_size: int, max_workers: int | None) -> int:
    return max_workers or min(batch_size, max(1, (os.cpu_count() or 2) - 1))


# ---------------------------------------------------------------------------
# process executor plumbing
#
# Workers are initialized once per pool with the (picklable) pipeline
# configuration and the parent cache's warm-start snapshot; each job then
# ships only a compact circuit payload and its seed.  Results come back as
# payloads too, plus the worker cache's delta since its last export, which
# the parent merges into the batch's shared cache -- so the cache keeps
# warming across processes exactly as it does across threads.
# ---------------------------------------------------------------------------

_WORKER_STATE: dict | None = None


def _process_worker_init(config: dict, snapshot: dict | None) -> None:
    global _WORKER_STATE
    cache = AnalysisCache()
    if snapshot is not None:
        cache.import_snapshot(snapshot)
    _WORKER_STATE = {"config": config, "cache": cache}


def _sanitize_properties(properties: PropertySet) -> dict:
    """A picklable copy of a run's property set.

    The shared cache is stripped (it travels separately as a delta); any
    other unpicklable value is dropped and recorded under
    ``"_dropped_properties"`` so callers can tell the set is partial.
    """
    sanitized: dict = {}
    dropped: list[str] = []
    for key, value in properties.items():
        if key == AnalysisCache.PROPERTY_KEY:
            continue
        try:
            pickle.dumps(value)
        except Exception:
            dropped.append(key)
        else:
            sanitized[key] = value
    if dropped:
        sanitized["_dropped_properties"] = dropped
    return sanitized


def _process_job(task: tuple) -> tuple:
    payload, seed = task
    state = _WORKER_STATE
    assert state is not None, "process pool worker was not initialized"
    config = state["config"]
    cache = state["cache"]
    circuit = circuit_from_payload(payload)
    coupling = config["coupling_map"]
    if coupling is None:
        coupling = CouplingMap.full(circuit.num_qubits)
    manager = pass_manager_for(
        config["pipeline"],
        coupling,
        backend_properties=config["backend_properties"],
        optimization_level=config["optimization_level"],
        seed=seed,
        basis=config["basis"],
        initial_layout=config["initial_layout"],
    )
    result = manager.run_with_result(circuit, PropertySet(), analysis_cache=cache)
    return (
        circuit_to_payload(result.circuit),
        result.metrics,
        result.loops,
        result.time,
        _sanitize_properties(result.properties),
        cache.export_snapshot(delta_only=True),
    )


def _mp_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def _run_process_batch(
    batch: Sequence[QuantumCircuit],
    seeds: Sequence,
    cache: AnalysisCache,
    workers: int,
    config: dict,
) -> list[TranspileResult]:
    tasks = [
        (circuit_to_payload(circuit), seed) for circuit, seed in zip(batch, seeds)
    ]
    chunksize = max(1, len(tasks) // (workers * 4))
    with ProcessPoolExecutor(
        max_workers=workers,
        mp_context=_mp_context(),
        initializer=_process_worker_init,
        initargs=(config, cache.export_snapshot()),
    ) as pool:
        outputs = list(pool.map(_process_job, tasks, chunksize=chunksize))

    results = []
    for payload, metrics, loops, elapsed, props, delta in outputs:
        cache.import_snapshot(delta)
        properties = PropertySet(props)
        properties[AnalysisCache.PROPERTY_KEY] = cache
        results.append(
            TranspileResult(
                circuit=circuit_from_payload(payload),
                properties=properties,
                metrics=metrics,
                loops=loops,
                time=elapsed,
            )
        )
    return results


def transpile(
    circuits: QuantumCircuit | Sequence[QuantumCircuit],
    backend=None,
    coupling_map: CouplingMap | None = None,
    backend_properties=None,
    pipeline: str = "preset",
    optimization_level: int = 1,
    seed: int | Sequence[int] | None = None,
    basis_gates=IBM_BASIS,
    initial_layout: Layout | None = None,
    executor: str = "auto",
    max_workers: int | None = None,
    analysis_cache: AnalysisCache | None = None,
    full_result: bool = False,
):
    """Compile one circuit -- or a batch -- for a target device.

    Args:
        circuits: a single :class:`QuantumCircuit` or a sequence of them.
        backend: a device from :mod:`repro.backends`; overrides
            ``coupling_map``/``backend_properties``.
        coupling_map: explicit device connectivity.  With neither backend
            nor map, an all-to-all map of each circuit's width is assumed.
        pipeline: ``"preset"`` (default, dispatches on
            ``optimization_level``), ``"level0"``-``"level3"``, ``"rpo"``,
            ``"rpo_ext"`` or ``"hoare"``.
        seed: routing seed; a sequence gives one seed per batched circuit.
        executor: ``"serial"``, ``"thread"``, ``"process"`` or ``"auto"``
            (default), which picks by batch size, circuit width and host
            cores.  All backends produce identical circuits; they differ
            only in wall-clock.
        max_workers: pool width for the thread/process backends (default:
            CPU-bounded).
        analysis_cache: a shared :class:`AnalysisCache`; defaults to one
            fresh cache shared by the whole batch.  The process backend
            warm-starts workers from its snapshot and merges their deltas
            back, so the cache stays shared across calls either way.
        full_result: return :class:`TranspileResult` objects (circuit +
            properties + per-pass metrics) instead of bare circuits.

    Returns:
        The transpiled circuit (or result) for single-circuit input, else
        a list in input order.
    """
    single = isinstance(circuits, QuantumCircuit)
    batch = [circuits] if single else list(circuits)
    if not batch:
        return []
    if any(not isinstance(circuit, QuantumCircuit) for circuit in batch):
        raise TranspilerError("transpile() expects QuantumCircuit inputs")
    if executor not in EXECUTORS:
        raise TranspilerError(
            f"unknown executor {executor!r}; choose one of {', '.join(EXECUTORS)}"
        )

    if backend is not None:
        coupling_map = backend.coupling_map
        backend_properties = backend.properties

    if isinstance(seed, (list, tuple)):
        if len(seed) != len(batch):
            raise TranspilerError(
                f"got {len(seed)} seeds for {len(batch)} circuits"
            )
        seeds = list(seed)
    else:
        seeds = [seed] * len(batch)

    cache = analysis_cache if analysis_cache is not None else AnalysisCache()
    chosen = _choose_executor(batch, executor)

    def job(circuit: QuantumCircuit, job_seed) -> TranspileResult:
        coupling = coupling_map
        if coupling is None:
            coupling = CouplingMap.full(circuit.num_qubits)
        manager = pass_manager_for(
            pipeline,
            coupling,
            backend_properties=backend_properties,
            optimization_level=optimization_level,
            seed=job_seed,
            basis=basis_gates,
            initial_layout=initial_layout,
        )
        return manager.run_with_result(
            circuit, PropertySet(), analysis_cache=cache
        )

    if chosen == "process" and len(batch) > 1:
        config = dict(
            pipeline=pipeline,
            coupling_map=coupling_map,
            backend_properties=backend_properties,
            optimization_level=optimization_level,
            basis=tuple(basis_gates),
            initial_layout=initial_layout,
        )
        workers = _default_workers(len(batch), max_workers)
        results = _run_process_batch(batch, seeds, cache, workers, config)
    elif chosen == "thread" and len(batch) > 1:
        workers = _default_workers(len(batch), max_workers)
        with ThreadPoolExecutor(max_workers=workers) as pool:
            results = list(pool.map(job, batch, seeds))
    else:
        results = [job(circuit, s) for circuit, s in zip(batch, seeds)]

    if not full_result:
        results = [result.circuit for result in results]
    return results[0] if single else results
