"""The public ``transpile()`` front-end: one entry point for every pipeline.

This module is the top of the transpiler stack.  Everything below it --
preset levels 0-3, the paper's RPO pipeline (``pipeline="rpo"`` /
``"rpo_ext"``) and the Hoare baseline (``"hoare"``) -- is reached through
:func:`transpile` / :func:`pass_manager_for`, so callers (benchmarks,
examples, services) never wire pass managers by hand.

Architecture:

* **Targets** -- every job compiles for a
  :class:`~repro.transpiler.target.Target` (basis gates + coupling map +
  calibration data in one hashable object).  Callers pass ``target=`` (a
  ``Target``, a preset name like ``"melbourne"`` or ``"linear:5"``, or a
  per-circuit sequence for heterogeneous multi-backend batches); the
  historical ``backend`` / ``coupling_map`` / ``backend_properties``
  keywords are coerced into a target for back-compat.
* **Pipeline routing** -- ``pipeline`` selects the pass-manager factory;
  the default ``"preset"`` dispatches on ``optimization_level``.
* **Execution** -- ``transpile`` is a thin wrapper over a short-lived
  :class:`~repro.transpiler.service.CompileService`: ``executor`` picks the
  service mode (``"serial"``, GIL-bound ``"thread"``, core-scaling
  ``"process"``/``"service"``, or ``"auto"`` which decides by batch size,
  circuit width and host cores).  Pass ``service=`` to reuse a caller-owned
  *persistent* service instead -- no per-call pool spin-up, and the
  service's warm cache and disk snapshots apply (see
  :mod:`repro.transpiler.service`).
* **Shared analysis cache** -- all jobs of a batch share one
  :class:`~repro.transpiler.cache.AnalysisCache` (pass your own to share
  across calls); worker deltas are harvested back across process
  boundaries, so repeated workloads skip most matrix constructions and
  circuit analyses whichever executor ran them.
* **Results** -- by default the transpiled circuit(s) come back in input
  order; ``full_result=True`` returns
  :class:`~repro.transpiler.passmanager.TranspileResult` objects carrying
  the property set (including the job's target) and the structured
  per-pass metrics (:mod:`repro.transpiler.metrics` aggregates those
  across a batch, broken down per target).
"""

from __future__ import annotations

import os
from typing import Sequence

from repro.circuit.quantumcircuit import QuantumCircuit
from repro.transpiler.cache import AnalysisCache
from repro.transpiler.coupling import CouplingMap
from repro.transpiler.exceptions import TranspilerError
from repro.transpiler.layout import Layout
from repro.transpiler.options import CompileOptions
from repro.transpiler.passes import IBM_BASIS
from repro.transpiler.passmanager import PassManager
from repro.transpiler.target import Target, resolve_targets

__all__ = ["transpile", "pass_manager_for", "PIPELINES", "EXECUTORS"]

#: Named pipelines routed through :func:`pass_manager_for`.  ``"preset"``
#: dispatches on ``optimization_level``; ``"level0"``-``"level3"`` pin one;
#: the rest are the paper's configurations.
PIPELINES = (
    "preset",
    "level0",
    "level1",
    "level2",
    "level3",
    "rpo",
    "rpo_ext",
    "hoare",
)

#: Executor backends accepted by :func:`transpile`.  ``"service"`` is the
#: process pool by another name (one short-lived
#: :class:`~repro.transpiler.service.CompileService` per call); pass
#: ``service=`` for a persistent one.  ``"remote"`` ships the batch to
#: networked compile server(s) named by ``endpoint=`` (one URL, or a list
#: fanned out shard-aware -- see :mod:`repro.server`).
EXECUTORS = ("auto", "serial", "thread", "process", "service", "remote")

#: ``auto`` picks the process pool only when the batch is big and wide
#: enough to amortize pool start-up and payload shipping.
_PROCESS_MIN_BATCH = 8
_PROCESS_MIN_WIDTH = 5


def pass_manager_for(
    pipeline: str,
    target: Target | CouplingMap | str,
    backend_properties=None,
    optimization_level: int = 1,
    seed: int | None = None,
    basis=IBM_BASIS,
    initial_layout: Layout | None = None,
) -> PassManager:
    """Build the pass manager for a named pipeline.

    The single routing point for preset levels, the RPO pipelines and the
    Hoare baseline -- new pipeline flavours plug in here.  ``target``
    accepts a :class:`Target`, a preset name, a backend, or a bare
    :class:`CouplingMap` (combined with the loose ``basis``/
    ``backend_properties`` keywords for back-compat).
    """
    # lazy imports: repro.rpo imports this package's submodules
    from repro.rpo.pipeline import (
        hoare_pass_manager,
        rpo_extended_pass_manager,
        rpo_pass_manager,
    )
    from repro.transpiler.preset import preset_pass_manager

    target = Target.coerce(target, basis=basis, properties=backend_properties)
    kwargs = dict(seed=seed, initial_layout=initial_layout)
    if pipeline == "preset":
        return preset_pass_manager(optimization_level, target, **kwargs)
    if pipeline.startswith("level") and pipeline[5:].isdigit():
        return preset_pass_manager(int(pipeline[5:]), target, **kwargs)
    if pipeline == "rpo":
        return rpo_pass_manager(target, **kwargs)
    if pipeline == "rpo_ext":
        return rpo_extended_pass_manager(target, **kwargs)
    if pipeline == "hoare":
        return hoare_pass_manager(target, **kwargs)
    raise TranspilerError(
        f"unknown pipeline {pipeline!r}; choose one of {', '.join(PIPELINES)}"
    )


def _choose_executor(batch: Sequence[QuantumCircuit], requested: str) -> str:
    """Resolve ``"auto"`` by batch size, circuit width and host cores."""
    if requested != "auto":
        return requested
    if len(batch) <= 1:
        return "serial"
    if (os.cpu_count() or 1) <= 1:
        return "thread"  # a process pool cannot add parallelism here
    width = max(circuit.num_qubits for circuit in batch)
    if len(batch) >= _PROCESS_MIN_BATCH and width >= _PROCESS_MIN_WIDTH:
        return "process"
    return "thread"


#: executor name -> service mode (the service treats process jobs and
#: thread jobs uniformly; ``transpile`` only picks the mode).
_EXECUTOR_MODES = {
    "serial": "serial",
    "thread": "thread",
    "process": "process",
    "service": "process",
}


def transpile(
    circuits: QuantumCircuit | Sequence[QuantumCircuit],
    backend=None,
    coupling_map: CouplingMap | None = None,
    backend_properties=None,
    target: Target | str | Sequence | None = None,
    pipeline: str | None = None,
    optimization_level: int | None = None,
    seed: int | Sequence[int] | None = None,
    basis_gates=None,
    initial_layout: Layout | None = None,
    executor: str = "auto",
    max_workers: int | None = None,
    analysis_cache: AnalysisCache | None = None,
    full_result: bool = False,
    service=None,
    endpoint=None,
    result_cache=None,
    validate: str | None = None,
    options: CompileOptions | None = None,
):
    """Compile one circuit -- or a batch -- for one or many targets.

    Args:
        circuits: a single :class:`QuantumCircuit` or a sequence of them.
        backend: a device from :mod:`repro.backends`; shorthand for
            ``target=Target.from_backend(backend)``.
        coupling_map: explicit device connectivity (back-compat shorthand
            for a custom target).  With neither target, backend nor map,
            an all-to-all target of each circuit's width is assumed.
        target: a :class:`~repro.transpiler.target.Target`, a preset name
            (``"melbourne"``, ``"linear:5"``, ``"grid:3x4"``, ...), or a
            per-circuit sequence of either -- one batch may mix circuits
            bound for different devices, and each compiles against its own
            target whichever executor runs it.  A prebuilt ``Target`` is a
            complete hardware spec: it wins over ``basis_gates``/
            ``backend_properties``, which only apply while a target is
            being built from looser inputs (backend, coupling map, preset
            name, or the all-to-all fallback).
        pipeline: ``"preset"`` (default, dispatches on
            ``optimization_level``), ``"level0"``-``"level3"``, ``"rpo"``,
            ``"rpo_ext"`` or ``"hoare"``.  Left unset, a caller-provided
            ``service``'s configured pipeline applies.
        seed: routing seed; a sequence gives one seed per batched circuit.
        executor: ``"serial"``, ``"thread"``, ``"process"``, ``"service"``,
            ``"remote"`` or ``"auto"`` (default), which picks by batch
            size, circuit width and host cores.  All backends produce
            identical circuits; they differ only in wall-clock.
            ``"remote"`` requires ``endpoint=`` and routes the batch
            through a short-lived :class:`~repro.server.RemoteCompileService`
            (or, for a list of endpoints, a shard-aware
            :class:`~repro.server.ShardRouter`).
        max_workers: pool width for the pooled backends (default:
            CPU-bounded).
        analysis_cache: a shared :class:`AnalysisCache`; defaults to one
            fresh cache shared by the whole batch.  Worker deltas are
            harvested back into it, so the cache stays shared across
            calls whichever executor ran them.
        full_result: return :class:`TranspileResult` objects (circuit +
            properties + per-pass metrics) instead of bare circuits.
        service: a caller-owned, persistent
            :class:`~repro.transpiler.service.CompileService` to submit
            through instead of a short-lived per-call one; ``executor``,
            ``max_workers`` and ``analysis_cache`` are then the service's
            business and ignored here, and the service's configured
            pipeline/optimization-level defaults apply to any argument
            this call leaves unset.  A
            :class:`~repro.server.RemoteCompileService` or
            :class:`~repro.server.ShardRouter` works here too -- they
            mirror the service surface.
        endpoint: compile-server URL(s): one ``"http://host:port"``
            string, or a sequence of them to fan the batch across shards
            with target-affinity routing.  Setting ``endpoint=`` with the
            default ``executor="auto"`` *implies* ``executor="remote"``;
            naming any other executor alongside an endpoint raises.
        result_cache: a shared
            :class:`~repro.transpiler.result_cache.ResultCache` so
            repeated ``transpile()`` calls serve previously compiled
            answers without running a pipeline.  Unset, the one-shot
            service runs uncached (a fresh per-call result cache could
            never hit); a caller-owned ``service`` brings its own.
        validate: QSAN translation-validation mode -- ``"full"`` checks
            semantic equivalence after every transformation pass *and*
            audits contract honesty, ``"contracts"`` audits only the
            declared metadata, ``"off"`` disables checking.  ``None``
            (default) defers to the ``REPRO_QSAN`` environment variable.
            See :mod:`repro.analysis.qsan`.
        options: a :class:`~repro.transpiler.options.CompileOptions`
            consolidating the compile knobs above (``pipeline``,
            ``optimization_level``, ``seed``, ``executor``, ...).  The
            individual keyword arguments are legacy spellings coerced
            into it; naming the same knob both ways with different
            values earns a :class:`DeprecationWarning` and the options
            object wins.

    Returns:
        The transpiled circuit (or result) for single-circuit input, else
        a list in input order.
    """
    from repro.transpiler.service import transpile_batch

    opts = CompileOptions.coerce(
        options,
        pipeline=pipeline,
        optimization_level=optimization_level,
        seed=seed,
        initial_layout=initial_layout,
        executor=executor,
        max_workers=max_workers,
        full_result=full_result,
        analysis_cache=analysis_cache,
        result_cache=result_cache,
        endpoint=endpoint,
        validate=validate,
    )
    pipeline = opts.pipeline
    optimization_level = opts.optimization_level
    seed = opts.seed
    initial_layout = opts.initial_layout
    executor = opts.executor
    max_workers = opts.max_workers
    full_result = opts.full_result
    analysis_cache = opts.analysis_cache
    result_cache = opts.result_cache
    endpoint = opts.endpoint
    validate = opts.validate

    explicit_basis = basis_gates is not None
    if basis_gates is None:
        basis_gates = IBM_BASIS
    single = isinstance(circuits, QuantumCircuit)
    batch = [circuits] if single else list(circuits)
    if any(not isinstance(circuit, QuantumCircuit) for circuit in batch):
        raise TranspilerError("transpile() expects QuantumCircuit inputs")
    if executor not in EXECUTORS:
        raise TranspilerError(
            f"unknown executor {executor!r}; choose one of {', '.join(EXECUTORS)}"
        )
    if endpoint is not None and executor == "auto":
        executor = "remote"  # an endpoint can only mean the compile farm
    if executor == "remote" and endpoint is None and service is None:
        raise TranspilerError(
            'executor="remote" needs endpoint= (one URL, or a list of URLs '
            "to shard across)"
        )
    if endpoint is not None and executor != "remote":
        raise TranspilerError(
            f"endpoint= implies executor=\"remote\", which contradicts the "
            f"explicit executor={executor!r}; drop one of the two"
        )
    if endpoint is not None and service is not None:
        raise TranspilerError("pass either service= or endpoint=, not both")
    if not batch:
        # an empty batch is a valid request with a well-formed empty
        # answer on every executor path -- nothing reaches a pool, a
        # service or the network
        return []

    owned_client = None
    if executor == "remote" and service is None:
        from repro.server import RemoteCompileService, ShardRouter

        endpoints = (
            list(endpoint) if isinstance(endpoint, (list, tuple)) else [endpoint]
        )
        if len(endpoints) > 1:
            owned_client = ShardRouter(endpoints, basis_gates=basis_gates)
        else:
            owned_client = RemoteCompileService(endpoints[0], basis_gates=basis_gates)
        service = owned_client

    if service is not None and target is None and backend is None and coupling_map is None:
        # no hardware named here: the service's configured default target
        # applies (resolving now would clobber it with all-to-all).  An
        # explicit basis_gates overrides the basis but keeps the service
        # target's device (coupling + calibration).
        base = service.default_target
        if base is not None and explicit_basis:
            targets = [
                Target(
                    base.coupling_map,
                    basis=basis_gates,
                    properties=base.properties,
                    name=base.name,
                )
            ] * len(batch)
        elif base is None and explicit_basis:
            targets = resolve_targets(batch, None, None, None, None, basis_gates)
        else:
            targets = None
    else:
        targets = resolve_targets(
            batch, target, backend, coupling_map, backend_properties, basis_gates
        )

    if isinstance(seed, (list, tuple)):
        if len(seed) != len(batch):
            raise TranspilerError(
                f"got {len(seed)} seeds for {len(batch)} circuits"
            )
        seeds = list(seed)
    else:
        seeds = [seed] * len(batch)

    if service is not None:
        try:
            results = service.map(
                batch,
                targets=targets,
                seeds=seeds,
                pipeline=pipeline,
                optimization_level=optimization_level,
                initial_layout=initial_layout,
                validate=validate,
            )
        finally:
            if owned_client is not None:
                owned_client.close()
    else:
        chosen = _choose_executor(batch, executor)
        mode = _EXECUTOR_MODES[chosen]
        if len(batch) == 1 and mode != "serial":
            mode = "serial"  # a pool cannot help a single job
        cache = analysis_cache if analysis_cache is not None else AnalysisCache()
        results = transpile_batch(
            batch,
            targets,
            seeds,
            mode=mode,
            pipeline=pipeline if pipeline is not None else "preset",
            optimization_level=(
                optimization_level if optimization_level is not None else 1
            ),
            initial_layout=initial_layout,
            cache=cache,
            max_workers=max_workers,
            result_cache=result_cache,
            validate=validate,
        )

    if not full_result:
        results = [result.circuit for result in results]
    return results[0] if single else results
