"""Preset pass managers (optimization levels 0-3) and ``transpile()``.

The four levels mirror Qiskit 0.18 (paper Sec. II-B):

* level 0: map to the device, no optimization;
* level 1: trivial layout, light gate collapsing;
* level 2: dense noise-aware layout, commutative cancellation;
* level 3: level 2 plus two-qubit block re-synthesis in a fixed-point loop
  (paper Fig. 8 without the underlined RPO additions -- those live in
  :func:`repro.rpo.rpo_pass_manager`).

Every factory takes a :class:`~repro.transpiler.target.Target` (basis +
coupling + calibration data) as its first argument; bare
:class:`~repro.transpiler.coupling.CouplingMap` values plus the historical
``basis``/``backend_properties`` keywords are still accepted and coerced.
The unroll/layout/route stage every level shares is built once by
:func:`layout_stage`, which the RPO and Hoare pipelines reuse too.
"""

from __future__ import annotations

from repro.circuit.quantumcircuit import QuantumCircuit
from repro.transpiler.coupling import CouplingMap
from repro.transpiler.exceptions import TranspilerError
from repro.transpiler.layout import Layout
from repro.transpiler.passmanager import BasePass, DoWhileController, PassManager
from repro.transpiler.passes import (
    ApplyLayout,
    CommutativeCancellation,
    ConsolidateBlocks,
    CXCancellation,
    DenseLayout,
    FixedPoint,
    IBM_BASIS,
    Optimize1qGates,
    RemoveAnnotations,
    RemoveDiagonalGatesBeforeMeasure,
    SetLayout,
    Size,
    StochasticSwap,
    TrivialLayout,
    Unroller,
)
from repro.transpiler.target import Target

__all__ = [
    "layout_stage",
    "optimization_loop",
    "level_0_pass_manager",
    "level_1_pass_manager",
    "level_2_pass_manager",
    "level_3_pass_manager",
    "preset_pass_manager",
    "transpile",
]


def _layout_pass(target: Target, initial_layout, dense: bool):
    if initial_layout is not None:
        return SetLayout(initial_layout)
    if dense:
        return DenseLayout(target.coupling_map, target.properties)
    return TrivialLayout(target.coupling_map)


def layout_stage(
    target: Target,
    *,
    dense: bool,
    swap_trials: int,
    seed: int | None = None,
    initial_layout: Layout | None = None,
    unroll_after: bool = True,
) -> list[BasePass]:
    """The unroll/layout/route stage shared by every pipeline.

    Unrolls to the target basis, selects a layout (``SetLayout`` when the
    caller pinned one, else dense noise-aware or trivial), applies it,
    routes with ``StochasticSwap`` and -- unless ``unroll_after=False``,
    which the RPO/Hoare pipelines use to splice their own passes between
    routing and re-unrolling -- lowers the routing-inserted SWAPs back to
    the basis.
    """
    passes: list[BasePass] = [
        Unroller(target.basis),
        _layout_pass(target, initial_layout, dense),
        ApplyLayout(target.coupling_map),
        StochasticSwap(target.coupling_map, trials=swap_trials, seed=seed),
    ]
    if unroll_after:
        passes.append(Unroller(target.basis))
    return passes


def optimization_loop(basis, *, commutative: bool, consolidate: bool) -> DoWhileController:
    """The fixed-point optimization loop shared by levels 1-3, RPO and Hoare.

    ``commutative`` adds ``CommutativeCancellation`` (levels 2+);
    ``consolidate`` adds the two-qubit block re-synthesis prologue
    (level 3 and the paper pipelines).
    """
    passes: list[BasePass] = []
    if consolidate:
        passes += [ConsolidateBlocks(), Unroller(basis)]
    passes.append(Optimize1qGates())
    if commutative:
        passes.append(CommutativeCancellation())
    passes += [CXCancellation(), Size(), FixedPoint("size")]
    return DoWhileController(
        passes,
        do_while=lambda ps: not ps.get("size_fixed_point", False),
        max_iterations=10,
    )


def level_0_pass_manager(
    target: Target | CouplingMap,
    backend_properties=None,
    seed: int | None = None,
    basis=IBM_BASIS,
    initial_layout: Layout | None = None,
) -> PassManager:
    """Map to the device with no explicit optimization."""
    target = Target.coerce(target, basis=basis, properties=backend_properties)
    pm = PassManager()
    pm.append(
        layout_stage(
            target, dense=False, swap_trials=1, seed=seed, initial_layout=initial_layout
        )
    )
    pm.append(RemoveAnnotations())
    return pm


def level_1_pass_manager(
    target: Target | CouplingMap,
    backend_properties=None,
    seed: int | None = None,
    basis=IBM_BASIS,
    initial_layout: Layout | None = None,
) -> PassManager:
    """Light optimization: collapse adjacent gates."""
    target = Target.coerce(target, basis=basis, properties=backend_properties)
    pm = PassManager()
    pm.append(
        layout_stage(
            target, dense=False, swap_trials=3, seed=seed, initial_layout=initial_layout
        )
    )
    pm.append(optimization_loop(target.basis, commutative=False, consolidate=False))
    pm.append(RemoveDiagonalGatesBeforeMeasure())
    pm.append(RemoveAnnotations())
    return pm


def level_2_pass_manager(
    target: Target | CouplingMap,
    backend_properties=None,
    seed: int | None = None,
    basis=IBM_BASIS,
    initial_layout: Layout | None = None,
) -> PassManager:
    """Noise-adaptive layout plus commutation-based cancellation."""
    target = Target.coerce(target, basis=basis, properties=backend_properties)
    pm = PassManager()
    pm.append(
        layout_stage(
            target, dense=True, swap_trials=5, seed=seed, initial_layout=initial_layout
        )
    )
    pm.append(optimization_loop(target.basis, commutative=True, consolidate=False))
    pm.append(RemoveDiagonalGatesBeforeMeasure())
    pm.append(RemoveAnnotations())
    return pm


def level_3_pass_manager(
    target: Target | CouplingMap,
    backend_properties=None,
    seed: int | None = None,
    basis=IBM_BASIS,
    initial_layout: Layout | None = None,
) -> PassManager:
    """Heaviest standard optimization: adds two-qubit block re-synthesis.

    This is the baseline the paper compares RPO against (Table II).
    """
    target = Target.coerce(target, basis=basis, properties=backend_properties)
    pm = PassManager()
    pm.append(
        layout_stage(
            target, dense=True, swap_trials=8, seed=seed, initial_layout=initial_layout
        )
    )
    pm.append(Optimize1qGates())
    pm.append(optimization_loop(target.basis, commutative=True, consolidate=True))
    pm.append(RemoveDiagonalGatesBeforeMeasure())
    pm.append(RemoveAnnotations())
    return pm


_PRESETS = {
    0: level_0_pass_manager,
    1: level_1_pass_manager,
    2: level_2_pass_manager,
    3: level_3_pass_manager,
}


def preset_pass_manager(optimization_level: int, *args, **kwargs) -> PassManager:
    try:
        factory = _PRESETS[optimization_level]
    except KeyError:
        raise TranspilerError(
            f"unknown optimization level {optimization_level}; choose 0-3"
        ) from None
    return factory(*args, **kwargs)


def transpile(
    circuit: QuantumCircuit,
    backend=None,
    coupling_map: CouplingMap | None = None,
    backend_properties=None,
    optimization_level: int = 1,
    seed: int | None = None,
    basis_gates=IBM_BASIS,
    initial_layout: Layout | None = None,
) -> QuantumCircuit:
    """Compile ``circuit`` for a target device.

    Thin wrapper kept for backward compatibility -- the batched,
    pipeline-routing entry point lives in
    :func:`repro.transpiler.frontend.transpile`.
    """
    from repro.transpiler.frontend import transpile as frontend_transpile

    return frontend_transpile(
        circuit,
        backend=backend,
        coupling_map=coupling_map,
        backend_properties=backend_properties,
        optimization_level=optimization_level,
        seed=seed,
        basis_gates=basis_gates,
        initial_layout=initial_layout,
    )
