"""Preset pass managers (optimization levels 0-3) and ``transpile()``.

The four levels mirror Qiskit 0.18 (paper Sec. II-B):

* level 0: map to the device, no optimization;
* level 1: trivial layout, light gate collapsing;
* level 2: dense noise-aware layout, commutative cancellation;
* level 3: level 2 plus two-qubit block re-synthesis in a fixed-point loop
  (paper Fig. 8 without the underlined RPO additions -- those live in
  :func:`repro.rpo.rpo_pass_manager`).
"""

from __future__ import annotations

from repro.circuit.quantumcircuit import QuantumCircuit
from repro.transpiler.coupling import CouplingMap
from repro.transpiler.exceptions import TranspilerError
from repro.transpiler.layout import Layout
from repro.transpiler.passmanager import DoWhileController, PassManager
from repro.transpiler.passes import (
    ApplyLayout,
    CommutativeCancellation,
    ConsolidateBlocks,
    CXCancellation,
    DenseLayout,
    FixedPoint,
    IBM_BASIS,
    Optimize1qGates,
    RemoveAnnotations,
    RemoveDiagonalGatesBeforeMeasure,
    SetLayout,
    Size,
    StochasticSwap,
    TrivialLayout,
    Unroller,
)

__all__ = [
    "level_0_pass_manager",
    "level_1_pass_manager",
    "level_2_pass_manager",
    "level_3_pass_manager",
    "preset_pass_manager",
    "transpile",
]


def _layout_pass(coupling, backend_properties, initial_layout, dense: bool):
    if initial_layout is not None:
        return SetLayout(initial_layout)
    if dense:
        return DenseLayout(coupling, backend_properties)
    return TrivialLayout(coupling)


def level_0_pass_manager(
    coupling: CouplingMap,
    backend_properties=None,
    seed: int | None = None,
    basis=IBM_BASIS,
    initial_layout: Layout | None = None,
) -> PassManager:
    """Map to the device with no explicit optimization."""
    pm = PassManager()
    pm.append(Unroller(basis))
    pm.append(_layout_pass(coupling, backend_properties, initial_layout, dense=False))
    pm.append(ApplyLayout(coupling))
    pm.append(StochasticSwap(coupling, trials=1, seed=seed))
    pm.append(Unroller(basis))
    pm.append(RemoveAnnotations())
    return pm


def level_1_pass_manager(
    coupling: CouplingMap,
    backend_properties=None,
    seed: int | None = None,
    basis=IBM_BASIS,
    initial_layout: Layout | None = None,
) -> PassManager:
    """Light optimization: collapse adjacent gates."""
    pm = PassManager()
    pm.append(Unroller(basis))
    pm.append(_layout_pass(coupling, backend_properties, initial_layout, dense=False))
    pm.append(ApplyLayout(coupling))
    pm.append(StochasticSwap(coupling, trials=3, seed=seed))
    pm.append(Unroller(basis))
    pm.append(
        DoWhileController(
            [Optimize1qGates(), CXCancellation(), Size(), FixedPoint("size")],
            do_while=lambda ps: not ps.get("size_fixed_point", False),
            max_iterations=10,
        )
    )
    pm.append(RemoveDiagonalGatesBeforeMeasure())
    pm.append(RemoveAnnotations())
    return pm


def level_2_pass_manager(
    coupling: CouplingMap,
    backend_properties=None,
    seed: int | None = None,
    basis=IBM_BASIS,
    initial_layout: Layout | None = None,
) -> PassManager:
    """Noise-adaptive layout plus commutation-based cancellation."""
    pm = PassManager()
    pm.append(Unroller(basis))
    pm.append(_layout_pass(coupling, backend_properties, initial_layout, dense=True))
    pm.append(ApplyLayout(coupling))
    pm.append(StochasticSwap(coupling, trials=5, seed=seed))
    pm.append(Unroller(basis))
    pm.append(
        DoWhileController(
            [
                Optimize1qGates(),
                CommutativeCancellation(),
                CXCancellation(),
                Size(),
                FixedPoint("size"),
            ],
            do_while=lambda ps: not ps.get("size_fixed_point", False),
            max_iterations=10,
        )
    )
    pm.append(RemoveDiagonalGatesBeforeMeasure())
    pm.append(RemoveAnnotations())
    return pm


def level_3_pass_manager(
    coupling: CouplingMap,
    backend_properties=None,
    seed: int | None = None,
    basis=IBM_BASIS,
    initial_layout: Layout | None = None,
) -> PassManager:
    """Heaviest standard optimization: adds two-qubit block re-synthesis.

    This is the baseline the paper compares RPO against (Table II).
    """
    pm = PassManager()
    pm.append(Unroller(basis))
    pm.append(_layout_pass(coupling, backend_properties, initial_layout, dense=True))
    pm.append(ApplyLayout(coupling))
    pm.append(StochasticSwap(coupling, trials=8, seed=seed))
    pm.append(Unroller(basis))
    pm.append(Optimize1qGates())
    pm.append(
        DoWhileController(
            [
                ConsolidateBlocks(),
                Unroller(basis),
                Optimize1qGates(),
                CommutativeCancellation(),
                CXCancellation(),
                Size(),
                FixedPoint("size"),
            ],
            do_while=lambda ps: not ps.get("size_fixed_point", False),
            max_iterations=10,
        )
    )
    pm.append(RemoveDiagonalGatesBeforeMeasure())
    pm.append(RemoveAnnotations())
    return pm


_PRESETS = {
    0: level_0_pass_manager,
    1: level_1_pass_manager,
    2: level_2_pass_manager,
    3: level_3_pass_manager,
}


def preset_pass_manager(optimization_level: int, *args, **kwargs) -> PassManager:
    try:
        factory = _PRESETS[optimization_level]
    except KeyError:
        raise TranspilerError(
            f"unknown optimization level {optimization_level}; choose 0-3"
        ) from None
    return factory(*args, **kwargs)


def transpile(
    circuit: QuantumCircuit,
    backend=None,
    coupling_map: CouplingMap | None = None,
    backend_properties=None,
    optimization_level: int = 1,
    seed: int | None = None,
    basis_gates=IBM_BASIS,
    initial_layout: Layout | None = None,
) -> QuantumCircuit:
    """Compile ``circuit`` for a target device.

    Thin wrapper kept for backward compatibility -- the batched,
    pipeline-routing entry point lives in
    :func:`repro.transpiler.frontend.transpile`.
    """
    from repro.transpiler.frontend import transpile as frontend_transpile

    return frontend_transpile(
        circuit,
        backend=backend,
        coupling_map=coupling_map,
        backend_properties=backend_properties,
        optimization_level=optimization_level,
        seed=seed,
        basis_gates=basis_gates,
        initial_layout=initial_layout,
    )
