"""The transpiler: scheduler framework, shared analysis cache, passes,
preset levels, and the public ``transpile()`` front-end.

Layers, bottom to top:

* :mod:`repro.transpiler.passmanager` -- the requirements/preserves-aware
  pass scheduler.  Passes declare what they require, provide, preserve and
  invalidate; the manager skips analyses whose results are still valid and
  returns structured per-pass metrics in a :class:`TranspileResult`.
* :mod:`repro.transpiler.cache` -- the per-run :class:`AnalysisCache`
  (memoized gate matrices, adjacency maps, DAG views) every pass shares;
  share one cache across runs to amortise work over repeated workloads.
* :mod:`repro.transpiler.preset` -- optimization levels 0-3 mirroring
  Qiskit 0.18 (the baselines the paper compares against, Sec. II-B); the
  RPO pipeline (paper Fig. 8, underlined additions) lives in
  :mod:`repro.rpo` and reuses this infrastructure.
* :mod:`repro.transpiler.frontend` -- the batched :func:`transpile` entry
  point routing every pipeline (presets, RPO, Hoare) and dispatching
  circuit batches across pluggable executors (serial / thread / process,
  with ``auto`` selection); the process backend warm-starts workers from
  the shared cache's snapshot and merges their deltas back.
* :mod:`repro.transpiler.metrics` -- batch-level aggregation of the
  per-pass metrics into JSON reports, plus the baseline comparison the CI
  regression gate runs.
"""

from repro.transpiler.coupling import CouplingMap
from repro.transpiler.layout import Layout
from repro.transpiler.exceptions import TranspilerError
from repro.transpiler.cache import AnalysisCache
from repro.transpiler.passmanager import (
    AnalysisPass,
    BasePass,
    DoWhileController,
    LoopMetrics,
    PassManager,
    PassMetrics,
    PropertySet,
    TranspileResult,
    TransformationPass,
)
from repro.transpiler.preset import (
    level_0_pass_manager,
    level_1_pass_manager,
    level_2_pass_manager,
    level_3_pass_manager,
    preset_pass_manager,
)
from repro.transpiler.frontend import EXECUTORS, PIPELINES, pass_manager_for, transpile
from repro.transpiler.metrics import (
    aggregate_batch,
    compare_metrics,
    load_metrics_json,
    write_metrics_json,
)

__all__ = [
    "CouplingMap",
    "Layout",
    "TranspilerError",
    "AnalysisCache",
    "BasePass",
    "AnalysisPass",
    "TransformationPass",
    "PassManager",
    "PropertySet",
    "DoWhileController",
    "PassMetrics",
    "LoopMetrics",
    "TranspileResult",
    "level_0_pass_manager",
    "level_1_pass_manager",
    "level_2_pass_manager",
    "level_3_pass_manager",
    "preset_pass_manager",
    "PIPELINES",
    "EXECUTORS",
    "pass_manager_for",
    "transpile",
    "aggregate_batch",
    "compare_metrics",
    "load_metrics_json",
    "write_metrics_json",
]
