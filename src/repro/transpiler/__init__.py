"""The transpiler: scheduler framework, shared analysis cache, passes,
preset levels, and the public ``transpile()`` front-end.

Layers, bottom to top:

* :mod:`repro.transpiler.passmanager` -- the requirements/preserves-aware
  pass scheduler.  Passes declare what they require, provide, preserve and
  invalidate; the manager skips analyses whose results are still valid and
  returns structured per-pass metrics in a :class:`TranspileResult`.
* :mod:`repro.transpiler.cache` -- the per-run :class:`AnalysisCache`
  (memoized gate matrices, adjacency maps, DAG views) every pass shares;
  share one cache across runs to amortise work over repeated workloads.
* :mod:`repro.transpiler.target` -- the :class:`Target` abstraction: basis
  gates + coupling map + calibration data as one hashable, picklable value
  (named presets included), consumed by every pass-manager factory and
  routed on by the executor layer.
* :mod:`repro.transpiler.preset` -- optimization levels 0-3 mirroring
  Qiskit 0.18 (the baselines the paper compares against, Sec. II-B); the
  RPO pipeline (paper Fig. 8, underlined additions) lives in
  :mod:`repro.rpo` and reuses this infrastructure, including the shared
  :func:`~repro.transpiler.preset.layout_stage` builder.
* :mod:`repro.transpiler.service` -- the long-lived :class:`CompileService`:
  a persistent worker pool with an async submission queue, chunked job
  envelopes for large batches, periodic worker cache-delta harvesting and
  disk-backed cache snapshots (shutdown-time and periodic autosave), so
  warm-start survives process restarts.  :mod:`repro.server` puts this
  behind an HTTP wire for multi-machine sharding.
* :mod:`repro.transpiler.frontend` -- the batched :func:`transpile` entry
  point routing every pipeline (presets, RPO, Hoare); a thin wrapper over
  a short-lived service (or a caller-owned persistent one via
  ``service=``), with ``auto`` executor selection and per-circuit targets
  in one batch.
* :mod:`repro.transpiler.metrics` -- batch-level aggregation of the
  per-pass metrics into JSON reports (with per-target breakdowns), plus
  the baseline comparison the CI regression gate runs.
"""

from repro.transpiler.coupling import CouplingMap
from repro.transpiler.layout import Layout
from repro.transpiler.exceptions import TranspilerError
from repro.transpiler.cache import AnalysisCache
from repro.transpiler.passmanager import (
    AnalysisPass,
    BasePass,
    DoWhileController,
    LoopMetrics,
    PassManager,
    PassMetrics,
    PropertySet,
    TranspileResult,
    TransformationPass,
)
from repro.transpiler.preset import (
    level_0_pass_manager,
    level_1_pass_manager,
    level_2_pass_manager,
    level_3_pass_manager,
    preset_pass_manager,
)
from repro.transpiler.target import Target, TARGET_PRESETS
from repro.transpiler.options import CompileOptions
from repro.transpiler.result_cache import ResultCache
from repro.transpiler.frontend import EXECUTORS, PIPELINES, pass_manager_for, transpile
from repro.transpiler.service import SERVICE_MODES, CompileService
from repro.transpiler.metrics import (
    aggregate_batch,
    compare_metrics,
    load_metrics_json,
    write_metrics_json,
)

__all__ = [
    "CouplingMap",
    "Layout",
    "TranspilerError",
    "AnalysisCache",
    "BasePass",
    "AnalysisPass",
    "TransformationPass",
    "PassManager",
    "PropertySet",
    "DoWhileController",
    "PassMetrics",
    "LoopMetrics",
    "TranspileResult",
    "level_0_pass_manager",
    "level_1_pass_manager",
    "level_2_pass_manager",
    "level_3_pass_manager",
    "preset_pass_manager",
    "Target",
    "TARGET_PRESETS",
    "CompileOptions",
    "ResultCache",
    "CompileService",
    "SERVICE_MODES",
    "PIPELINES",
    "EXECUTORS",
    "pass_manager_for",
    "transpile",
    "aggregate_batch",
    "compare_metrics",
    "load_metrics_json",
    "write_metrics_json",
]
