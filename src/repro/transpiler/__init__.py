"""The transpiler: pass-manager framework, standard passes, preset levels.

The preset pipelines mirror Qiskit 0.18's optimization levels 0-3 (the
baselines the paper compares against, Sec. II-B and Fig. 8):

* level 0 -- map to the device, no optimization;
* level 1 -- light optimization (adjacent-gate collapsing);
* level 2 -- noise-aware layout + commutative cancellation;
* level 3 -- level 2 plus two-qubit block re-synthesis (``Collect2qBlocks``
  + ``ConsolidateBlocks``) in a fixed-point loop.

The RPO pipeline (paper Fig. 8, underlined additions) lives in
:mod:`repro.rpo` and reuses this infrastructure.
"""

from repro.transpiler.coupling import CouplingMap
from repro.transpiler.layout import Layout
from repro.transpiler.exceptions import TranspilerError
from repro.transpiler.passmanager import (
    AnalysisPass,
    BasePass,
    DoWhileController,
    PassManager,
    PropertySet,
    TransformationPass,
)
from repro.transpiler.preset import (
    level_0_pass_manager,
    level_1_pass_manager,
    level_2_pass_manager,
    level_3_pass_manager,
    preset_pass_manager,
    transpile,
)

__all__ = [
    "CouplingMap",
    "Layout",
    "TranspilerError",
    "BasePass",
    "AnalysisPass",
    "TransformationPass",
    "PassManager",
    "PropertySet",
    "DoWhileController",
    "level_0_pass_manager",
    "level_1_pass_manager",
    "level_2_pass_manager",
    "level_3_pass_manager",
    "preset_pass_manager",
    "transpile",
]
