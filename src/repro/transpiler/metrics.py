"""Batch metrics aggregation and JSON export.

Every :class:`~repro.transpiler.passmanager.TranspileResult` already carries
structured per-pass and per-loop metrics; this module rolls a *batch* of
results up into one JSON-serializable report: per-pass time/gate-delta/
rewrite aggregates, batch-level wall-time and gate-count statistics,
per-:class:`~repro.transpiler.target.Target` breakdowns (``by_target`` --
heterogeneous multi-backend batches report each device separately, and
results served by a networked shard carry its endpoint into per-target
``shards`` splits plus a batch-level ``by_shard`` roll-up), and the
shared :class:`~repro.transpiler.cache.AnalysisCache` hit rates.  Benchmarks
write these reports to disk (``bench_table2_main.py --quick --metrics-json``)
and CI diffs them against a checked-in baseline
(``benchmarks/check_regression.py``), which is how compile-time regressions
are caught automatically.

The report is a plain ``dict`` of primitives -- ``json.dump`` ready, stable
under ``schema`` versioning, and cheap to ship from worker processes.
"""

from __future__ import annotations

import json
from typing import Iterable, Sequence

from repro.transpiler.cache import AnalysisCache
from repro.transpiler.passmanager import TranspileResult

__all__ = [
    "METRICS_SCHEMA_VERSION",
    "aggregate_batch",
    "write_metrics_json",
    "load_metrics_json",
    "compare_metrics",
]

METRICS_SCHEMA_VERSION = 1

#: Gates counted as "one-qubit" in summaries (mirrors benchmarks/common.py).
ONE_QUBIT_GATES = ("u1", "u2", "u3", "id", "x", "h", "z", "s", "sdg", "t", "tdg")


def _stats(values: Sequence[float]) -> dict:
    if not values:
        return {"mean": 0.0, "median": 0.0, "min": 0.0, "max": 0.0, "total": 0.0}
    ordered = sorted(values)
    n = len(ordered)
    median = (
        ordered[n // 2]
        if n % 2
        else (ordered[n // 2 - 1] + ordered[n // 2]) / 2.0
    )
    return {
        "mean": sum(ordered) / n,
        "median": median,
        "min": ordered[0],
        "max": ordered[-1],
        "total": sum(ordered),
    }


def aggregate_batch(
    results: Iterable[TranspileResult],
    cache: AnalysisCache | None = None,
    executor: str | None = None,
    wall_time: float | None = None,
) -> dict:
    """Aggregate a batch of transpile results into one metrics report.

    Args:
        results: the batch's :class:`TranspileResult` objects.
        cache: the batch's shared analysis cache; adds hit/miss statistics.
            Defaults to the cache found on the first result, if any.
        executor: executor backend label to record (``"thread"`` etc.).
        wall_time: end-to-end batch wall-clock, if the caller measured one
            (the sum of per-result times over-counts under parallelism).
    """
    results = list(results)
    passes: dict[str, dict] = {}
    times, sizes, depths, cx_counts, one_q_counts = [], [], [], [], []
    by_target: dict = {}  # Target (or None) -> running aggregates
    by_shard: dict[str, dict] = {}  # serving endpoint -> running aggregates
    loop_iterations = 0
    loops_converged = 0
    loops_total = 0
    for result in results:
        times.append(result.time)
        sizes.append(result.circuit.size())
        depths.append(result.circuit.depth())
        ops = result.circuit.count_ops()
        cx_counts.append(ops.get("cx", 0))
        one_q_counts.append(sum(ops.get(name, 0) for name in ONE_QUBIT_GATES))
        # grouped by the Target *value* (hashable by design), not its
        # display label -- distinct same-named targets must not merge
        target = result.properties.get("target")
        entry = by_target.setdefault(
            target,
            {
                "num_circuits": 0,
                "time": [],
                "cx": [],
                "size": [],
                "depth": [],
                "num_qubits": getattr(target, "num_qubits", None),
                "basis": list(getattr(target, "basis", ()) or ()),
                "shards": {},
            },
        )
        entry["num_circuits"] += 1
        entry["time"].append(result.time)
        entry["cx"].append(float(ops.get("cx", 0)))
        entry["size"].append(float(result.circuit.size()))
        entry["depth"].append(float(result.circuit.depth()))
        # results served by a networked shard carry the endpoint; merge
        # the per-shard split into the target's entry (and batch-level)
        shard = result.properties.get("shard")
        if shard is not None:
            entry["shards"][shard] = entry["shards"].get(shard, 0) + 1
            shard_entry = by_shard.setdefault(
                shard, {"num_circuits": 0, "time": []}
            )
            shard_entry["num_circuits"] += 1
            shard_entry["time"].append(result.time)
        for metric in result.metrics:
            entry = passes.setdefault(
                metric.name,
                {
                    "runs": 0,
                    "skips": 0,
                    "total_time": 0.0,
                    "max_time": 0.0,
                    "size_delta": 0,
                    "depth_delta": 0,
                    "rewrites": 0,
                },
            )
            if metric.skipped:
                entry["skips"] += 1
                continue
            entry["runs"] += 1
            entry["total_time"] += metric.time
            entry["max_time"] = max(entry["max_time"], metric.time)
            entry["size_delta"] += metric.size_delta
            entry["depth_delta"] += metric.depth_delta
            entry["rewrites"] += metric.rewrites
        for loop in result.loops:
            loops_total += 1
            loop_iterations += loop.iterations
            loops_converged += loop.converged
    for entry in passes.values():
        entry["mean_time"] = entry["total_time"] / entry["runs"] if entry["runs"] else 0.0
    target_report: dict[str, dict] = {}
    for target, entry in by_target.items():
        for field in ("time", "cx", "size", "depth"):
            entry[field] = _stats(entry.pop(field))
        label = getattr(target, "label", None) or "untargeted"
        suffix = 2
        while label in target_report:  # same label, different target value
            label = f"{getattr(target, 'label', 'untargeted')}#{suffix}"
            suffix += 1
        target_report[label] = entry

    if cache is None:
        for result in results:
            cache = result.analysis_cache
            if cache is not None:
                break
    cache_report = None
    if cache is not None:
        requests = cache.matrix_requests
        cache_report = {
            "matrix_requests": requests,
            "matrix_constructions": cache.matrix_constructions,
            "matrix_hit_rate": (
                1.0 - cache.matrix_constructions / requests if requests else 0.0
            ),
            "stats": dict(cache.stats),
        }

    report = {
        "schema": METRICS_SCHEMA_VERSION,
        "num_circuits": len(results),
        "executor": executor,
        "time": _stats(times),
        "wall_time": wall_time,
        "gates": {
            "size": _stats([float(s) for s in sizes]),
            "depth": _stats([float(d) for d in depths]),
            "cx": _stats([float(c) for c in cx_counts]),
            "one_qubit": _stats([float(c) for c in one_q_counts]),
        },
        "loops": {
            "count": loops_total,
            "iterations": loop_iterations,
            "converged": loops_converged,
        },
        "passes": passes,
        "by_target": target_report,
        "by_shard": {
            shard: {**entry, "time": _stats(entry["time"])}
            for shard, entry in by_shard.items()
        },
        "cache": cache_report,
    }
    return report


def write_metrics_json(path, report: dict) -> None:
    """Serialize a metrics report (or any JSON-ready dict) to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_metrics_json(path) -> dict:
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)


def _row_key(row: dict) -> tuple:
    return (row.get("workload"), row.get("qubits"), row.get("config"))


def compare_metrics(
    current: dict,
    baseline: dict,
    gate_tolerance: float = 0.20,
    time_tolerance: float = 0.20,
) -> list[str]:
    """Regressions of ``current`` against ``baseline``; empty list = pass.

    Two families of checks, mirroring the CI gate's contract:

    * **gate counts** -- for every benchmark row present in both reports
      (keyed by workload/qubits/config), the optimized ``cx`` and ``1q``
      counts may not exceed baseline by more than ``gate_tolerance``
      (with an absolute slack of one gate so tiny counts don't flap);
    * **transpile time** -- per-config mean times are compared *normalized
      by the same run's* ``level3`` *mean time*, so a faster or slower CI
      machine cancels out and only genuine pipeline slowdowns (RPO/Hoare
      growing relative to the baseline compiler) trip the gate.  Absolute
      times are still recorded in the report for humans.
    """
    failures: list[str] = []

    baseline_rows = {_row_key(r): r for r in baseline.get("rows", [])}
    for row in current.get("rows", []):
        base = baseline_rows.get(_row_key(row))
        if base is None:
            continue
        label = "/".join(str(part) for part in _row_key(row))
        for field in ("cx", "1q"):
            if field not in row or field not in base:
                continue
            allowed = max(base[field] * (1.0 + gate_tolerance), base[field] + 1)
            if row[field] > allowed:
                failures.append(
                    f"{label}: {field} count {row[field]} exceeds baseline "
                    f"{base[field]} by more than {gate_tolerance:.0%}"
                )

    current_times = current.get("mean_time_by_config", {})
    baseline_times = baseline.get("mean_time_by_config", {})
    reference = "level3"
    cur_ref = current_times.get(reference)
    base_ref = baseline_times.get(reference)
    if cur_ref and base_ref:
        for config, cur_time in current_times.items():
            if config == reference:
                continue
            base_time = baseline_times.get(config)
            if not base_time:
                continue
            cur_ratio = cur_time / cur_ref
            base_ratio = base_time / base_ref
            if cur_ratio > base_ratio * (1.0 + time_tolerance):
                failures.append(
                    f"time: {config} mean transpile time is {cur_ratio:.2f}x "
                    f"level3 (baseline {base_ratio:.2f}x, tolerance "
                    f"{time_tolerance:.0%})"
                )
    return failures
