"""``CompileOptions``: one frozen value object for every compile knob.

``transpile()`` historically grew 16 loosely-interacting keyword
arguments; :class:`CompileOptions` consolidates them into a single frozen
dataclass accepted by :func:`repro.transpiler.frontend.transpile`,
:class:`~repro.transpiler.service.CompileService` and
:class:`~repro.server.client.RemoteCompileService`.  Legacy keyword
arguments keep working -- every entry point coerces them into an options
object (:meth:`CompileOptions.coerce`), so there is exactly one code path
-- and a combination that names the same knob twice with different values
earns a :class:`DeprecationWarning` (the explicit options object wins).

The options object is also the canonical **hashable** piece of the
result-cache key: only the semantic fields -- the ones that change *what
circuit comes out* -- take part in equality and hashing
(``pipeline``, ``optimization_level``, ``seed``).  Execution-side fields
(``executor``, ``max_workers``, ``full_result``, the cache objects,
``endpoint``) change only *how fast* the answer arrives, so two options
that differ only there compare equal and address the same cache entries
(:meth:`CompileOptions.cache_key`).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, fields, replace

from repro.transpiler.exceptions import TranspilerError

__all__ = ["CompileOptions", "options_cache_key"]


def options_cache_key(settings: dict) -> tuple:
    """The result-cache options key of a *resolved* settings dict.

    The service resolves per-job settings (submission overrides merged
    over its defaults) before dispatch; this projects the resolved dict
    onto the semantic triple the cache keys on.  Kept next to
    :class:`CompileOptions` so the definition of "semantic" lives in one
    place.
    """
    return (
        settings.get("pipeline"),
        settings.get("optimization_level"),
        settings.get("seed"),
    )


def _hashable(value):
    """Tuple-ize lists so seed/endpoint sequences survive freezing."""
    if isinstance(value, list):
        return tuple(value)
    return value


@dataclass(frozen=True)
class CompileOptions:
    """Every compile knob in one frozen, hashable value object.

    Semantic fields (part of equality, hashing and the result-cache key):

    * ``pipeline`` -- pass-manager flavour (``None`` defers to the
      serving service's configured default).
    * ``optimization_level`` -- preset level for ``pipeline="preset"``.
    * ``seed`` -- routing seed; a sequence gives one seed per circuit.

    Execution fields (how the answer is produced, excluded from
    equality/hash):

    * ``executor`` / ``max_workers`` / ``full_result`` -- mirror the
      historical ``transpile()`` keywords.
    * ``analysis_cache`` / ``result_cache`` -- caller-shared caches.
    * ``endpoint`` -- compile-server URL(s); setting it implies
      ``executor="remote"`` when the executor is left on ``"auto"``.
    * ``validate`` -- QSAN translation-validation mode (``"full"``,
      ``"contracts"`` or ``"off"``; ``None`` defers to ``REPRO_QSAN``).
      Validation never changes the compiled circuit, so the field stays
      out of equality and the cache key -- but note a cache *hit* serves
      a stored result without re-running (or re-validating) the pipeline.
    * ``initial_layout`` -- a :class:`~repro.transpiler.layout.Layout`;
      participates in equality but not hashing (layouts are mutable), and
      any job carrying one bypasses the result cache.
    """

    pipeline: str | None = None
    optimization_level: int | None = None
    seed: object = None
    validate: str | None = field(default=None, compare=False)
    initial_layout: object = field(default=None, hash=False)
    executor: str = field(default="auto", compare=False)
    max_workers: int | None = field(default=None, compare=False)
    full_result: bool = field(default=False, compare=False)
    analysis_cache: object = field(default=None, compare=False, repr=False)
    result_cache: object = field(default=None, compare=False, repr=False)
    endpoint: object = field(default=None, compare=False)

    def __post_init__(self):
        object.__setattr__(self, "seed", _hashable(self.seed))
        object.__setattr__(self, "endpoint", _hashable(self.endpoint))

    # -- the cache-key projection ------------------------------------------

    def cache_key(self) -> tuple:
        """The hashable semantic triple the result cache keys on."""
        return (self.pipeline, self.optimization_level, self.seed)

    # -- legacy-kwarg coercion ---------------------------------------------

    @classmethod
    def coerce(cls, options: "CompileOptions | None" = None, **legacy) -> "CompileOptions":
        """Merge legacy keyword arguments into one options object.

        With no ``options``, the legacy kwargs simply populate a fresh
        object (the silent, fully-supported path).  With an explicit
        ``options`` object, any legacy kwarg that *disagrees* with it --
        both set away from the field default, different values -- earns a
        :class:`DeprecationWarning` naming the field, and the options
        object wins; a legacy kwarg the options object leaves at its
        default is adopted quietly.
        """
        defaults = {f.name: f.default for f in fields(cls)}
        unknown = set(legacy) - set(defaults)
        if unknown:
            raise TranspilerError(
                f"unknown compile option(s): {', '.join(sorted(unknown))}"
            )
        legacy = {
            name: _hashable(value)
            for name, value in legacy.items()
            if value is not None and value != defaults[name]
        }
        if options is None:
            return cls(**legacy)
        if not isinstance(options, CompileOptions):
            raise TranspilerError(
                f"options= expects a CompileOptions, got {type(options).__name__}"
            )
        adopted = {}
        for name, value in legacy.items():
            current = getattr(options, name)
            if current == defaults[name]:
                adopted[name] = value
            elif current != value:
                warnings.warn(
                    f"transpile option {name!r} passed both as a legacy "
                    f"keyword ({value!r}) and inside CompileOptions "
                    f"({current!r}); the CompileOptions value wins -- pass "
                    "it once, via CompileOptions",
                    DeprecationWarning,
                    stacklevel=3,
                )
        return replace(options, **adopted) if adopted else options
