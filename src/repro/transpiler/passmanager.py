"""Requirements-aware pass-manager framework.

Passes are small objects with a ``run`` method; transformation passes return
a new circuit, analysis passes only write to the shared
:class:`PropertySet`.  A :class:`PassManager` executes a schedule of passes
and flow controllers (``DoWhileController`` implements the fixed-point loop
of optimization level 3, paper Fig. 8 lines 9-10).

The scheduler is *requirements/preserves-aware* (the mechanism behind the
paper's observation that early rewrites make the whole pipeline faster,
Tables II-IV):

* every :class:`BasePass` declares ``requires`` (property names that must
  exist before it runs), ``preserves`` (analysis results it keeps valid)
  and ``invalidates`` (results it always clobbers); analysis passes also
  declare ``provides``;
* the manager tracks which analysis results are currently *valid* and
  skips an analysis pass outright when everything it provides is still
  valid -- including after transformation passes that provably did not
  change the circuit (detected structurally), which is what short-circuits
  the tail iterations of the fixed-point loop;
* all passes share one :class:`~repro.transpiler.cache.AnalysisCache`
  (gate matrices, adjacency maps, DAG views), installed in the property
  set; pass a cache into :meth:`PassManager.run` to share it across runs.

Each run produces a :class:`TranspileResult` carrying the output circuit,
the property set, structured per-pass metrics (:class:`PassMetrics`: time,
gate/depth delta, rewrites applied, skipped flag) and per-loop metrics
(:class:`LoopMetrics`: iteration count, per-iteration times, convergence).

Runs can execute under the QSAN translation-validation sanitizer
(:mod:`repro.analysis.qsan`): pass ``validate="full"``/``"contracts"`` to
:meth:`PassManager.run_with_result` (or export ``REPRO_QSAN=1``) and every
transformation pass is checked for semantic equivalence of its input and
output plus honesty of its ``preserves``/``invalidates`` declarations; a
dishonest pass raises a structured
:class:`~repro.analysis.qsan.ContractViolation`.
``PassManager.run`` remains side-effect free with respect to the manager --
concurrent runs of one manager do not race; ``PassManager.property_set`` is
kept only as a deprecated, thread-local alias for the last result's
properties.
"""

from __future__ import annotations

import threading
import time
import warnings
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro.circuit.quantumcircuit import QuantumCircuit
from repro.transpiler.cache import AnalysisCache, rewrite_counter
from repro.transpiler.exceptions import TranspilerError

__all__ = [
    "PropertySet",
    "BasePass",
    "AnalysisPass",
    "TransformationPass",
    "DoWhileController",
    "PassManager",
    "PassMetrics",
    "LoopMetrics",
    "TranspileResult",
]


class PropertySet(dict):
    """Shared key-value store that passes use to communicate."""


#: Property keys the run loop (or the shared cache machinery) writes as a
#: side effect of executing *any* pass.  They carry no analysis result, so
#: they neither count as "the pass wrote properties" for validity tracking
#: nor need declaring in a pass's ``provides``/``writes`` contract.
#: Underscore-prefixed keys are private scratch space and equally exempt.
_BOOKKEEPING_PROPERTIES = frozenset(
    {
        "pass_times",
        "rewrite_counts",
        "loop_metrics",
        "analysis_cache",  # AnalysisCache.PROPERTY_KEY
        "target",  # installed by the service, read-only to passes
        "shard",  # serving endpoint, installed by the router
        "result_cache",  # CACHE_PROPERTY, installed by the service
    }
)


def is_bookkeeping_property(key) -> bool:
    """True for run-loop side-channel keys exempt from pass contracts."""
    return not isinstance(key, str) or key in _BOOKKEEPING_PROPERTIES or key.startswith("_")


def _meaningful_writes(snapshot: dict, properties: PropertySet) -> set[str]:
    """Non-bookkeeping keys a pass added, rebound or deleted.

    In-place mutation of an existing value (e.g. the rewrite counter) is
    invisible here by design -- the contract tracks *rebindings* of
    analysis results, which is how every analysis pass publishes.
    """
    written = {
        key
        for key, value in properties.items()
        if not is_bookkeeping_property(key)
        and (key not in snapshot or snapshot[key] is not value)
    }
    written.update(
        key
        for key in snapshot
        if key not in properties and not is_bookkeeping_property(key)
    )
    return written


#: Set once the ``PassManager.property_set`` deprecation has been announced;
#: the alias is read on hot serving paths, so the warning fires once per
#: process rather than once per run/access.
_PROPERTY_SET_DEPRECATION_EMITTED = False


def _warn_property_set_deprecated() -> None:
    global _PROPERTY_SET_DEPRECATION_EMITTED
    if _PROPERTY_SET_DEPRECATION_EMITTED:
        return
    _PROPERTY_SET_DEPRECATION_EMITTED = True
    warnings.warn(
        "PassManager.property_set is deprecated; use the TranspileResult "
        "returned by PassManager.run_with_result() instead",
        DeprecationWarning,
        stacklevel=3,
    )


@dataclass
class PassMetrics:
    """Structured record of one pass execution (or skip)."""

    name: str
    time: float
    size_before: int
    size_after: int
    depth_before: int
    depth_after: int
    rewrites: int = 0
    skipped: bool = False
    #: contract/equivalence violations QSAN attributed to this execution
    #: (always 0 when the sanitizer is off)
    violations: int = 0

    @property
    def size_delta(self) -> int:
        return self.size_after - self.size_before

    @property
    def depth_delta(self) -> int:
        return self.depth_after - self.depth_before


@dataclass
class LoopMetrics:
    """Cost profile of one ``DoWhileController`` execution.

    The fixed-point loop is the paper's transpile-time mechanism: RPO's
    early rewrites shrink the circuit every iteration sees, so the loop's
    per-iteration times are the first place its speed-up shows up.
    """

    name: str
    iterations: int
    converged: bool
    iteration_times: list[float] = field(default_factory=list)
    time: float = 0.0


@dataclass
class TranspileResult:
    """Everything a pipeline run produced."""

    circuit: QuantumCircuit
    properties: PropertySet
    metrics: list[PassMetrics] = field(default_factory=list)
    loops: list[LoopMetrics] = field(default_factory=list)
    time: float = 0.0
    #: QSAN findings (:class:`repro.analysis.qsan.ContractViolation`),
    #: populated only in report mode -- strict mode raises instead
    violations: list = field(default_factory=list)

    @property
    def pass_times(self) -> list[tuple[str, float]]:
        """``(name, seconds)`` per executed pass (skips excluded)."""
        return [(m.name, m.time) for m in self.metrics if not m.skipped]

    @property
    def analysis_cache(self) -> AnalysisCache | None:
        cache = self.properties.get(AnalysisCache.PROPERTY_KEY)
        return cache if isinstance(cache, AnalysisCache) else None


class BasePass:
    """Common base class for transpiler passes.

    Scheduling contract (all optional, all property-name tuples):

    * ``requires`` -- properties that must already exist in the property
      set; the manager raises :class:`TranspilerError` otherwise.
    * ``provides`` -- properties this pass computes.  An analysis pass
      whose every provided property is still valid is skipped.
    * ``preserves`` -- properties that remain valid after this pass ran;
      the string ``"all"`` preserves everything (analysis passes default
      to it, transformation passes to ``()``).
    * ``invalidates`` -- properties clobbered unconditionally, even when
      the circuit comes back unchanged.
    * ``writes`` -- extra property keys the pass may legitimately rebind
      without providing them as analysis results (stateful scratch such as
      ``FixedPoint``'s flag).  QSAN's contract audit treats any other
      non-bookkeeping property write as an undeclared write.

    ``equivalence`` names the semantic contract QSAN holds the pass to:
    ``"unitary"`` (exact unitary equivalence up to global phase, the
    default), ``"state"`` (equivalence from the all-zeros initial state
    only -- the paper's relaxed-precondition passes), ``"permutation"``
    (equivalent up to the wire relabeling in ``final_permutation``),
    ``"layout"`` (equivalent up to embedding per the ``layout`` property),
    ``"measurement"`` (measurement-outcome distributions match) or
    ``"none"`` (no semantic check; contract audit only).
    """

    requires: tuple[str, ...] = ()
    provides: tuple[str, ...] = ()
    preserves: tuple[str, ...] | str = ()
    invalidates: tuple[str, ...] = ()
    writes: tuple[str, ...] = ()
    equivalence: str = "unitary"

    @property
    def name(self) -> str:
        return type(self).__name__

    def run(self, circuit: QuantumCircuit, property_set: PropertySet) -> QuantumCircuit:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{self.name}>"


class AnalysisPass(BasePass):
    """A pass that computes properties but leaves the circuit unchanged."""

    preserves = "all"
    equivalence = "identity"

    def analyze(self, circuit: QuantumCircuit, property_set: PropertySet) -> None:
        raise NotImplementedError

    def run(self, circuit: QuantumCircuit, property_set: PropertySet) -> QuantumCircuit:
        self.analyze(circuit, property_set)
        return circuit


class TransformationPass(BasePass):
    """A pass that rewrites the circuit."""

    def transform(
        self, circuit: QuantumCircuit, property_set: PropertySet
    ) -> QuantumCircuit:
        raise NotImplementedError

    def run(self, circuit: QuantumCircuit, property_set: PropertySet) -> QuantumCircuit:
        return self.transform(circuit, property_set)


class DoWhileController:
    """Repeats a pass sequence while ``condition(property_set)`` holds."""

    def __init__(
        self,
        passes: Sequence[BasePass],
        do_while: Callable[[PropertySet], bool],
        max_iterations: int = 100,
    ):
        self.passes = list(passes)
        self.do_while = do_while
        self.max_iterations = max_iterations

    @property
    def name(self) -> str:
        inner = ",".join(p.name for p in self.passes)
        return f"DoWhile[{inner}]"


class _RunState:
    """Book-keeping for one pipeline run (never stored on the manager)."""

    __slots__ = (
        "properties",
        "valid",
        "metrics",
        "loops",
        "cache",
        "size",
        "depth",
        "validator",
        "violations",
    )

    def __init__(self, properties: PropertySet, cache: AnalysisCache, validator=None):
        self.properties = properties
        self.valid: set[str] = set()
        self.metrics: list[PassMetrics] = []
        self.loops: list[LoopMetrics] = []
        self.cache = cache
        self.size: int | None = None  # memoized metrics of the live circuit
        self.depth: int | None = None
        self.validator = validator  # QsanValidator or None
        self.violations: list = []


def _unchanged(before: QuantumCircuit, after: QuantumCircuit) -> bool:
    """Structurally identical output => every analysis stays valid."""
    if after is before:
        return True
    if (
        after.num_qubits != before.num_qubits
        or after.num_clbits != before.num_clbits
        or len(after.data) != len(before.data)
        or abs(after.global_phase - before.global_phase) > 1e-12
    ):
        return False
    return after.data == before.data


class PassManager:
    """Runs a schedule of passes over a circuit."""

    def __init__(self, passes: Iterable[BasePass | DoWhileController] | None = None):
        self._schedule: list[BasePass | DoWhileController] = list(passes or [])
        self._thread_results = threading.local()

    def append(self, item: BasePass | DoWhileController | Sequence[BasePass]) -> None:
        if isinstance(item, (BasePass, DoWhileController)):
            self._schedule.append(item)
        else:
            self._schedule.extend(item)

    @property
    def passes(self) -> list[BasePass | DoWhileController]:
        return list(self._schedule)

    @property
    def property_set(self) -> PropertySet | None:
        """Deprecated: the property set of this thread's last run.

        Prefer the :class:`TranspileResult` returned by
        :meth:`run_with_result` -- it is what makes concurrent runs of one
        manager race-free.
        """
        _warn_property_set_deprecated()
        result = getattr(self._thread_results, "last", None)
        return result.properties if result is not None else None

    def run(
        self,
        circuit: QuantumCircuit,
        property_set: PropertySet | None = None,
        analysis_cache: AnalysisCache | None = None,
    ) -> QuantumCircuit:
        """Execute the schedule; returns the transformed circuit.

        A convenience front over :meth:`run_with_result` -- metrics and
        properties live on the returned result object there.
        """
        return self.run_with_result(
            circuit, property_set=property_set, analysis_cache=analysis_cache
        ).circuit

    def run_with_result(
        self,
        circuit: QuantumCircuit,
        property_set: PropertySet | None = None,
        analysis_cache: AnalysisCache | None = None,
        validate: str | None = None,
    ) -> TranspileResult:
        """Execute the schedule and return the full :class:`TranspileResult`.

        ``analysis_cache`` may be shared across runs (and across managers):
        repeated workloads then skip most matrix constructions and circuit
        analyses.  All run state is local; only a thread-local reference to
        the result is kept for the deprecated ``property_set`` alias.

        ``validate`` turns on the QSAN sanitizer for this run: ``"full"``
        (equivalence + contract audit), ``"contracts"`` (audit only) or
        ``"off"``.  ``None`` defers to the ``REPRO_QSAN`` environment
        variable (see :mod:`repro.analysis.qsan`).
        """
        properties = property_set if property_set is not None else PropertySet()
        properties.setdefault("pass_times", [])
        cache = analysis_cache
        if cache is None:
            existing = properties.get(AnalysisCache.PROPERTY_KEY)
            cache = existing if isinstance(existing, AnalysisCache) else AnalysisCache()
        properties[AnalysisCache.PROPERTY_KEY] = cache
        validator = None
        if validate != "off":
            # lazy import: the sanitizer is opt-in and pulls the simulators
            from repro.analysis.qsan import QsanConfig, QsanValidator

            config = QsanConfig.resolve(validate)
            if config.enabled:
                validator = QsanValidator(config)
        state = _RunState(properties, cache, validator=validator)
        start = time.perf_counter()
        for item in self._schedule:
            circuit = self._run_item(item, circuit, state)
        result = TranspileResult(
            circuit=circuit,
            properties=properties,
            metrics=state.metrics,
            loops=state.loops,
            time=time.perf_counter() - start,
            violations=state.violations,
        )
        self._thread_results.last = result
        return result

    # ------------------------------------------------------------------

    def _run_item(self, item, circuit, state: _RunState):
        if isinstance(item, DoWhileController):
            loop_start = time.perf_counter()
            iteration_times: list[float] = []
            converged = False
            for _ in range(item.max_iterations):
                iteration_start = time.perf_counter()
                for inner in item.passes:
                    circuit = self._run_pass(inner, circuit, state)
                iteration_times.append(time.perf_counter() - iteration_start)
                if not item.do_while(state.properties):
                    converged = True
                    break
            loop = LoopMetrics(
                name=item.name,
                iterations=len(iteration_times),
                converged=converged,
                iteration_times=iteration_times,
                time=time.perf_counter() - loop_start,
            )
            state.loops.append(loop)
            state.properties.setdefault("loop_metrics", []).append(loop)
            return circuit
        return self._run_pass(item, circuit, state)

    def _run_pass(self, pass_, circuit, state: _RunState):
        properties = state.properties
        for required in pass_.requires:
            if required not in properties:
                raise TranspilerError(
                    f"pass {pass_.name} requires property {required!r}; schedule "
                    "a pass that provides it first"
                )

        if state.size is None:
            state.size = circuit.size()
            state.depth = circuit.depth()
        size_before, depth_before = state.size, state.depth

        provides = tuple(pass_.provides)
        if (
            isinstance(pass_, AnalysisPass)
            and provides
            and all(name in state.valid for name in provides)
        ):
            # everything this analysis would compute is still valid: skip
            state.metrics.append(
                PassMetrics(
                    name=pass_.name,
                    time=0.0,
                    size_before=size_before,
                    size_after=size_before,
                    depth_before=depth_before,
                    depth_after=depth_before,
                    skipped=True,
                )
            )
            return circuit

        snapshot = dict(properties)
        valid_before = set(state.valid)
        rewrites_before = rewrite_counter(properties)[pass_.name]
        start = time.perf_counter()
        result = pass_.run(circuit, properties)
        elapsed = time.perf_counter() - start
        if result is None:
            raise RuntimeError(f"pass {pass_.name} returned None")

        changed = not _unchanged(circuit, result)
        written = _meaningful_writes(snapshot, properties)
        undeclared = written - set(provides) - set(pass_.writes)
        if changed or undeclared:
            # a rewritten circuit -- or one whose pass wrote properties it
            # never declared, a change the structural shortcut used to
            # miss -- invalidates everything not declared kept
            if pass_.preserves != "all":
                state.valid &= set(pass_.preserves)
        if changed:
            state.size = result.size()
            state.depth = result.depth()
        state.valid -= set(pass_.invalidates)
        state.valid |= set(provides)

        found = []
        if state.validator is not None:
            found = state.validator.check_pass(
                pass_,
                circuit,
                result,
                properties,
                snapshot=snapshot,
                written=written,
                valid_before=valid_before,
                changed=changed,
            )
            state.violations.extend(found)
        properties["pass_times"].append((pass_.name, elapsed))
        state.metrics.append(
            PassMetrics(
                name=pass_.name,
                time=elapsed,
                size_before=size_before,
                size_after=state.size,
                depth_before=depth_before,
                depth_after=state.depth,
                rewrites=rewrite_counter(properties)[pass_.name] - rewrites_before,
                skipped=False,
                violations=len(found),
            )
        )
        if found and not state.validator.config.report_only:
            raise found[0]
        return result
