"""Pass-manager framework.

Passes are small objects with a ``run`` method; transformation passes return
a new circuit, analysis passes only write to the shared
:class:`PropertySet`.  A :class:`PassManager` executes a schedule of passes
and flow controllers (``DoWhileController`` implements the fixed-point loop
of optimization level 3, paper Fig. 8 lines 9-10).

Timing of each pass is recorded in the property set under
``"pass_times"`` -- the paper's transpile-time comparisons (Tables II-IV)
come from these timers.
"""

from __future__ import annotations

import time
from typing import Callable, Iterable, Sequence

from repro.circuit.quantumcircuit import QuantumCircuit

__all__ = [
    "PropertySet",
    "BasePass",
    "AnalysisPass",
    "TransformationPass",
    "DoWhileController",
    "PassManager",
]


class PropertySet(dict):
    """Shared key-value store that passes use to communicate."""


class BasePass:
    """Common base class for transpiler passes."""

    @property
    def name(self) -> str:
        return type(self).__name__

    def run(self, circuit: QuantumCircuit, property_set: PropertySet) -> QuantumCircuit:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{self.name}>"


class AnalysisPass(BasePass):
    """A pass that computes properties but leaves the circuit unchanged."""

    def analyze(self, circuit: QuantumCircuit, property_set: PropertySet) -> None:
        raise NotImplementedError

    def run(self, circuit: QuantumCircuit, property_set: PropertySet) -> QuantumCircuit:
        self.analyze(circuit, property_set)
        return circuit


class TransformationPass(BasePass):
    """A pass that rewrites the circuit."""

    def transform(
        self, circuit: QuantumCircuit, property_set: PropertySet
    ) -> QuantumCircuit:
        raise NotImplementedError

    def run(self, circuit: QuantumCircuit, property_set: PropertySet) -> QuantumCircuit:
        return self.transform(circuit, property_set)


class DoWhileController:
    """Repeats a pass sequence while ``condition(property_set)`` holds."""

    def __init__(
        self,
        passes: Sequence[BasePass],
        do_while: Callable[[PropertySet], bool],
        max_iterations: int = 100,
    ):
        self.passes = list(passes)
        self.do_while = do_while
        self.max_iterations = max_iterations

    @property
    def name(self) -> str:
        inner = ",".join(p.name for p in self.passes)
        return f"DoWhile[{inner}]"


class PassManager:
    """Runs a schedule of passes over a circuit."""

    def __init__(self, passes: Iterable[BasePass | DoWhileController] | None = None):
        self._schedule: list[BasePass | DoWhileController] = list(passes or [])

    def append(self, item: BasePass | DoWhileController | Sequence[BasePass]) -> None:
        if isinstance(item, (BasePass, DoWhileController)):
            self._schedule.append(item)
        else:
            self._schedule.extend(item)

    @property
    def passes(self) -> list[BasePass | DoWhileController]:
        return list(self._schedule)

    def run(
        self, circuit: QuantumCircuit, property_set: PropertySet | None = None
    ) -> QuantumCircuit:
        """Execute the schedule; returns the transformed circuit.

        The property set (including per-pass timing under ``pass_times``)
        survives on ``self.property_set`` for inspection.
        """
        properties = property_set if property_set is not None else PropertySet()
        properties.setdefault("pass_times", [])
        for item in self._schedule:
            circuit = self._run_item(item, circuit, properties)
        self.property_set = properties
        return circuit

    def _run_item(self, item, circuit, properties):
        if isinstance(item, DoWhileController):
            for _ in range(item.max_iterations):
                for inner in item.passes:
                    circuit = self._run_pass(inner, circuit, properties)
                if not item.do_while(properties):
                    break
            return circuit
        return self._run_pass(item, circuit, properties)

    def _run_pass(self, pass_, circuit, properties):
        start = time.perf_counter()
        result = pass_.run(circuit, properties)
        elapsed = time.perf_counter() - start
        properties["pass_times"].append((pass_.name, elapsed))
        if result is None:
            raise RuntimeError(f"pass {pass_.name} returned None")
        return result
