"""A long-lived compile service with a persistent worker pool.

:class:`CompileService` is the execution engine behind
:func:`repro.transpiler.frontend.transpile` and the entry point for
serving-shaped workloads.  Where ``transpile(executor="process")``
historically spun a fresh process pool per call -- paying pool start-up,
worker warm-start and interpreter imports every time --, a service owns
its pool for its whole lifetime and amortizes those costs across every
batch submitted to it:

* **persistent pool** -- worker processes (or threads) are created once,
  lazily on first submission, warm-started from the service cache's
  snapshot, and reused until :meth:`CompileService.shutdown`;
* **async submission queue** -- :meth:`CompileService.submit` returns a
  :class:`concurrent.futures.Future` immediately; :meth:`CompileService.map`
  is the batch convenience that preserves input order.  Work from many
  callers interleaves on one pool;
* **periodic worker cache-delta harvesting** -- workers attach their
  :class:`~repro.transpiler.cache.AnalysisCache` delta (new entries + stats)
  to results, throttled by ``harvest_interval`` seconds (0 = every job),
  and the service merges the deltas into its parent cache as results
  complete, so the cache keeps warming whichever worker compiled what.
  Harvested entries are also rebroadcast to the next pool-width's worth
  of jobs (best effort), so one worker's discoveries reach the *other*
  live workers, not just the parent;
* **disk-backed snapshots** -- give the service a ``snapshot_path`` and it
  boots by importing whatever valid snapshot it finds there
  (:meth:`AnalysisCache.load_snapshot`) and persists the warmed cache on
  shutdown (:meth:`AnalysisCache.save`), so warm-start survives process
  restarts; snapshots are fingerprint-versioned, and one written by a
  different library version is skipped with a warning naming both
  fingerprints (``stats()["snapshot_skipped"]`` carries the reason);
* **per-job targets** -- every submission carries its own
  :class:`~repro.transpiler.target.Target`, so one service (and one batch)
  compiles circuits for many different devices; job envelopes ship compact
  circuit/target payloads (:mod:`repro.circuit.serialization`), and
  workers memoize rebuilt targets so a coupling map's derived data is
  computed once per distinct target per worker.

Three modes share one code path: ``"process"`` (the default, compilation
scales with cores), ``"thread"`` (cheap start-up, GIL-bound) and
``"serial"`` (inline execution, deterministic, no pool at all).  All modes
produce identical circuits.

Dispatch is **chunk-aware**: a submission is one task, but
:meth:`CompileService.map` groups large batches into chunked job
envelopes (several jobs per pool task, ``chunk_size="auto"`` by default)
so huge batches of cheap circuits amortize per-task envelope overhead
instead of paying it per circuit.  Each job inside a chunk still gets its
own future and its own error, so one bad circuit never poisons its
chunk-mates.

Services can also keep their warm cache **crash-safe**: pass
``autosave_interval=N`` (seconds) together with ``snapshot_path`` and a
daemon timer periodically harvests worker-held deltas
(:meth:`CompileService.harvest_now`) and persists the cache snapshot
atomically (write-then-rename), instead of only at shutdown.  The
HTTP compile server (:mod:`repro.server`) relies on this for warm
restarts after a crash.

Typical lifecycle::

    from repro.transpiler import CompileService, Target

    with CompileService(pipeline="rpo", snapshot_path="cache.snap") as service:
        futures = [service.submit(c, target="melbourne") for c in circuits]
        results = [f.result() for f in futures]
        # ... more batches; the pool and cache stay warm ...
    # __exit__ drains the pool and persists the cache snapshot
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import threading
import time
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Sequence

from repro.circuit.quantumcircuit import QuantumCircuit
from repro.circuit.serialization import circuit_from_payload, circuit_to_payload
from repro.transpiler.cache import AnalysisCache
from repro.transpiler.exceptions import TranspilerError
from repro.transpiler.options import CompileOptions, options_cache_key
from repro.transpiler.passes import IBM_BASIS
from repro.transpiler.passmanager import PropertySet, TranspileResult
from repro.transpiler.result_cache import ResultCache
from repro.transpiler.target import Target

__all__ = ["CompileService", "SERVICE_MODES", "normalize_batch"]

SERVICE_MODES = ("process", "thread", "serial")


def normalize_batch(batch: list, targets, seeds) -> tuple[list, list]:
    """Per-circuit target/seed lists from single-or-sequence arguments.

    The one normalization every batch front applies --
    :meth:`CompileService.map`, the remote client and the shard router
    (:mod:`repro.server`) all share it, so mismatched lengths fail with
    the same error everywhere.
    """
    if targets is not None and isinstance(targets, (list, tuple)):
        if len(targets) != len(batch):
            raise TranspilerError(
                f"got {len(targets)} targets for {len(batch)} circuits"
            )
        per_targets = list(targets)
    else:
        per_targets = [targets] * len(batch)
    if isinstance(seeds, (list, tuple)):
        if len(seeds) != len(batch):
            raise TranspilerError(f"got {len(seeds)} seeds for {len(batch)} circuits")
        per_seeds = list(seeds)
    else:
        per_seeds = [seeds] * len(batch)
    return per_targets, per_seeds

#: Key under which the job's target is recorded in result properties.
TARGET_PROPERTY = "target"

#: Result-property key marking a job served from the compiled-result
#: cache: ``"hit"`` (exact key) or ``"template"`` (parameter re-binding).
#: Absent on freshly-compiled results.
CACHE_PROPERTY = "result_cache"

#: FIFO caps: rebroadcast buffer entries per cache family, and rebuilt
#: Target objects memoized per worker -- bounded like every other cache
#: in the codebase, so a long-lived service cannot grow without limit.
_RESYNC_MAX_PER_FAMILY = 256
_WORKER_TARGET_MEMO_MAX = 64

#: Upper bound on jobs per chunked envelope -- large enough to amortize
#: dispatch, small enough that one chunk never monopolizes a worker.
_CHUNK_MAX_JOBS = 64


def default_workers(batch_size: int | None, max_workers: int | None) -> int:
    """Pool width: caller's choice, else CPU-bounded (and batch-bounded)."""
    if max_workers:
        return max_workers
    cpu_bound = max(1, (os.cpu_count() or 2) - 1)
    if batch_size is not None:
        return min(batch_size, cpu_bound)
    return cpu_bound


def _mp_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


# ---------------------------------------------------------------------------
# worker side
#
# Workers are initialized once per pool with the parent cache's warm-start
# snapshot and the harvest interval; each job then ships a compact circuit
# payload, a compact target payload and the per-job pipeline settings.
# Results come back as payloads plus (periodically) the worker cache's
# delta since its last export.
# ---------------------------------------------------------------------------

_WORKER_STATE: dict | None = None


def _service_worker_init(
    snapshot: dict | None, harvest_interval: float, flush_barrier=None
) -> None:
    global _WORKER_STATE
    cache = AnalysisCache()
    if snapshot is not None:
        cache.import_snapshot(snapshot)
    _WORKER_STATE = {
        "cache": cache,
        "harvest_interval": harvest_interval,
        "last_harvest": time.monotonic(),
        "targets": {},
        "flush_barrier": flush_barrier,
    }


def _service_flush(barrier_timeout: float = 2.0):
    """On-demand harvest: export this worker's unshipped cache delta.

    The barrier makes every worker hold its flush until all of them have
    picked one up, so the pool cannot hand several flush tasks to one
    worker while another keeps its delta; if distribution is uneven
    anyway (a worker mid-job), the barrier times out and each flush still
    exports what its worker holds -- best effort.  A timed-out barrier is
    left broken by the stdlib; it is reset here so the *next* flush round
    (live harvests repeat; shutdown always runs one) coordinates again.

    Returns ``(worker pid, delta)`` so the parent can tell *which* worker
    each flush drained -- :meth:`CompileService._flush_worker_deltas`
    retries until every distinct worker has answered, instead of trusting
    the pool to hand one flush task to each worker.
    """
    state = _WORKER_STATE
    if state is None:
        return None
    barrier = state.get("flush_barrier")
    if barrier is not None:
        try:
            barrier.wait(timeout=barrier_timeout)
        except threading.BrokenBarrierError:
            try:
                barrier.reset()
            except Exception:
                pass
        except Exception:
            pass
    state["last_harvest"] = time.monotonic()
    return os.getpid(), state["cache"].export_snapshot(delta_only=True)


def _sanitize_properties(properties: PropertySet) -> dict:
    """A picklable copy of a run's property set.

    The shared cache is stripped (it travels separately as a delta); any
    other unpicklable value is dropped and recorded under
    ``"_dropped_properties"`` so callers can tell the set is partial.
    """
    sanitized: dict = {}
    dropped: list[str] = []
    for key, value in properties.items():
        if key == AnalysisCache.PROPERTY_KEY:
            continue
        try:
            pickle.dumps(value)
        except Exception:
            dropped.append(key)
        else:
            sanitized[key] = value
    if dropped:
        sanitized["_dropped_properties"] = dropped
    return sanitized


def _run_job(circuit: QuantumCircuit, target: Target, settings: dict, cache):
    """Compile one circuit for one target; shared by every mode."""
    from repro.transpiler.frontend import pass_manager_for

    manager = pass_manager_for(
        settings["pipeline"],
        target,
        optimization_level=settings["optimization_level"],
        seed=settings["seed"],
        initial_layout=settings["initial_layout"],
    )
    return manager.run_with_result(
        circuit,
        PropertySet(),
        analysis_cache=cache,
        validate=settings.get("validate"),
    )


def _worker_target(state: dict, target_payload: tuple) -> Target:
    """Rebuild (or recall) the job's target, memoized per worker."""
    targets = state["targets"]
    target = targets.get(target_payload)
    if target is None:
        target = Target.from_payload(target_payload)
        if len(targets) >= _WORKER_TARGET_MEMO_MAX:
            targets.pop(next(iter(targets)))
        targets[target_payload] = target
    return target


def _picklable_exception(exc: BaseException) -> BaseException:
    """``exc`` if it survives pickling, else a faithful stand-in.

    Chunk results travel back through the pool's pickle channel; an
    unpicklable exception there would fail the *transport* and take the
    whole chunk's futures down with it, so it is replaced before
    shipping."""
    try:
        pickle.loads(pickle.dumps(exc))
    except Exception:
        return TranspilerError(f"job failed: {type(exc).__name__}: {exc}")
    return exc


def _service_chunk(task: tuple) -> tuple:
    """Process-pool entry point: a chunk of job payloads in, per-job
    outcomes + (at most) one cache delta out.

    Each job's outcome is ``("ok", result_payloads)`` or
    ``("error", exception)`` -- a failing job only fails itself, never its
    chunk-mates.  The harvest-throttle check runs once per chunk, so a
    chunk of N cheap jobs ships at most one delta, which is the point of
    chunking.
    """
    jobs, sync = task
    state = _WORKER_STATE
    assert state is not None, "service worker was not initialized"
    cache = state["cache"]
    if sync is not None:
        # entries other workers discovered, rebroadcast by the parent;
        # existing entries win, so re-imports are cheap no-ops
        cache.import_snapshot(sync)
    outcomes = []
    for circuit_payload, target_payload, settings in jobs:
        try:
            target = _worker_target(state, target_payload)
            circuit = circuit_from_payload(circuit_payload)
            result = _run_job(circuit, target, settings, cache)
            outcomes.append(
                (
                    "ok",
                    (
                        circuit_to_payload(result.circuit),
                        result.metrics,
                        result.loops,
                        result.time,
                        _sanitize_properties(result.properties),
                    ),
                )
            )
        except Exception as exc:  # noqa: BLE001 - relayed to the caller
            outcomes.append(("error", _picklable_exception(exc)))
    delta = None
    now = time.monotonic()
    if now - state["last_harvest"] >= state["harvest_interval"]:
        delta = cache.export_snapshot(delta_only=True)
        state["last_harvest"] = now
    return outcomes, delta


# ---------------------------------------------------------------------------
# the service
# ---------------------------------------------------------------------------


class CompileService:
    """A long-lived compile service owning a persistent worker pool."""

    def __init__(
        self,
        *,
        mode: str = "process",
        max_workers: int | None = None,
        pipeline: str | None = None,
        optimization_level: int | None = None,
        target: Target | str | None = None,
        basis_gates=IBM_BASIS,
        initial_layout=None,
        analysis_cache: AnalysisCache | None = None,
        result_cache: ResultCache | None | bool = None,
        validate: str | None = None,
        snapshot_path=None,
        harvest_interval: float = 0.0,
        autosave_interval: float = 0.0,
        options: CompileOptions | None = None,
    ):
        """Args:
            mode: ``"process"`` (default), ``"thread"`` or ``"serial"``.
            max_workers: pool width (default: CPU count - 1).
            pipeline / optimization_level / target / basis_gates /
                initial_layout: defaults applied to submissions that do not
                override them (``"preset"`` / level 1 when left unset);
                ``target`` accepts a :class:`Target` or a preset name
                (``"melbourne"``, ``"linear:5"``, ...).
            analysis_cache: the parent cache the service warms and
                harvests into; defaults to a fresh one.
            result_cache: the content-addressed compiled-result cache
                consulted before any job reaches the pool
                (:class:`~repro.transpiler.result_cache.ResultCache`).
                ``None`` (the default) creates a fresh one -- the service
                caches answers out of the box; pass ``False`` to disable
                result caching entirely, or share one cache object across
                services.
            snapshot_path: disk location for cache persistence -- imported
                (if present and version-compatible) at construction,
                written back on :meth:`shutdown`.  The result cache
                persists alongside at ``<snapshot_path>.results``.
            harvest_interval: minimum seconds between a worker's cache
                delta exports; 0 harvests with every job.
            autosave_interval: seconds between periodic background cache
                snapshot saves to ``snapshot_path`` (a daemon timer; each
                save harvests worker deltas first and writes atomically).
                0 (the default) keeps the historical shutdown-only flush.
            options: a :class:`~repro.transpiler.options.CompileOptions`
                consolidating the compile knobs; individual keyword
                arguments above are legacy spellings coerced into it
                (:meth:`CompileOptions.coerce` -- conflicts warn, the
                options object wins).
        """
        if mode not in SERVICE_MODES:
            raise TranspilerError(
                f"unknown service mode {mode!r}; choose one of "
                f"{', '.join(SERVICE_MODES)}"
            )
        opts = CompileOptions.coerce(
            options,
            pipeline=pipeline,
            optimization_level=optimization_level,
            initial_layout=initial_layout,
            max_workers=max_workers,
            analysis_cache=analysis_cache,
            result_cache=result_cache if result_cache is not False else None,
            validate=validate,
        )
        if isinstance(opts.seed, tuple):
            # a sequence seed is a per-circuit schedule (one seed per
            # batched circuit); adopting it verbatim as the service-wide
            # default would hand every job a tuple where the pipeline
            # expects a scalar, and silently key the result cache on it
            raise TranspilerError(
                "a sequence seed cannot be a CompileService default -- it "
                "is a per-circuit schedule; pass seeds= to map() (or a "
                "scalar seed in CompileOptions)"
            )
        self.options = opts
        self.mode = mode
        self.max_workers = opts.max_workers
        self.harvest_interval = float(harvest_interval)
        self.snapshot_path = snapshot_path
        self.cache = (
            opts.analysis_cache if opts.analysis_cache is not None else AnalysisCache()
        )
        if result_cache is False or opts.result_cache is False:
            self.result_cache: ResultCache | None = None
        elif opts.result_cache is not None:
            self.result_cache = opts.result_cache
        else:
            self.result_cache = ResultCache()
        self._defaults = {
            "pipeline": opts.pipeline if opts.pipeline is not None else "preset",
            "optimization_level": (
                opts.optimization_level
                if opts.optimization_level is not None
                else 1
            ),
            "initial_layout": opts.initial_layout,
            "seed": opts.seed,
            "validate": opts.validate,
        }
        self._basis = tuple(basis_gates)
        self._default_target = (
            Target.coerce(target, basis=self._basis) if target is not None else None
        )
        self._pool = None
        self._pool_workers = 0
        self._lock = threading.RLock()
        self._shutdown = False
        self._started = time.monotonic()
        self._submitted = 0
        self._completed = 0
        self._failed = 0
        self._harvests = 0
        self._syncs_sent = 0
        self._chunks = 0
        self._autosaves = 0
        self._autosave_timer: threading.Timer | None = None
        #: harvested worker entries waiting to be rebroadcast to the next
        #: ``_resync_remaining`` jobs, so one worker's discoveries reach
        #: the other live workers too (best effort -- under skewed task
        #: distribution some workers may be resynced twice, some not at
        #: all; correctness never depends on it)
        self._resync_buffer: dict | None = None
        self._resync_remaining = 0
        self._cache_hits = 0
        self._cache_template_hits = 0
        self._snapshot_entries_loaded = 0
        self._result_entries_loaded = 0
        self._result_snapshot_path = (
            f"{snapshot_path}.results" if snapshot_path is not None else None
        )
        if snapshot_path is not None:
            self._snapshot_entries_loaded = self.cache.load_snapshot(snapshot_path)
            if self.result_cache is not None:
                self._result_entries_loaded = self.result_cache.load_snapshot(
                    self._result_snapshot_path
                )
        self.autosave_interval = float(autosave_interval)
        if snapshot_path is not None and self.autosave_interval > 0:
            self._schedule_autosave()

    @property
    def default_target(self) -> Target | None:
        """The target applied to submissions that name none."""
        return self._default_target

    # -- pool management ---------------------------------------------------

    def _ensure_pool(self):
        with self._lock:
            if self._shutdown:
                raise TranspilerError("CompileService has been shut down")
            if self._pool is None and self.mode != "serial":
                workers = default_workers(None, self.max_workers)
                self._pool_workers = workers
                if self.mode == "process":
                    context = _mp_context()
                    # the barrier coordinates the shutdown-time delta
                    # flush; without throttling every job already ships
                    # its delta, so there is nothing left to flush
                    barrier = (
                        context.Barrier(workers)
                        if self.harvest_interval > 0
                        else None
                    )
                    self._pool = ProcessPoolExecutor(
                        max_workers=workers,
                        mp_context=context,
                        initializer=_service_worker_init,
                        initargs=(
                            self.cache.export_snapshot(),
                            self.harvest_interval,
                            barrier,
                        ),
                    )
                else:
                    self._pool = ThreadPoolExecutor(max_workers=workers)
            return self._pool

    def _submit_to_pool(self, fn, *args):
        """Pool submission that cannot race :meth:`shutdown`.

        The lock spans the liveness check and the submission, so a
        concurrent shutdown either happens before (and this raises the
        documented :class:`TranspilerError`) or waits until the job is
        queued.
        """
        with self._lock:
            pool = self._ensure_pool()
            try:
                return pool.submit(fn, *args)
            except RuntimeError as exc:  # pool torn down underneath us
                raise TranspilerError("CompileService has been shut down") from exc

    # -- submission --------------------------------------------------------

    def _resolve(self, circuit: QuantumCircuit, target, overrides: dict):
        if not isinstance(circuit, QuantumCircuit):
            raise TranspilerError("CompileService expects QuantumCircuit inputs")
        settings = dict(self._defaults)
        for key, value in overrides.items():
            if value is not None:
                settings[key] = value
        if target is not None:
            target = Target.coerce(target, basis=self._basis)
        elif self._default_target is not None:
            target = self._default_target
        else:
            target = Target.full(circuit.num_qubits, basis=self._basis)
        return target, settings

    def submit(
        self,
        circuit: QuantumCircuit,
        *,
        target: Target | str | None = None,
        pipeline: str | None = None,
        optimization_level: int | None = None,
        seed: int | None = None,
        initial_layout=None,
        validate: str | None = None,
    ) -> Future:
        """Queue one compilation; returns a future of a
        :class:`~repro.transpiler.passmanager.TranspileResult`.

        Process mode snapshots the circuit into a payload at submission
        time; under serial/thread modes the circuit object itself is
        handed to the pipeline (passes never mutate their input), so
        callers should not mutate a submitted circuit before its future
        resolves.
        """
        target, settings = self._resolve(
            circuit,
            target,
            {
                "pipeline": pipeline,
                "optimization_level": optimization_level,
                "seed": seed,
                "initial_layout": initial_layout,
                "validate": validate,
            },
        )
        if self.mode == "process":
            return self._submit_chunk([(circuit, target, settings)])[0]
        outer: Future = Future()
        if self.mode != "serial":
            # counted before pool submission: a fast job's done-callback
            # may increment _completed before submit() returns, and stats()
            # must never observe completed > submitted
            with self._lock:
                self._submitted += 1
        if self.mode == "thread":
            inner = self._submit_to_pool(self._run_local, circuit, target, settings)
            inner.add_done_callback(
                lambda f, outer=outer: self._finish_local(outer, f)
            )
        else:
            self._ensure_pool()  # raises after shutdown; no pool in serial mode
            with self._lock:
                self._submitted += 1
            try:
                result = self._run_local(circuit, target, settings)
            except BaseException as exc:  # noqa: BLE001 - future carries it
                with self._lock:
                    self._failed += 1
                outer.set_exception(exc)
            else:
                with self._lock:
                    self._completed += 1
                outer.set_result(result)
        return outer

    def _take_sync(self) -> dict | None:
        """Pop one rebroadcast snapshot for the next outgoing task, if due."""
        with self._lock:
            if self._resync_remaining <= 0 or self._resync_buffer is None:
                return None
            # inner dicts copied too: the pool's feeder thread pickles the
            # task concurrently with _finish_chunk updating the buffer
            sync = {
                family: dict(entries)
                for family, entries in self._resync_buffer.items()
            }
            sync["version"] = AnalysisCache.SNAPSHOT_VERSION
            self._resync_remaining -= 1
            self._syncs_sent += 1
            if self._resync_remaining == 0:
                self._resync_buffer = None
            return sync

    def _cache_meta(self, circuit_payload, target_payload, settings):
        """The result-cache address of one job, or ``None`` if uncacheable.

        Jobs carrying an ``initial_layout`` bypass the cache entirely
        (layouts are mutable objects with no canonical content form).
        """
        if self.result_cache is None or settings.get("initial_layout") is not None:
            return None
        return (circuit_payload, target_payload, options_cache_key(settings))

    def _cache_serve(self, meta, target: Target) -> Future | None:
        """A pre-resolved future served from the result cache, or ``None``.

        A served job never touches the pool (which may not even exist
        yet); it still counts as submitted + completed so ``stats()``
        arithmetic holds, plus a hit counter of its own.
        """
        if meta is None:
            return None
        found = self.result_cache.lookup(*meta)
        if found is None:
            return None
        value, kind = found
        with self._lock:
            if self._shutdown:
                raise TranspilerError("CompileService has been shut down")
            self._submitted += 1
        outer: Future = Future()
        try:
            result = self._result_from_payload(value, target, kind=kind)
        except Exception as exc:  # noqa: BLE001 - corrupt entry: fail the job
            self._fail_future(outer, exc)
            return outer
        with self._lock:
            self._completed += 1
            self._cache_hits += 1
            if kind == "template":
                self._cache_template_hits += 1
        outer.set_result(result)
        return outer

    def _result_from_payload(
        self, value: tuple, target: Target, kind: str | None = None
    ) -> TranspileResult:
        """Rebuild a :class:`TranspileResult` from its compact wire form."""
        payload, metrics, loops, elapsed, props = value
        properties = PropertySet(props)
        properties[AnalysisCache.PROPERTY_KEY] = self.cache
        properties[TARGET_PROPERTY] = target
        if kind is not None:
            properties[CACHE_PROPERTY] = kind
        return TranspileResult(
            circuit=circuit_from_payload(payload),
            properties=properties,
            metrics=metrics,
            loops=loops,
            time=elapsed,
        )

    def _submit_chunk(self, resolved: list[tuple]) -> list[Future]:
        """Ship ``resolved`` jobs (already target/settings-resolved) as ONE
        pool task; returns one future per job.

        This is the chunked job envelope: per-task costs -- pickling the
        envelope, pool dispatch, the sync snapshot, the harvest check --
        are paid once per chunk rather than once per circuit, which is
        what lets huge batches of cheap circuits keep the pool busy
        instead of the feeder thread.

        The result cache is consulted per job *before* the envelope is
        built: served jobs come back as already-resolved futures, and a
        chunk whose every job hits never creates the pool at all.
        """
        futures: list[Future | None] = [None] * len(resolved)
        payload_jobs: list[tuple] = []
        targets: list[Target] = []
        metas: list = []
        pending: list[int] = []
        for i, (circuit, target, settings) in enumerate(resolved):
            circuit_payload = circuit_to_payload(circuit)
            target_payload = target.to_payload()
            meta = self._cache_meta(circuit_payload, target_payload, settings)
            served = self._cache_serve(meta, target)
            if served is not None:
                futures[i] = served
                continue
            payload_jobs.append((circuit_payload, target_payload, settings))
            targets.append(target)
            metas.append(meta)
            pending.append(i)
        if payload_jobs:
            for i, future in zip(
                pending, self._submit_payload_chunk(payload_jobs, targets, metas)
            ):
                futures[i] = future
        return futures

    def _submit_payload_chunk(
        self,
        payload_jobs: list[tuple],
        targets: list[Target],
        metas: list | None = None,
    ) -> list[Future]:
        """Chunk submission for jobs already in compact payload form.

        ``metas`` carries each job's result-cache address (or ``None``
        for uncacheable jobs) so :meth:`_finish_chunk` can populate the
        cache when the answers come back.
        """
        if metas is None:
            metas = [None] * len(payload_jobs)
        with self._lock:
            self._submitted += len(payload_jobs)
            self._chunks += 1
        task = (tuple(payload_jobs), self._take_sync())
        outers = [Future() for _ in payload_jobs]
        inner = self._submit_to_pool(_service_chunk, task)
        inner.add_done_callback(
            lambda f, outers=outers, targets=targets, metas=metas: (
                self._finish_chunk(outers, targets, metas, f)
            )
        )
        return outers

    def submit_payloads(self, jobs: Sequence[tuple]) -> list[Future]:
        """Queue pre-encoded jobs: ``(circuit_payload, target_payload,
        settings)`` tuples, exactly the wire form the compile server's
        envelopes carry (:mod:`repro.server.protocol`).

        In process mode the payloads go to the pool **as-is** -- the
        server never rebuilds a circuit object just to re-flatten it --
        split into chunks by the ``"auto"`` policy; serial/thread modes
        rebuild the objects and run them inline.  ``settings`` entries
        that are ``None`` fall back to the service defaults, mirroring
        :meth:`submit`.
        """
        jobs = list(jobs)
        if not jobs:
            return []
        prepared: list[tuple] = []
        targets: list[Target] = []
        target_memo: dict = {}
        for circuit_payload, target_payload, settings in jobs:
            merged = dict(self._defaults)
            for key, value in dict(settings).items():
                if value is not None:
                    merged[key] = value
            target = target_memo.get(target_payload)
            if target is None:
                target = Target.from_payload(target_payload)
                target_memo[target_payload] = target
            targets.append(target)
            prepared.append((circuit_payload, target_payload, merged))
        if self.mode == "process":
            futures: list[Future | None] = [None] * len(prepared)
            miss_jobs: list[tuple] = []
            miss_targets: list[Target] = []
            miss_metas: list = []
            pending: list[int] = []
            for i, (job, target) in enumerate(zip(prepared, targets)):
                circuit_payload, target_payload, merged = job
                meta = self._cache_meta(circuit_payload, target_payload, merged)
                served = self._cache_serve(meta, target)
                if served is not None:
                    futures[i] = served
                    continue
                miss_jobs.append(job)
                miss_targets.append(target)
                miss_metas.append(meta)
                pending.append(i)
            if miss_jobs:
                self._ensure_pool()  # raises after shutdown; sizes chunk policy
                chunk = self.chunk_size_for(len(miss_jobs))
                for start in range(0, len(miss_jobs), chunk):
                    stop = start + chunk
                    for i, future in zip(
                        pending[start:stop],
                        self._submit_payload_chunk(
                            miss_jobs[start:stop],
                            miss_targets[start:stop],
                            miss_metas[start:stop],
                        ),
                    ):
                        futures[i] = future
            return futures
        futures = []
        for (circuit_payload, _, merged), target in zip(prepared, targets):
            futures.append(
                self.submit(
                    circuit_from_payload(circuit_payload),
                    target=target,
                    pipeline=merged["pipeline"],
                    optimization_level=merged["optimization_level"],
                    seed=merged["seed"],
                    initial_layout=merged["initial_layout"],
                    validate=merged.get("validate"),
                )
            )
        return futures

    def chunk_size_for(self, batch_size: int) -> int:
        """The ``chunk_size="auto"`` policy: per-job dispatch for batches
        the pool width can absorb, chunks for everything bigger.

        Chunks are sized to leave every worker several tasks (so a slow
        chunk cannot serialize the tail of the batch) and capped so one
        envelope never grows unboundedly large.
        """
        if self.mode != "process":
            return 1  # no envelope to amortize without a process boundary
        workers = self._pool_workers or default_workers(batch_size, self.max_workers)
        if batch_size <= 2 * workers:
            return 1
        return max(1, min(_CHUNK_MAX_JOBS, batch_size // (workers * 4)))

    def map(
        self,
        circuits: Sequence[QuantumCircuit],
        *,
        targets=None,
        seeds=None,
        pipeline: str | None = None,
        optimization_level: int | None = None,
        initial_layout=None,
        validate: str | None = None,
        chunk_size: int | str | None = None,
    ) -> list[TranspileResult]:
        """Compile a batch; blocks and returns results in input order.

        ``targets`` may be one target (object or preset name) or a
        per-circuit sequence; ``seeds`` likewise.  ``chunk_size`` groups
        consecutive jobs into chunked envelopes (process mode only):
        ``None``/``"auto"`` sizes chunks by batch size and pool width, 1
        forces per-job dispatch, any larger integer is used as given.
        """
        batch = list(circuits)
        per_circuit_targets, per_circuit_seeds = normalize_batch(
            batch, targets, seeds
        )
        if chunk_size is None or chunk_size == "auto":
            chunk = self.chunk_size_for(len(batch))
        else:
            chunk = max(1, int(chunk_size))
        if chunk > 1 and self.mode == "process":
            resolved = [
                self._resolve(
                    circuit,
                    target,
                    {
                        "pipeline": pipeline,
                        "optimization_level": optimization_level,
                        "seed": seed,
                        "initial_layout": initial_layout,
                        "validate": validate,
                    },
                )
                for circuit, target, seed in zip(
                    batch, per_circuit_targets, per_circuit_seeds
                )
            ]
            jobs = [
                (circuit, target, settings)
                for circuit, (target, settings) in zip(batch, resolved)
            ]
            futures = []
            for start in range(0, len(jobs), chunk):
                futures.extend(self._submit_chunk(jobs[start : start + chunk]))
        else:
            futures = [
                self.submit(
                    circuit,
                    target=target,
                    pipeline=pipeline,
                    optimization_level=optimization_level,
                    seed=seed,
                    initial_layout=initial_layout,
                    validate=validate,
                )
                for circuit, target, seed in zip(
                    batch, per_circuit_targets, per_circuit_seeds
                )
            ]
        return [future.result() for future in futures]

    # -- result plumbing ---------------------------------------------------

    def _run_local(self, circuit, target: Target, settings: dict) -> TranspileResult:
        """Inline execution (serial/thread modes), result-cache aware.

        Cacheable jobs pay one payload conversion to consult the cache;
        on a hit the pipeline never runs, on a miss the compiled answer
        is stored for the next identical (or parameter-varied) request.
        """
        meta = None
        if self.result_cache is not None:
            meta = self._cache_meta(
                circuit_to_payload(circuit), target.to_payload(), settings
            )
            if meta is not None:
                found = self.result_cache.lookup(*meta)
                if found is not None:
                    value, kind = found
                    with self._lock:
                        self._cache_hits += 1
                        if kind == "template":
                            self._cache_template_hits += 1
                    return self._result_from_payload(value, target, kind=kind)
        result = _run_job(circuit, target, settings, self.cache)
        if meta is not None:
            self.result_cache.store(
                *meta,
                (
                    circuit_to_payload(result.circuit),
                    result.metrics,
                    result.loops,
                    result.time,
                    _sanitize_properties(result.properties),
                ),
            )
        result.properties[TARGET_PROPERTY] = target
        return result

    def _finish_local(self, outer: Future, inner: Future) -> None:
        try:
            result = inner.result()
        except BaseException as exc:  # noqa: BLE001 - relayed to the caller
            with self._lock:
                self._failed += 1
            outer.set_exception(exc)
            return
        with self._lock:
            self._completed += 1
        outer.set_result(result)

    def _merge_delta(self, delta: dict) -> None:
        """Adopt a worker's cache delta and queue it for rebroadcast."""
        with self._lock:
            if self.cache.import_snapshot(delta) > 0:
                # queue the new entries for rebroadcast so the *other*
                # workers see them too
                if self._resync_buffer is None:
                    self._resync_buffer = {}
                for family in AnalysisCache._SNAPSHOT_FAMILIES:
                    entries = delta.get(family)
                    if entries:
                        table = self._resync_buffer.setdefault(family, {})
                        table.update(entries)
                        while len(table) > _RESYNC_MAX_PER_FAMILY:
                            table.pop(next(iter(table)))
                self._resync_remaining = max(1, self._pool_workers)
            self._harvests += 1

    def _finish_chunk(
        self,
        outers: list[Future],
        targets: list[Target],
        metas: list,
        inner: Future,
    ) -> None:
        """Scatter one chunk task's outcomes onto its per-job futures."""
        try:
            outcomes, delta = inner.result()
        except BaseException as exc:  # noqa: BLE001 - relayed to the caller
            # the chunk itself died (pool torn down, envelope unpicklable):
            # every job of the chunk shares that fate
            for outer in outers:
                self._fail_future(outer, exc)
            return
        if delta is not None:
            self._merge_delta(delta)
        if len(outcomes) != len(outers):  # never expected; fail loudly, not hang
            error = TranspilerError(
                f"chunk returned {len(outcomes)} outcomes for {len(outers)} jobs"
            )
            for outer in outers:
                self._fail_future(outer, error)
            return
        for outer, target, meta, outcome in zip(outers, targets, metas, outcomes):
            # per-job isolation holds on the parent side too: a payload
            # that fails to rebuild (or an outer future the caller
            # cancelled, making set_result raise) must not abandon the
            # remaining chunk-mates' futures
            try:
                status, value = outcome
                if status != "ok":
                    self._fail_future(outer, value)
                    continue
                result = self._result_from_payload(value, target)
            except BaseException as exc:  # noqa: BLE001 - relayed per job
                self._fail_future(outer, exc)
                continue
            if meta is not None and self.result_cache is not None:
                # populate only after the payload proved rebuildable, so a
                # malformed result can never be served from the cache
                self.result_cache.store(*meta, value)
            with self._lock:
                self._completed += 1
            try:
                outer.set_result(result)
            except Exception:
                pass  # caller cancelled the future; result has no taker

    def _fail_future(self, outer: Future, exc: BaseException) -> None:
        with self._lock:
            self._failed += 1
        try:
            outer.set_exception(exc)
        except Exception:
            pass  # caller cancelled the future; nothing left to notify

    # -- lifecycle ---------------------------------------------------------

    def save_snapshot(self, path=None) -> str | None:
        """Persist the service cache to ``path`` (default: ``snapshot_path``).

        The write is atomic (tmp file + rename, see
        :meth:`AnalysisCache.save`), so a crash mid-save -- or a reader
        racing the autosave timer -- never sees a truncated snapshot.
        """
        path = path if path is not None else self.snapshot_path
        if path is None:
            return None
        self.cache.save(path)
        if self.result_cache is not None:
            self.result_cache.save(f"{path}.results")
        return str(path)

    def harvest_now(self) -> int:
        """Best-effort flush of worker-held cache deltas, pool kept alive.

        Unlike the shutdown flush this leaves the pool serving; it exists
        so periodic snapshot saves (and a compile server's ``/metrics``)
        can see worker discoveries that throttled harvesting
        (``harvest_interval > 0``) is still holding worker-side.  Returns
        the number of deltas merged.  A no-op outside throttled process
        mode, where every job (or chunk) already ships its delta.
        """
        with self._lock:
            pool = self._pool
            workers = self._pool_workers
        if pool is None or self.mode != "process" or self.harvest_interval <= 0:
            return 0
        before = self._harvests
        # short barrier wait: a live pool may be mid-chunk, and an
        # autosave tick must not idle the other workers for long
        self._flush_worker_deltas(pool, workers, barrier_timeout=0.25)
        return self._harvests - before

    # -- periodic background autosave --------------------------------------

    def _schedule_autosave(self) -> None:
        timer = threading.Timer(self.autosave_interval, self._autosave_tick)
        timer.daemon = True  # never keeps the interpreter alive
        self._autosave_timer = timer
        timer.start()

    def _autosave_tick(self) -> None:
        """One autosave: harvest stragglers, persist, re-arm the timer."""
        with self._lock:
            if self._shutdown:
                return
        try:
            self.harvest_now()
            self.save_snapshot()
            with self._lock:
                self._autosaves += 1
        except Exception:  # noqa: BLE001 - autosave is best-effort
            pass  # a failed save must not kill the timer; next tick retries
        finally:
            with self._lock:
                if not self._shutdown:
                    self._schedule_autosave()

    def _flush_worker_deltas(
        self, pool, workers: int, barrier_timeout: float = 2.0
    ) -> None:
        """Best-effort harvest of deltas still held by workers.

        Only needed under throttled harvesting (``harvest_interval > 0``):
        jobs finished since each worker's last export have their cache
        entries sitting worker-side, and a snapshot save would otherwise
        miss them.  ``barrier_timeout`` bounds how long a flush task may
        idle a worker waiting for its peers -- shutdown affords the full
        wait, live harvests (autosave ticks) pass a short one.

        Flush results carry the responding worker's pid, and rounds
        retry until every distinct worker answered (or a round makes no
        progress): the pool does not promise one flush task per worker,
        and under uneven pickup -- one worker grabbing two flushes while
        another finishes a job -- a single round can silently drop the
        busy worker's delta.  That is exactly the ``map()`` +
        immediate ``shutdown()`` hazard: the final batch's entries sit
        with a worker that never sees a flush task, and the snapshot
        saved at shutdown misses them.
        """
        flushed: set[int] = set()
        for round_index in range(3):
            remaining = workers - len(flushed)
            if remaining <= 0:
                return
            # first round gets the caller's barrier budget; retry rounds
            # submit fewer tasks than the barrier has parties, so waiting
            # on it would only stall -- use a token timeout instead
            timeout = barrier_timeout if round_index == 0 else 0.25
            try:
                futures = [
                    pool.submit(_service_flush, timeout) for _ in range(remaining)
                ]
            except RuntimeError:  # pool already torn down elsewhere
                return
            progress = False
            for future in futures:
                try:
                    outcome = future.result(timeout=10.0)
                except Exception:
                    continue  # flush is best-effort; shutdown must not fail
                if outcome is None:
                    continue
                pid, delta = outcome
                fresh = pid not in flushed
                flushed.add(pid)
                progress = progress or fresh
                if delta and fresh:
                    with self._lock:
                        self.cache.import_snapshot(delta)
                        self._harvests += 1
            if not progress:
                return  # stuck worker (mid-job > timeout); stay best-effort

    def shutdown(self, wait: bool = True, save: bool = True) -> None:
        """Drain the pool and (by default) persist the cache snapshot.

        Under throttled harvesting, worker cache deltas not yet shipped
        are flushed (best-effort) before the pool drains, so the
        persisted snapshot reflects the workers' discoveries.  Idempotent;
        after shutdown, further submissions raise
        :class:`~repro.transpiler.exceptions.TranspilerError`.
        """
        with self._lock:
            already = self._shutdown
            self._shutdown = True
            pool, self._pool = self._pool, None
            workers = self._pool_workers
            timer, self._autosave_timer = self._autosave_timer, None
        if timer is not None:
            timer.cancel()
            timer.join(timeout=5.0)  # cancel() wakes it; exit is immediate
        if pool is not None:
            if not already and self.mode == "process" and self.harvest_interval > 0:
                self._flush_worker_deltas(pool, workers)
            pool.shutdown(wait=wait)
        if save and not already:
            self.save_snapshot()

    def __enter__(self) -> "CompileService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()

    def stats(self) -> dict:
        """Service-level counters (JSON-ready)."""
        return {
            "mode": self.mode,
            "uptime": time.monotonic() - self._started,
            "submitted": self._submitted,
            "completed": self._completed,
            "failed": self._failed,
            "harvests": self._harvests,
            "syncs_sent": self._syncs_sent,
            "chunks": self._chunks,
            "autosaves": self._autosaves,
            "snapshot_entries_loaded": self._snapshot_entries_loaded,
            "snapshot_skipped": self.cache.snapshot_skipped,
            "cache_matrices": len(self.cache._matrices),
            "cache_requests": self.cache.matrix_requests,
            "cache_constructions": self.cache.matrix_constructions,
            "result_cache_hits": self._cache_hits,
            "result_cache_template_hits": self._cache_template_hits,
            "result_entries_loaded": self._result_entries_loaded,
            "result_cache": (
                self.result_cache.stats() if self.result_cache is not None else None
            ),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "shutdown" if self._shutdown else "live"
        return (
            f"<CompileService mode={self.mode} {state} "
            f"submitted={self._submitted} completed={self._completed}>"
        )


def transpile_batch(
    batch: Sequence[QuantumCircuit],
    targets: Sequence[Target],
    seeds: Sequence,
    *,
    mode: str,
    pipeline: str,
    optimization_level: int,
    initial_layout,
    cache: AnalysisCache,
    max_workers: int | None,
    result_cache: ResultCache | None = None,
    validate: str | None = None,
) -> list[TranspileResult]:
    """One batch through a short-lived service (the ``transpile()`` path).

    A fresh result cache cannot help a one-shot batch, so caching is off
    unless the caller passes a (shared, long-lived) ``result_cache``.
    """
    service = CompileService(
        mode=mode,
        max_workers=default_workers(len(batch), max_workers),
        pipeline=pipeline,
        optimization_level=optimization_level,
        initial_layout=initial_layout,
        analysis_cache=cache,
        result_cache=result_cache if result_cache is not None else False,
        validate=validate,
    )
    try:
        return service.map(batch, targets=targets, seeds=seeds)
    finally:
        service.shutdown()
