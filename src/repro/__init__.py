"""repro: a from-scratch reproduction of *Relaxed Peephole Optimization:
A Novel Compiler Optimization for Quantum Circuits* (CGO 2021).

Top-level convenience re-exports; see the subpackages for the full API:

* :mod:`repro.circuit` -- circuit IR,
* :mod:`repro.gates` -- gate library (including SWAPZ and ANNOT),
* :mod:`repro.linalg` -- Euler/Weyl decompositions and synthesis,
* :mod:`repro.simulators` -- ideal and noisy simulation,
* :mod:`repro.transpiler` -- pass framework and preset levels 0-3,
* :mod:`repro.server` -- the networked compile farm (HTTP server,
  remote client, shard router; ``python -m repro.server``),
* :mod:`repro.rpo` -- the paper's QBO/QPO passes and pipelines,
* :mod:`repro.backends` -- the three fake IBM devices,
* :mod:`repro.algorithms` -- the benchmark workloads.
"""

from repro.circuit import QuantumCircuit
from repro.transpiler import CompileOptions, CompileService, Target, transpile

__version__ = "1.0.0"

__all__ = [
    "QuantumCircuit",
    "CompileOptions",
    "CompileService",
    "Target",
    "transpile",
    "__version__",
]
