"""Circuit simulators.

* :mod:`repro.simulators.statevector` -- exact statevector evolution with
  mid-circuit measurement/reset support;
* :mod:`repro.simulators.fusion` -- the gate-fusion pre-step that lowers
  circuits into fused-matrix programs for the simulators;
* :mod:`repro.simulators.unitary` -- full-circuit unitary extraction;
* :mod:`repro.simulators.noise` -- device noise models (depolarizing gate
  errors + readout errors) built from backend calibration data;
* :mod:`repro.simulators.noisy` -- Monte-Carlo (trajectory) noisy execution
  used for the paper's real-machine experiment (Fig. 11).
"""

from repro.simulators.statevector import StatevectorSimulator, simulate_statevector
from repro.simulators.fusion import FusedProgram, compile_program
from repro.simulators.unitary import circuit_unitary
from repro.simulators.noise import NoiseModel
from repro.simulators.noisy import NoisySimulator
from repro.simulators.density_matrix import DensityMatrixSimulator
from repro.simulators.counts import Counts, success_rate

__all__ = [
    "StatevectorSimulator",
    "simulate_statevector",
    "FusedProgram",
    "compile_program",
    "circuit_unitary",
    "NoiseModel",
    "NoisySimulator",
    "DensityMatrixSimulator",
    "Counts",
    "success_rate",
]
