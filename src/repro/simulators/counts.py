"""Measurement outcome containers and batched multi-shot sampling.

Keys are bitstrings with classical bit 0 as the *rightmost* character
(the usual display convention).
"""

from __future__ import annotations

import numpy as np

__all__ = ["Counts", "sample_counts", "success_rate"]


class Counts(dict):
    """A ``{bitstring: count}`` dictionary with convenience accessors."""

    def __init__(self, data: dict[str, int] | None = None, num_clbits: int | None = None):
        super().__init__(data or {})
        self.num_clbits = num_clbits

    @property
    def shots(self) -> int:
        return sum(self.values())

    def probabilities(self) -> dict[str, float]:
        total = self.shots
        if total == 0:
            return {}
        return {key: value / total for key, value in sorted(self.items())}

    def most_frequent(self) -> str:
        if not self:
            raise ValueError("no counts recorded")
        return max(self.items(), key=lambda item: item[1])[0]

    def int_outcomes(self) -> dict[int, int]:
        return {int(key, 2): value for key, value in self.items()}


def sample_counts(
    probabilities: np.ndarray,
    shots: int,
    rng: np.random.Generator,
    measured: list[tuple[int, int]],
    num_clbits: int,
) -> Counts:
    """Sample ``shots`` outcomes from a terminal distribution, batched.

    ``probabilities`` is the (normalized, host) distribution over basis
    states; ``measured`` maps each measured ``qubit`` to its ``clbit``.
    All shots draw in **one** ``rng.choice`` call -- the exact call the
    per-shot loop used to make, so a fixed seed produces the identical
    multiset of outcomes -- then the outcome -> classical-bits mapping
    and the tallying run vectorized over the distinct outcomes instead
    of once per shot.
    """
    probabilities = np.asarray(probabilities, dtype=float)
    outcomes = rng.choice(len(probabilities), size=shots, p=probabilities)
    distinct, tallies = np.unique(outcomes, return_counts=True)
    bits = np.zeros(len(distinct), dtype=np.int64)
    for qubit, clbit in measured:
        bits |= ((distinct >> qubit) & 1) << clbit
    counts: dict[str, int] = {}
    for pattern, tally in zip(bits, tallies):
        key = format(int(pattern), f"0{num_clbits}b")
        counts[key] = counts.get(key, 0) + int(tally)
    return Counts(counts, num_clbits=num_clbits)


def success_rate(counts: Counts, correct: str) -> float:
    """Fraction of shots that produced the ``correct`` bitstring.

    This is the paper's success-rate metric (Sec. VIII-E / artifact
    appendix): correct outcomes over total trials.
    """
    total = counts.shots
    if total == 0:
        return 0.0
    return counts.get(correct, 0) / total
