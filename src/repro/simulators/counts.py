"""Measurement outcome containers.

Keys are bitstrings with classical bit 0 as the *rightmost* character
(the usual display convention).
"""

from __future__ import annotations

__all__ = ["Counts", "success_rate"]


class Counts(dict):
    """A ``{bitstring: count}`` dictionary with convenience accessors."""

    def __init__(self, data: dict[str, int] | None = None, num_clbits: int | None = None):
        super().__init__(data or {})
        self.num_clbits = num_clbits

    @property
    def shots(self) -> int:
        return sum(self.values())

    def probabilities(self) -> dict[str, float]:
        total = self.shots
        if total == 0:
            return {}
        return {key: value / total for key, value in sorted(self.items())}

    def most_frequent(self) -> str:
        if not self:
            raise ValueError("no counts recorded")
        return max(self.items(), key=lambda item: item[1])[0]

    def int_outcomes(self) -> dict[int, int]:
        return {int(key, 2): value for key, value in self.items()}


def success_rate(counts: Counts, correct: str) -> float:
    """Fraction of shots that produced the ``correct`` bitstring.

    This is the paper's success-rate metric (Sec. VIII-E / artifact
    appendix): correct outcomes over total trials.
    """
    total = counts.shots
    if total == 0:
        return 0.0
    return counts.get(correct, 0) / total
