"""Full-circuit unitary extraction.

Computes the little-endian unitary of a measurement-free circuit by
evolving the columns of the identity through the statevector engine; this
is considerably faster than dense matrix-matrix embedding for wider
circuits and is the backbone of the unitary-equivalence checks in the
test-suite.

Two layers of batching keep it fast: the circuit is lowered through the
gate-fusion pre-step (:func:`repro.simulators.fusion.compile_program`)
so adjacent same-qubit gates apply as one fused matrix, and every gate
applies to **all** columns in a single permute/reshape/matmul instead of
once per column (the column axis rides along as an extra untouched axis,
so each column sees exactly the arithmetic the per-column path would do).

The accumulating matrix is backend-resident: it is created on the active
array backend (:mod:`repro.linalg.backend`), gate matrices upload once
via :meth:`FusedProgram.staged`, and the result pays one ``asnumpy()``
hop at the return boundary.
"""

from __future__ import annotations

import numpy as np

from repro.circuit.quantumcircuit import QuantumCircuit
from repro.linalg.backend import get_backend
from repro.simulators.fusion import compile_program

__all__ = ["circuit_unitary"]


def _apply_gate_columns(matrix, gate, qargs: tuple[int, ...], num_qubits: int):
    """Apply a k-qubit gate to every column of ``matrix`` at once.

    Backend-generic: only array methods and ``@`` touch the operands.
    """
    dim = matrix.shape[0]
    k = len(qargs)
    tensor = matrix.reshape([2] * num_qubits + [dim])
    axis_of = lambda q: num_qubits - 1 - q  # noqa: E731 - tiny local helper
    ordered_targets = [axis_of(q) for q in reversed(qargs)]
    target_set = set(ordered_targets)
    # the column axis joins the rest axes: it is never a gate target
    rest_axes = [ax for ax in range(num_qubits) if ax not in target_set]
    rest_axes.append(num_qubits)
    permuted = tensor.transpose(rest_axes + ordered_targets)
    flattened = permuted.reshape(-1, 2**k)
    updated = (flattened @ gate.T).reshape(permuted.shape)
    inverse = np.argsort(rest_axes + ordered_targets).tolist()
    return updated.transpose(inverse).reshape(dim, dim)


def circuit_unitary(circuit: QuantumCircuit, fusion: bool = True) -> np.ndarray:
    """Return the ``2^n x 2^n`` unitary implemented by ``circuit``.

    Directives are skipped; measurements and resets raise ``ValueError``.
    ``fusion=False`` applies one step per gate instead of fused runs.
    Always returns a host NumPy array (the one boundary hop).
    """
    backend = get_backend()
    num_qubits = circuit.num_qubits
    dim = 2**num_qubits
    program = compile_program(circuit, fuse=fusion)
    matrix = backend.xp.eye(dim, dtype=complex)
    for kind, first, second in program.staged(backend):
        if kind != "unitary":
            name = first.name if kind == "other" else kind
            raise ValueError(f"cannot express {name!r} as a unitary")
        matrix = _apply_gate_columns(matrix, first, second, num_qubits)
    return backend.asnumpy(matrix * np.exp(1j * program.global_phase))
