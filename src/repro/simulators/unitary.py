"""Full-circuit unitary extraction.

Computes the little-endian unitary of a measurement-free circuit by
evolving the columns of the identity through the statevector engine; this
is considerably faster than dense matrix-matrix embedding for wider
circuits and is the backbone of the unitary-equivalence checks in the
test-suite.
"""

from __future__ import annotations

import numpy as np

from repro.circuit.quantumcircuit import QuantumCircuit
from repro.simulators.statevector import apply_gate_to_state

__all__ = ["circuit_unitary"]


def circuit_unitary(circuit: QuantumCircuit) -> np.ndarray:
    """Return the ``2^n x 2^n`` unitary implemented by ``circuit``.

    Directives are skipped; measurements and resets raise ``ValueError``.
    """
    num_qubits = circuit.num_qubits
    dim = 2**num_qubits
    # evolve all basis states at once: treat the matrix as a batch of states
    matrix = np.eye(dim, dtype=complex)
    for instruction in circuit.data:
        operation = instruction.operation
        if operation.is_directive:
            continue
        if not operation.is_gate():
            raise ValueError(f"cannot express {operation.name!r} as a unitary")
        gate_matrix = operation.to_matrix()
        for column in range(dim):
            matrix[:, column] = apply_gate_to_state(
                np.ascontiguousarray(matrix[:, column]),
                gate_matrix,
                instruction.qubits,
                num_qubits,
            )
    return matrix * np.exp(1j * circuit.global_phase)
